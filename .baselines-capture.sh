#!/bin/bash
set -e
cd /root/repo
mkdir -p .baselines
cargo build --release -p simctl 2>/dev/null
cargo test --release -p bench --test matrix_baseline -- --ignored --nocapture 2>&1 | grep -v '^test ' || true
for mode in event roundscan; do
  for jobs in 1 4; do
    for n in 4 5 6 7 8; do
      ./target/release/simctl run all --node all --n $n --seeds 1,2,3,4,5 \
        --modes $mode --jobs $jobs --out .baselines/simctl-$mode-j$jobs-n$n.json >/dev/null
    done
  done
done
echo BASELINES-DONE

//! A chaos campaign from code: sweep the scenario catalog over the SMR
//! stack, print the per-run outcomes and the deterministic JSON report.
//!
//! The same sweep is available from the command line:
//!
//! ```text
//! cargo run --release -p simctl -- run all --node smr --n 5 --seeds 1,2 --modes both
//! ```
//!
//! Run with: `cargo run --release --example chaos_campaign`

use selfstab_reconfig::replication::SmrNode;
use selfstab_reconfig::sim::scenario::catalog;
use selfstab_reconfig::sim::Campaign;

fn main() {
    let scenarios = catalog(5);
    println!("catalog:");
    for s in &scenarios {
        println!("  {:<16} {}", s.name(), s.description());
    }

    // Every cell runs in both scheduler modes; the campaign verifies the
    // executions agree before recording one canonical result.
    let report = Campaign::new("example")
        .with_seeds([1, 2])
        .run::<SmrNode>(&scenarios);

    println!();
    for run in &report.runs {
        let counters: Vec<String> = run
            .counters
            .iter()
            .map(|(key, value)| format!("{key}={value}"))
            .collect();
        println!(
            "{:<16} seed={} converged={} rounds={:<4} msgs={:<6} {}",
            run.scenario,
            run.seed,
            run.converged,
            run.rounds_run,
            run.messages_sent,
            counters.join(" "),
        );
    }
    println!();
    println!("passed: {}", report.passed());
    println!("{}", report.render());
}

//! MWMR shared-register emulation over the virtually synchronous SMR
//! (Section 4.3): two writers, one reader, with a crash in between.
//!
//! Run with: `cargo run --example shared_register`

use selfstab_reconfig::reconfiguration::{config_set, NodeConfig};
use selfstab_reconfig::replication::{RegisterClient, SmrNode};
use selfstab_reconfig::sim::{ProcessId, SimConfig, Simulation};

fn main() {
    let cfg = config_set(0..3);
    let mut sim: Simulation<SmrNode> =
        Simulation::new(SimConfig::default().with_seed(8).with_max_delay(0));
    for i in 0..3u32 {
        let id = ProcessId::new(i);
        sim.add_process_with_id(
            id,
            SmrNode::new_member(id, cfg.clone(), NodeConfig::for_n(8)),
        );
    }
    sim.run_until(600, |s| {
        s.active_ids()
            .iter()
            .all(|id| s.process(*id).unwrap().view().is_some())
    });
    println!("view installed; the register service is live");

    // Writer A writes x := 10 through replica 0.
    RegisterClient::new(sim.process_mut(ProcessId::new(0)).unwrap()).write(1, 10);
    sim.run_until(400, |s| {
        s.active_ids()
            .iter()
            .all(|id| s.process(*id).unwrap().read_register(1) == Some(10))
    });
    println!("writer A: x := 10 visible at every replica");

    // Writer B overwrites x := 20 through replica 1.
    RegisterClient::new(sim.process_mut(ProcessId::new(1)).unwrap()).write(1, 20);
    sim.run_until(400, |s| {
        s.active_ids()
            .iter()
            .all(|id| s.process(*id).unwrap().read_register(1) == Some(20))
    });
    println!("writer B: x := 20 visible at every replica");

    // Reader reads from replica 2 after a crash of replica 0.
    sim.crash(ProcessId::new(0));
    sim.run_rounds(200);
    let value = RegisterClient::new(sim.process_mut(ProcessId::new(2)).unwrap()).read(1);
    println!("reader at replica 2 after the crash reads x = {value:?}");
    assert_eq!(value, Some(20));
}

//! Quorum-based MWMR atomic register emulation (Section 4.3): clients read
//! and write registers through majorities of the configuration, the service
//! suspends during a delicate reconfiguration, and the register contents
//! survive the configuration change.
//!
//! Run with: `cargo run --example atomic_register`

use selfstab_reconfig::reconfiguration::{config_set, NodeConfig};
use selfstab_reconfig::shared_memory::{OpOutcome, RegisterId, SharedMemNode};
use selfstab_reconfig::sim::{ProcessId, SimConfig, Simulation};

fn wait_for_writes(sim: &mut Simulation<SharedMemNode>, node: ProcessId, count: u64) {
    let rounds = sim.run_until(800, |s| {
        s.process(node).unwrap().writes_committed() >= count
    });
    assert!(rounds < 800, "write never committed");
}

fn read_value(
    sim: &mut Simulation<SharedMemNode>,
    node: ProcessId,
    key: RegisterId,
) -> Option<u64> {
    let before = sim.process(node).unwrap().reads_committed();
    sim.process_mut(node).unwrap().submit_read(key);
    let rounds = sim.run_until(800, |s| s.process(node).unwrap().reads_committed() > before);
    assert!(rounds < 800, "read never committed");
    sim.process_mut(node)
        .unwrap()
        .take_completed()
        .into_iter()
        .find_map(|o| match o {
            OpOutcome::ReadCommitted { value, .. } => Some(value),
            _ => None,
        })
        .flatten()
}

fn main() {
    // Four configuration members serve the registers.
    let cfg = config_set(0..4);
    let mut sim = Simulation::new(
        SimConfig::default()
            .with_seed(7)
            .with_loss_probability(0.05)
            .with_max_delay(1),
    );
    for i in 0..4u32 {
        let id = ProcessId::new(i);
        sim.add_process_with_id(
            id,
            SharedMemNode::new_member(id, cfg.clone(), NodeConfig::for_n(16)),
        );
    }
    sim.run_rounds(60);
    println!("configuration {{p0..p3}} installed; the register service is live");

    // Two writers race on the same register; both writes commit and every
    // member ends up with the same (tag-maximal) value.
    let balance = RegisterId::new(100);
    sim.process_mut(ProcessId::new(0))
        .unwrap()
        .submit_write(balance, 250);
    sim.process_mut(ProcessId::new(1))
        .unwrap()
        .submit_write(balance, 300);
    wait_for_writes(&mut sim, ProcessId::new(0), 1);
    wait_for_writes(&mut sim, ProcessId::new(1), 1);
    let value = read_value(&mut sim, ProcessId::new(3), balance);
    println!("after two racing writes, a quorum read returns {value:?}");

    // A client joins the system, is admitted as a participant and uses the
    // register without being a configuration member.
    let client = ProcessId::new(9);
    sim.add_process_with_id(
        client,
        SharedMemNode::new_joiner(client, NodeConfig::for_n(16)),
    );
    let rounds = sim.run_until(800, |s| {
        s.process(client).unwrap().reconfig().is_participant()
    });
    println!("client p9 admitted as a participant after {rounds} rounds");
    sim.process_mut(client).unwrap().submit_write(balance, 400);
    wait_for_writes(&mut sim, client, 1);
    println!("client write committed: balance := 400");

    // A delicate reconfiguration removes p3 from the configuration; the
    // register value survives into the new configuration.
    let target = config_set(0..3);
    sim.process_mut(ProcessId::new(0))
        .unwrap()
        .reconfig_mut()
        .request_reconfiguration(target.clone());
    let rounds = sim.run_until(1500, |s| {
        s.active_ids()
            .iter()
            .all(|id| s.process(*id).unwrap().reconfig().installed_config() == Some(target.clone()))
    });
    println!("delicate reconfiguration onto {{p0,p1,p2}} completed after {rounds} rounds");
    sim.run_rounds(60);

    let value = read_value(&mut sim, ProcessId::new(2), balance);
    println!("after the reconfiguration the register still reads {value:?}");
    assert_eq!(value, Some(400));

    let aborted: u64 = sim
        .active_ids()
        .iter()
        .map(|id| sim.process(*id).unwrap().ops_aborted())
        .sum();
    println!(
        "operations aborted by the (suspending) reconfiguration: {aborted}; total messages sent: {}",
        sim.metrics().messages_sent()
    );
}

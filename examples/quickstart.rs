//! Quickstart: bring up five processors with no agreed configuration, let the
//! self-stabilizing reconfiguration scheme converge them onto one, then
//! perform a delicate reconfiguration.
//!
//! Run with: `cargo run --example quickstart`

use selfstab_reconfig::reconfiguration::{config_set, NodeConfig, ReconfigNode};
use selfstab_reconfig::sim::{ProcessId, SimConfig, Simulation};

fn main() {
    // Five processors boot in an arbitrary state: they consider themselves
    // participants but hold no configuration (config = ⊥).
    let mut sim = Simulation::new(
        SimConfig::default()
            .with_seed(42)
            .with_loss_probability(0.05)
            .with_max_delay(1),
    );
    for i in 0..5u32 {
        let id = ProcessId::new(i);
        sim.add_process_with_id(id, ReconfigNode::new_participant(id, NodeConfig::for_n(16)));
    }

    let rounds = sim.run_until(500, |s| {
        s.active_ids().iter().all(|id| {
            let node = s.process(*id).unwrap();
            node.installed_config() == Some(config_set(0..5)) && node.no_reconfiguration()
        })
    });
    println!("brute-force bootstrap: converged to {{p0..p4}} after {rounds} rounds");

    // A member asks to replace the configuration with a smaller one — the
    // delicate (three-phase) replacement installs it everywhere without any
    // brute-force reset.
    let target = config_set([0, 1, 2]);
    let accepted = sim
        .process_mut(ProcessId::new(0))
        .unwrap()
        .request_reconfiguration(target.clone());
    println!("estab({{p0,p1,p2}}) accepted: {accepted}");
    let rounds = sim.run_until(500, |s| {
        s.active_ids()
            .iter()
            .all(|id| s.process(*id).unwrap().installed_config() == Some(target.clone()))
    });
    println!("delicate replacement completed after {rounds} more rounds");

    // A new processor joins through the joining mechanism.
    let joiner = ProcessId::new(9);
    sim.add_process_with_id(
        joiner,
        ReconfigNode::new_joiner(joiner, NodeConfig::for_n(16)),
    );
    let rounds = sim.run_until(500, |s| {
        s.process(joiner)
            .map(|p| p.is_participant())
            .unwrap_or(false)
    });
    println!("joiner p9 became a participant after {rounds} rounds");
    println!(
        "final configuration: {:?}, total messages sent: {}",
        sim.process(joiner).unwrap().installed_config().unwrap(),
        sim.metrics().messages_sent()
    );
}

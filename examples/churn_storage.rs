//! A reconfigurable replicated key–value store under churn: members crash,
//! the coordinator reconfigures, and the virtually synchronous SMR keeps the
//! store consistent throughout.
//!
//! Run with: `cargo run --example churn_storage`

use selfstab_reconfig::reconfiguration::{config_set, NodeConfig};
use selfstab_reconfig::replication::SmrNode;
use selfstab_reconfig::sim::{ProcessId, SimConfig, Simulation};

fn main() {
    let initial = config_set(0..4);
    let mut sim: Simulation<SmrNode> =
        Simulation::new(SimConfig::default().with_seed(3).with_max_delay(0));
    for i in 0..4u32 {
        let id = ProcessId::new(i);
        sim.add_process_with_id(
            id,
            SmrNode::new_member(id, initial.clone(), NodeConfig::for_n(16)),
        );
    }

    // Wait for the first view.
    let rounds = sim.run_until(600, |s| {
        s.active_ids()
            .iter()
            .all(|id| s.process(*id).unwrap().view().is_some())
    });
    println!("first view installed after {rounds} rounds");

    // Store some data through different replicas.
    sim.process_mut(ProcessId::new(1))
        .unwrap()
        .submit_write(100, 1);
    sim.process_mut(ProcessId::new(2))
        .unwrap()
        .submit_write(200, 2);
    sim.run_until(600, |s| {
        s.active_ids().iter().all(|id| {
            let n = s.process(*id).unwrap();
            n.read_register(100) == Some(1) && n.read_register(200) == Some(2)
        })
    });
    println!("writes to registers 100 and 200 replicated everywhere");

    // A member crashes; the coordinator reconfigures onto the survivors.
    sim.crash(ProcessId::new(3));
    sim.run_rounds(120);
    if let Some(crd) = sim
        .active_ids()
        .into_iter()
        .find(|id| sim.process(*id).unwrap().is_coordinator())
    {
        sim.process_mut(crd)
            .unwrap()
            .request_coordinator_reconfiguration();
        println!("coordinator {crd} asked for a delicate reconfiguration");
    }
    let rounds = sim.run_until(1500, |s| {
        s.active_ids().iter().all(|id| {
            s.process(*id).unwrap().reconfig().installed_config() == Some(config_set(0..3))
        })
    });
    println!("configuration shrank to the survivors after {rounds} rounds");

    // The store survived, and keeps accepting writes.
    sim.run_rounds(100);
    sim.process_mut(ProcessId::new(0))
        .unwrap()
        .submit_write(300, 3);
    sim.run_until(600, |s| {
        s.active_ids()
            .iter()
            .all(|id| s.process(*id).unwrap().read_register(300) == Some(3))
    });
    for id in sim.active_ids() {
        let n = sim.process(id).unwrap();
        println!(
            "{id}: reg100={:?} reg200={:?} reg300={:?} views_installed={}",
            n.read_register(100),
            n.read_register(200),
            n.read_register(300),
            n.views_installed()
        );
    }
}

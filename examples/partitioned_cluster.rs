//! A network partition splits the system into two halves; each half keeps
//! running with whatever it can see, and after the heal the self-stabilizing
//! reconfiguration scheme merges the halves back onto a single conflict-free
//! configuration — the kind of transient fault the paper's brute-force
//! technique exists for.
//!
//! Run with: `cargo run --example partitioned_cluster`

use std::collections::BTreeSet;

use selfstab_reconfig::reconfiguration::{config_set, ConfigSet, NodeConfig, ReconfigNode};
use selfstab_reconfig::sim::{PartitionPlan, ProcessId, Round, SimConfig, Simulation};

fn configurations(sim: &Simulation<ReconfigNode>) -> BTreeSet<ConfigSet> {
    sim.active_ids()
        .iter()
        .filter_map(|id| sim.process(*id).unwrap().installed_config())
        .collect()
}

fn main() {
    let cfg = config_set(0..6);
    let mut sim = Simulation::new(SimConfig::default().with_seed(23).with_max_delay(0));
    for i in 0..6u32 {
        let id = ProcessId::new(i);
        sim.add_process_with_id(
            id,
            ReconfigNode::new_with_config(id, cfg.clone(), NodeConfig::for_n(16)),
        );
    }
    sim.run_rounds(60);
    println!("steady state: every processor holds the configuration {{p0..p5}}");

    // The partition starts at round 70 and heals at round 420.
    let left: Vec<ProcessId> = (0..3).map(ProcessId::new).collect();
    let right: Vec<ProcessId> = (3..6).map(ProcessId::new).collect();
    let plan = PartitionPlan::new()
        .split_at(Round::new(70), vec![left, right])
        .heal_at(Round::new(420));

    sim.run_rounds_with(340, |s| {
        let now = s.now();
        plan.apply(s, now);
    });
    let during = configurations(&sim);
    println!(
        "during the partition the halves hold {} distinct configuration value(s)",
        during.len()
    );

    sim.run_rounds_with(100, |s| {
        let now = s.now();
        plan.apply(s, now);
    });
    println!("partition healed; waiting for the scheme to re-merge the halves…");

    let rounds = sim.run_until(3000, |s| {
        configurations(s).len() == 1
            && s.active_ids()
                .iter()
                .all(|id| s.process(*id).unwrap().no_reconfiguration())
    });
    let final_config = configurations(&sim).into_iter().next().unwrap();
    println!(
        "re-converged {rounds} rounds after the heal onto a single configuration of {} processors",
        final_config.len()
    );
    println!(
        "brute-force resets started across the system: {}",
        sim.active_ids()
            .iter()
            .map(|id| sim.process(*id).unwrap().resets_started())
            .sum::<u64>()
    );
    assert_eq!(configurations(&sim).len(), 1);
}

//! Transient-fault recovery: corrupt configurations and notifications, then
//! watch the brute-force stabilization repair the system (Experiment E1 of
//! EXPERIMENTS.md, run interactively).
//!
//! Run with: `cargo run --example transient_recovery`

use selfstab_reconfig::reconfiguration::{
    config_set, ConfigValue, NodeConfig, Notification, Phase, ReconfigNode,
};
use selfstab_reconfig::sim::{ProcessId, SimConfig, Simulation};

fn main() {
    let n = 6u32;
    let mut sim = Simulation::new(SimConfig::default().with_seed(7).with_max_delay(0));
    for i in 0..n {
        let id = ProcessId::new(i);
        sim.add_process_with_id(
            id,
            ReconfigNode::new_with_config(id, config_set(0..n), NodeConfig::for_n(16)),
        );
    }
    sim.run_rounds(40);
    println!(
        "steady state reached: {:?}",
        sim.process(ProcessId::new(0)).unwrap().installed_config()
    );

    // Transient faults: conflicting configurations and a phase-0 notification
    // carrying a proposal.
    sim.process_mut(ProcessId::new(0))
        .unwrap()
        .recsa_mut()
        .corrupt_config(ProcessId::new(0), ConfigValue::Set(config_set([0, 1])));
    sim.process_mut(ProcessId::new(3))
        .unwrap()
        .recsa_mut()
        .corrupt_config(ProcessId::new(3), ConfigValue::Set(config_set([3, 4, 5])));
    sim.process_mut(ProcessId::new(4))
        .unwrap()
        .recsa_mut()
        .corrupt_notification(
            ProcessId::new(4),
            Notification {
                phase: Phase::Zero,
                set: Some(config_set([9])),
            },
        );
    println!("injected conflicting configurations and a stale notification");

    let rounds = sim.run_until(600, |s| {
        s.active_ids().iter().all(|id| {
            let node = s.process(*id).unwrap();
            node.installed_config() == Some(config_set(0..n)) && node.no_reconfiguration()
        })
    });
    println!("recovered to a single conflict-free configuration after {rounds} rounds");

    let resets: u64 = sim
        .active_ids()
        .iter()
        .map(|id| sim.process(*id).unwrap().resets_started())
        .sum();
    println!("brute-force resets started across the system: {resets}");
}

//! # selfstab-reconfig — façade crate
//!
//! One-stop re-export of the workspace implementing *Self-Stabilizing
//! Reconfiguration* (Dolev, Georgiou, Marcoullis, Schiller; MIDDLEWARE 2016):
//!
//! * [`sim`] — the deterministic simulation of the paper's system model;
//! * [`link`] — token-exchange and snap-stabilizing data links;
//! * [`fd`] — the `(N,Θ)`-failure detector;
//! * [`reconfiguration`] — the core contribution: recSA, recMA and the
//!   joining mechanism;
//! * [`labeling`] — the bounded epoch-label scheme;
//! * [`counting`] — the practically-unbounded counter service;
//! * [`replication`] — virtually synchronous SMR and the MWMR register
//!   emulation.
//!
//! See `README.md` for a guided tour and `examples/` for runnable scenarios.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The simulation substrate (re-export of the `simnet` crate).
pub use simnet as sim;

/// Link-layer protocols (re-export of the `datalink` crate).
pub use datalink as link;

/// The `(N,Θ)`-failure detector (re-export of the `failure-detector` crate).
pub use failure_detector as fd;

/// The self-stabilizing reconfiguration scheme (re-export of the `reconfig`
/// crate).
pub use reconfig as reconfiguration;

/// The bounded labeling scheme (re-export of the `labels` crate).
pub use labels as labeling;

/// The counter increment service (re-export of the `counters` crate).
pub use counters as counting;

/// Virtual synchrony, SMR and shared memory (re-export of the `vssmr` crate).
pub use vssmr as replication;

/// The quorum-based MWMR shared-memory emulation (re-export of the
/// `sharedmem` crate).
pub use sharedmem as shared_memory;

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_are_wired() {
        let id = crate::sim::ProcessId::new(1);
        assert_eq!(id.as_u32(), 1);
        let cfg = crate::reconfiguration::config_set([0, 1, 2]);
        assert_eq!(cfg.len(), 3);
    }
}

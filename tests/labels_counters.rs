//! E6/E7 — the bounded labeling scheme and the counter increment service.
//!
//! Theorem 4.4: configuration members converge to a global maximal label
//! with a bounded number of label creations, and labels of non-members are
//! voided after a reconfiguration. Theorem 4.6: completed counter increments
//! are totally ordered and monotone, even across concurrent increments and
//! label exhaustion.

use std::collections::{BTreeMap, VecDeque};

use counters::{Counter, CounterMsg, CounterNode, IncrementOutcome};
use labels::{Label, LabelPair, Labeler, LabelerMsg};
use reconfig::{config_set, ConfigSet};
use simnet::ProcessId;

// ---------------------------------------------------------------------------
// Small synchronous message pumps (the labeling and counter layers are plain
// state machines; the full asynchronous composition is exercised by the
// shared-memory and VS-SMR integration tests).
// ---------------------------------------------------------------------------

fn pump_labelers(labelers: &mut BTreeMap<ProcessId, Labeler>, rounds: usize) {
    for _ in 0..rounds {
        let ids: Vec<ProcessId> = labelers.keys().copied().collect();
        let mut in_flight: Vec<(ProcessId, ProcessId, LabelerMsg)> = Vec::new();
        for id in &ids {
            for (to, msg) in labelers.get_mut(id).unwrap().step() {
                in_flight.push((*id, to, msg));
            }
        }
        for (from, to, msg) in in_flight {
            if let Some(l) = labelers.get_mut(&to) {
                l.on_message(from, msg);
            }
        }
    }
}

fn pump_counters(nodes: &mut BTreeMap<ProcessId, CounterNode>, rounds: usize) {
    for _ in 0..rounds {
        let ids: Vec<ProcessId> = nodes.keys().copied().collect();
        let mut queue: VecDeque<(ProcessId, ProcessId, CounterMsg)> = VecDeque::new();
        for id in &ids {
            for (to, msg) in nodes.get_mut(id).unwrap().step() {
                queue.push_back((*id, to, msg));
            }
        }
        while let Some((from, to, msg)) = queue.pop_front() {
            if let Some(n) = nodes.get_mut(&to) {
                for (next_to, reply) in n.on_message(from, msg) {
                    queue.push_back((to, next_to, reply));
                }
            }
        }
    }
}

fn label_members(cfg: &ConfigSet) -> BTreeMap<ProcessId, Labeler> {
    cfg.iter()
        .map(|id| (*id, Labeler::new(*id, cfg.clone())))
        .collect()
}

fn counter_members(cfg: &ConfigSet, bound: u64) -> BTreeMap<ProcessId, CounterNode> {
    cfg.iter()
        .map(|id| {
            (
                *id,
                CounterNode::new(*id, cfg.clone()).with_exhaustion_bound(bound),
            )
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Labels (E6)
// ---------------------------------------------------------------------------

/// All members converge onto one maximal label from a clean start.
#[test]
fn members_agree_on_a_maximal_label() {
    let cfg = config_set(0..5);
    let mut labelers = label_members(&cfg);
    pump_labelers(&mut labelers, 20);
    let maxima: Vec<Label> = labelers
        .values()
        .map(|l| l.local_max().expect("every member holds a maximum"))
        .collect();
    for pair in maxima.windows(2) {
        assert_eq!(pair[0], pair[1], "members disagree on the maximal label");
    }
}

/// Convergence also holds when members start with corrupted `max[]` entries
/// referring to each other, and the number of labels created on the way is
/// far below the paper's O(N(N²+m)) worst-case bound.
#[test]
fn corrupted_label_state_converges_with_bounded_creations() {
    let cfg = config_set(0..4);
    let mut labelers = label_members(&cfg);
    // Transient fault: p0 believes p2's maximal label is one that p3 created
    // and p1 holds a cancelled pair.
    let fake = Label::genesis(ProcessId::new(3));
    labelers
        .get_mut(&ProcessId::new(0))
        .unwrap()
        .corrupt_max(ProcessId::new(2), LabelPair::legit(fake.clone()));
    let mut cancelled = LabelPair::legit(Label::genesis(ProcessId::new(1)));
    cancelled.cancel(fake);
    labelers
        .get_mut(&ProcessId::new(1))
        .unwrap()
        .corrupt_max(ProcessId::new(1), cancelled);

    pump_labelers(&mut labelers, 40);
    let maxima: Vec<Label> = labelers
        .values()
        .map(|l| l.local_max().expect("every member holds a maximum"))
        .collect();
    for pair in maxima.windows(2) {
        assert_eq!(pair[0], pair[1]);
    }
    let creations: u64 = labelers.values().map(Labeler::label_creations).sum();
    let n = cfg.len() as u64;
    assert!(
        creations <= n * n * (n + 1),
        "label creations {creations} exceed the analytic bound"
    );
}

/// After a reconfiguration, labels created by processors that left the
/// configuration are voided and the surviving members converge again
/// (Lemma 4.1).
#[test]
fn labels_of_removed_members_are_voided_after_reconfiguration() {
    let old_cfg = config_set(0..4);
    let mut labelers = label_members(&old_cfg);
    pump_labelers(&mut labelers, 20);

    // p3 leaves; the rest adopt the new configuration.
    let new_cfg = config_set(0..3);
    labelers.remove(&ProcessId::new(3));
    for l in labelers.values_mut() {
        l.on_config_change(new_cfg.clone());
    }
    pump_labelers(&mut labelers, 30);
    for l in labelers.values() {
        let max = l.local_max().expect("survivors still hold a maximum");
        assert!(
            new_cfg.contains(&max.creator),
            "a voided creator {:?} still owns the maximal label",
            max.creator
        );
    }
}

/// A member creating a fresh label mid-execution (e.g. after recovering from
/// a cancellation) does not break agreement: the members re-converge onto a
/// single maximal label.
#[test]
fn fresh_label_creation_reconverges() {
    let cfg = config_set(0..3);
    let mut labelers = label_members(&cfg);
    pump_labelers(&mut labelers, 10);
    let creations_before: u64 = labelers.values().map(Labeler::label_creations).sum();
    let fresh = labelers
        .get_mut(&ProcessId::new(1))
        .unwrap()
        .create_next_label()
        .expect("members can always create a label");
    assert_eq!(fresh.creator, ProcessId::new(1));
    pump_labelers(&mut labelers, 30);
    let maxima: Vec<Label> = labelers
        .values()
        .map(|l| l.local_max().expect("every member holds a maximum"))
        .collect();
    for pair in maxima.windows(2) {
        assert_eq!(pair[0], pair[1], "members failed to re-converge");
    }
    let creations_after: u64 = labelers.values().map(Labeler::label_creations).sum();
    assert!(creations_after > creations_before);
}

// ---------------------------------------------------------------------------
// Counters (E7)
// ---------------------------------------------------------------------------

fn committed(outcomes: Vec<IncrementOutcome>) -> Vec<Counter> {
    outcomes
        .into_iter()
        .filter_map(|o| match o {
            IncrementOutcome::Committed(c) => Some(c),
            IncrementOutcome::Aborted => None,
        })
        .collect()
}

/// Sequential increments by one member yield strictly increasing counters.
#[test]
fn sequential_increments_are_strictly_monotone() {
    let cfg = config_set(0..3);
    let mut nodes = counter_members(&cfg, 1 << 20);
    pump_counters(&mut nodes, 10);

    let incrementer = ProcessId::new(0);
    let mut history: Vec<Counter> = Vec::new();
    for _ in 0..8 {
        let requests = nodes.get_mut(&incrementer).unwrap().request_increment();
        let mut queue: VecDeque<(ProcessId, ProcessId, CounterMsg)> = requests
            .into_iter()
            .map(|(to, msg)| (incrementer, to, msg))
            .collect();
        while let Some((from, to, msg)) = queue.pop_front() {
            if let Some(n) = nodes.get_mut(&to) {
                for (next_to, reply) in n.on_message(from, msg) {
                    queue.push_back((to, next_to, reply));
                }
            }
        }
        pump_counters(&mut nodes, 2);
        history.extend(committed(
            nodes.get_mut(&incrementer).unwrap().take_completed(),
        ));
    }
    assert!(history.len() >= 6, "most increments should commit");
    for pair in history.windows(2) {
        assert!(
            pair[0].ct_less(&pair[1]),
            "counter went backwards: {pair:?}"
        );
    }
}

/// Concurrent increments by different members still commit totally ordered
/// values: when both read the same maximum, the writer identifier breaks the
/// tie and the gossip of Algorithm 4.3 settles every member on one maximum.
#[test]
fn concurrent_increments_are_totally_ordered() {
    let cfg = config_set(0..3);
    let mut nodes = counter_members(&cfg, 1 << 20);
    pump_counters(&mut nodes, 10);

    // Both p0 and p1 start an increment before any message is exchanged.
    let mut queue: VecDeque<(ProcessId, ProcessId, CounterMsg)> = VecDeque::new();
    for origin in [ProcessId::new(0), ProcessId::new(1)] {
        for (to, msg) in nodes.get_mut(&origin).unwrap().request_increment() {
            queue.push_back((origin, to, msg));
        }
    }
    while let Some((from, to, msg)) = queue.pop_front() {
        if let Some(n) = nodes.get_mut(&to) {
            for (next_to, reply) in n.on_message(from, msg) {
                queue.push_back((to, next_to, reply));
            }
        }
    }
    pump_counters(&mut nodes, 5);

    let mut all: Vec<Counter> = Vec::new();
    for node in nodes.values_mut() {
        all.extend(committed(node.take_completed()));
    }
    assert!(
        !all.is_empty(),
        "at least one concurrent increment must commit"
    );
    // All committed counters are pairwise ordered (no two are equal).
    for i in 0..all.len() {
        for j in (i + 1)..all.len() {
            assert!(
                all[i].ct_less(&all[j]) || all[j].ct_less(&all[i]),
                "two committed counters are incomparable or equal: {:?} {:?}",
                all[i],
                all[j]
            );
        }
    }
    // The members converge on a single maximal counter.
    pump_counters(&mut nodes, 10);
    let maxima: Vec<Counter> = nodes
        .values()
        .filter_map(|n| n.max_counter().cloned())
        .collect();
    for pair in maxima.windows(2) {
        assert_eq!(pair[0], pair[1], "members disagree on the maximal counter");
    }
}

/// Exhausting the sequence number forces a label rollover and increments keep
/// committing with strictly greater counters (Theorem 4.6 across epochs).
#[test]
fn exhaustion_rolls_over_to_a_new_epoch_label() {
    let cfg = config_set(0..3);
    // A tiny exhaustion bound forces the rollover almost immediately.
    let mut nodes = counter_members(&cfg, 3);
    pump_counters(&mut nodes, 10);

    let incrementer = ProcessId::new(2);
    let mut history: Vec<Counter> = Vec::new();
    for _ in 0..10 {
        let requests = nodes.get_mut(&incrementer).unwrap().request_increment();
        let mut queue: VecDeque<(ProcessId, ProcessId, CounterMsg)> = requests
            .into_iter()
            .map(|(to, msg)| (incrementer, to, msg))
            .collect();
        while let Some((from, to, msg)) = queue.pop_front() {
            if let Some(n) = nodes.get_mut(&to) {
                for (next_to, reply) in n.on_message(from, msg) {
                    queue.push_back((to, next_to, reply));
                }
            }
        }
        pump_counters(&mut nodes, 2);
        history.extend(committed(
            nodes.get_mut(&incrementer).unwrap().take_completed(),
        ));
    }
    assert!(history.len() >= 6);
    for pair in history.windows(2) {
        assert!(
            pair[0].ct_less(&pair[1]),
            "counter went backwards across epochs"
        );
    }
    let labels_used: std::collections::BTreeSet<Label> =
        history.iter().map(|c| c.label.clone()).collect();
    assert!(
        labels_used.len() >= 2,
        "the tiny exhaustion bound must have forced at least one rollover"
    );
}

/// While the owner reports a reconfiguration in progress, increments abort
/// instead of committing (the counter service is suspending).
#[test]
fn increments_abort_during_reconfiguration() {
    let cfg = config_set(0..3);
    let mut nodes = counter_members(&cfg, 1 << 20);
    pump_counters(&mut nodes, 10);
    for node in nodes.values_mut() {
        node.set_reconfiguring(true);
    }
    let incrementer = ProcessId::new(0);
    let requests = nodes.get_mut(&incrementer).unwrap().request_increment();
    let mut queue: VecDeque<(ProcessId, ProcessId, CounterMsg)> = requests
        .into_iter()
        .map(|(to, msg)| (incrementer, to, msg))
        .collect();
    while let Some((from, to, msg)) = queue.pop_front() {
        if let Some(n) = nodes.get_mut(&to) {
            for (next_to, reply) in n.on_message(from, msg) {
                queue.push_back((to, next_to, reply));
            }
        }
    }
    let outcomes = nodes.get_mut(&incrementer).unwrap().take_completed();
    assert!(
        outcomes
            .iter()
            .all(|o| matches!(o, IncrementOutcome::Aborted)),
        "increments must abort while reconfiguring: {outcomes:?}"
    );
    // Once the reconfiguration ends, increments commit again.
    for node in nodes.values_mut() {
        node.set_reconfiguring(false);
    }
    let requests = nodes.get_mut(&incrementer).unwrap().request_increment();
    let mut queue: VecDeque<(ProcessId, ProcessId, CounterMsg)> = requests
        .into_iter()
        .map(|(to, msg)| (incrementer, to, msg))
        .collect();
    while let Some((from, to, msg)) = queue.pop_front() {
        if let Some(n) = nodes.get_mut(&to) {
            for (next_to, reply) in n.on_message(from, msg) {
                queue.push_back((to, next_to, reply));
            }
        }
    }
    let outcomes = nodes.get_mut(&incrementer).unwrap().take_completed();
    assert!(outcomes
        .iter()
        .any(|o| matches!(o, IncrementOutcome::Committed(_))));
}

/// A configuration change rebuilds the counter structures for the new member
/// set and the service keeps going.
#[test]
fn counter_service_survives_a_configuration_change() {
    let old_cfg = config_set(0..4);
    let mut nodes = counter_members(&old_cfg, 1 << 20);
    pump_counters(&mut nodes, 10);

    // Commit one increment under the old configuration.
    let incrementer = ProcessId::new(0);
    let requests = nodes.get_mut(&incrementer).unwrap().request_increment();
    let mut queue: VecDeque<(ProcessId, ProcessId, CounterMsg)> = requests
        .into_iter()
        .map(|(to, msg)| (incrementer, to, msg))
        .collect();
    while let Some((from, to, msg)) = queue.pop_front() {
        if let Some(n) = nodes.get_mut(&to) {
            for (next_to, reply) in n.on_message(from, msg) {
                queue.push_back((to, next_to, reply));
            }
        }
    }
    let first = committed(nodes.get_mut(&incrementer).unwrap().take_completed());
    assert_eq!(first.len(), 1);

    // Reconfigure to {0,1,2}: p3 is removed.
    let new_cfg = config_set(0..3);
    nodes.remove(&ProcessId::new(3));
    for node in nodes.values_mut() {
        node.on_config_change(new_cfg.clone());
    }
    pump_counters(&mut nodes, 10);

    // Increments keep committing under the new configuration.
    let requests = nodes.get_mut(&incrementer).unwrap().request_increment();
    let mut queue: VecDeque<(ProcessId, ProcessId, CounterMsg)> = requests
        .into_iter()
        .map(|(to, msg)| (incrementer, to, msg))
        .collect();
    while let Some((from, to, msg)) = queue.pop_front() {
        if let Some(n) = nodes.get_mut(&to) {
            for (next_to, reply) in n.on_message(from, msg) {
                queue.push_back((to, next_to, reply));
            }
        }
    }
    let second = committed(nodes.get_mut(&incrementer).unwrap().take_completed());
    assert_eq!(
        second.len(),
        1,
        "increments must work in the new configuration"
    );
}

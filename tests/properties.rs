//! Cross-crate property-based tests.
//!
//! Randomised, seed-driven variants of the main theorems: convergence of the
//! reconfiguration scheme from randomly corrupted states, monotonicity of the
//! register emulation under random operation schedules, and agreement of the
//! full stack under random crash patterns. The simulations are deterministic
//! per seed, so every counterexample proptest finds is replayable.

use std::collections::BTreeSet;

use proptest::prelude::*;
use reconfig::{config_set, ConfigSet, ConfigValue, NodeConfig, ReconfigNode};
use sharedmem::{OpOutcome, RegisterId, SharedMemNode};
use simnet::{ProcessId, SimConfig, Simulation};

fn converged_config(sim: &Simulation<ReconfigNode>) -> Option<ConfigSet> {
    let mut configs = BTreeSet::new();
    for id in sim.active_ids() {
        match sim.process(id).and_then(|p| p.installed_config()) {
            Some(c) => {
                configs.insert(c);
            }
            None => return None,
        }
    }
    if configs.len() == 1 {
        configs.into_iter().next()
    } else {
        None
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        .. ProptestConfig::default()
    })]

    /// Theorem 3.15 (randomised): whatever subset of processors gets its
    /// configuration corrupted to whatever subsets, the system converges to
    /// a single configuration and becomes calm.
    #[test]
    fn convergence_from_random_configuration_corruption(
        seed in 0u64..10_000,
        n in 3u32..6,
        corruptions in proptest::collection::vec((0u32..6, proptest::collection::btree_set(0u32..8, 1..4)), 1..4),
    ) {
        let cfg = config_set(0..n);
        let mut sim = Simulation::new(SimConfig::default().with_seed(seed).with_max_delay(0));
        for i in 0..n {
            let id = ProcessId::new(i);
            sim.add_process_with_id(
                id,
                ReconfigNode::new_with_config(id, cfg.clone(), NodeConfig::for_n(16)),
            );
        }
        sim.run_rounds(60);
        for (victim, corrupt_set) in corruptions {
            let victim = ProcessId::new(victim % n);
            let corrupt: ConfigSet = corrupt_set.into_iter().map(ProcessId::new).collect();
            sim.process_mut(victim)
                .unwrap()
                .recsa_mut()
                .corrupt_config(victim, ConfigValue::Set(corrupt));
        }
        let rounds = sim.run_until(2500, |s| {
            converged_config(s).is_some()
                && s.active_ids().iter().all(|id| s.process(*id).unwrap().no_reconfiguration())
        });
        prop_assert!(rounds < 2500, "no convergence after random corruption");
        // Conflict-freedom: one configuration, shared by everyone.
        let cfg = converged_config(&sim);
        prop_assert!(cfg.is_some());
    }

    /// The full stack under a random crash pattern that keeps a majority
    /// alive: the survivors agree on a configuration containing a live
    /// majority.
    #[test]
    fn random_minority_crashes_preserve_agreement(
        seed in 0u64..10_000,
        crash_mask in proptest::collection::vec(any::<bool>(), 5),
    ) {
        let n = 5u32;
        let mut sim = Simulation::new(SimConfig::default().with_seed(seed).with_max_delay(0));
        for i in 0..n {
            let id = ProcessId::new(i);
            sim.add_process_with_id(
                id,
                ReconfigNode::new_with_config(id, config_set(0..n), NodeConfig::for_n(16)),
            );
        }
        sim.run_rounds(60);
        // Crash at most a minority (first two `true` entries).
        let mut crashed = 0;
        for (i, crash) in crash_mask.iter().enumerate() {
            if *crash && crashed < 2 {
                sim.crash(ProcessId::new(i as u32));
                crashed += 1;
            }
        }
        sim.run_rounds(300);
        let cfg = converged_config(&sim);
        prop_assert!(cfg.is_some(), "survivors lost agreement");
        let active: BTreeSet<ProcessId> = sim.active_ids().into_iter().collect();
        let cfg = cfg.unwrap();
        let live = cfg.iter().filter(|m| active.contains(m)).count();
        prop_assert!(live > cfg.len() / 2, "no live majority in {cfg:?}");
    }

    /// Register monotonicity under random write schedules: a read that starts
    /// after the k-th write committed never returns a value written earlier
    /// than the k-th write.
    #[test]
    fn register_reads_are_monotone_under_random_schedules(
        seed in 0u64..10_000,
        writers in proptest::collection::vec(0u32..3, 2..6),
    ) {
        let cfg = config_set(0..3);
        let mut sim = Simulation::new(SimConfig::default().with_seed(seed).with_max_delay(0));
        for i in 0..3u32 {
            let id = ProcessId::new(i);
            sim.add_process_with_id(
                id,
                SharedMemNode::new_member(id, cfg.clone(), NodeConfig::for_n(16)),
            );
        }
        sim.run_rounds(40);
        let key = RegisterId::new(1);
        let reader = ProcessId::new(2);
        for (k, writer) in writers.iter().enumerate() {
            let writer = ProcessId::new(*writer);
            let value = (k as u64 + 1) * 10;
            let before = sim.process(writer).unwrap().writes_committed();
            sim.process_mut(writer).unwrap().submit_write(key, value);
            let rounds = sim.run_until(400, |s| s.process(writer).unwrap().writes_committed() > before);
            prop_assert!(rounds < 400, "write {value} never committed");
            let committed_writes = value;

            sim.process_mut(reader).unwrap().submit_read(key);
            let target = k as u64 + 1;
            let rounds = sim.run_until(400, |s| s.process(reader).unwrap().reads_committed() >= target);
            prop_assert!(rounds < 400, "read after write {value} never committed");
            let outcomes = sim.process_mut(reader).unwrap().take_completed();
            let read_value = outcomes.iter().find_map(|o| match o {
                OpOutcome::ReadCommitted { value, .. } => Some(value.unwrap_or(0)),
                _ => None,
            }).unwrap_or(0);
            prop_assert!(
                read_value >= committed_writes,
                "read returned {read_value} after write {committed_writes} committed"
            );
        }
    }
}

//! The parallel campaign driver on the real protocol stacks.
//!
//! The tentpole contract: a campaign executed on the `simnet::exec`
//! work-stealing pool must be **observably indistinguishable** from the
//! serial loop. Cells derive every random draw from their own (scenario,
//! seed) pair and the driver reassembles the records in enumeration order,
//! so the rendered report must be byte-identical at any `--jobs` count —
//! for every catalog scenario, every composite node type, and any shard
//! partitioning the pool happens to pick at runtime. These tests assert
//! exactly that, plus the `Send`-safety the cells rely on.

use proptest::prelude::*;
use selfstab_reconfig::counting::CounterNode;
use selfstab_reconfig::reconfiguration::ReconfigNode;
use selfstab_reconfig::replication::SmrNode;
use selfstab_reconfig::shared_memory::SharedMemNode;
use selfstab_reconfig::sim::plan::FaultPlan;
use selfstab_reconfig::sim::scenario::{catalog, find, ScenarioTarget};
use selfstab_reconfig::sim::{
    Arrival, Campaign, LoadProfile, RunRecord, Scenario, SchedulerMode, Simulation,
};

/// Renders the full catalog campaign for one node type at one jobs count.
/// Event mode only: the modes dimension is orthogonal to the jobs
/// dimension (each cell runs its modes *inside* one worker) and one mode
/// keeps the sweep cheap.
fn catalog_render<T: ScenarioTarget>(jobs: usize) -> String {
    Campaign::new("parallel-identity")
        .with_seeds([1, 2])
        .with_modes([SchedulerMode::EventDriven])
        .with_jobs(jobs)
        .run::<T>(&catalog(4))
        .render()
}

/// The satellite property, per node type: for every catalog scenario, the
/// parallel report at jobs ∈ {2, 4, 8} is byte-identical to the serial
/// (jobs = 1) report.
fn assert_catalog_parallel_identity<T: ScenarioTarget>() {
    let serial = catalog_render::<T>(1);
    for jobs in [2usize, 4, 8] {
        assert_eq!(
            catalog_render::<T>(jobs),
            serial,
            "{}: catalog report diverged from serial at jobs={jobs}",
            T::NAME
        );
    }
}

#[test]
fn reconfig_catalog_is_byte_identical_across_jobs_counts() {
    assert_catalog_parallel_identity::<ReconfigNode>();
}

#[test]
fn counter_catalog_is_byte_identical_across_jobs_counts() {
    assert_catalog_parallel_identity::<CounterNode>();
}

#[test]
fn smr_catalog_is_byte_identical_across_jobs_counts() {
    assert_catalog_parallel_identity::<SmrNode>();
}

#[test]
fn sharedmem_catalog_is_byte_identical_across_jobs_counts() {
    assert_catalog_parallel_identity::<SharedMemNode>();
}

/// Shard partitioning must never leak into `CampaignReport::runs` order:
/// whatever the pool does, the records come back scenario-major,
/// seed-minor — the serial enumeration order.
#[test]
fn parallel_runs_keep_enumeration_order() {
    let scenarios = catalog(4);
    let seeds = [1u64, 2, 3];
    let report = Campaign::new("order")
        .with_seeds(seeds)
        .with_modes([SchedulerMode::EventDriven])
        .with_jobs(8)
        .run::<SharedMemNode>(&scenarios);
    let expected: Vec<(String, u64)> = scenarios
        .iter()
        .flat_map(|s| seeds.iter().map(|&seed| (s.name().to_string(), seed)))
        .collect();
    let actual: Vec<(String, u64)> = report
        .runs
        .iter()
        .map(|r| (r.scenario.clone(), r.seed))
        .collect();
    assert_eq!(actual, expected);
}

/// The modes dimension composes with the jobs dimension: a both-modes
/// campaign (each cell re-runs in round-scan and the engine verifies the
/// executions agree) is still byte-identical across jobs counts.
#[test]
fn both_modes_campaign_is_byte_identical_across_jobs_counts() {
    let scenarios = vec![
        find("partition-churn", 4).unwrap(),
        find("byzantine-storm", 4).unwrap(),
    ];
    let render = |jobs: usize| {
        Campaign::new("modes-x-jobs")
            .with_seeds([1, 2])
            .with_jobs(jobs)
            .run::<ReconfigNode>(&scenarios)
            .render()
    };
    let serial = render(1);
    assert_eq!(render(4), serial);
}

/// Builds fault scenarios armed with an open-loop client population: the
/// load engine replaces the targets' built-in workload, so these cells
/// exercise the Poisson arrival stream, op routing, and the latency
/// counters end to end.
fn loaded_scenarios(arrival: Arrival) -> Vec<Scenario> {
    let load = LoadProfile::new(500, arrival).with_op_timeout(50);
    ["quiescent", "partition-heal", "byzantine-storm"]
        .iter()
        .map(|name| find(name, 4).unwrap().with_load(load.clone()))
        .collect()
}

/// The load engine rides the campaign determinism contract: a loaded
/// campaign under the **default both-modes** configuration (each cell
/// re-runs in event-driven and round-scan and the driver verifies they
/// agree) renders byte-identically across jobs counts — the Poisson
/// arrival stream, op completions, and every latency column included.
/// A re-render from scratch is also identical, so the latency columns
/// are reproducible run over run, not just order-stable.
#[test]
fn loaded_campaign_is_byte_identical_across_modes_and_jobs() {
    let scenarios = loaded_scenarios(Arrival::Poisson { rate: 4.0 });
    let render = |jobs: usize| {
        Campaign::new("loaded-identity")
            .with_seeds([1, 2])
            .with_jobs(jobs)
            .run::<CounterNode>(&scenarios)
            .render()
    };
    let serial = render(1);
    assert_eq!(render(4), serial, "loaded report diverged at jobs=4");
    assert_eq!(
        render(1),
        serial,
        "loaded report not reproducible on re-run"
    );
    assert!(
        serial.contains("op_latency_p99_rounds"),
        "loaded report is missing the latency columns"
    );
}

/// Burst arrivals run the same contract through the other arrival model.
#[test]
fn burst_campaign_is_byte_identical_across_modes_and_jobs() {
    let scenarios = loaded_scenarios(Arrival::Burst {
        size: 20,
        period: 5,
    });
    let render = |jobs: usize| {
        Campaign::new("burst-identity")
            .with_seeds([3])
            .with_jobs(jobs)
            .run::<SmrNode>(&scenarios)
            .render()
    };
    let serial = render(1);
    assert_eq!(render(4), serial);
}

/// The Send-safety layer the cells are built on, asserted at compile time:
/// scenarios (plans included), the composite node types and the records
/// that travel back from the workers.
#[test]
fn cells_are_send_safe() {
    fn assert_send<T: Send>() {}
    assert_send::<Scenario>();
    assert_send::<Box<dyn FaultPlan>>();
    assert_send::<RunRecord>();
    assert_send::<ReconfigNode>();
    assert_send::<CounterNode>();
    assert_send::<SmrNode>();
    assert_send::<SharedMemNode>();
    assert_send::<Simulation<ReconfigNode>>();
    assert_send::<Simulation<SmrNode>>();
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        .. ProptestConfig::default()
    })]

    /// Randomised identity: for arbitrary seed sets and jobs counts the
    /// parallel report matches the serial one byte for byte. Deterministic
    /// per proptest case, so any counterexample is replayable.
    #[test]
    fn parallel_report_matches_serial_for_random_seeds_and_jobs(
        seeds in proptest::collection::vec(1u64..1_000_000, 1..6),
        jobs in 2usize..9,
    ) {
        let scenarios = vec![
            find("partition-heal", 4).unwrap(),
            find("crash-minority", 4).unwrap(),
        ];
        let render = |j: usize| {
            Campaign::new("proptest-jobs")
                .with_seeds(seeds.iter().copied())
                .with_modes([SchedulerMode::EventDriven])
                .with_jobs(j)
                .run::<ReconfigNode>(&scenarios)
                .render()
        };
        prop_assert_eq!(render(jobs), render(1));
    }

    /// Randomised loaded identity: for arbitrary seeds and Poisson rates
    /// the client-population arrival stream — and therefore every latency
    /// column it produces — is byte-identical across scheduler modes
    /// (both-modes cells verify event-driven against round-scan) and
    /// across jobs ∈ {1, 4}.
    #[test]
    fn poisson_stream_is_identical_across_modes_and_jobs(
        seeds in proptest::collection::vec(1u64..1_000_000, 1..4),
        rate in 1u32..12,
    ) {
        let load = LoadProfile::new(200, Arrival::Poisson { rate: rate as f64 })
            .with_op_timeout(40);
        let scenarios = vec![
            find("quiescent", 4).unwrap().with_load(load.clone()),
            find("crash-minority", 4).unwrap().with_load(load),
        ];
        let render = |j: usize| {
            Campaign::new("proptest-load")
                .with_seeds(seeds.iter().copied())
                .with_jobs(j)
                .run::<CounterNode>(&scenarios)
                .render()
        };
        prop_assert_eq!(render(4), render(1));
    }
}

//! Scheduler determinism over the full protocol stack.
//!
//! The event-driven run queue must be an optimization, not a semantic
//! change: for the same seed it has to replay the round-scan baseline's
//! execution byte for byte, and a simulation must be reproducible from its
//! seed in either mode. These tests drive the complete reconfiguration
//! stack (`ReconfigNode`: failure detector + recSA + recMA + joining)
//! rather than a toy process, so the equivalence covers the real message
//! mix of the middleware.

use reconfig::{NodeConfig, ReconfigNode};
use simnet::{ProcessId, SchedulerMode, SimConfig, Simulation};

fn stack_sim(mode: SchedulerMode, seed: u64, n: u32) -> Simulation<ReconfigNode> {
    let cfg = SimConfig::default()
        .with_seed(seed)
        .with_scheduler(mode)
        .with_loss_probability(0.1)
        .with_max_delay(2)
        .with_channel_capacity(8);
    let mut sim = Simulation::new(cfg);
    for i in 0..n {
        let id = ProcessId::new(i);
        sim.add_process_with_id(id, ReconfigNode::new_participant(id, NodeConfig::for_n(16)));
    }
    sim.trace_mut().set_enabled(true);
    sim
}

fn run_and_fingerprint(mut sim: Simulation<ReconfigNode>, rounds: u64) -> (String, String, u64) {
    sim.run_rounds(rounds);
    let trace: String = sim.trace().iter().map(|e| format!("{e:?}\n")).collect();
    let states: String = sim
        .processes()
        .map(|(id, p)| {
            format!(
                "{id}: participant={} config={:?} trusted={:?}\n",
                p.is_participant(),
                p.installed_config(),
                p.trusted()
            )
        })
        .collect();
    (trace, states, sim.metrics().messages_delivered())
}

/// Same seed ⇒ byte-identical trace, before (round-scan) and after
/// (event-driven) the scheduler rewrite.
#[test]
fn event_driven_rewrite_preserves_executions_byte_for_byte() {
    for seed in [1u64, 99, 2024] {
        let scan = run_and_fingerprint(stack_sim(SchedulerMode::RoundScan, seed, 6), 60);
        let event = run_and_fingerprint(stack_sim(SchedulerMode::EventDriven, seed, 6), 60);
        assert_eq!(scan.0, event.0, "trace diverged for seed {seed}");
        assert_eq!(scan.1, event.1, "node states diverged for seed {seed}");
        assert_eq!(scan.2, event.2, "delivery counts diverged for seed {seed}");
    }
}

/// Same seed ⇒ identical re-run, in both modes.
#[test]
fn full_stack_runs_are_reproducible_per_seed() {
    for mode in [SchedulerMode::EventDriven, SchedulerMode::RoundScan] {
        let a = run_and_fingerprint(stack_sim(mode, 7, 5), 50);
        let b = run_and_fingerprint(stack_sim(mode, 7, 5), 50);
        assert_eq!(a, b, "non-deterministic execution in {mode:?}");
    }
}

/// The event-driven scheduler converges the reconfiguration stack exactly
/// like the baseline: both bootstrap to the same configuration.
#[test]
fn both_schedulers_converge_to_the_same_configuration() {
    let mut scan = stack_sim(SchedulerMode::RoundScan, 5, 5);
    let mut event = stack_sim(SchedulerMode::EventDriven, 5, 5);
    scan.run_rounds(150);
    event.run_rounds(150);
    for id in scan.ids() {
        assert_eq!(
            scan.process(id).unwrap().installed_config(),
            event.process(id).unwrap().installed_config(),
        );
        assert!(scan.process(id).unwrap().installed_config().is_some());
    }
}

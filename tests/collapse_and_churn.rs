//! E9 — brute-force recovery from collapse, churn episodes and network
//! partitions.
//!
//! The brute-force technique is the safety net of the whole scheme: whatever
//! the configuration looked like before, once the failure detectors settle
//! the active processors converge onto a configuration made of themselves.
//! These tests drive collapse, staggered churn, repeated replacements and a
//! partition/heal episode through the full stack.

use std::collections::BTreeSet;

use reconfig::{config_set, ConfigSet, NodeConfig, ReconfigNode};
use simnet::{CrashPlan, PartitionPlan, ProcessId, Round, ScriptedFaults, SimConfig, Simulation};

fn converged_config(sim: &Simulation<ReconfigNode>) -> Option<ConfigSet> {
    let mut configs = BTreeSet::new();
    for id in sim.active_ids() {
        match sim.process(id).and_then(|p| p.installed_config()) {
            Some(c) => {
                configs.insert(c);
            }
            None => return None,
        }
    }
    if configs.len() == 1 {
        configs.into_iter().next()
    } else {
        None
    }
}

fn steady_cluster(n: u32, seed: u64) -> Simulation<ReconfigNode> {
    let cfg = config_set(0..n);
    let mut sim = Simulation::new(SimConfig::default().with_seed(seed).with_max_delay(0));
    for i in 0..n {
        let id = ProcessId::new(i);
        sim.add_process_with_id(
            id,
            ReconfigNode::new_with_config(id, cfg.clone(), NodeConfig::for_n(32)),
        );
    }
    sim.run_rounds(60);
    assert_eq!(converged_config(&sim), Some(cfg));
    sim
}

/// Total collapse: every configuration member crashes. Previously admitted
/// participants rebuild the system among themselves by brute force.
#[test]
fn total_collapse_rebuilds_from_the_surviving_participants() {
    let mut sim = steady_cluster(3, 701);
    // Three more processors join as participants (not members).
    for i in 10..13u32 {
        let id = ProcessId::new(i);
        sim.add_process_with_id(
            id,
            ReconfigNode::new_joiner(id, NodeConfig::for_n(32).with_bootstrap_patience(None)),
        );
    }
    let rounds = sim.run_until(800, |s| {
        (10..13u32).all(|i| s.process(ProcessId::new(i)).unwrap().is_participant())
    });
    assert!(rounds < 800, "joiners were never admitted");

    for i in 0..3u32 {
        sim.crash(ProcessId::new(i));
    }
    let survivors = config_set(10..13);
    let rounds = sim.run_until(2500, |s| converged_config(s) == Some(survivors.clone()));
    assert!(rounds < 2500, "survivors never rebuilt a configuration");
}

/// A scheduled sequence of crashes (one member per epoch) combined with the
/// prediction function keeps shrinking the configuration onto the survivors.
#[test]
fn rolling_crashes_keep_shrinking_the_configuration() {
    let cfg = config_set(0..6);
    let mut sim = Simulation::new(SimConfig::default().with_seed(702).with_max_delay(0));
    for i in 0..6u32 {
        let id = ProcessId::new(i);
        sim.add_process_with_id(
            id,
            ReconfigNode::new_with_config(
                id,
                cfg.clone(),
                NodeConfig::for_n(32)
                    .with_eval_policy(reconfig::EvalPolicy::MissingFraction { fraction: 0.15 }),
            ),
        );
    }
    sim.run_rounds(60);
    let crashes = CrashPlan::new()
        .crash_at(Round::new(80), ProcessId::new(5))
        .crash_at(Round::new(400), ProcessId::new(4));
    sim.run_rounds_with(800, |s| {
        let now = s.now();
        crashes.apply(s, now);
    });
    let rounds = sim.run_until(1500, |s| converged_config(s) == Some(config_set(0..4)));
    assert!(
        rounds < 1500,
        "the configuration never shrank onto the survivors"
    );
}

/// Repeated delicate replacements in sequence: the scheme installs each of
/// them, always ending calm with exactly the requested member set.
#[test]
fn repeated_replacements_all_complete() {
    let mut sim = steady_cluster(5, 703);
    let targets: Vec<ConfigSet> = vec![
        config_set([0, 1, 2, 3]),
        config_set([1, 2, 3, 4]),
        config_set([0, 2, 4]),
        config_set(0..5),
    ];
    for target in &targets {
        let proposer = *target.iter().next().unwrap();
        assert!(sim
            .process_mut(proposer)
            .unwrap()
            .request_reconfiguration(target.clone()));
        let rounds = sim.run_until(1200, |s| {
            converged_config(s) == Some(target.clone())
                && s.active_ids()
                    .iter()
                    .all(|id| s.process(*id).unwrap().no_reconfiguration())
        });
        assert!(rounds < 1200, "replacement onto {target:?} never completed");
    }
}

/// A partition into two halves lets each half drift (the minority cannot act,
/// the majority may reconfigure); after the heal the whole system converges
/// back onto one common configuration.
#[test]
fn partition_and_heal_reconverges_to_one_configuration() {
    let mut sim = steady_cluster(6, 704);
    let left: Vec<ProcessId> = (0..3).map(ProcessId::new).collect();
    let right: Vec<ProcessId> = (3..6).map(ProcessId::new).collect();
    let plan = PartitionPlan::new()
        .split_at(Round::new(70), vec![left, right])
        .heal_at(Round::new(450));
    sim.run_rounds_with(500, |s| {
        let now = s.now();
        plan.apply(s, now);
    });
    // After the heal every processor is reachable again; the system must end
    // with a single common configuration that includes a majority of the
    // active processors.
    let rounds = sim.run_until(2500, |s| {
        converged_config(s).is_some()
            && s.active_ids()
                .iter()
                .all(|id| s.process(*id).unwrap().no_reconfiguration())
    });
    assert!(rounds < 2500, "the halves never re-merged");
    let cfg = converged_config(&sim).unwrap();
    let active: BTreeSet<ProcessId> = sim.active_ids().into_iter().collect();
    let live_members = cfg.iter().filter(|m| active.contains(m)).count();
    assert!(
        live_members > cfg.len() / 2,
        "merged configuration has no live majority"
    );
}

/// A scripted adversary that repeatedly corrupts configurations *while*
/// crashes and joins are happening: the system still ends calm on a single
/// configuration with a live majority.
#[test]
fn scripted_adversary_with_churn_still_converges() {
    let mut sim = steady_cluster(4, 705);
    let mut faults: ScriptedFaults<ReconfigNode> = ScriptedFaults::new();
    // Round 70: corrupt two configurations in opposite ways.
    faults.at(Round::new(70), |s: &mut Simulation<ReconfigNode>| {
        s.process_mut(ProcessId::new(0))
            .unwrap()
            .recsa_mut()
            .corrupt_config(
                ProcessId::new(0),
                reconfig::ConfigValue::Set(config_set([0])),
            );
        s.process_mut(ProcessId::new(2))
            .unwrap()
            .recsa_mut()
            .corrupt_config(
                ProcessId::new(2),
                reconfig::ConfigValue::Set(config_set([2, 3])),
            );
    });
    // Round 90: one member crashes and a joiner arrives.
    faults.at(Round::new(90), |s: &mut Simulation<ReconfigNode>| {
        s.crash(ProcessId::new(3));
        let id = ProcessId::new(20);
        s.add_process_with_id(
            id,
            ReconfigNode::new_joiner(id, NodeConfig::for_n(32).with_bootstrap_patience(None)),
        );
    });
    // Round 140: corrupt the channels with a duplicate of an old packet.
    faults.at(Round::new(140), |s: &mut Simulation<ReconfigNode>| {
        s.network_mut().inject(
            ProcessId::new(1),
            ProcessId::new(0),
            reconfig::ReconfigMsg::Heartbeat,
        );
    });
    // Drive through the whole adversarial episode first (the scripted rounds
    // lie between 70 and 140), then wait for convergence.
    faults.drive(&mut sim, 150);
    assert_eq!(faults.applied(), faults.scheduled() as u64);
    let rounds = sim.run_until(2500, |s| {
        converged_config(s).is_some()
            && s.active_ids()
                .iter()
                .all(|id| s.process(*id).unwrap().no_reconfiguration())
    });
    assert!(rounds < 2500, "adversarial episode never converged");
    let cfg = converged_config(&sim).unwrap();
    let active: BTreeSet<ProcessId> = sim.active_ids().into_iter().collect();
    let live_members = cfg.iter().filter(|m| active.contains(m)).count();
    assert!(live_members > cfg.len() / 2);
}

/// Crash of a minority plus the arrival of a replacement processor, followed
/// by an explicit replacement onto the new mix: the configuration ends up
/// exactly as requested, with the newcomer in and the crashed member out.
#[test]
fn replacement_swaps_a_crashed_member_for_a_newcomer() {
    let mut sim = steady_cluster(4, 706);
    sim.crash(ProcessId::new(3));
    let newcomer = ProcessId::new(9);
    sim.add_process_with_id(
        newcomer,
        ReconfigNode::new_joiner(
            newcomer,
            NodeConfig::for_n(32).with_bootstrap_patience(None),
        ),
    );
    let rounds = sim.run_until(800, |s| s.process(newcomer).unwrap().is_participant());
    assert!(rounds < 800, "replacement processor never joined");

    let target = config_set([0, 1, 2, 9]);
    assert!(sim
        .process_mut(ProcessId::new(0))
        .unwrap()
        .request_reconfiguration(target.clone()));
    let rounds = sim.run_until(1500, |s| converged_config(s) == Some(target.clone()));
    assert!(rounds < 1500, "swap replacement never completed");
}

//! Chaos-campaign engine over the real protocol stacks.
//!
//! The PR-1 determinism guarantee — event-driven and round-scan scheduling
//! produce byte-identical executions per seed — must extend to the whole
//! fault layer: crashes, churn, partitions, message spikes and transient
//! state corruption driven by a declarative `Scenario`. These tests run the
//! *composite nodes* (not toy processes) under active scenarios and compare
//! executions across scheduler modes event for event, plus the campaign
//! reports byte for byte.

use selfstab_reconfig::counting::CounterNode;
use selfstab_reconfig::reconfiguration::ReconfigNode;
use selfstab_reconfig::replication::SmrNode;
use selfstab_reconfig::shared_memory::SharedMemNode;
use selfstab_reconfig::sim::scenario::{catalog, find, run_scenario, ScenarioTarget};
use selfstab_reconfig::sim::{Campaign, Scenario, SchedulerMode, Simulation};

/// Runs `scenario` under `mode`, returning the full trace rendering, the
/// scenario outcome and the delivered-message count.
fn traced_run<T: ScenarioTarget>(
    scenario: &Scenario,
    seed: u64,
    mode: SchedulerMode,
) -> (String, String, u64) {
    let mut sim: Simulation<T> = scenario.build_sim(seed, mode);
    sim.trace_mut().set_enabled(true);
    let run = run_scenario(scenario, &mut sim);
    let trace: String = sim.trace().iter().map(|e| format!("{e:?}\n")).collect();
    (
        trace,
        format!("{run:?}"),
        sim.metrics().messages_delivered(),
    )
}

/// The satellite requirement: partition-heal interleaved with churn, with
/// byte-identical executions across `SchedulerMode::EventDriven` and
/// `SchedulerMode::RoundScan` while the scenario is actively crashing,
/// splitting, healing and joining.
#[test]
fn partition_churn_executions_are_identical_across_scheduler_modes() {
    let scenario = find("partition-churn", 5).expect("catalog scenario");
    for seed in [1u64, 2, 42] {
        let event = traced_run::<ReconfigNode>(&scenario, seed, SchedulerMode::EventDriven);
        let scan = traced_run::<ReconfigNode>(&scenario, seed, SchedulerMode::RoundScan);
        assert_eq!(event.0, scan.0, "trace diverged for seed {seed}");
        assert_eq!(event.1, scan.1, "outcome diverged for seed {seed}");
        assert_eq!(event.2, scan.2, "deliveries diverged for seed {seed}");
    }
}

/// The same equivalence over the deepest stack (SMR embeds the counter and
/// reconfiguration layers), under the all-fault scenario.
#[test]
fn chaos_mix_smr_executions_are_identical_across_scheduler_modes() {
    let scenario = find("chaos-mix", 4).expect("catalog scenario");
    let event = traced_run::<SmrNode>(&scenario, 7, SchedulerMode::EventDriven);
    let scan = traced_run::<SmrNode>(&scenario, 7, SchedulerMode::RoundScan);
    assert_eq!(event, scan);
}

/// Gray failures are the fault class most likely to split the scheduler
/// modes apart: a slowed timer changes *which* processes are due each
/// round, which the event-driven queue learns from wake-ups and the
/// round-scan baseline must rediscover by scanning. The executions must
/// still match byte for byte while a minority runs 6× slow and while it
/// recovers.
#[test]
fn gray_failure_executions_are_identical_across_scheduler_modes() {
    let scenario = find("gray-lag", 5).expect("catalog scenario");
    for seed in [1u64, 2] {
        let event = traced_run::<ReconfigNode>(&scenario, seed, SchedulerMode::EventDriven);
        let scan = traced_run::<ReconfigNode>(&scenario, seed, SchedulerMode::RoundScan);
        assert_eq!(event.0, scan.0, "trace diverged for seed {seed}");
        assert_eq!(event.1, scan.1, "outcome diverged for seed {seed}");
        assert_eq!(event.2, scan.2, "deliveries diverged for seed {seed}");
    }
}

/// One-directional cuts are the other likely divergence source: blocked
/// sends produce no wake-ups in one direction while traffic keeps flowing
/// in the other, skewing the two modes' work discovery differently.
#[test]
fn one_way_cut_executions_are_identical_across_scheduler_modes() {
    let scenario = find("one-way-cut", 5).expect("catalog scenario");
    for seed in [1u64, 2] {
        let event = traced_run::<CounterNode>(&scenario, seed, SchedulerMode::EventDriven);
        let scan = traced_run::<CounterNode>(&scenario, seed, SchedulerMode::RoundScan);
        assert_eq!(event, scan, "execution diverged for seed {seed}");
    }
}

/// Permanent clock skew on the deepest stack: the system must converge —
/// in both modes, identically — with the skewed replica still slow.
#[test]
fn clock_skew_executions_are_identical_across_scheduler_modes() {
    let scenario = find("clock-skew", 4).expect("catalog scenario");
    let event = traced_run::<SmrNode>(&scenario, 3, SchedulerMode::EventDriven);
    let scan = traced_run::<SmrNode>(&scenario, 3, SchedulerMode::RoundScan);
    assert_eq!(event, scan);
}

/// Every catalog scenario converges for every composite node at a small
/// size: the 4 × catalog matrix the CI chaos job sweeps a subset of.
#[test]
fn full_catalog_converges_for_every_composite_node() {
    fn sweep<T: ScenarioTarget>() {
        for scenario in catalog(4) {
            let mut sim: Simulation<T> = scenario.build_sim(1, SchedulerMode::EventDriven);
            let run = run_scenario(&scenario, &mut sim);
            assert!(
                run.converged,
                "{}/{} did not converge: {run:?}",
                T::NAME,
                scenario.name()
            );
            assert!(
                run.invariant_violations.is_empty(),
                "{}/{} violated invariants: {:?}",
                T::NAME,
                scenario.name(),
                run.invariant_violations
            );
        }
    }
    sweep::<ReconfigNode>();
    sweep::<CounterNode>();
    sweep::<SmrNode>();
    sweep::<SharedMemNode>();
}

/// The acceptance criterion on reports: the same scenario + seed produces
/// byte-identical JSON in both scheduler modes and across repeated runs —
/// campaign reports carry no mode- or wall-clock-dependent fields.
#[test]
fn campaign_reports_are_byte_identical_across_modes_and_reruns() {
    let scenarios = vec![
        find("partition-churn", 4).unwrap(),
        find("state-blast", 4).unwrap(),
    ];
    let render = |modes: Vec<SchedulerMode>| {
        Campaign::new("report-determinism")
            .with_seeds([1, 2])
            .with_modes(modes)
            .run::<SharedMemNode>(&scenarios)
            .render()
    };
    let event = render(vec![SchedulerMode::EventDriven]);
    let scan = render(vec![SchedulerMode::RoundScan]);
    let both = render(vec![SchedulerMode::EventDriven, SchedulerMode::RoundScan]);
    let again = render(vec![SchedulerMode::EventDriven, SchedulerMode::RoundScan]);
    assert_eq!(event, scan, "reports diverged across scheduler modes");
    assert_eq!(both, again, "repeated campaign runs diverged");
    assert_eq!(
        both, event,
        "both-mode report differs from single-mode report"
    );
}

/// Faults actually land: the scenario runner reports the scheduled crash,
/// join and corruption counts, and the trace shows the churned processes.
#[test]
fn scenario_faults_are_applied_to_the_real_stack() {
    let scenario = find("chaos-mix", 5).unwrap();
    let mut sim: Simulation<ReconfigNode> = scenario.build_sim(3, SchedulerMode::EventDriven);
    let run = run_scenario(&scenario, &mut sim);
    assert!(run.converged, "{run:?}");
    assert_eq!(run.counter("crashes"), 1);
    assert_eq!(run.counter("joins"), 1);
    assert_eq!(run.counter("corruptions"), 1);
    // The joiner exists and was admitted as a participant.
    assert_eq!(sim.ids().len(), 6);
    let joiner = sim
        .active_processes()
        .find(|(id, _)| id.as_u32() == 5)
        .map(|(_, p)| p.is_participant());
    assert_eq!(joiner, Some(true));
}

/// Crash-recovery on the real stack: the victims stay dead under their old
/// identifiers and the replacements are admitted as participants under
/// fresh ones, as the paper's rejoin rule prescribes.
#[test]
fn crash_recovery_rejoins_the_real_stack_under_fresh_identifiers() {
    let scenario = find("crash-recovery", 5).unwrap();
    let mut sim: Simulation<ReconfigNode> = scenario.build_sim(11, SchedulerMode::EventDriven);
    let run = run_scenario(&scenario, &mut sim);
    assert!(run.converged, "{run:?}");
    assert!(run.invariant_violations.is_empty(), "{run:?}");
    // n = 5 ⇒ a 2-process minority crashes at 30 and rejoins at 60.
    assert_eq!(run.counter("crashes"), 2);
    assert_eq!(run.counter("recoveries"), 2);
    assert_eq!(sim.ids().len(), 7);
    for old in [3u32, 4] {
        assert!(!sim.is_active(selfstab_reconfig::sim::ProcessId::new(old)));
    }
    for fresh in [5u32, 6] {
        let node = sim
            .process(selfstab_reconfig::sim::ProcessId::new(fresh))
            .unwrap();
        assert!(node.is_participant(), "recovered p{fresh} was not admitted");
    }
}

/// The fault registry stays complete: every `FaultPlan` implementation in
/// `simnet::plan::registry()` is documented in docs/FAULTS.md *and*
/// exercised by at least one catalog scenario — an undocumented or
/// unexercised fault class fails CI, per the acceptance criterion. The
/// `ScriptedFaults` escape hatch (not a `FaultPlan`) must stay documented
/// too, and every catalog scenario must appear in the atlas.
#[test]
fn fault_registry_is_documented_and_exercised_by_the_catalog() {
    let atlas = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/docs/FAULTS.md"))
        .expect("docs/FAULTS.md exists");
    let scenarios = catalog(5);
    for (type_name, kind) in selfstab_reconfig::sim::plan::registry() {
        assert!(
            atlas.contains(type_name),
            "docs/FAULTS.md has no atlas entry for {type_name}"
        );
        assert!(
            atlas.contains(kind),
            "docs/FAULTS.md does not name the `{kind}` counter/kind of {type_name}"
        );
        assert!(
            scenarios
                .iter()
                .any(|s| s.plans().iter().any(|p| p.kind() == kind)),
            "no catalog scenario exercises the `{kind}` fault class ({type_name})"
        );
    }
    assert!(
        atlas.contains("ScriptedFaults"),
        "docs/FAULTS.md lost the ScriptedFaults escape-hatch entry"
    );
    assert!(
        atlas.contains("FaultPlan") && atlas.contains("with_plan"),
        "docs/FAULTS.md must document the open FaultPlan API"
    );
    for scenario in &scenarios {
        assert!(
            atlas.contains(scenario.name()),
            "docs/FAULTS.md does not reference catalog scenario {}",
            scenario.name()
        );
    }
}

/// The Byzantine adversary on the real stacks: byzantine-storm converges
/// for every composite node with crafted packets in force, the injections
/// are counted, and no equivocating payload was adopted into honest state
/// (the protocol invariants — view-id uniqueness, tag consistency, label
/// legitimacy — run at the end of every cell).
#[test]
fn byzantine_storm_injections_land_and_are_refused() {
    fn sweep<T: ScenarioTarget>() {
        let scenario = find("byzantine-storm", 5).expect("catalog scenario");
        let mut sim: Simulation<T> = scenario.build_sim(3, SchedulerMode::EventDriven);
        let run = run_scenario(&scenario, &mut sim);
        assert!(run.converged, "{}: {run:?}", T::NAME);
        assert!(
            run.invariant_violations.is_empty(),
            "{}: {:?}",
            T::NAME,
            run.invariant_violations
        );
        assert!(
            run.counter("injections") > 0,
            "{}: no crafted packet was injected: {run:?}",
            T::NAME
        );
    }
    sweep::<ReconfigNode>();
    sweep::<CounterNode>();
    sweep::<SmrNode>();
    sweep::<SharedMemNode>();
}

/// Crafted-message injection must not split the scheduler modes apart:
/// injections go through the network's dirty-set wake-up path, which the
/// round-scan baseline rediscovers by scanning.
#[test]
fn byzantine_storm_executions_are_identical_across_scheduler_modes() {
    let scenario = find("byzantine-storm", 4).expect("catalog scenario");
    for seed in [1u64, 5] {
        let event = traced_run::<SmrNode>(&scenario, seed, SchedulerMode::EventDriven);
        let scan = traced_run::<SmrNode>(&scenario, seed, SchedulerMode::RoundScan);
        assert_eq!(event, scan, "execution diverged for seed {seed}");
    }
}

/// The counter service under chaos commits increments monotonically: after
/// a full campaign cell, all members agree on a counter at least as large as
/// any committed increment (spot-check of Theorem 4.6 under faults).
#[test]
fn counter_campaign_commits_survive_chaos() {
    let scenario = find("packet-storm", 4).unwrap();
    let mut sim: Simulation<CounterNode> = scenario.build_sim(5, SchedulerMode::EventDriven);
    let run = run_scenario(&scenario, &mut sim);
    assert!(run.converged, "{run:?}");
    let max = sim
        .active_processes()
        .find(|(_, p)| p.is_member())
        .and_then(|(_, p)| p.max_counter().cloned())
        .expect("members hold a counter after the workload");
    for (_, p) in sim.active_processes().filter(|(_, p)| p.is_member()) {
        assert_eq!(p.max_counter(), Some(&max));
    }
}

//! The temporal layer of the chaos campaigns: *eventually-stays-converged*
//! probing and linearizability checking over recorded operation histories.
//!
//! PR-2's campaigns verified `eventually-converges`; an armed run
//! (`Scenario::with_history`) must also verify the *stays* part — a run
//! that converges and then falls out of convergence inside the probe
//! window is a failure, not a success that happened to be sampled early.
//! These tests drive the probe with a white-box fault plan that corrupts
//! state *after* convergence (which no built-in plan schedules, because
//! `CorruptionPlan::last_round` defers convergence counting past it), and
//! pin the armed/unarmed report contract: unarmed runs carry none of the
//! history counters and stop at first convergence exactly as before.

use std::any::Any;

use selfstab_reconfig::counting::CounterNode;
use selfstab_reconfig::reconfiguration::ReconfigNode;
use selfstab_reconfig::shared_memory::SharedMemNode;
use selfstab_reconfig::sim::scenario::{run_scenario, ScenarioTarget};
use selfstab_reconfig::sim::{
    Arrival, Campaign, FaultAction, FaultPlan, HistoryCfg, LoadProfile, PlanCtx, ProcessId, Round,
    Scenario, ScenarioRun, SchedulerMode, Simulation,
};

/// A fault plan that corrupts the given victims at one round but reports
/// `last_round() == None`, so the runner counts convergence *before* the
/// corruption lands. Built-in plans deliberately defer convergence past
/// their last action; the stays-converged probe needs the opposite — a
/// fault landing inside the probe window, after convergence was recorded.
#[derive(Debug, Clone)]
struct LateCorruption {
    round: Round,
    victims: Vec<ProcessId>,
}

impl FaultPlan for LateCorruption {
    fn kind(&self) -> &'static str {
        "late-corruption"
    }

    fn schedule(&self, round: Round, _ctx: &PlanCtx) -> Vec<FaultAction> {
        if round != self.round {
            return Vec::new();
        }
        self.victims
            .iter()
            .copied()
            .map(FaultAction::CorruptState)
            .collect()
    }

    /// `None` on purpose: the runner must *not* wait this plan out before
    /// counting convergence — the corruption is meant to land inside the
    /// stays-converged probe window.
    fn last_round(&self) -> Option<Round> {
        None
    }

    fn events(&self) -> usize {
        self.victims.len()
    }

    fn counter_keys(&self) -> Vec<&'static str> {
        vec!["corruptions"]
    }

    fn clone_plan(&self) -> Box<dyn FaultPlan> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A reconfiguration scenario that converges early and is then corrupted
/// at round 450 — far inside the 600-round probe window. The victim is the
/// recSA/recMA stack because its recovery from conflicting configurations
/// takes many rounds (conflict resolution, possibly the brute-force
/// reset), so the per-round probe is guaranteed to observe the
/// unconverged window; the counter's `max`-merge gossip can repair an
/// erased maximum within a single round on a healthy 4-clique, which the
/// probe may never see.
fn late_corruption_scenario(n: usize) -> Scenario {
    Scenario::new("late-corruption", n)
        .describe("state corruption after convergence, inside the probe window")
        .with_workload_until(40)
        .with_rounds(900)
        .with_plan(LateCorruption {
            round: Round::new(450),
            victims: (0..n as u32).map(ProcessId::new).collect(),
        })
        .with_history_cfg(HistoryCfg {
            probe_rounds: 600,
            ..HistoryCfg::default()
        })
}

fn run<T: ScenarioTarget>(scenario: &Scenario, seed: u64, mode: SchedulerMode) -> ScenarioRun {
    let mut sim: Simulation<T> = scenario.build_sim(seed, mode);
    run_scenario(scenario, &mut sim)
}

/// The stability satellite: corrupting state *after* convergence must trip
/// `stability_violations` (with the `stability:` witness naming the first
/// unstable round), byte-identically across both scheduler modes.
#[test]
fn late_corruption_trips_stability_violations_in_both_modes() {
    let scenario = late_corruption_scenario(4);
    for seed in [1u64, 2] {
        let event = run::<ReconfigNode>(&scenario, seed, SchedulerMode::EventDriven);
        let scan = run::<ReconfigNode>(&scenario, seed, SchedulerMode::RoundScan);
        assert_eq!(
            event, scan,
            "runs diverged across scheduler modes (seed {seed})"
        );
        assert_eq!(
            event.counter("corruptions"),
            4,
            "the late plan fired (seed {seed})"
        );
        assert!(
            event.counter("stability_violations") >= 1,
            "post-convergence corruption must break stays-converged (seed {seed}): {:?}",
            event.counters
        );
        assert!(
            event
                .invariant_violations
                .iter()
                .any(|v| v.starts_with("stability:")),
            "the probe reports a witness (seed {seed}): {:?}",
            event.invariant_violations
        );
    }
}

/// The same cell through the campaign driver is byte-identical across
/// jobs ∈ {1, 4}: the parallel driver may not perturb armed runs.
#[test]
fn late_corruption_campaign_reports_are_identical_across_jobs() {
    let scenarios = [late_corruption_scenario(4)];
    let render = |jobs: usize| {
        Campaign::new("stability-probe")
            .with_seeds([1u64, 2])
            .with_jobs(jobs)
            .run::<ReconfigNode>(&scenarios)
            .render()
    };
    assert_eq!(render(1), render(4), "campaign report depends on job count");
}

/// Arming a quiescent run changes its *report*, not its behaviour: the
/// armed `converged_round` equals the unarmed `rounds_to_convergence`, the
/// probe window stays clean, and the full catalog of history counters is
/// present (zero included).
#[test]
fn armed_quiescent_run_matches_unarmed_convergence_and_stays_stable() {
    let base = Scenario::new("quiescent", 4)
        .with_workload_until(40)
        .with_rounds(900);
    let unarmed = run::<CounterNode>(&base, 1, SchedulerMode::EventDriven);
    let armed = run::<CounterNode>(&base.clone().with_history(), 1, SchedulerMode::EventDriven);
    let converged_at = unarmed
        .rounds_to_convergence
        .expect("quiescent run converges");
    assert_eq!(armed.counter("converged_round"), converged_at);
    assert_eq!(armed.counter("stability_violations"), 0);
    assert_eq!(armed.counter("lin_result"), 0);
    for key in [
        "converged_round",
        "stability_violations",
        "lin_ops_checked",
        "lin_result",
    ] {
        assert!(
            armed.counters.contains_key(key),
            "armed run publishes `{key}`"
        );
    }
}

/// Unarmed runs are untouched: none of the history counters appear in the
/// report (its shape is exactly the pre-history one).
#[test]
fn unarmed_runs_carry_no_history_counters() {
    let base = Scenario::new("quiescent", 4)
        .with_workload_until(40)
        .with_rounds(900);
    let unarmed = run::<CounterNode>(&base, 1, SchedulerMode::EventDriven);
    for key in [
        "converged_round",
        "stability_violations",
        "lin_ops_checked",
        "lin_result",
    ] {
        assert!(
            !unarmed.counters.contains_key(key),
            "unarmed report must not grow a `{key}` column: {:?}",
            unarmed.counters
        );
    }
}

/// An armed fault-free cell under open-loop load linearizes on both
/// checked services: the MWMR register emulation (read/write histories
/// against the atomic-register spec) and the counter (increment histories
/// against the monotone-token spec).
#[test]
fn armed_loaded_runs_linearize_on_both_services() {
    let loaded = |name: &str| {
        Scenario::new(name, 4)
            .with_workload_until(60)
            .with_rounds(900)
            .with_load(
                LoadProfile::new(20, Arrival::parse("poisson:1").unwrap()).with_op_timeout(300),
            )
            .with_history()
    };
    let counter = run::<CounterNode>(&loaded("counter-load"), 1, SchedulerMode::EventDriven);
    assert!(
        counter.counter("lin_ops_checked") > 0,
        "{:?}",
        counter.counters
    );
    assert_eq!(
        counter.counter("lin_result"),
        0,
        "{:?}",
        counter.invariant_violations
    );
    let register = run::<SharedMemNode>(&loaded("sharedmem-load"), 1, SchedulerMode::EventDriven);
    assert!(
        register.counter("lin_ops_checked") > 0,
        "{:?}",
        register.counters
    );
    assert_eq!(
        register.counter("lin_result"),
        0,
        "{:?}",
        register.invariant_violations
    );
}

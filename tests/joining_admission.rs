//! E5 — the joining mechanism and application-controlled admission.
//!
//! Theorem 3.26: a joining processor keeps trying while the application
//! allows it, becomes a participant only with the approval of a majority of
//! configuration members and only outside reconfiguration periods, and can
//! never perturb the configuration just by joining.

use std::collections::BTreeSet;

use reconfig::{config_set, AdmissionPolicy, ConfigSet, NodeConfig, ReconfigNode};
use simnet::{ChurnPlan, ProcessId, Round, SimConfig, Simulation};

fn converged_config(sim: &Simulation<ReconfigNode>) -> Option<ConfigSet> {
    let mut configs = BTreeSet::new();
    for id in sim.active_ids() {
        match sim.process(id).and_then(|p| p.installed_config()) {
            Some(c) => {
                configs.insert(c);
            }
            None => return None,
        }
    }
    if configs.len() == 1 {
        configs.into_iter().next()
    } else {
        None
    }
}

fn members_cluster(n: u32, seed: u64, admission: AdmissionPolicy) -> Simulation<ReconfigNode> {
    let cfg = config_set(0..n);
    let mut sim = Simulation::new(SimConfig::default().with_seed(seed).with_max_delay(0));
    for i in 0..n {
        let id = ProcessId::new(i);
        sim.add_process_with_id(
            id,
            ReconfigNode::new_with_config(
                id,
                cfg.clone(),
                NodeConfig::for_n(32).with_admission(admission),
            ),
        );
    }
    sim.run_rounds(60);
    assert_eq!(converged_config(&sim), Some(cfg));
    sim
}

fn add_joiner(sim: &mut Simulation<ReconfigNode>, id: u32) -> ProcessId {
    let pid = ProcessId::new(id);
    sim.add_process_with_id(
        pid,
        ReconfigNode::new_joiner(pid, NodeConfig::for_n(32).with_bootstrap_patience(None)),
    );
    pid
}

/// A joiner is admitted by an `AdmitAll` configuration and the configuration
/// itself does not change.
#[test]
fn joiner_admitted_without_changing_the_configuration() {
    let mut sim = members_cluster(3, 401, AdmissionPolicy::AdmitAll);
    let joiner = add_joiner(&mut sim, 10);
    let rounds = sim.run_until(400, |s| s.process(joiner).unwrap().is_participant());
    assert!(rounds < 400, "joiner was never admitted");
    assert_eq!(converged_config(&sim), Some(config_set(0..3)));
    // The joiner learned the installed configuration, not some private one.
    assert_eq!(
        sim.process(joiner).unwrap().installed_config(),
        Some(config_set(0..3))
    );
}

/// `DenyAll` keeps the joiner out for as long as it is in force; switching to
/// `AdmitAll` at run time finally lets it in (the joiner keeps retrying, as
/// Theorem 3.26 requires).
#[test]
fn deny_all_blocks_until_the_application_relents() {
    let mut sim = members_cluster(3, 402, AdmissionPolicy::DenyAll);
    let joiner = add_joiner(&mut sim, 10);
    sim.run_rounds(300);
    assert!(
        !sim.process(joiner).unwrap().is_participant(),
        "DenyAll must keep the joiner out"
    );
    for i in 0..3u32 {
        sim.process_mut(ProcessId::new(i))
            .unwrap()
            .set_admission(AdmissionPolicy::AdmitAll);
    }
    let rounds = sim.run_until(400, |s| s.process(joiner).unwrap().is_participant());
    assert!(
        rounds < 400,
        "joiner still locked out after the policy change"
    );
}

/// Several joiners are admitted one after the other; all of them end up
/// participants and the configuration never changes.
#[test]
fn many_joiners_are_admitted_in_sequence() {
    let mut sim = members_cluster(3, 403, AdmissionPolicy::AdmitAll);
    let joiners: Vec<ProcessId> = (20..25).map(|i| add_joiner(&mut sim, i)).collect();
    let rounds = sim.run_until(1500, |s| {
        joiners
            .iter()
            .all(|j| s.process(*j).unwrap().is_participant())
    });
    assert!(rounds < 1500, "not every joiner was admitted");
    assert_eq!(converged_config(&sim), Some(config_set(0..3)));
    for j in &joiners {
        assert!(sim.process(*j).unwrap().installed_config().is_some());
    }
}

/// The churn plan drives a staggered arrival of joiners; the configuration
/// survives the whole churn episode untouched.
#[test]
fn staggered_churn_does_not_perturb_the_configuration() {
    let mut sim = members_cluster(4, 404, AdmissionPolicy::AdmitAll);
    let plan = ChurnPlan::new()
        .join_at(Round::new(70), 1)
        .join_at(Round::new(120), 2)
        .join_at(Round::new(180), 1);
    let mut joined: Vec<ProcessId> = Vec::new();
    sim.run_rounds_with(260, |s| {
        let now = s.now();
        joined.extend(plan.apply(s, now, |id| {
            ReconfigNode::new_joiner(id, NodeConfig::for_n(32).with_bootstrap_patience(None))
        }));
    });
    assert_eq!(joined.len(), 4);
    let rounds = sim.run_until(1200, |s| {
        joined
            .iter()
            .all(|j| s.process(*j).unwrap().is_participant())
    });
    assert!(rounds < 1200, "churned joiners were not admitted");
    assert_eq!(converged_config(&sim), Some(config_set(0..4)));
}

/// A joiner that arrives while a delicate replacement is in progress is not
/// admitted before the replacement completes, and is admitted afterwards.
#[test]
fn joining_waits_for_an_ongoing_reconfiguration() {
    let mut sim = members_cluster(4, 405, AdmissionPolicy::AdmitAll);
    let target = config_set([0, 1, 2]);
    assert!(sim
        .process_mut(ProcessId::new(1))
        .unwrap()
        .request_reconfiguration(target.clone()));
    // The joiner shows up in the middle of the replacement.
    let joiner = add_joiner(&mut sim, 30);
    let rounds = sim.run_until(1500, |s| {
        converged_config(s) == Some(target.clone()) && s.process(joiner).unwrap().is_participant()
    });
    assert!(
        rounds < 1500,
        "replacement and admission did not both complete"
    );
    // The final configuration is exactly the proposed one — the joiner's
    // arrival did not leak into it.
    assert_eq!(converged_config(&sim), Some(target));
}

/// A joiner can later be included in the configuration through an explicit
/// delicate replacement that names it.
#[test]
fn admitted_joiner_can_become_a_member_via_replacement() {
    let mut sim = members_cluster(3, 406, AdmissionPolicy::AdmitAll);
    let joiner = add_joiner(&mut sim, 7);
    let rounds = sim.run_until(400, |s| s.process(joiner).unwrap().is_participant());
    assert!(rounds < 400);
    let target = config_set([0, 1, 2, 7]);
    assert!(sim
        .process_mut(ProcessId::new(0))
        .unwrap()
        .request_reconfiguration(target.clone()));
    let rounds = sim.run_until(1000, |s| converged_config(s) == Some(target.clone()));
    assert!(
        rounds < 1000,
        "replacement including the joiner never completed"
    );
}

/// Complete collapse with joiners present: when every configuration member
/// crashes, the brute-force technique rebuilds the system out of the admitted
/// participants — admission control cannot stand in the way of recovery.
#[test]
fn collapse_recovery_includes_admitted_participants() {
    let mut sim = members_cluster(3, 407, AdmissionPolicy::AdmitAll);
    let joiners: Vec<ProcessId> = (10..13).map(|i| add_joiner(&mut sim, i)).collect();
    let rounds = sim.run_until(800, |s| {
        joiners
            .iter()
            .all(|j| s.process(*j).unwrap().is_participant())
    });
    assert!(rounds < 800);
    for i in 0..3u32 {
        sim.crash(ProcessId::new(i));
    }
    let expected: ConfigSet = joiners.iter().copied().collect();
    let rounds = sim.run_until(2500, |s| converged_config(s) == Some(expected.clone()));
    assert!(
        rounds < 2500,
        "survivor participants never formed a configuration"
    );
}

/// Observability: the joining layer reports completed joins.
#[test]
fn joining_observability_counters() {
    let mut sim = members_cluster(3, 408, AdmissionPolicy::AdmitAll);
    let joiner = add_joiner(&mut sim, 11);
    sim.run_until(400, |s| s.process(joiner).unwrap().is_participant());
    assert!(sim.process(joiner).unwrap().is_participant());
    // Give the joiner's first participant broadcast time to reach the
    // members, then they list it in their participant sets.
    let rounds = sim.run_until(200, |s| {
        s.process(ProcessId::new(0))
            .unwrap()
            .participants()
            .contains(&joiner)
    });
    assert!(rounds < 200, "members never observed the new participant");
}

//! E3/E4 — Reconfiguration Management (recMA) triggering behaviour.
//!
//! Lemma 3.18 bounds the number of spurious recMA triggerings caused by
//! stale `noMaj`/`needReconf` information; Lemma 3.19 shows a steady
//! configuration stays steady when the majority survives and the prediction
//! function stays quiet; Lemma 3.20 shows that majority loss and a
//! majority-supported prediction function both lead to a reconfiguration;
//! Lemma 3.21 shows each event triggers at most once per participant.

use std::collections::BTreeSet;

use reconfig::{config_set, ConfigSet, EvalPolicy, NodeConfig, ReconfigNode};
use simnet::{ProcessId, SimConfig, Simulation};

fn converged_config(sim: &Simulation<ReconfigNode>) -> Option<ConfigSet> {
    let mut configs = BTreeSet::new();
    for id in sim.active_ids() {
        match sim.process(id).and_then(|p| p.installed_config()) {
            Some(c) => {
                configs.insert(c);
            }
            None => return None,
        }
    }
    if configs.len() == 1 {
        configs.into_iter().next()
    } else {
        None
    }
}

fn total_triggerings(sim: &Simulation<ReconfigNode>) -> u64 {
    sim.active_ids()
        .iter()
        .map(|id| sim.process(*id).unwrap().recma_triggerings())
        .sum()
}

fn cluster_with_policy(n: u32, seed: u64, policy: EvalPolicy) -> Simulation<ReconfigNode> {
    let cfg = config_set(0..n);
    let mut sim = Simulation::new(SimConfig::default().with_seed(seed).with_max_delay(0));
    for i in 0..n {
        let id = ProcessId::new(i);
        sim.add_process_with_id(
            id,
            ReconfigNode::new_with_config(
                id,
                cfg.clone(),
                NodeConfig::for_n(16).with_eval_policy(policy.clone()),
            ),
        );
    }
    sim.run_rounds(80);
    assert_eq!(converged_config(&sim), Some(cfg));
    sim
}

/// Lemma 3.19: with a surviving majority and a quiet prediction function, a
/// long fault-free execution contains no triggering at all.
#[test]
fn steady_state_never_triggers() {
    let mut sim = cluster_with_policy(5, 301, EvalPolicy::Never);
    sim.run_rounds(500);
    assert_eq!(total_triggerings(&sim), 0);
    assert_eq!(converged_config(&sim), Some(config_set(0..5)));
}

/// Lemma 3.18: corrupt `noMaj` flags cause at most a bounded number of
/// triggerings, after which the system returns to (and stays in) a steady
/// configuration.
#[test]
fn corrupt_no_majority_flags_cause_bounded_triggerings() {
    let mut sim = cluster_with_policy(5, 302, EvalPolicy::Never);
    // Transient fault: p0 believes every peer reported "no majority".
    {
        let node = sim.process_mut(ProcessId::new(0)).unwrap();
        for peer in 0..5u32 {
            node.recma_mut()
                .corrupt_flags(ProcessId::new(peer), true, false);
        }
    }
    sim.run_rounds(400);
    let after_recovery = total_triggerings(&sim);
    // The paper's bound is O(N²·cap); for this tiny system a handful of
    // triggerings is already generous.
    assert!(
        after_recovery <= 5,
        "corrupt flags caused {after_recovery} triggerings"
    );
    // The system is steady again: no further triggerings accumulate.
    sim.run_rounds(300);
    assert_eq!(total_triggerings(&sim), after_recovery);
    assert!(converged_config(&sim).is_some());
}

/// Lemma 3.18, second source: corrupt `needReconf` flags.
#[test]
fn corrupt_need_reconf_flags_cause_bounded_triggerings() {
    let mut sim = cluster_with_policy(4, 303, EvalPolicy::Never);
    {
        let node = sim.process_mut(ProcessId::new(2)).unwrap();
        for peer in 0..4u32 {
            node.recma_mut()
                .corrupt_flags(ProcessId::new(peer), false, true);
        }
    }
    sim.run_rounds(400);
    let after_recovery = total_triggerings(&sim);
    assert!(
        after_recovery <= 4,
        "corrupt needReconf caused {after_recovery} triggerings"
    );
    sim.run_rounds(300);
    assert_eq!(total_triggerings(&sim), after_recovery);
}

/// Lemma 3.20, case 1: when a majority of the configuration crashes, the
/// survivors trigger a reconfiguration and install a configuration of
/// survivors only.
#[test]
fn majority_collapse_triggers_reconfiguration() {
    let mut sim = cluster_with_policy(5, 304, EvalPolicy::Never);
    for i in 2..5u32 {
        sim.crash(ProcessId::new(i));
    }
    let rounds = sim.run_until(1200, |s| converged_config(s) == Some(config_set(0..2)));
    assert!(
        rounds < 1200,
        "survivors never installed a new configuration"
    );
    assert!(total_triggerings(&sim) >= 1);
}

/// Lemma 3.20, case 2: the prediction function path. A single crash is below
/// the majority threshold, but an eager `evalConf()` asks a majority of the
/// members for a reconfiguration.
#[test]
fn prediction_function_majority_triggers_reconfiguration() {
    let mut sim = cluster_with_policy(4, 305, EvalPolicy::MissingFraction { fraction: 0.25 });
    sim.crash(ProcessId::new(3));
    let rounds = sim.run_until(1000, |s| converged_config(s) == Some(config_set(0..3)));
    assert!(
        rounds < 1000,
        "prediction-driven reconfiguration never happened"
    );
    assert!(total_triggerings(&sim) >= 1);
}

/// With `EvalPolicy::Never` and a *minority* crash, the configuration keeps
/// its crashed member: nothing in recMA forces an unnecessary replacement.
#[test]
fn minority_crash_without_prediction_does_not_reconfigure() {
    let mut sim = cluster_with_policy(5, 306, EvalPolicy::Never);
    sim.crash(ProcessId::new(4));
    sim.run_rounds(400);
    assert_eq!(total_triggerings(&sim), 0);
    assert_eq!(converged_config(&sim), Some(config_set(0..5)));
}

/// Lemma 3.21: one event (a majority collapse) causes at most one triggering
/// per surviving participant, not a storm.
#[test]
fn one_event_triggers_at_most_once_per_participant() {
    let mut sim = cluster_with_policy(5, 307, EvalPolicy::Never);
    for i in 3..5u32 {
        sim.crash(ProcessId::new(i));
    }
    // 3 of 5 alive is still a majority; now lose it.
    sim.crash(ProcessId::new(2));
    let rounds = sim.run_until(1200, |s| converged_config(s) == Some(config_set(0..2)));
    assert!(rounds < 1200);
    sim.run_rounds(300);
    for id in sim.active_ids() {
        assert!(
            sim.process(id).unwrap().recma_triggerings() <= 2,
            "participant {id} triggered more than expected"
        );
    }
}

/// A crashed minority plus a prediction threshold that is *not* reached
/// leaves the configuration untouched — the `MissingFraction` policy only
/// fires at its configured fraction.
#[test]
fn prediction_threshold_below_fraction_stays_quiet() {
    // Threshold ½, only ¼ of the members crash.
    let mut sim = cluster_with_policy(4, 308, EvalPolicy::MissingFraction { fraction: 0.5 });
    sim.crash(ProcessId::new(0));
    sim.run_rounds(400);
    assert_eq!(total_triggerings(&sim), 0);
    assert_eq!(converged_config(&sim), Some(config_set(0..4)));
}

/// Changing the policy at run time takes effect: after switching from
/// `Never` to an eager fraction, an old crash is finally acted upon.
#[test]
fn runtime_policy_change_takes_effect() {
    let mut sim = cluster_with_policy(4, 309, EvalPolicy::Never);
    sim.crash(ProcessId::new(3));
    sim.run_rounds(300);
    assert_eq!(
        converged_config(&sim),
        Some(config_set(0..4)),
        "Never policy must not react"
    );
    for i in 0..3u32 {
        sim.process_mut(ProcessId::new(i))
            .unwrap()
            .set_eval_policy(EvalPolicy::MissingFraction { fraction: 0.25 });
    }
    let rounds = sim.run_until(1000, |s| converged_config(s) == Some(config_set(0..3)));
    assert!(
        rounds < 1000,
        "policy change never caused the reconfiguration"
    );
}

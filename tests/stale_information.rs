//! E1/E2 — recSA convergence and closure under injected stale information.
//!
//! Definition 3.1 of the paper classifies the stale information a transient
//! fault can leave behind into four types; Theorem 3.15 (convergence) states
//! that the system eliminates all of them and reaches a conflict-free
//! configuration, and Theorem 3.16 (closure) that it stays conflict-free and
//! that delicate replacements complete exactly once. These tests inject each
//! type of stale information — into local state and into the communication
//! channels — and check convergence and closure.

use std::collections::BTreeSet;

use reconfig::{
    config_set, shared_config, shared_ntf, shared_set, ConfigSet, ConfigValue, EchoTriple,
    NodeConfig, Notification, Phase, RecSaMsg, ReconfigMsg, ReconfigNode,
};
use simnet::{ProcessId, SimConfig, Simulation};

fn converged_config(sim: &Simulation<ReconfigNode>) -> Option<ConfigSet> {
    let mut configs = BTreeSet::new();
    for id in sim.active_ids() {
        match sim.process(id).and_then(|p| p.installed_config()) {
            Some(c) => {
                configs.insert(c);
            }
            None => return None,
        }
    }
    if configs.len() == 1 {
        configs.into_iter().next()
    } else {
        None
    }
}

fn calm(sim: &Simulation<ReconfigNode>) -> bool {
    sim.active_ids()
        .iter()
        .all(|id| sim.process(*id).unwrap().no_reconfiguration())
}

fn steady_cluster(n: u32, seed: u64) -> Simulation<ReconfigNode> {
    let cfg = config_set(0..n);
    let mut sim = Simulation::new(SimConfig::default().with_seed(seed).with_max_delay(0));
    for i in 0..n {
        let id = ProcessId::new(i);
        sim.add_process_with_id(
            id,
            ReconfigNode::new_with_config(id, cfg.clone(), NodeConfig::for_n(16)),
        );
    }
    sim.run_rounds(60);
    assert_eq!(converged_config(&sim), Some(cfg));
    sim
}

/// Type-1 stale information: a phase-0 notification that carries a proposal
/// set. It must be cleaned without disturbing the installed configuration.
#[test]
fn type1_phase_zero_notification_with_set_is_cleaned() {
    let mut sim = steady_cluster(5, 201);
    let victim = ProcessId::new(2);
    sim.process_mut(victim)
        .unwrap()
        .recsa_mut()
        .corrupt_notification(
            victim,
            Notification {
                phase: Phase::Zero,
                set: Some(config_set([7, 8])),
            },
        );
    let rounds = sim.run_until(400, |s| {
        converged_config(s) == Some(config_set(0..5)) && calm(s)
    });
    assert!(rounds < 400, "type-1 stale information was never cleaned");
}

/// Type-2 stale information: an *empty-set* configuration. The reset it
/// triggers must end with every participant adopting its trusted set.
#[test]
fn type2_empty_configuration_triggers_recovering_reset() {
    let mut sim = steady_cluster(4, 202);
    let victim = ProcessId::new(1);
    sim.process_mut(victim)
        .unwrap()
        .recsa_mut()
        .corrupt_config(victim, ConfigValue::Set(ConfigSet::new()));
    let rounds = sim.run_until(600, |s| {
        converged_config(s) == Some(config_set(0..4)) && calm(s)
    });
    assert!(rounds < 600, "empty configuration was never repaired");
    let resets: u64 = sim
        .active_ids()
        .iter()
        .map(|id| sim.process(*id).unwrap().resets_started())
        .sum();
    assert!(
        resets >= 1,
        "the empty configuration should have forced a reset"
    );
}

/// Type-2 stale information: three different configurations held by three
/// different processors at once.
#[test]
fn type2_three_way_configuration_conflict_heals() {
    let mut sim = steady_cluster(6, 203);
    for (node, cfg) in [
        (0u32, config_set([0, 1])),
        (2, config_set([2, 3, 4])),
        (5, config_set([5])),
    ] {
        sim.process_mut(ProcessId::new(node))
            .unwrap()
            .recsa_mut()
            .corrupt_config(ProcessId::new(node), ConfigValue::Set(cfg));
    }
    let rounds = sim.run_until(800, |s| {
        converged_config(s) == Some(config_set(0..6)) && calm(s)
    });
    assert!(rounds < 800, "three-way conflict never healed");
}

/// Type-2 stale information carried by the channels: a stale recSA packet
/// with a conflicting configuration is injected straight into a channel
/// (modelling what a transient fault may leave in transit).
#[test]
fn stale_packet_in_channel_with_conflicting_configuration_heals() {
    let mut sim = steady_cluster(4, 204);
    let stale = RecSaMsg {
        fd: shared_set(config_set(0..4)),
        part: shared_set(config_set(0..4)),
        config: shared_config(ConfigValue::Set(config_set([0, 3]))),
        prp: shared_ntf(Notification::dflt()),
        all: false,
        echo: EchoTriple::default(),
    };
    // The stale packet claims to come from p1 and is delivered to p2.
    sim.network_mut().inject(
        ProcessId::new(1),
        ProcessId::new(2),
        ReconfigMsg::RecSa(stale),
    );
    let rounds = sim.run_until(800, |s| {
        converged_config(s) == Some(config_set(0..4)) && calm(s)
    });
    assert!(rounds < 800, "stale channel packet never flushed out");
}

/// Type-3 stale information: notification phases more than one degree apart
/// (a processor claims phase 2 while everyone else is idle), plus a corrupted
/// `allSeen` set.
#[test]
fn type3_phase_gap_and_corrupt_allseen_recover() {
    let mut sim = steady_cluster(5, 205);
    let victim = ProcessId::new(3);
    {
        let node = sim.process_mut(victim).unwrap();
        node.recsa_mut().corrupt_notification(
            victim,
            Notification::new(Phase::Two, config_set([0, 1, 2, 3, 4, 9])),
        );
        node.recsa_mut()
            .corrupt_all_seen(config_set([0, 9, 17]).into_iter().collect());
    }
    let rounds = sim.run_until(900, |s| calm(s) && converged_config(s).is_some());
    assert!(rounds < 900, "phase-gap corruption never healed");
    // Whatever configuration the recovery settled on — the original one, a
    // brute-force reset onto the trusted set, or the corrupt proposal
    // installed as a spontaneous replacement (all allowed by Lemma 3.14) —
    // it is unique across the participants and a majority of its members is
    // alive, so the quorum system is usable.
    let cfg = converged_config(&sim).unwrap();
    let alive = cfg.iter().filter(|m| m.as_u32() < 5).count();
    assert!(
        alive > cfg.len() / 2,
        "recovered configuration {cfg:?} has no live majority"
    );
}

/// Type-3 stale information: a corrupted echo entry (the victim believes a
/// peer echoed values it never sent).
#[test]
fn type3_corrupt_echo_entry_recovers() {
    let mut sim = steady_cluster(4, 206);
    let victim = ProcessId::new(0);
    sim.process_mut(victim).unwrap().recsa_mut().corrupt_echo(
        ProcessId::new(2),
        EchoTriple {
            part: shared_set(config_set([0, 2, 9])),
            prp: shared_ntf(Notification::new(Phase::One, config_set([9]))),
            all: true,
        },
    );
    let rounds = sim.run_until(600, |s| {
        converged_config(s) == Some(config_set(0..4)) && calm(s)
    });
    assert!(rounds < 600, "corrupt echo never healed");
}

/// Type-4 stale information: the installed configuration contains no active
/// participant (its members are long gone). The system must reset onto the
/// processors that are actually there.
#[test]
fn type4_configuration_of_ghosts_is_replaced() {
    let ghost_config = config_set([40, 41, 42]);
    let mut sim = Simulation::new(SimConfig::default().with_seed(207).with_max_delay(0));
    for i in 0..4u32 {
        let id = ProcessId::new(i);
        sim.add_process_with_id(
            id,
            ReconfigNode::new_with_config(id, ghost_config.clone(), NodeConfig::for_n(16)),
        );
    }
    let rounds = sim.run_until(600, |s| converged_config(s) == Some(config_set(0..4)));
    assert!(rounds < 600, "ghost configuration was never replaced");
}

/// Closure (Theorem 3.16): once conflict-free and calm, the configuration
/// does not change and no resets start without an external cause.
#[test]
fn closure_steady_state_stays_steady() {
    let mut sim = steady_cluster(5, 208);
    sim.run_rounds(100);
    let resets_before: u64 = sim
        .active_ids()
        .iter()
        .map(|id| sim.process(*id).unwrap().resets_started())
        .sum();
    let triggerings_before: u64 = sim
        .active_ids()
        .iter()
        .map(|id| sim.process(*id).unwrap().recma_triggerings())
        .sum();
    sim.run_rounds(400);
    assert_eq!(converged_config(&sim), Some(config_set(0..5)));
    assert!(calm(&sim));
    let resets_after: u64 = sim
        .active_ids()
        .iter()
        .map(|id| sim.process(*id).unwrap().resets_started())
        .sum();
    let triggerings_after: u64 = sim
        .active_ids()
        .iter()
        .map(|id| sim.process(*id).unwrap().recma_triggerings())
        .sum();
    assert_eq!(
        resets_before, resets_after,
        "spurious reset in steady state"
    );
    assert_eq!(
        triggerings_before, triggerings_after,
        "spurious recMA triggering in steady state"
    );
}

/// Closure under explicit replacements: concurrent `estab()` proposals from
/// every participant are resolved into exactly one of the proposed sets.
#[test]
fn concurrent_proposals_select_a_single_winner() {
    let mut sim = steady_cluster(5, 209);
    let proposals: Vec<ConfigSet> = vec![
        config_set([0, 1, 2]),
        config_set([1, 2, 3]),
        config_set([2, 3, 4]),
        config_set([0, 2, 4]),
        config_set([0, 1, 4]),
    ];
    for (i, proposal) in proposals.iter().enumerate() {
        sim.process_mut(ProcessId::new(i as u32))
            .unwrap()
            .request_reconfiguration(proposal.clone());
    }
    let rounds = sim.run_until(1000, |s| {
        converged_config(s)
            .map(|cfg| proposals.contains(&cfg))
            .unwrap_or(false)
            && calm(s)
    });
    assert!(
        rounds < 1000,
        "concurrent proposals never converged onto a single winner"
    );
    // Each node performed at most one delicate install for this event.
    for id in sim.active_ids() {
        assert!(sim.process(id).unwrap().recsa().delicate_installs() <= 1);
    }
}

/// A delicate replacement requested while the system is already recovering
/// from a conflict is not lost: the system first becomes conflict-free, and
/// later replacements still work.
#[test]
fn replacement_after_recovery_still_works() {
    let mut sim = steady_cluster(4, 210);
    // Inject a conflict…
    sim.process_mut(ProcessId::new(3))
        .unwrap()
        .recsa_mut()
        .corrupt_config(ProcessId::new(3), ConfigValue::Set(config_set([3])));
    let rounds = sim.run_until(600, |s| {
        converged_config(s) == Some(config_set(0..4)) && calm(s)
    });
    assert!(rounds < 600);
    // …then perform an ordinary delicate replacement.
    let target = config_set([0, 1, 2]);
    assert!(sim
        .process_mut(ProcessId::new(0))
        .unwrap()
        .request_reconfiguration(target.clone()));
    let rounds = sim.run_until(600, |s| {
        converged_config(s) == Some(target.clone()) && calm(s)
    });
    assert!(rounds < 600, "replacement after recovery never completed");
}

/// Convergence also holds when every processor starts from a *different*
/// arbitrary configuration and the channels are lossy and reordering.
#[test]
fn pairwise_distinct_configurations_converge_under_lossy_links() {
    let mut sim = Simulation::new(
        SimConfig::default()
            .with_seed(211)
            .with_loss_probability(0.1)
            .with_duplication_probability(0.05)
            .with_reordering(true)
            .with_max_delay(2)
            .with_channel_capacity(16),
    );
    for i in 0..5u32 {
        let id = ProcessId::new(i);
        // Every processor believes in a different singleton configuration.
        sim.add_process_with_id(
            id,
            ReconfigNode::new_with_config(id, config_set([i]), NodeConfig::for_n(16)),
        );
    }
    let rounds = sim.run_until(2500, |s| converged_config(s) == Some(config_set(0..5)));
    assert!(rounds < 2500, "distinct configurations never merged");
}

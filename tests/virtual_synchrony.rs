//! E8 — virtually synchronous state-machine replication (Algorithm 4.7).
//!
//! Theorem 4.13: starting from an arbitrary state the algorithm simulates
//! state-machine replication preserving the virtual synchrony property, and
//! the replica state survives coordinator-led delicate reconfigurations.
//! These tests check view agreement, state agreement, coordinator fail-over
//! and the coordinator-led reconfiguration path end to end.

use reconfig::{config_set, ConfigSet, NodeConfig};
use simnet::{ProcessId, SimConfig, Simulation};
use vssmr::SmrNode;

fn smr_cluster(n: u32, seed: u64) -> Simulation<SmrNode> {
    let cfg = config_set(0..n);
    let mut sim: Simulation<SmrNode> =
        Simulation::new(SimConfig::default().with_seed(seed).with_max_delay(0));
    for i in 0..n {
        let id = ProcessId::new(i);
        sim.add_process_with_id(
            id,
            SmrNode::new_member(id, cfg.clone(), NodeConfig::for_n(16)),
        );
    }
    let rounds = sim.run_until(1000, |s| {
        s.active_ids()
            .iter()
            .all(|id| s.process(*id).unwrap().view().is_some())
    });
    assert!(rounds < 1000, "the first view was never installed");
    sim
}

fn all_read(sim: &Simulation<SmrNode>, key: u32, expected: u64) -> bool {
    sim.active_ids()
        .iter()
        .all(|id| sim.process(*id).unwrap().read_register(key) == Some(expected))
}

/// Every member installs the same first view, with the same identifier and
/// member set, and exactly one member considers itself the coordinator.
#[test]
fn members_agree_on_the_installed_view() {
    let sim = smr_cluster(4, 501);
    let views: Vec<_> = sim
        .active_ids()
        .iter()
        .map(|id| sim.process(*id).unwrap().view().cloned().unwrap())
        .collect();
    for pair in views.windows(2) {
        assert_eq!(pair[0].id, pair[1].id, "view identifiers differ");
        assert_eq!(pair[0].members, pair[1].members, "view member sets differ");
    }
    let coordinators: Vec<ProcessId> = sim
        .active_ids()
        .into_iter()
        .filter(|id| sim.process(*id).unwrap().is_coordinator())
        .collect();
    assert_eq!(coordinators.len(), 1, "exactly one coordinator expected");
    assert_eq!(coordinators[0], views[0].coordinator());
}

/// Writes submitted at different replicas are applied by every replica and
/// the replica states converge (same registers, same applied count shape).
#[test]
fn replicated_state_converges_across_members() {
    let mut sim = smr_cluster(4, 502);
    sim.process_mut(ProcessId::new(0))
        .unwrap()
        .submit_write(1, 11);
    sim.process_mut(ProcessId::new(2))
        .unwrap()
        .submit_write(2, 22);
    sim.process_mut(ProcessId::new(3))
        .unwrap()
        .submit_write(3, 33);
    let rounds = sim.run_until(1500, |s| {
        all_read(s, 1, 11) && all_read(s, 2, 22) && all_read(s, 3, 33)
    });
    assert!(
        rounds < 1500,
        "replicated writes never reached every member"
    );
    // Every replica applied at least the three commands.
    for id in sim.active_ids() {
        assert!(sim.process(id).unwrap().commands_applied() >= 3);
    }
}

/// Repeated writes to the same register settle on the last value — the
/// multicast rounds impose a single order that every replica follows.
#[test]
fn overwrites_settle_on_one_value_everywhere() {
    let mut sim = smr_cluster(3, 503);
    for v in 1..=5u64 {
        sim.process_mut(ProcessId::new(0))
            .unwrap()
            .submit_write(9, v);
        sim.run_until(600, |s| all_read(s, 9, v));
    }
    assert!(all_read(&sim, 9, 5));
}

/// When the coordinator crashes, the surviving members install a new view
/// that excludes it and the replicated state survives the fail-over.
#[test]
fn coordinator_crash_fails_over_and_preserves_state() {
    let mut sim = smr_cluster(4, 504);
    sim.process_mut(ProcessId::new(1))
        .unwrap()
        .submit_write(7, 77);
    let rounds = sim.run_until(800, |s| all_read(s, 7, 77));
    assert!(rounds < 800);

    let coordinator = sim
        .active_ids()
        .into_iter()
        .find(|id| sim.process(*id).unwrap().is_coordinator())
        .expect("a coordinator exists");
    sim.crash(coordinator);

    let rounds = sim.run_until(2500, |s| {
        s.active_ids().iter().all(|id| {
            s.process(*id)
                .unwrap()
                .view()
                .map(|v| !v.members.contains(&coordinator))
                .unwrap_or(false)
        })
    });
    assert!(
        rounds < 2500,
        "no new view excluding the crashed coordinator"
    );
    // The register survives the fail-over.
    for id in sim.active_ids() {
        assert_eq!(sim.process(id).unwrap().read_register(7), Some(77));
    }
    // Exactly one new coordinator emerged.
    let coordinators: Vec<ProcessId> = sim
        .active_ids()
        .into_iter()
        .filter(|id| sim.process(*id).unwrap().is_coordinator())
        .collect();
    assert_eq!(coordinators.len(), 1);
    assert_ne!(coordinators[0], coordinator);
}

/// View identifiers only move forward at every replica (monotone view
/// installation), even across a coordinator change.
#[test]
fn view_identifiers_are_monotone() {
    let mut sim = smr_cluster(3, 505);
    let initial: Vec<_> = sim
        .active_ids()
        .iter()
        .map(|id| (*id, sim.process(*id).unwrap().view().cloned().unwrap()))
        .collect();
    // Force a view change by crashing the coordinator.
    let coordinator = initial.iter().map(|(_, v)| v.coordinator()).next().unwrap();
    sim.crash(coordinator);
    sim.run_until(2500, |s| {
        s.active_ids().iter().all(|id| {
            s.process(*id)
                .unwrap()
                .view()
                .map(|v| !v.members.contains(&coordinator))
                .unwrap_or(false)
        })
    });
    for (id, old_view) in initial {
        if !sim.is_active(id) {
            continue;
        }
        let new_view = sim.process(id).unwrap().view().cloned().unwrap();
        assert!(
            old_view.older_than(&new_view),
            "view identifier did not advance at {id}"
        );
        assert!(sim.process(id).unwrap().views_installed() >= 2);
    }
}

/// The coordinator-led delicate reconfiguration (Algorithm 4.6): the
/// coordinator suspends multicast, the configuration shrinks onto the
/// trusted participants, a view of the new configuration is installed and
/// the replica state is carried over.
#[test]
fn coordinator_led_reconfiguration_carries_the_state() {
    let mut sim = smr_cluster(4, 506);
    sim.process_mut(ProcessId::new(2))
        .unwrap()
        .submit_write(5, 55);
    let rounds = sim.run_until(800, |s| all_read(s, 5, 55));
    assert!(rounds < 800);

    // One member crashes; the coordinator decides to reconfigure onto the
    // survivors.
    sim.crash(ProcessId::new(3));
    sim.run_rounds(150);
    let coordinator = sim
        .active_ids()
        .into_iter()
        .find(|id| sim.process(*id).unwrap().is_coordinator());
    let Some(coordinator) = coordinator else {
        // The crashed member was the coordinator; fail-over is covered by the
        // dedicated test above, so nothing more to check here.
        return;
    };
    assert!(sim
        .process_mut(coordinator)
        .unwrap()
        .request_coordinator_reconfiguration());

    let survivors: ConfigSet = config_set(0..3);
    let rounds = sim.run_until(3000, |s| {
        s.active_ids().iter().all(|id| {
            s.process(*id).unwrap().reconfig().installed_config() == Some(survivors.clone())
        })
    });
    assert!(
        rounds < 3000,
        "coordinator-led reconfiguration never completed"
    );
    sim.run_rounds(200);
    for id in sim.active_ids() {
        assert_eq!(
            sim.process(id).unwrap().read_register(5),
            Some(55),
            "state lost across the coordinator-led reconfiguration"
        );
    }
    // Service continues in the new configuration.
    sim.process_mut(ProcessId::new(0))
        .unwrap()
        .submit_write(6, 66);
    let rounds = sim.run_until(1500, |s| all_read(s, 6, 66));
    assert!(rounds < 1500, "no progress after the reconfiguration");
}

/// A joiner added to a running cluster becomes a participant, and once the
/// coordinator reconfigures onto its trusted set the joiner is included in a
/// view and receives the replicated state.
#[test]
fn joiner_receives_state_after_coordinator_reconfiguration() {
    let mut sim = smr_cluster(3, 507);
    sim.process_mut(ProcessId::new(0))
        .unwrap()
        .submit_write(4, 44);
    let rounds = sim.run_until(800, |s| all_read(s, 4, 44));
    assert!(rounds < 800);

    let joiner = ProcessId::new(8);
    sim.add_process_with_id(joiner, SmrNode::new_joiner(joiner, NodeConfig::for_n(16)));
    let rounds = sim.run_until(800, |s| {
        s.process(joiner).unwrap().reconfig().is_participant()
    });
    assert!(rounds < 800, "SMR joiner was never admitted");

    // Let the failure detectors see the newcomer, then reconfigure onto the
    // full trusted set.
    sim.run_rounds(100);
    if let Some(coordinator) = sim
        .active_ids()
        .into_iter()
        .find(|id| sim.process(*id).unwrap().is_coordinator())
    {
        assert!(sim
            .process_mut(coordinator)
            .unwrap()
            .request_coordinator_reconfiguration());
    }
    let rounds = sim.run_until(3000, |s| {
        s.process(joiner)
            .unwrap()
            .view()
            .map(|v| v.members.contains(&joiner))
            .unwrap_or(false)
            && s.process(joiner).unwrap().read_register(4) == Some(44)
    });
    assert!(
        rounds < 3000,
        "the joiner never entered a view with the replicated state"
    );
}

//! Cross-crate integration tests: the whole stack (failure detector + recSA +
//! recMA + joining + labels + counters + VS-SMR) running inside the
//! simulated asynchronous network, including transient-fault and churn
//! scenarios. Each test corresponds to one experiment of `EXPERIMENTS.md`.

use selfstab_reconfig::reconfiguration::{
    config_set, ConfigSet, ConfigValue, EvalPolicy, NodeConfig, ReconfigNode,
};
use selfstab_reconfig::replication::SmrNode;
use selfstab_reconfig::sim::{ProcessId, SimConfig, Simulation};

fn converged_config(sim: &Simulation<ReconfigNode>) -> Option<ConfigSet> {
    let mut configs = std::collections::BTreeSet::new();
    for id in sim.active_ids() {
        match sim.process(id).and_then(|p| p.installed_config()) {
            Some(c) => {
                configs.insert(c);
            }
            None => return None,
        }
    }
    if configs.len() == 1 {
        configs.into_iter().next()
    } else {
        None
    }
}

/// E1 at scale — a 128-process cluster bootstraps from `⊥` to a single
/// configuration within a handful of rounds. Guards the `(N,Θ)` calibration
/// of `NodeConfig::for_n` (a too-tight `Θ` makes large clusters suspect live
/// peers spuriously, and the brute-force reset then never completes) and the
/// shared-payload message path that makes this scale affordable in CI.
#[test]
fn e1_large_scale_bootstrap_from_bottom() {
    let n: u32 = 128;
    let mut sim = Simulation::new(SimConfig::default().with_seed(7).with_max_delay(0));
    for i in 0..n {
        let id = ProcessId::new(i);
        sim.add_process_with_id(
            id,
            ReconfigNode::new_participant(id, NodeConfig::for_n(2 * n as usize)),
        );
    }
    assert_eq!(converged_config(&sim), None, "must start unconverged");
    let rounds = sim.run_until(16, |s| {
        converged_config(s) == Some(config_set(0..n))
            && s.active_ids()
                .iter()
                .all(|id| s.process(*id).unwrap().no_reconfiguration())
    });
    assert!(rounds < 16, "128-process bootstrap did not converge");
}

/// E1 — convergence from an arbitrary state over a lossy, delaying network.
#[test]
fn e1_convergence_under_lossy_network() {
    let mut sim = Simulation::new(
        SimConfig::default()
            .with_seed(101)
            .with_loss_probability(0.1)
            .with_duplication_probability(0.05)
            .with_max_delay(2)
            .with_channel_capacity(8),
    );
    for i in 0..6u32 {
        let id = ProcessId::new(i);
        sim.add_process_with_id(id, ReconfigNode::new_participant(id, NodeConfig::for_n(16)));
    }
    let rounds = sim.run_until(1500, |s| converged_config(s) == Some(config_set(0..6)));
    assert!(rounds < 1500, "did not converge under a lossy network");
}

/// E1 — convergence after injected conflicting configurations.
#[test]
fn e1_recovery_from_conflicting_configurations() {
    let mut sim = Simulation::new(SimConfig::default().with_seed(102).with_max_delay(0));
    for i in 0..5u32 {
        let id = ProcessId::new(i);
        sim.add_process_with_id(
            id,
            ReconfigNode::new_with_config(id, config_set(0..5), NodeConfig::for_n(16)),
        );
    }
    sim.run_rounds(60);
    // Transient fault: three nodes now hold three different configurations.
    for (node, cfg) in [
        (0u32, config_set([0, 1])),
        (2, config_set([2, 3])),
        (4, config_set([4])),
    ] {
        sim.process_mut(ProcessId::new(node))
            .unwrap()
            .recsa_mut()
            .corrupt_config(ProcessId::new(node), ConfigValue::Set(cfg));
    }
    let rounds = sim.run_until(800, |s| {
        converged_config(s) == Some(config_set(0..5))
            && s.active_ids()
                .iter()
                .all(|id| s.process(*id).unwrap().no_reconfiguration())
    });
    assert!(
        rounds < 800,
        "system did not heal from conflicting configurations"
    );
}

/// E2 — a delicate replacement installs exactly the proposed configuration.
#[test]
fn e2_delicate_replacement_end_to_end() {
    let mut sim = Simulation::new(
        SimConfig::default()
            .with_seed(103)
            .with_loss_probability(0.05)
            .with_max_delay(1),
    );
    for i in 0..5u32 {
        let id = ProcessId::new(i);
        sim.add_process_with_id(
            id,
            ReconfigNode::new_with_config(id, config_set(0..5), NodeConfig::for_n(16)),
        );
    }
    sim.run_rounds(80);
    let target = config_set([0, 1, 2, 3]);
    assert!(sim
        .process_mut(ProcessId::new(2))
        .unwrap()
        .request_reconfiguration(target.clone()));
    let rounds = sim.run_until(1200, |s| converged_config(s) == Some(target.clone()));
    assert!(rounds < 1200, "delicate replacement did not complete");
}

/// E4 — majority collapse triggers recMA and the system reconfigures onto the
/// survivors.
#[test]
fn e4_majority_collapse_recovery() {
    let mut sim = Simulation::new(SimConfig::default().with_seed(104).with_max_delay(0));
    for i in 0..5u32 {
        let id = ProcessId::new(i);
        sim.add_process_with_id(id, ReconfigNode::new_participant(id, NodeConfig::for_n(16)));
    }
    sim.run_rounds(100);
    assert_eq!(converged_config(&sim), Some(config_set(0..5)));
    for i in 2..5 {
        sim.crash(ProcessId::new(i));
    }
    let rounds = sim.run_until(1500, |s| converged_config(s) == Some(config_set(0..2)));
    assert!(rounds < 1500, "survivors never formed a live configuration");
}

/// E4 — the prediction function path: a minority crash plus an eager
/// `evalConf()` policy reconfigures without majority loss.
#[test]
fn e4_prediction_function_reconfiguration() {
    let mut sim = Simulation::new(SimConfig::default().with_seed(105).with_max_delay(0));
    for i in 0..4u32 {
        let id = ProcessId::new(i);
        let cfg =
            NodeConfig::for_n(16).with_eval_policy(EvalPolicy::MissingFraction { fraction: 0.2 });
        sim.add_process_with_id(id, ReconfigNode::new_participant(id, cfg));
    }
    sim.run_rounds(100);
    sim.crash(ProcessId::new(3));
    let rounds = sim.run_until(1500, |s| converged_config(s) == Some(config_set(0..3)));
    assert!(
        rounds < 1500,
        "prediction-driven reconfiguration did not happen"
    );
}

/// E5 — joiners are admitted one after the other and never disturb the
/// configuration.
#[test]
fn e5_joining_under_churn() {
    let mut sim = Simulation::new(SimConfig::default().with_seed(106).with_max_delay(0));
    for i in 0..3u32 {
        let id = ProcessId::new(i);
        sim.add_process_with_id(id, ReconfigNode::new_participant(id, NodeConfig::for_n(32)));
    }
    sim.run_rounds(100);
    let base_config = converged_config(&sim).expect("initial configuration installed");
    for j in 10..14u32 {
        let id = ProcessId::new(j);
        sim.add_process_with_id(id, ReconfigNode::new_joiner(id, NodeConfig::for_n(32)));
        let rounds = sim.run_until(600, |s| {
            s.process(id).map(|p| p.is_participant()).unwrap_or(false)
        });
        assert!(rounds < 600, "joiner p{j} was never admitted");
    }
    // The configuration is unchanged: joining does not force reconfiguration.
    assert_eq!(converged_config(&sim), Some(base_config));
}

/// E8 — the full VS-SMR stack keeps the replicated state consistent across a
/// coordinator-led reconfiguration (Theorem 4.13).
#[test]
fn e8_vs_smr_state_survives_reconfiguration() {
    let initial = config_set(0..4);
    let mut sim: Simulation<SmrNode> =
        Simulation::new(SimConfig::default().with_seed(107).with_max_delay(0));
    for i in 0..4u32 {
        let id = ProcessId::new(i);
        sim.add_process_with_id(
            id,
            SmrNode::new_member(id, initial.clone(), NodeConfig::for_n(16)),
        );
    }
    sim.run_until(800, |s| {
        s.active_ids()
            .iter()
            .all(|id| s.process(*id).unwrap().view().is_some())
    });
    sim.process_mut(ProcessId::new(1))
        .unwrap()
        .submit_write(77, 7);
    sim.run_until(800, |s| {
        s.active_ids()
            .iter()
            .all(|id| s.process(*id).unwrap().read_register(77) == Some(7))
    });
    sim.crash(ProcessId::new(3));
    sim.run_rounds(150);
    if let Some(crd) = sim
        .active_ids()
        .into_iter()
        .find(|id| sim.process(*id).unwrap().is_coordinator())
    {
        sim.process_mut(crd)
            .unwrap()
            .request_coordinator_reconfiguration();
    }
    let rounds = sim.run_until(2000, |s| {
        s.active_ids().iter().all(|id| {
            s.process(*id).unwrap().reconfig().installed_config() == Some(config_set(0..3))
        })
    });
    assert!(
        rounds < 2000,
        "coordinator-led reconfiguration never completed"
    );
    sim.run_rounds(150);
    for id in sim.active_ids() {
        assert_eq!(
            sim.process(id).unwrap().read_register(77),
            Some(7),
            "replica state lost across the reconfiguration"
        );
    }
}

/// E9 — total configuration collapse: every member of the installed
/// configuration crashes, and the brute-force technique rebuilds the system
/// from the remaining participants.
#[test]
fn e9_total_collapse_brute_force_recovery() {
    let mut sim = Simulation::new(SimConfig::default().with_seed(108).with_max_delay(0));
    // Configuration members 0..3 plus participants 3..6 that are not members.
    for i in 0..3u32 {
        let id = ProcessId::new(i);
        sim.add_process_with_id(
            id,
            ReconfigNode::new_with_config(id, config_set(0..3), NodeConfig::for_n(16)),
        );
    }
    sim.run_rounds(60);
    for i in 3..6u32 {
        let id = ProcessId::new(i);
        sim.add_process_with_id(id, ReconfigNode::new_joiner(id, NodeConfig::for_n(16)));
    }
    // Let the joiners become participants.
    sim.run_rounds(200);
    // The entire configuration crashes.
    for i in 0..3u32 {
        sim.crash(ProcessId::new(i));
    }
    let rounds = sim.run_until(2000, |s| converged_config(s) == Some(config_set(3..6)));
    assert!(
        rounds < 2000,
        "brute-force recovery after total collapse did not converge"
    );
}

//! MWMR shared-memory emulation over quorum configurations (Section 4.3).
//!
//! The emulation is suspending: operations abort while the configuration is
//! being replaced and resume afterwards; completed writes survive delicate
//! reconfigurations; reads never travel backwards in time while the
//! configuration is stable; network partitions block operations on the side
//! without a quorum and completed values win after the heal.

use reconfig::{config_set, NodeConfig, QuorumSystem};
use sharedmem::{OpOutcome, RegisterId, SharedMemNode};
use simnet::{ProcessId, SimConfig, Simulation};

fn cluster(n: u32, seed: u64) -> Simulation<SharedMemNode> {
    let cfg = config_set(0..n);
    let mut sim = Simulation::new(SimConfig::default().with_seed(seed).with_max_delay(0));
    for i in 0..n {
        let id = ProcessId::new(i);
        sim.add_process_with_id(
            id,
            SharedMemNode::new_member(id, cfg.clone(), NodeConfig::for_n(16)),
        );
    }
    sim.run_rounds(40);
    sim
}

fn committed_read_value(outcomes: &[OpOutcome]) -> Option<Option<u64>> {
    outcomes.iter().find_map(|o| match o {
        OpOutcome::ReadCommitted { value, .. } => Some(*value),
        _ => None,
    })
}

/// Regular register semantics while the configuration is stable: a read that
/// follows a completed write returns that write (or a newer one) — never an
/// older value. Exercised as an alternating write/read history.
#[test]
fn reads_never_return_stale_values() {
    let mut sim = cluster(3, 601);
    let key = RegisterId::new(1);
    let writer = ProcessId::new(0);
    let reader = ProcessId::new(2);
    for v in 1..=6u64 {
        sim.process_mut(writer).unwrap().submit_write(key, v);
        let rounds = sim.run_until(300, |s| s.process(writer).unwrap().writes_committed() == v);
        assert!(rounds < 300, "write {v} never committed");
        let last_written = v;

        sim.process_mut(reader).unwrap().submit_read(key);
        let rounds = sim.run_until(300, |s| s.process(reader).unwrap().reads_committed() == v);
        assert!(rounds < 300, "read {v} never committed");
        let outcomes = sim.process_mut(reader).unwrap().take_completed();
        let value = committed_read_value(&outcomes)
            .expect("a committed read")
            .expect("the register has been written");
        assert!(
            value >= last_written,
            "read returned {value} although {last_written} was already completed"
        );
    }
}

/// Read-your-writes for a single client interleaving its own writes and
/// reads through the quorum.
#[test]
fn a_client_reads_its_own_writes() {
    let mut sim = cluster(3, 602);
    let node = ProcessId::new(1);
    let key = RegisterId::new(3);
    for v in [10u64, 20, 30] {
        sim.process_mut(node).unwrap().submit_write(key, v);
        sim.process_mut(node).unwrap().submit_read(key);
        let expected_reads = v / 10;
        let rounds = sim.run_until(400, |s| {
            s.process(node).unwrap().reads_committed() == expected_reads
        });
        assert!(rounds < 400);
        let outcomes = sim.process_mut(node).unwrap().take_completed();
        assert_eq!(committed_read_value(&outcomes), Some(Some(v)));
    }
}

/// Different registers are independent: writes to one never leak into
/// another.
#[test]
fn registers_are_independent() {
    let mut sim = cluster(3, 603);
    for (i, key) in [1u64, 2, 3].into_iter().enumerate() {
        sim.process_mut(ProcessId::new(i as u32))
            .unwrap()
            .submit_write(RegisterId::new(key), key * 100);
    }
    let rounds = sim.run_until(600, |s| {
        (0..3u32).all(|i| s.process(ProcessId::new(i)).unwrap().writes_committed() == 1)
    });
    assert!(rounds < 600);
    sim.run_rounds(20);
    let reader = ProcessId::new(0);
    for key in [1u64, 2, 3] {
        sim.process_mut(reader)
            .unwrap()
            .submit_read(RegisterId::new(key));
    }
    let rounds = sim.run_until(600, |s| s.process(reader).unwrap().reads_committed() == 3);
    assert!(rounds < 600);
    let outcomes = sim.process_mut(reader).unwrap().take_completed();
    for key in [1u64, 2, 3] {
        assert!(
            outcomes.iter().any(|o| matches!(
                o,
                OpOutcome::ReadCommitted { key: k, value: Some(v), .. }
                    if *k == RegisterId::new(key) && *v == key * 100
            )),
            "register {key} lost its value: {outcomes:?}"
        );
    }
}

/// Operations submitted while a delicate replacement is in flight abort
/// (suspending emulation); resubmitting after the new configuration is
/// installed succeeds and still sees the pre-reconfiguration value.
#[test]
fn operations_abort_during_reconfiguration_and_resume_after() {
    let mut sim = cluster(4, 604);
    let key = RegisterId::new(9);
    let writer = ProcessId::new(0);
    sim.process_mut(writer).unwrap().submit_write(key, 111);
    let rounds = sim.run_until(300, |s| s.process(writer).unwrap().writes_committed() == 1);
    assert!(rounds < 300);
    sim.process_mut(writer).unwrap().take_completed();

    // Start a delicate replacement and immediately submit a read at another
    // member: the read either aborts (suspension) or completes — it must
    // never return a value older than the committed write.
    let target = config_set(0..3);
    assert!(sim
        .process_mut(ProcessId::new(1))
        .unwrap()
        .reconfig_mut()
        .request_reconfiguration(target.clone()));
    let reader = ProcessId::new(2);
    sim.process_mut(reader).unwrap().submit_read(key);
    let rounds = sim.run_until(800, |s| {
        let r = s.process(reader).unwrap();
        r.reads_committed() + r.ops_aborted() >= 1
    });
    assert!(rounds < 800, "the read neither completed nor aborted");
    let outcomes = sim.process_mut(reader).unwrap().take_completed();
    if let Some(value) = committed_read_value(&outcomes) {
        assert_eq!(value, Some(111));
    }

    // Wait for the new configuration, then operations work again.
    let rounds = sim.run_until(800, |s| {
        s.active_ids()
            .iter()
            .all(|id| s.process(*id).unwrap().reconfig().installed_config() == Some(target.clone()))
    });
    assert!(rounds < 800, "replacement never completed");
    sim.run_rounds(60);
    sim.process_mut(reader).unwrap().submit_read(key);
    let before = sim.process(reader).unwrap().reads_committed();
    let rounds = sim.run_until(600, |s| {
        s.process(reader).unwrap().reads_committed() > before
    });
    assert!(
        rounds < 600,
        "reads never resumed after the reconfiguration"
    );
    let outcomes = sim.process_mut(reader).unwrap().take_completed();
    assert_eq!(committed_read_value(&outcomes), Some(Some(111)));
}

/// A member cut off from the majority by a network partition cannot commit
/// writes; after the heal its operations complete and the value written by
/// the majority side is preserved.
#[test]
fn minority_partition_blocks_until_healed() {
    let mut sim = cluster(5, 605);
    let key = RegisterId::new(2);
    // Partition {4} away from {0,1,2,3}.
    let minority = vec![ProcessId::new(4)];
    let majority: Vec<ProcessId> = (0..4).map(ProcessId::new).collect();
    sim.network_mut()
        .split_into(&[majority.clone(), minority.clone()]);

    // The majority side commits a write.
    sim.process_mut(ProcessId::new(0))
        .unwrap()
        .submit_write(key, 500);
    let rounds = sim.run_until(400, |s| {
        s.process(ProcessId::new(0)).unwrap().writes_committed() == 1
    });
    assert!(
        rounds < 400,
        "majority side could not commit during the partition"
    );

    // The minority member tries to write; it cannot reach a quorum.
    sim.process_mut(ProcessId::new(4))
        .unwrap()
        .submit_write(key, 9999);
    sim.run_rounds(150);
    assert_eq!(
        sim.process(ProcessId::new(4)).unwrap().writes_committed(),
        0,
        "a single partitioned member must not commit"
    );

    // Heal: the stuck write eventually completes (with a tag above the
    // majority's write, because its query now sees that value).
    sim.network_mut().heal_all_links();
    let rounds = sim.run_until(800, |s| {
        s.process(ProcessId::new(4)).unwrap().writes_committed() == 1
    });
    assert!(
        rounds < 800,
        "the minority write never completed after the heal"
    );

    // A final read observes the newest committed value.
    let reader = ProcessId::new(1);
    sim.process_mut(reader).unwrap().submit_read(key);
    sim.run_until(300, |s| s.process(reader).unwrap().reads_committed() == 1);
    let outcomes = sim.process_mut(reader).unwrap().take_completed();
    assert_eq!(committed_read_value(&outcomes), Some(Some(9999)));
}

/// The emulation also runs over a grid quorum system (the generalization the
/// paper sketches): reads and writes complete and stay coherent.
#[test]
fn grid_quorums_serve_reads_and_writes() {
    let cfg = config_set(0..4);
    let mut sim = Simulation::new(SimConfig::default().with_seed(606).with_max_delay(0));
    for i in 0..4u32 {
        let id = ProcessId::new(i);
        sim.add_process_with_id(
            id,
            SharedMemNode::new_member(id, cfg.clone(), NodeConfig::for_n(16))
                .with_quorum_system(QuorumSystem::Grid { columns: 2 }),
        );
    }
    sim.run_rounds(40);
    let key = RegisterId::new(1);
    sim.process_mut(ProcessId::new(0))
        .unwrap()
        .submit_write(key, 77);
    let rounds = sim.run_until(400, |s| {
        s.process(ProcessId::new(0)).unwrap().writes_committed() == 1
    });
    assert!(rounds < 400, "grid-quorum write never committed");
    sim.process_mut(ProcessId::new(3)).unwrap().submit_read(key);
    let rounds = sim.run_until(400, |s| {
        s.process(ProcessId::new(3)).unwrap().reads_committed() == 1
    });
    assert!(rounds < 400, "grid-quorum read never committed");
    let outcomes = sim.process_mut(ProcessId::new(3)).unwrap().take_completed();
    assert_eq!(committed_read_value(&outcomes), Some(Some(77)));
}

/// Growing the configuration: a joiner is admitted, the configuration is
/// replaced by one that includes it, and the register contents reach the new
/// member through the post-reconfiguration state transfer.
#[test]
fn new_member_learns_the_registers_after_joining_the_configuration() {
    let mut sim = cluster(3, 607);
    let key = RegisterId::new(6);
    sim.process_mut(ProcessId::new(0))
        .unwrap()
        .submit_write(key, 4242);
    let rounds = sim.run_until(300, |s| {
        s.process(ProcessId::new(0)).unwrap().writes_committed() == 1
    });
    assert!(rounds < 300);

    // The newcomer joins as a participant first.
    let newbie = ProcessId::new(7);
    sim.add_process_with_id(
        newbie,
        SharedMemNode::new_joiner(newbie, NodeConfig::for_n(16)),
    );
    let rounds = sim.run_until(600, |s| {
        s.process(newbie).unwrap().reconfig().is_participant()
    });
    assert!(rounds < 600, "newcomer never became a participant");

    // Replace the configuration with one that includes it.
    let target = config_set([0, 1, 2, 7]);
    assert!(sim
        .process_mut(ProcessId::new(1))
        .unwrap()
        .reconfig_mut()
        .request_reconfiguration(target.clone()));
    let rounds = sim.run_until(1500, |s| {
        s.active_ids()
            .iter()
            .all(|id| s.process(*id).unwrap().reconfig().installed_config() == Some(target.clone()))
    });
    assert!(
        rounds < 1500,
        "replacement onto the grown configuration never completed"
    );

    // The new member eventually holds the register locally (state transfer)…
    let rounds = sim.run_until(600, |s| {
        s.process(newbie).unwrap().local_value(key) == Some(4242)
    });
    assert!(
        rounds < 600,
        "state transfer to the new member never happened"
    );
    // …and serves it through the quorum protocol.
    sim.process_mut(newbie).unwrap().submit_read(key);
    let rounds = sim.run_until(600, |s| s.process(newbie).unwrap().reads_committed() == 1);
    assert!(rounds < 600);
    let outcomes = sim.process_mut(newbie).unwrap().take_completed();
    assert_eq!(committed_read_value(&outcomes), Some(Some(4242)));
}

/// Write-heavy workload with several concurrent writers on the same key: all
/// writes commit, every member converges on the same final tag, and a final
/// read returns one of the written values.
#[test]
fn concurrent_writers_converge_on_one_final_value() {
    let mut sim = cluster(4, 608);
    let key = RegisterId::new(5);
    for i in 0..4u32 {
        sim.process_mut(ProcessId::new(i))
            .unwrap()
            .submit_write(key, 1000 + i as u64);
    }
    let rounds = sim.run_until(800, |s| {
        (0..4u32).all(|i| s.process(ProcessId::new(i)).unwrap().writes_committed() == 1)
    });
    assert!(rounds < 800, "not every concurrent write committed");
    sim.run_rounds(60);

    let reader = ProcessId::new(2);
    sim.process_mut(reader).unwrap().submit_read(key);
    sim.run_until(300, |s| s.process(reader).unwrap().reads_committed() >= 1);
    let outcomes = sim.process_mut(reader).unwrap().take_completed();
    let value = committed_read_value(&outcomes).unwrap().unwrap();
    assert!(
        (1000..1004).contains(&value),
        "read returned a never-written value {value}"
    );

    // All members agree on the final stored tag for the key.
    let tags: std::collections::BTreeSet<(u64, u32)> = sim
        .active_ids()
        .into_iter()
        .filter_map(|id| {
            sim.process(id)
                .unwrap()
                .store()
                .get(key)
                .map(|tv| (tv.tag.seqn, tv.tag.wid.as_u32()))
        })
        .collect();
    assert_eq!(tags.len(), 1, "members hold different final tags: {tags:?}");
}

//! Test configuration and the deterministic input stream.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of one `proptest!` block.
///
/// Only `cases` is consulted by this stand-in; the other fields exist so that
/// struct-update syntax written against the real crate keeps compiling.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated input cases per test.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig {
            cases,
            max_shrink_iters: 0,
        }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// The deterministic random stream inputs are generated from.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Creates the stream for case number `case` of the test identified by
    /// `path`. The same (path, case) pair always yields the same inputs.
    pub fn for_case(path: &str, case: u32) -> Self {
        // FNV-1a over the test path, mixed with the case index.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in path.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(hash ^ ((case as u64) << 32 | case as u64)),
        }
    }

    /// The underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

//! Test configuration and the deterministic input stream.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of one `proptest!` block.
///
/// Only `cases` is consulted by this stand-in; the other fields exist so that
/// struct-update syntax written against the real crate keeps compiling.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated input cases per test.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig {
            cases,
            max_shrink_iters: 0,
        }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// The directory (relative to a crate's manifest dir) regression case
/// indices are persisted under, mirroring the real proptest's
/// `proptest-regressions/` convention.
pub const REGRESSION_DIR: &str = "proptest-regressions";

/// The file persisted failing cases of `test_path` live in, under the crate
/// rooted at `manifest_dir`.
pub fn regression_file(manifest_dir: &str, test_path: &str) -> std::path::PathBuf {
    std::path::Path::new(manifest_dir)
        .join(REGRESSION_DIR)
        .join(format!("{}.txt", test_path.replace("::", "-")))
}

/// Loads the persisted failing case indices for `test_path`: lines of the
/// form `cc <case>` (comments start with `#`). Missing or unreadable files
/// yield an empty list.
pub fn load_regressions(manifest_dir: &str, test_path: &str) -> Vec<u32> {
    let Ok(text) = std::fs::read_to_string(regression_file(manifest_dir, test_path)) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| line.trim().strip_prefix("cc "))
        .filter_map(|case| case.trim().parse().ok())
        .collect()
}

/// Persists a failing case index so later runs replay it first (and CI can
/// upload the file as an artifact). Inputs are generated deterministically
/// from `(test path, case index)`, so the index alone reproduces the case.
/// Errors are reported to stderr but never mask the test failure itself.
pub fn persist_regression(manifest_dir: &str, test_path: &str, case: u32) {
    let path = regression_file(manifest_dir, test_path);
    if load_regressions(manifest_dir, test_path).contains(&case) {
        return;
    }
    let write = || -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut text = match std::fs::read_to_string(&path) {
            Ok(existing) => existing,
            Err(_) => format!(
                "# Seeds for failure cases of {test_path}. Inputs regenerate\n\
                 # deterministically from (test path, case index); replayed before\n\
                 # fresh cases on every run. Commit this file to pin regressions.\n"
            ),
        };
        text.push_str(&format!("cc {case}\n"));
        std::fs::write(&path, text)
    };
    if let Err(e) = write() {
        eprintln!(
            "proptest: could not persist regression {}: {e}",
            path.display()
        );
    }
}

/// The deterministic random stream inputs are generated from.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Creates the stream for case number `case` of the test identified by
    /// `path`. The same (path, case) pair always yields the same inputs.
    pub fn for_case(path: &str, case: u32) -> Self {
        // FNV-1a over the test path, mixed with the case index.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in path.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(hash ^ ((case as u64) << 32 | case as u64)),
        }
    }

    /// The underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regressions_round_trip_through_the_file() {
        let dir =
            std::env::temp_dir().join(format!("proptest-regressions-test-{}", std::process::id()));
        let dir = dir.to_str().unwrap();
        let _ = std::fs::remove_dir_all(dir);
        assert!(load_regressions(dir, "mod::case").is_empty());
        persist_regression(dir, "mod::case", 17);
        persist_regression(dir, "mod::case", 3);
        persist_regression(dir, "mod::case", 17); // deduplicated
        assert_eq!(load_regressions(dir, "mod::case"), vec![17, 3]);
        let file = regression_file(dir, "mod::case");
        let text = std::fs::read_to_string(&file).unwrap();
        assert!(text.starts_with('#'), "header comment expected: {text}");
        let _ = std::fs::remove_dir_all(dir);
    }
}

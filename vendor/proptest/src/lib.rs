//! Offline stand-in for the subset of the `proptest` crate used by this
//! workspace.
//!
//! The build environment has no access to a crates registry, so this crate
//! re-implements the small proptest surface the tests rely on: the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]` header,
//! `prop_assert!`/`prop_assert_eq!`, integer/float range strategies, tuple
//! strategies, `collection::vec`, `collection::btree_set` and `any::<bool>()`.
//!
//! Inputs are generated from a deterministic per-test random stream (seeded
//! from the test's module path and case index), so failures are reproducible
//! run-to-run. Unlike the real proptest there is **no shrinking**: a failing
//! case is reported with its generated inputs via the ordinary panic message.

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Defines property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_cases! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_cases! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_cases {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let __path = concat!(module_path!(), "::", stringify!($name));
                let __manifest_dir = env!("CARGO_MANIFEST_DIR");
                // Replay persisted regression cases first, then the fresh
                // ones (skipping indices already covered by the replay).
                let __persisted =
                    $crate::test_runner::load_regressions(__manifest_dir, __path);
                let __cases = __persisted
                    .iter()
                    .copied()
                    .chain((0..__config.cases).filter(|c| !__persisted.contains(c)))
                    .collect::<Vec<u32>>();
                for __case in __cases {
                    let __outcome = ::std::panic::catch_unwind(|| {
                        let mut __rng =
                            $crate::test_runner::TestRng::for_case(__path, __case);
                        $(
                            let $arg =
                                $crate::strategy::Strategy::generate(&$strategy, &mut __rng);
                        )+
                        $body
                    });
                    if let Err(__panic) = __outcome {
                        // Persist the failing case index so the next run (and
                        // CI artifacts) replay it before anything else.
                        $crate::test_runner::persist_regression(
                            __manifest_dir,
                            __path,
                            __case,
                        );
                        eprintln!(
                            "proptest: case {} of {} failed; persisted under {}",
                            __case,
                            __path,
                            $crate::test_runner::regression_file(__manifest_dir, __path)
                                .display(),
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test (panicking stand-in for the
/// early-return version of the real proptest).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}

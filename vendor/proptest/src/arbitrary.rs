//! The `any::<T>()` entry point.

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates one value covering the whole domain uniformly.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().gen_bool(0.5)
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.rng().gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

//! Value-generation strategies.

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_for_uint_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_for_uint_ranges!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.rng().gen_range(self.clone())
    }
}

macro_rules! impl_strategy_for_tuples {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_for_tuples! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

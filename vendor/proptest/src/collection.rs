//! Collection strategies.

use std::collections::BTreeSet;
use std::ops::Range;

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A size specification: a fixed length or a half-open range of lengths.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        if self.lo >= self.hi {
            self.lo
        } else {
            rng.rng().gen_range(self.lo..self.hi)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange { lo: len, hi: len }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        SizeRange {
            lo: range.start,
            hi: range.end,
        }
    }
}

/// Strategy for `Vec<T>` with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<T>` with target sizes drawn from `size`.
///
/// Duplicates are retried a bounded number of times, so the produced set may
/// be smaller than the sampled target when the element domain is narrow —
/// the same best-effort behaviour the real proptest exhibits.
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.sample(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0;
        while set.len() < target && attempts < 8 * (target + 1) {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}

//! Offline stand-in for the subset of the `rand` crate used by this
//! workspace.
//!
//! The build environment has no access to a crates registry, so this tiny
//! crate provides API-compatible versions of exactly the items the workspace
//! consumes: [`rngs::StdRng`], the [`Rng`] / [`RngCore`] / [`SeedableRng`]
//! traits, `gen`, `gen_bool` and `gen_range` over integer ranges, and
//! [`Error`]. The generator is xoshiro256++ seeded through SplitMix64 —
//! deterministic, fast and of more than sufficient quality for simulation
//! scheduling. It is **not** the same stream as the real `rand::rngs::StdRng`
//! (which is ChaCha12), so seeds are not portable between the two; nothing in
//! this workspace depends on cross-crate stream equality.

use std::fmt;
use std::ops::{Range, RangeInclusive};

pub mod rngs;

/// Error type mirrored from `rand::Error`; infallible in this stand-in.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: raw random words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`] (never fails here).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from their whole domain by
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Converts a random word into a uniform `f64` in `[0, 1)` using the top 53
/// bits.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniformly distributed value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX as u64 {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Uniform sample in `0..span` (`span > 0`) without modulo bias, via
/// widening multiplication with rejection of the short tail.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let word = rng.next_u64();
        let (hi, lo) = {
            let wide = (word as u128) * (span as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo <= zone {
            return hi;
        }
    }
}

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        unit_f64(self.next_u64()) < p
    }

    /// Draws one uniformly distributed value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0usize..=3);
            assert!(w <= 3);
            let f: f64 = rng.gen_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes_and_calibration() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|b| *b != 0));
        assert!(rng.try_fill_bytes(&mut buf).is_ok());
    }
}

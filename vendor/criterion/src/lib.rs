//! Offline stand-in for the subset of the `criterion` crate used by this
//! workspace.
//!
//! The build environment has no access to a crates registry, so this crate
//! implements the benchmark-harness surface the `bench` crate relies on:
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function`,
//! `bench_with_input`, [`BenchmarkId`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Each benchmark runs a
//! short warmup followed by `sample_size` timed iterations and prints
//! `name/param  time: [mean]  (min .. max)` to stdout — no HTML reports, no
//! statistical analysis. Set `CRITERION_STUB_SAMPLES` to override the sample
//! count globally (e.g. `1` for a smoke run).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising a value away.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An identifier with a function name and a parameter value.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_owned(),
        }
    }
}

/// Drives the timed iterations of one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` once per sample, recording wall-clock durations.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // One untimed warmup iteration.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<40} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().expect("non-empty");
        let max = self.samples.iter().max().expect("non-empty");
        println!("{label:<40} time: [{mean:>12.3?}]  ({min:.3?} .. {max:.3?})");
    }
}

fn effective_sample_size(configured: usize) -> usize {
    std::env::var("CRITERION_STUB_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(configured)
        .max(1)
}

/// A named collection of related benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples;
        self
    }

    fn run(&mut self, label: String, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: effective_sample_size(self.sample_size),
        };
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, label));
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        self.run(id.label, |b| routine(b));
        self
    }

    /// Benchmarks `routine` under `id`, passing it `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(id.label, |b| routine(b, input));
        self
    }

    /// Ends the group (a no-op kept for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function(
        &mut self,
        name: &str,
        mut routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: effective_sample_size(10),
        };
        routine(&mut bencher);
        bencher.report(name);
        self
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

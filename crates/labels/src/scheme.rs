//! The reconfiguration-aware labeling algorithm (Algorithm 4.1, using the
//! receipt action of Algorithm 4.2).
//!
//! Only the members of the current configuration run the algorithm. They
//! periodically exchange their locally maximal label pair together with the
//! last pair received from the destination; the receipt action keeps the
//! bounded `storedLabels[]` queues tidy (cancelling dominated or twin
//! labels) and converges every member onto a single, globally maximal label.
//! When a reconfiguration completes, the label structures are rebuilt for the
//! new member set, every queue is emptied, and labels created by non-members
//! are voided — so a processor that left the configuration can never drive
//! the labeling scheme again (Lemma 4.1).

use std::collections::BTreeMap;

use reconfig::ConfigSet;
use simnet::ProcessId;

use crate::label::{Label, LabelPair, LabelQueue};

/// The message exchanged between configuration members: the sender's maximal
/// pair and the pair it last received from the destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelerMsg {
    /// The sender's `max[i]`.
    pub sent_max: LabelPair,
    /// The sender's copy of the receiver's maximal pair (`max[k]`).
    pub last_sent: Option<LabelPair>,
}

simnet::wire_struct_codec!(LabelerMsg {
    sent_max,
    last_sent
});

/// The labeling state of one configuration member.
#[derive(Debug, Clone)]
pub struct Labeler {
    me: ProcessId,
    config: ConfigSet,
    /// `maxC[]`-analogue for labels: own entry plus last received per member.
    max: BTreeMap<ProcessId, LabelPair>,
    /// `storedLabels[]`: one bounded queue per member (keyed by creator).
    stored: BTreeMap<ProcessId, LabelQueue>,
    queue_bound: usize,
    label_creations: u64,
}

impl Labeler {
    /// Creates the labeling state for member `me` of `config`.
    pub fn new(me: ProcessId, config: ConfigSet) -> Self {
        let mut l = Labeler {
            me,
            config: ConfigSet::new(),
            max: BTreeMap::new(),
            stored: BTreeMap::new(),
            queue_bound: 8,
            label_creations: 0,
        };
        l.on_config_change(config);
        l
    }

    /// The current configuration the labeler works for.
    pub fn config(&self) -> &ConfigSet {
        &self.config
    }

    /// Returns `true` when this processor is a member of the current
    /// configuration (only members run the algorithm).
    pub fn is_member(&self) -> bool {
        self.config.contains(&self.me)
    }

    /// Number of labels this processor created so far (the cost measure of
    /// Theorem 4.4).
    pub fn label_creations(&self) -> u64 {
        self.label_creations
    }

    /// The label this processor currently considers globally maximal.
    pub fn local_max(&self) -> Option<Label> {
        self.max
            .get(&self.me)
            .filter(|p| p.is_legit())
            .map(|p| p.ml.clone())
    }

    /// Handles a completed reconfiguration: rebuild the structures for the
    /// new member set (lines 9–14 of Algorithm 4.1).
    pub fn on_config_change(&mut self, new_config: ConfigSet) {
        if new_config == self.config && !self.max.is_empty() {
            return;
        }
        let v = new_config.len().max(1);
        self.queue_bound = v * (v * v + 4) + v;
        self.config = new_config;
        // rebuild(): keep entries of surviving members only…
        self.max.retain(|k, _| self.config.contains(k));
        self.stored.retain(|k, _| self.config.contains(k));
        // …void label pairs created by non-members (cleanMax)…
        let cfg = self.config.clone();
        self.max.retain(|_, p| cfg.contains(&p.ml.creator));
        // …and empty all queues.
        for q in self.stored.values_mut() {
            q.clear();
        }
        if self.is_member() {
            self.use_own_label();
        }
    }

    /// Periodic exchange (the `transmitReady` handler): a member sends its
    /// maximal pair (plus the echo of the destination's) to every other
    /// member.
    pub fn step(&mut self) -> Vec<(ProcessId, LabelerMsg)> {
        if !self.is_member() {
            return Vec::new();
        }
        if !self.max.contains_key(&self.me) {
            self.use_own_label();
        }
        let my_max = self.max[&self.me].clone();
        self.config
            .iter()
            .copied()
            .filter(|k| *k != self.me)
            .map(|k| {
                (
                    k,
                    LabelerMsg {
                        sent_max: my_max.clone(),
                        last_sent: self.max.get(&k).cloned(),
                    },
                )
            })
            .collect()
    }

    /// Handles a label exchange message from another member (the receive
    /// handler of Algorithm 4.1 plus the receipt action of Algorithm 4.2).
    pub fn on_message(&mut self, from: ProcessId, msg: LabelerMsg) {
        if !self.is_member() || !self.config.contains(&from) {
            return;
        }
        // Labels created by non-members are voided before processing.
        if !self.config.contains(&msg.sent_max.ml.creator) {
            return;
        }
        // Store the sender's maximum.
        self.max.insert(from, msg.sent_max.clone());
        self.store_pair(msg.sent_max);
        // If the peer echoed back our own maximum as cancelled, adopt the
        // cancellation.
        if let Some(last) = msg.last_sent {
            if self.config.contains(&last.ml.creator) {
                if let Some(own) = self.max.get(&self.me) {
                    if !last.is_legit() && own.ml == last.ml && own.is_legit() {
                        self.max.insert(self.me, last.clone());
                    }
                }
                self.store_pair(last);
            }
        }
        self.housekeeping();
        self.pick_local_max();
    }

    /// Adds a pair to the creator's bounded queue.
    fn store_pair(&mut self, pair: LabelPair) {
        let creator = pair.ml.creator;
        if !self.config.contains(&creator) {
            return;
        }
        let bound = self.queue_bound;
        self.stored
            .entry(creator)
            .or_insert_with(|| LabelQueue::new(bound))
            .add(pair);
    }

    /// Cancels stored labels that are dominated by (or incomparable with)
    /// another stored label of the same creator — the essence of the receipt
    /// action's bookkeeping.
    fn housekeeping(&mut self) {
        for (creator, queue) in self.stored.iter_mut() {
            let labels: Vec<Label> = queue.iter().map(|p| p.ml.clone()).collect();
            for pair in queue.iter_mut() {
                if !pair.is_legit() {
                    continue;
                }
                if let Some(witness) = labels.iter().find(|l| pair.ml.lb_less(l)) {
                    pair.cancel(witness.clone());
                } else if *creator != self.me {
                    // Incomparable twins of a remote creator: cancel them and
                    // let the creator (or the global maximum of another
                    // creator) take over.
                    if let Some(twin) = labels
                        .iter()
                        .find(|l| pair.ml.incomparable(l) && pair.ml.creator == l.creator)
                    {
                        pair.cancel(twin.clone());
                    }
                }
            }
        }
        // Cancellations recorded in the queues propagate to the max[] array.
        for pair in self.max.values_mut() {
            if !pair.is_legit() {
                continue;
            }
            if let Some(q) = self.stored.get(&pair.ml.creator) {
                if let Some(stored) = q.iter().find(|p| p.ml == pair.ml) {
                    if !stored.is_legit() {
                        *pair = stored.clone();
                    }
                }
            }
        }
    }

    /// `legitLabels()` / `useOwnLabel()`: adopt the greatest legit label in
    /// view, or create a fresh one when none exists.
    fn pick_local_max(&mut self) {
        let legit: Vec<Label> = self
            .max
            .values()
            .filter(|p| p.is_legit())
            .map(|p| p.ml.clone())
            .collect();
        // A label is maximal when no other legit label dominates it.
        let maximal: Vec<&Label> = legit
            .iter()
            .filter(|l| !legit.iter().any(|other| l.lb_less(other)))
            .collect();
        match maximal.iter().max() {
            Some(best) => {
                self.max.insert(self.me, LabelPair::legit((*best).clone()));
            }
            None => self.use_own_label(),
        }
    }

    fn use_own_label(&mut self) {
        // Reuse a legit stored label of our own if one exists…
        if let Some(q) = self.stored.get(&self.me) {
            if let Some(p) = q.newest_legit() {
                self.max.insert(self.me, p.clone());
                return;
            }
        }
        // …otherwise create a label greater than everything we know.
        let known: Vec<&Label> = self
            .stored
            .values()
            .flat_map(|q| q.iter().map(|p| &p.ml))
            .chain(self.max.values().map(|p| &p.ml))
            .collect();
        let fresh = Label::next_label(self.me, &known);
        self.label_creations += 1;
        let pair = LabelPair::legit(fresh);
        self.store_pair(pair.clone());
        self.max.insert(self.me, pair);
    }

    /// Records a label observed by a higher layer (e.g. a label carried by a
    /// counter) so that subsequently created labels dominate it.
    pub fn observe_label(&mut self, label: Label) {
        if self.config.contains(&label.creator) {
            self.store_pair(LabelPair::legit(label));
        }
    }

    /// Cancels the current maximum and creates a fresh label that dominates
    /// every label known locally. The counter service calls this when the
    /// sequence numbers of the current epoch are exhausted (Section 4.2).
    /// Returns the new label, or `None` when this processor is not a member.
    pub fn create_next_label(&mut self) -> Option<Label> {
        if !self.is_member() {
            return None;
        }
        let known: Vec<Label> = self
            .stored
            .values()
            .flat_map(|q| q.iter().map(|p| p.ml.clone()))
            .chain(self.max.values().map(|p| p.ml.clone()))
            .collect();
        let refs: Vec<&Label> = known.iter().collect();
        let fresh = Label::next_label(self.me, &refs);
        self.label_creations += 1;
        let pair = LabelPair::legit(fresh.clone());
        // Cancel the previous maximum so it cannot resurface as legit.
        if let Some(old) = self.max.get_mut(&self.me) {
            if old.is_legit() {
                old.cancel(fresh.clone());
            }
        }
        self.store_pair(pair.clone());
        self.max.insert(self.me, pair);
        Some(fresh)
    }

    /// Injects an arbitrary label pair into the local state (transient-fault
    /// helper used by the `label_convergence` experiment).
    pub fn corrupt_max(&mut self, owner: ProcessId, pair: LabelPair) {
        self.max.insert(owner, pair);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reconfig::config_set;

    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    struct Harness {
        nodes: BTreeMap<ProcessId, Labeler>,
    }

    impl Harness {
        fn new(cfg: &ConfigSet) -> Self {
            Harness {
                nodes: cfg
                    .iter()
                    .map(|id| (*id, Labeler::new(*id, cfg.clone())))
                    .collect(),
            }
        }

        fn round(&mut self) {
            let mut outbox = Vec::new();
            for (id, node) in self.nodes.iter_mut() {
                for (to, m) in node.step() {
                    outbox.push((*id, to, m));
                }
            }
            for (from, to, m) in outbox {
                if let Some(node) = self.nodes.get_mut(&to) {
                    node.on_message(from, m);
                }
            }
        }

        fn rounds(&mut self, n: usize) {
            for _ in 0..n {
                self.round();
            }
        }

        fn common_max(&self) -> Option<Label> {
            let maxes: Vec<Option<Label>> = self.nodes.values().map(|n| n.local_max()).collect();
            let first = maxes.first()?.clone()?;
            if maxes.iter().all(|m| m.as_ref() == Some(&first)) {
                Some(first)
            } else {
                None
            }
        }
    }

    #[test]
    fn members_converge_to_a_single_maximal_label() {
        let cfg = config_set([0, 1, 2, 3]);
        let mut h = Harness::new(&cfg);
        h.rounds(20);
        let max = h.common_max().expect("all members agree on a label");
        assert!(cfg.contains(&max.creator));
    }

    #[test]
    fn corrupted_label_is_cancelled_and_superseded() {
        let cfg = config_set([0, 1, 2]);
        let mut h = Harness::new(&cfg);
        h.rounds(10);
        let before = h.common_max().unwrap();
        // Transient fault: node 1 believes in a wild label by node 2.
        let wild = Label {
            creator: pid(2),
            sting: 999,
            antistings: [1, 2, 3].into_iter().collect(),
        };
        h.nodes
            .get_mut(&pid(1))
            .unwrap()
            .corrupt_max(pid(1), LabelPair::legit(wild));
        h.rounds(30);
        let after = h.common_max().expect("labels re-converge after corruption");
        // The system agrees again; the surviving label need not equal the old
        // one but must be a single legit label.
        let _ = before;
        assert!(cfg.contains(&after.creator));
    }

    #[test]
    fn reconfiguration_discards_non_member_labels() {
        let cfg = config_set([0, 1, 2, 3]);
        let mut h = Harness::new(&cfg);
        h.rounds(15);
        // Shrink the configuration to {0, 1}: labels created by 2 or 3 must
        // disappear from the members' state.
        let new_cfg = config_set([0, 1]);
        for node in h.nodes.values_mut() {
            node.on_config_change(new_cfg.clone());
        }
        h.rounds(15);
        for id in [0u32, 1] {
            let node = &h.nodes[&pid(id)];
            let max = node.local_max().unwrap();
            assert!(new_cfg.contains(&max.creator), "stale creator survived");
        }
    }

    #[test]
    fn non_member_does_not_exchange_labels() {
        let cfg = config_set([0, 1]);
        let mut outsider = Labeler::new(pid(9), cfg);
        assert!(!outsider.is_member());
        assert!(outsider.step().is_empty());
        assert!(outsider.local_max().is_none() || outsider.label_creations() == 0);
    }

    #[test]
    fn label_creations_are_bounded_in_steady_state() {
        let cfg = config_set([0, 1, 2, 3, 4]);
        let mut h = Harness::new(&cfg);
        h.rounds(50);
        let total: u64 = h.nodes.values().map(|n| n.label_creations()).sum();
        // One creation per member at start-up is expected; steady state must
        // not keep creating labels.
        assert!(total <= 2 * 5, "created {total} labels in steady state");
    }
}

//! # labels — bounded self-stabilizing epoch labels for reconfigurable membership
//!
//! Implementation of the labeling scheme of Section 4.1 of *Self-Stabilizing
//! Reconfiguration* (Algorithms 4.1/4.2, adapted from the fixed-membership
//! scheme of Dolev et al., SSS 2015). Many distributed services need an
//! "unbounded" counter (ballots, tags, view identifiers); a transient fault
//! can exhaust any integer counter instantly, so the counter is attached to a
//! bounded **epoch label**, and a new maximal label is created whenever the
//! current one is exhausted or found to be stale.
//!
//! The configuration members (as provided by the `reconfig` crate) run the
//! label exchange; on every reconfiguration the label structures are rebuilt
//! for the new member set and labels of non-members are voided.
//!
//! ```
//! use labels::{Label, Labeler};
//! use reconfig::config_set;
//! use simnet::ProcessId;
//!
//! let cfg = config_set([0, 1]);
//! let mut a = Labeler::new(ProcessId::new(0), cfg.clone());
//! let mut b = Labeler::new(ProcessId::new(1), cfg);
//! for _ in 0..10 {
//!     for (to, m) in a.step() { assert_eq!(to, ProcessId::new(1)); b.on_message(ProcessId::new(0), m); }
//!     for (to, m) in b.step() { assert_eq!(to, ProcessId::new(0)); a.on_message(ProcessId::new(1), m); }
//! }
//! let max: Label = a.local_max().unwrap();
//! assert_eq!(b.local_max(), Some(max));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod label;
pub mod scheme;

pub use label::{Label, LabelPair, LabelQueue, ANTISTINGS, STING_DOMAIN};
pub use scheme::{Labeler, LabelerMsg};

//! Bounded epoch labels and their partial order.
//!
//! The labeling scheme (adapted from Dolev, Georgiou, Marcoullis, Schiller,
//! *Self-stabilizing virtual synchrony*, SSS 2015 — reference \[11\] of the
//! paper) provides **bounded-size** epoch labels with three properties:
//!
//! 1. labels are marked by their creator's identifier and compared first by
//!    creator, then by an Israeli–Li style sting/antistings relation (`≺lb`);
//! 2. two labels of the *same* creator may be incomparable (which is how
//!    stale labels manufactured by a transient fault are detected and
//!    cancelled);
//! 3. a creator that knows any bounded set of labels can always create a
//!    label greater than all of them ([`Label::next_label`]).

use std::collections::BTreeSet;

use simnet::ProcessId;

/// The size of the sting domain. It must exceed the maximum number of labels
/// that can simultaneously exist in the system times the antisting-set size;
/// the default is generous for the system sizes the experiments use while
/// remaining a bounded constant.
pub const STING_DOMAIN: u32 = 4096;

/// The number of antistings each label carries.
pub const ANTISTINGS: usize = 64;

/// A bounded epoch label.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label {
    /// The identifier of the processor that created the label.
    pub creator: ProcessId,
    /// The label's sting.
    pub sting: u32,
    /// The label's antistings (bounded set).
    pub antistings: BTreeSet<u32>,
}

simnet::wire_struct_codec!(Label {
    creator,
    sting,
    antistings
});

impl Label {
    /// Creates the canonical first label of a creator.
    pub fn genesis(creator: ProcessId) -> Self {
        Label {
            creator,
            sting: 0,
            antistings: BTreeSet::new(),
        }
    }

    /// Returns `true` when `self ≺lb other` for labels of the same creator:
    /// `self`'s sting is dominated by `other`'s antistings while the converse
    /// does not hold. Labels of different creators are ordered by creator
    /// identifier (the paper compares creator first).
    pub fn lb_less(&self, other: &Label) -> bool {
        if self.creator != other.creator {
            return self.creator < other.creator;
        }
        other.antistings.contains(&self.sting) && !self.antistings.contains(&other.sting)
    }

    /// Returns `true` when the two labels are incomparable under `≺lb`
    /// (possible only for the same creator; the symptom of a stale label).
    pub fn incomparable(&self, other: &Label) -> bool {
        self != other && !self.lb_less(other) && !other.lb_less(self)
    }

    /// Creates a label by `creator` that is greater (under `≺lb`) than every
    /// label in `known`.
    ///
    /// The new label's antistings contain the stings of all known labels, and
    /// its sting is chosen outside every known label's antistings — hence no
    /// known label can dominate it while it dominates them all.
    pub fn next_label(creator: ProcessId, known: &[&Label]) -> Label {
        let mut antistings: BTreeSet<u32> = known.iter().map(|l| l.sting).collect();
        // Keep the antisting set bounded.
        while antistings.len() > ANTISTINGS {
            let last = *antistings.iter().next_back().expect("non-empty");
            antistings.remove(&last);
        }
        let forbidden: BTreeSet<u32> = known
            .iter()
            .flat_map(|l| l.antistings.iter().copied())
            .chain(antistings.iter().copied())
            .collect();
        let sting = (0..STING_DOMAIN)
            .find(|s| !forbidden.contains(s))
            .unwrap_or(0);
        Label {
            creator,
            sting,
            antistings,
        }
    }
}

/// A label pair `⟨ml, cl⟩`: the main label and, when not `None`, a canceling
/// label proving that `ml` is not (or no longer) maximal.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LabelPair {
    /// The main label.
    pub ml: Label,
    /// The canceling label, `None` while the pair is *legit*.
    pub cl: Option<Label>,
}

simnet::wire_struct_codec!(LabelPair { ml, cl });

impl LabelPair {
    /// A fresh, legit (non-cancelled) pair.
    pub fn legit(ml: Label) -> Self {
        LabelPair { ml, cl: None }
    }

    /// Returns `true` while the pair has not been cancelled.
    pub fn is_legit(&self) -> bool {
        self.cl.is_none()
    }

    /// Cancels the pair with the given witness label.
    pub fn cancel(&mut self, witness: Label) {
        self.cl = Some(witness);
    }
}

/// A bounded queue of label pairs for one creator (the paper's
/// `storedLabels[j]` queues). The most recently used entry sits at the front;
/// exceeding the bound drops the oldest entry.
#[derive(Debug, Clone, Default)]
pub struct LabelQueue {
    entries: Vec<LabelPair>,
    bound: usize,
}

impl LabelQueue {
    /// Creates an empty queue bounded to `bound` entries.
    pub fn new(bound: usize) -> Self {
        LabelQueue {
            entries: Vec::new(),
            bound: bound.max(1),
        }
    }

    /// Number of stored pairs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no pair is stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the stored pairs, most recently used first.
    pub fn iter(&self) -> impl Iterator<Item = &LabelPair> {
        self.entries.iter()
    }

    /// Mutable iteration over the stored pairs.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut LabelPair> {
        self.entries.iter_mut()
    }

    /// Adds (or refreshes) a pair at the front of the queue. If a pair with
    /// the same main label exists, the cancelled version wins and duplicates
    /// are removed.
    pub fn add(&mut self, pair: LabelPair) {
        if let Some(pos) = self.entries.iter().position(|p| p.ml == pair.ml) {
            let mut existing = self.entries.remove(pos);
            if existing.is_legit() && !pair.is_legit() {
                existing = pair;
            }
            self.entries.insert(0, existing);
        } else {
            self.entries.insert(0, pair);
            if self.entries.len() > self.bound {
                self.entries.pop();
            }
        }
    }

    /// Removes every stored pair.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// The most recent legit pair, if any.
    pub fn newest_legit(&self) -> Option<&LabelPair> {
        self.entries.iter().find(|p| p.is_legit())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn next_label_dominates_all_known() {
        let a = Label::genesis(pid(1));
        let b = Label::next_label(pid(1), &[&a]);
        assert!(a.lb_less(&b));
        assert!(!b.lb_less(&a));
        let c = Label::next_label(pid(1), &[&a, &b]);
        assert!(a.lb_less(&c) && b.lb_less(&c));
    }

    #[test]
    fn labels_of_different_creators_order_by_creator() {
        let a = Label::genesis(pid(1));
        let b = Label::genesis(pid(2));
        assert!(a.lb_less(&b));
        assert!(!b.lb_less(&a));
    }

    #[test]
    fn stale_labels_can_be_incomparable() {
        // Two labels that do not reference each other's stings are
        // incomparable — exactly the situation after a transient fault
        // fabricates an unknown label.
        let l1 = Label {
            creator: pid(3),
            sting: 5,
            antistings: [10, 11].into_iter().collect(),
        };
        let l2 = Label {
            creator: pid(3),
            sting: 20,
            antistings: [30, 31].into_iter().collect(),
        };
        assert!(l1.incomparable(&l2));
        // next_label over both dominates both.
        let next = Label::next_label(pid(3), &[&l1, &l2]);
        assert!(l1.lb_less(&next) && l2.lb_less(&next));
    }

    #[test]
    fn label_pair_cancellation() {
        let ml = Label::genesis(pid(1));
        let mut pair = LabelPair::legit(ml.clone());
        assert!(pair.is_legit());
        let witness = Label::next_label(pid(1), &[&ml]);
        pair.cancel(witness);
        assert!(!pair.is_legit());
    }

    #[test]
    fn queue_is_bounded_and_deduplicates() {
        let mut q = LabelQueue::new(3);
        for i in 0..5u32 {
            let l = Label {
                creator: pid(1),
                sting: i,
                antistings: BTreeSet::new(),
            };
            q.add(LabelPair::legit(l));
        }
        assert_eq!(q.len(), 3);
        // Re-adding an existing main label does not grow the queue, and a
        // cancelled copy replaces the legit one.
        let newest = q.iter().next().unwrap().ml.clone();
        let mut cancelled = LabelPair::legit(newest.clone());
        cancelled.cancel(Label::genesis(pid(1)));
        q.add(cancelled);
        assert_eq!(q.len(), 3);
        assert!(!q.iter().find(|p| p.ml == newest).unwrap().is_legit());
        assert!(q.newest_legit().is_some());
        q.clear();
        assert!(q.is_empty());
    }
}

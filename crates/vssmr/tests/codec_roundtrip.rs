//! Wire-codec round-trip and malformed-input tests for the SMR envelope
//! ([`SmrMsg`]), which nests the reconfiguration and counter envelopes.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use counters::{Counter, CounterMsg};
use labels::Label;
use proptest::prelude::*;
use reconfig::{RecMaMsg, ReconfigMsg};
use simnet::codec::{DecodeError, WireCodec};
use simnet::{ProcessId, SimRng};
use vssmr::{Command, Op, ReplicaState, SmrMsg, StateMsg, Status, View};

fn arb_pid(rng: &mut SimRng) -> ProcessId {
    ProcessId::new(rng.range_inclusive(0, 40) as u32)
}

fn arb_counter(rng: &mut SimRng) -> Counter {
    Counter {
        label: Label {
            creator: arb_pid(rng),
            sting: rng.range_inclusive(0, 1 << 16) as u32,
            antistings: (0..rng.range_inclusive(0, 3))
                .map(|_| rng.range_inclusive(0, 1 << 16) as u32)
                .collect(),
        },
        seqn: rng.range_inclusive(0, 1 << 40),
        wid: arb_pid(rng),
    }
}

fn arb_view(rng: &mut SimRng) -> View {
    View {
        id: arb_counter(rng),
        members: (0..rng.range_inclusive(1, 5))
            .map(|_| arb_pid(rng))
            .collect::<BTreeSet<_>>(),
    }
}

fn arb_command(rng: &mut SimRng) -> Command {
    Command {
        client: arb_pid(rng),
        seq: rng.range_inclusive(0, 1 << 30),
        op: if rng.chance(0.8) {
            Op::Write {
                key: rng.range_inclusive(0, 64) as u32,
                value: rng.range_inclusive(0, u64::MAX / 2),
            }
        } else {
            Op::Noop
        },
    }
}

fn arb_state_msg(rng: &mut SimRng) -> StateMsg {
    StateMsg {
        view: rng.chance(0.7).then(|| arb_view(rng)),
        prop_view: rng.chance(0.3).then(|| arb_view(rng)),
        status: match rng.range_inclusive(0, 2) {
            0 => Status::Multicast,
            1 => Status::Propose,
            _ => Status::Install,
        },
        rnd: rng.range_inclusive(0, 1 << 30),
        state: ReplicaState {
            registers: (0..rng.range_inclusive(0, 6))
                .map(|_| {
                    (
                        rng.range_inclusive(0, 64) as u32,
                        rng.range_inclusive(0, u64::MAX / 2),
                    )
                })
                .collect::<BTreeMap<_, _>>(),
            applied: rng.range_inclusive(0, 1 << 30),
        },
        input: rng.chance(0.5).then(|| arb_command(rng)),
        no_crd: rng.chance(0.5),
        suspend: rng.chance(0.5),
    }
}

fn arb_msg(rng: &mut SimRng) -> SmrMsg {
    match rng.range_inclusive(0, 2) {
        0 => SmrMsg::Reconfig(if rng.chance(0.5) {
            ReconfigMsg::Heartbeat
        } else {
            ReconfigMsg::RecMa(RecMaMsg {
                no_maj: rng.chance(0.5),
                need_reconf: rng.chance(0.5),
            })
        }),
        1 => SmrMsg::Counter(CounterMsg::Sync(arb_counter(rng))),
        _ => SmrMsg::State(arb_state_msg(rng)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn envelope_roundtrips(seed in 0u64..u64::MAX) {
        let msg = arb_msg(&mut SimRng::seed_from(seed));
        let bytes = msg.to_bytes();
        prop_assert_eq!(SmrMsg::from_bytes(&bytes), Ok(msg));
    }

    #[test]
    fn strict_prefixes_never_decode(seed in 0u64..u64::MAX) {
        let msg = arb_msg(&mut SimRng::seed_from(seed));
        let bytes = msg.to_bytes();
        for cut in 0..bytes.len() {
            prop_assert!(SmrMsg::from_bytes(&bytes[..cut]).is_err());
        }
    }
}

#[test]
fn nested_envelopes_roundtrip_through_the_outer_codec() {
    // A full RecSa payload rides the Reconfig lane of SmrMsg unchanged.
    let mut rng = SimRng::seed_from(11);
    let inner = reconfig::RecSaMsg {
        fd: Arc::new([arb_pid(&mut rng)].into_iter().collect()),
        part: Arc::new(BTreeSet::new()),
        config: Arc::new(reconfig::types::ConfigValue::Bottom),
        prp: Arc::new(reconfig::types::Notification::default()),
        all: true,
        echo: reconfig::types::EchoTriple {
            part: Arc::new(BTreeSet::new()),
            prp: Arc::new(reconfig::types::Notification::default()),
            all: false,
        },
    };
    let msg = SmrMsg::Reconfig(ReconfigMsg::RecSa(inner));
    assert_eq!(SmrMsg::from_bytes(&msg.to_bytes()), Ok(msg));
}

#[test]
fn unknown_lane_tag_is_a_typed_error() {
    assert_eq!(
        SmrMsg::from_bytes(&[8]),
        Err(DecodeError::UnknownLane {
            ty: "SmrMsg",
            tag: 8
        })
    );
}

#[test]
fn oversized_register_map_claim_is_rejected() {
    // State lane with view=None, prop_view=None, status, rnd, then a
    // register map claiming u32::MAX entries.
    let mut bytes = vec![2, 0, 0, 0];
    bytes.extend_from_slice(&0u64.to_le_bytes());
    bytes.extend_from_slice(&u32::MAX.to_le_bytes());
    let err = SmrMsg::from_bytes(&bytes).unwrap_err();
    assert!(matches!(
        err,
        DecodeError::TooLarge { .. } | DecodeError::Truncated { .. }
    ));
}

//! MWMR shared-memory emulation on top of the virtually synchronous SMR
//! (Section 4.3, following Birman et al.'s virtually-synchronous methodology).
//!
//! A multi-writer multi-reader register named by a `u32` key is emulated by
//! funnelling writes through the replicated state machine and serving reads
//! from the local replica of any view member. During a delicate
//! reconfiguration the service is *suspending*: writes queue locally until
//! the new configuration's first view is installed, and the register state is
//! preserved across the change (Theorem 4.13 applied to the register
//! emulation).

use simnet::ProcessId;

use crate::smr::SmrNode;

/// A convenience handle for using one [`SmrNode`] as a MWMR register store.
#[derive(Debug)]
pub struct RegisterClient<'a> {
    node: &'a mut SmrNode,
}

impl<'a> RegisterClient<'a> {
    /// Wraps a replica.
    pub fn new(node: &'a mut SmrNode) -> Self {
        RegisterClient { node }
    }

    /// The identifier of the replica this client talks to.
    pub fn replica(&self) -> ProcessId {
        self.node.id()
    }

    /// Writes `value` to the register `key`. The write takes effect once the
    /// command passes through a multicast round; use
    /// [`RegisterClient::read`] on any replica to observe it.
    pub fn write(&mut self, key: u32, value: u64) {
        self.node.submit_write(key, value);
    }

    /// Reads register `key` from the local replica.
    pub fn read(&self, key: u32) -> Option<u64> {
        self.node.read_register(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smr::SmrMsg;
    use reconfig::{config_set, NodeConfig};
    use simnet::{SimConfig, Simulation};

    #[test]
    fn register_write_is_visible_at_every_replica() {
        let cfg = config_set(0..3);
        let mut sim: Simulation<SmrNode> =
            Simulation::new(SimConfig::default().with_seed(31).with_max_delay(0));
        for i in 0..3u32 {
            let id = ProcessId::new(i);
            sim.add_process_with_id(
                id,
                SmrNode::new_member(id, cfg.clone(), NodeConfig::for_n(8)),
            );
        }
        sim.run_until(400, |s| {
            s.active_ids()
                .iter()
                .all(|id| s.process(*id).unwrap().view().is_some())
        });
        {
            let node = sim.process_mut(ProcessId::new(2)).unwrap();
            let mut client = RegisterClient::new(node);
            assert_eq!(client.replica(), ProcessId::new(2));
            client.write(3, 33);
            assert_eq!(client.read(3), None, "write is not applied synchronously");
        }
        let rounds = sim.run_until(400, |s| {
            s.active_ids()
                .iter()
                .all(|id| s.process(*id).unwrap().read_register(3) == Some(33))
        });
        assert!(rounds < 400, "the write never became visible everywhere");
        let _phantom: Option<SmrMsg> = None;
    }

    #[test]
    fn later_write_overwrites_earlier_value() {
        let cfg = config_set(0..3);
        let mut sim: Simulation<SmrNode> =
            Simulation::new(SimConfig::default().with_seed(32).with_max_delay(0));
        for i in 0..3u32 {
            let id = ProcessId::new(i);
            sim.add_process_with_id(
                id,
                SmrNode::new_member(id, cfg.clone(), NodeConfig::for_n(8)),
            );
        }
        sim.run_until(400, |s| {
            s.active_ids()
                .iter()
                .all(|id| s.process(*id).unwrap().view().is_some())
        });
        RegisterClient::new(sim.process_mut(ProcessId::new(0)).unwrap()).write(1, 10);
        sim.run_until(400, |s| {
            s.active_ids()
                .iter()
                .all(|id| s.process(*id).unwrap().read_register(1) == Some(10))
        });
        RegisterClient::new(sim.process_mut(ProcessId::new(1)).unwrap()).write(1, 20);
        let rounds = sim.run_until(400, |s| {
            s.active_ids()
                .iter()
                .all(|id| s.process(*id).unwrap().read_register(1) == Some(20))
        });
        assert!(rounds < 400, "second write never superseded the first");
    }
}

//! # vssmr — self-stabilizing reconfigurable virtual synchrony, SMR and shared memory
//!
//! Implementation of Section 4.3 of *Self-Stabilizing Reconfiguration*
//! (Algorithms 4.6/4.7): a coordinator-based, virtually synchronous
//! replicated state machine whose views live inside the configurations
//! provided by the `reconfig` crate and whose view identifiers come from the
//! self-stabilizing counter service of the `counters` crate. A
//! coordinator-led *delicate* reconfiguration suspends multicast, carries the
//! replica state into the first view of the new configuration and resumes
//! service (Theorem 4.13); a brute-force reconfiguration recovers the service
//! after transient faults (possibly losing uncommitted state, as the paper
//! notes). The [`register`] module layers a MWMR shared-memory emulation on
//! top.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod register;
pub mod smr;

pub use register::RegisterClient;
pub use smr::{Command, Op, ReplicaState, SmrMsg, SmrNode, StateMsg, Status, View};

//! Self-stabilizing reconfigurable virtually synchronous state-machine
//! replication (Algorithms 4.6 and 4.7).
//!
//! The service is coordinator-based and works in the primary component of the
//! current configuration:
//!
//! * a configuration member that is trusted by a majority of the
//!   configuration and believes there is no valid coordinator obtains a fresh
//!   **view identifier from the counter service** (Section 4.2) and proposes
//!   a view consisting of the participants it trusts;
//! * followers adopt the proposal with the lexicographically (by `≺ct`)
//!   greatest identifier; once every proposed member echoed the proposal the
//!   coordinator synchronises the replica state (taking the most advanced
//!   replica) and installs the view;
//! * inside an installed view the coordinator runs **multicast rounds**: it
//!   gathers one input per member, applies them in a deterministic order and
//!   disseminates the new replica state, which followers adopt — any two
//!   processors that survive consecutive views deliver the same messages and
//!   hold the same state (virtual synchrony);
//! * for a **coordinator-led delicate reconfiguration** (Algorithm 4.6) the
//!   coordinator suspends input fetching, waits until every view member
//!   reports `suspend`, triggers `estab()` through the reconfiguration node
//!   and, once the new configuration is installed, proposes a fresh view that
//!   carries the preserved state into the new configuration.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use counters::{Counter, CounterMsg, CounterNode, IncrementOutcome};
use reconfig::{ConfigSet, NodeConfig, ReconfigMsg, ReconfigNode};
use simnet::stack::{Layer, Outbox, Router};
use simnet::ProcessId;

/// A command submitted to the replicated state machine.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Command {
    /// The processor that submitted the command.
    pub client: ProcessId,
    /// Client-local sequence number (for read-your-writes bookkeeping).
    pub seq: u64,
    /// The operation.
    pub op: Op,
}

/// Operations understood by the replicated state machine: a small key–value
/// store, rich enough to emulate MWMR registers (Section 4.3).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Op {
    /// Write `value` into register `key`.
    Write {
        /// Register name.
        key: u32,
        /// Value to store.
        value: u64,
    },
    /// A no-op (used for liveness probes in tests and benchmarks).
    Noop,
}

/// The replicated state: the registers plus the count of applied commands.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReplicaState {
    /// The register contents.
    pub registers: BTreeMap<u32, u64>,
    /// Number of commands applied so far (the replication "round trip"
    /// witness used to pick the most advanced replica during state
    /// synchronisation).
    pub applied: u64,
}

impl ReplicaState {
    /// Applies one command.
    pub fn apply(&mut self, cmd: &Command) {
        if let Op::Write { key, value } = cmd.op {
            self.registers.insert(key, value);
        }
        self.applied += 1;
    }
}

/// A view: an identifier drawn from the counter service plus its member set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct View {
    /// The view identifier (a counter, so views are totally ordered and the
    /// identifier space survives transient faults).
    pub id: Counter,
    /// The members of the view.
    pub members: BTreeSet<ProcessId>,
}

impl View {
    /// The coordinator of the view is the writer of its identifier.
    pub fn coordinator(&self) -> ProcessId {
        self.id.wid
    }

    /// Returns `true` when `self`'s identifier precedes `other`'s.
    pub fn older_than(&self, other: &View) -> bool {
        self.id.ct_less(&other.id)
    }
}

/// The status of a replica (Algorithm 4.7's `status` field).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Normal operation inside an installed view.
    Multicast,
    /// A view proposal is being echoed.
    Propose,
    /// The coordinator is installing the new view.
    Install,
}

/// The state snapshot broadcast by every participant each step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateMsg {
    /// The sender's installed view, if any.
    pub view: Option<View>,
    /// The sender's proposed view, if any.
    pub prop_view: Option<View>,
    /// The sender's status.
    pub status: Status,
    /// The sender's multicast round number.
    pub rnd: u64,
    /// The sender's replica state.
    pub state: ReplicaState,
    /// The sender's pending input for the current round, if any.
    pub input: Option<Command>,
    /// Whether the sender currently sees no valid coordinator.
    pub no_crd: bool,
    /// Whether the sender has suspended message delivery (pre-reconfiguration).
    pub suspend: bool,
}

// --- wire codec ---------------------------------------------------------

simnet::wire_struct_codec!(Command { client, seq, op });
simnet::wire_struct_codec!(ReplicaState { registers, applied });
simnet::wire_struct_codec!(View { id, members });
simnet::wire_struct_codec!(StateMsg {
    view,
    prop_view,
    status,
    rnd,
    state,
    input,
    no_crd,
    suspend,
});

impl simnet::codec::WireCodec for Op {
    fn encode(&self, out: &mut Vec<u8>) {
        use simnet::codec::WireCodec as W;
        match self {
            Op::Write { key, value } => {
                out.push(0);
                W::encode(key, out);
                W::encode(value, out);
            }
            Op::Noop => out.push(1),
        }
    }
    fn decode(r: &mut simnet::codec::Reader<'_>) -> Result<Self, simnet::codec::DecodeError> {
        use simnet::codec::WireCodec as W;
        match r.u8()? {
            0 => Ok(Op::Write {
                key: W::decode(r)?,
                value: W::decode(r)?,
            }),
            1 => Ok(Op::Noop),
            tag => Err(simnet::codec::DecodeError::UnknownLane { ty: "Op", tag }),
        }
    }
}

impl simnet::codec::WireCodec for Status {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            Status::Multicast => 0,
            Status::Propose => 1,
            Status::Install => 2,
        });
    }
    fn decode(r: &mut simnet::codec::Reader<'_>) -> Result<Self, simnet::codec::DecodeError> {
        match r.u8()? {
            0 => Ok(Status::Multicast),
            1 => Ok(Status::Propose),
            2 => Ok(Status::Install),
            tag => Err(simnet::codec::DecodeError::UnknownLane { ty: "Status", tag }),
        }
    }
}

simnet::wire_enum! {
    /// Messages exchanged by [`SmrNode`]s: the reconfiguration stack, the
    /// counter service and the replication layer share one wire format,
    /// multiplexed through the shared [`simnet::stack`] mechanism.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum SmrMsg {
        /// Reconfiguration scheme traffic.
        Reconfig(ReconfigMsg),
        /// Counter service traffic (view identifiers).
        Counter(CounterMsg),
        /// Replication state broadcast.
        State(StateMsg),
    }
}

/// One replica of the self-stabilizing reconfigurable VS-SMR service.
#[derive(Debug, Clone)]
pub struct SmrNode {
    me: ProcessId,
    reconfig: ReconfigNode,
    counter: CounterNode,
    /// Installed view and replication status.
    view: Option<View>,
    prop_view: Option<View>,
    status: Status,
    rnd: u64,
    state: ReplicaState,
    /// Commands submitted locally and not yet handed to a multicast round.
    pending: VecDeque<Command>,
    next_seq: u64,
    current_input: Option<Command>,
    /// Most recent state snapshot received from each peer.
    peers: BTreeMap<ProcessId, StateMsg>,
    /// Reconfiguration handshake flags (Algorithm 4.6/4.7).
    suspend: bool,
    reconf_requested: bool,
    /// Set after the view-id increment was requested but not yet granted.
    awaiting_view_id: bool,
    /// Observability counters.
    views_installed: u64,
    commands_applied_total: u64,
    /// Locally submitted commands delivered to the replicated state but not
    /// yet claimed through [`simnet::ScenarioTarget::complete_op`]. Not part
    /// of the digestible protocol state (`state_line` ignores it).
    unclaimed_completions: u64,
}

impl SmrNode {
    /// Creates a replica that is one of the initial configuration members.
    pub fn new_member(me: ProcessId, initial_config: ConfigSet, node_config: NodeConfig) -> Self {
        let reconfig = ReconfigNode::new_with_config(me, initial_config.clone(), node_config);
        let counter = CounterNode::new(me, initial_config);
        SmrNode {
            me,
            reconfig,
            counter,
            view: None,
            prop_view: None,
            status: Status::Multicast,
            rnd: 0,
            state: ReplicaState::default(),
            pending: VecDeque::new(),
            next_seq: 0,
            current_input: None,
            peers: BTreeMap::new(),
            suspend: false,
            reconf_requested: false,
            awaiting_view_id: false,
            views_installed: 0,
            commands_applied_total: 0,
            unclaimed_completions: 0,
        }
    }

    /// Creates a replica that joins an already running system.
    pub fn new_joiner(me: ProcessId, node_config: NodeConfig) -> Self {
        let reconfig = ReconfigNode::new_joiner(me, node_config);
        let counter = CounterNode::new(me, ConfigSet::new());
        SmrNode {
            me,
            reconfig,
            counter,
            view: None,
            prop_view: None,
            status: Status::Multicast,
            rnd: 0,
            state: ReplicaState::default(),
            pending: VecDeque::new(),
            next_seq: 0,
            current_input: None,
            peers: BTreeMap::new(),
            suspend: false,
            reconf_requested: false,
            awaiting_view_id: false,
            views_installed: 0,
            commands_applied_total: 0,
            unclaimed_completions: 0,
        }
    }

    /// This replica's identifier.
    pub fn id(&self) -> ProcessId {
        self.me
    }

    /// The currently installed view, if any.
    pub fn view(&self) -> Option<&View> {
        self.view.as_ref()
    }

    /// The replica state (register contents).
    pub fn state(&self) -> &ReplicaState {
        &self.state
    }

    /// Reads a register from the local replica.
    pub fn read_register(&self, key: u32) -> Option<u64> {
        self.state.registers.get(&key).copied()
    }

    /// Number of views installed by this replica.
    pub fn views_installed(&self) -> u64 {
        self.views_installed
    }

    /// Total number of commands applied by this replica.
    pub fn commands_applied(&self) -> u64 {
        self.state.applied
    }

    /// The underlying reconfiguration node (white-box access).
    pub fn reconfig(&self) -> &ReconfigNode {
        &self.reconfig
    }

    /// Returns `true` when this replica currently acts as the coordinator of
    /// an installed view.
    pub fn is_coordinator(&self) -> bool {
        self.view
            .as_ref()
            .map(|v| v.coordinator() == self.me)
            .unwrap_or(false)
    }

    /// Submits a write of `value` to register `key`. The command is applied
    /// once it goes through a multicast round of the installed view.
    pub fn submit_write(&mut self, key: u32, value: u64) {
        let cmd = Command {
            client: self.me,
            seq: self.next_seq,
            op: Op::Write { key, value },
        };
        self.next_seq += 1;
        self.pending.push_back(cmd);
    }

    /// Asks the coordinator to perform a delicate reconfiguration onto the
    /// currently trusted participant set (Algorithm 4.6). Non-coordinators
    /// ignore the request. Returns `true` when the request was recorded.
    pub fn request_coordinator_reconfiguration(&mut self) -> bool {
        if self.is_coordinator() {
            self.reconf_requested = true;
            true
        } else {
            false
        }
    }

    fn current_config(&self) -> Option<ConfigSet> {
        self.reconfig.installed_config()
    }

    /// The set of configuration members this replica trusts.
    fn trusted_members(&self, config: &ConfigSet) -> BTreeSet<ProcessId> {
        let trusted = self.reconfig.trusted();
        config
            .iter()
            .copied()
            .filter(|m| trusted.contains(m))
            .collect()
    }

    /// Whether a majority of `config` is trusted.
    fn sees_majority(&self, config: &ConfigSet) -> bool {
        !config.is_empty() && self.trusted_members(config).len() > config.len() / 2
    }

    /// A view identifier is *legit* for `config` when both its writer (the
    /// coordinator) and the creator of its epoch label are configuration
    /// members. A label created by a non-member is discarded by the counter
    /// service, so identifiers carrying it can never be compared against the
    /// identifiers the restarted counter hands out — comparing against such
    /// a view wedges view changes forever (labels of different creators are
    /// ordered by creator, so the stale identifier may dominate every fresh
    /// one; the chaos campaigns caught this after a configuration shrank).
    fn view_id_legit(config: &ConfigSet, view: &View) -> bool {
        config.contains(&view.coordinator()) && config.contains(&view.id.label.creator)
    }

    /// Whether our own installed view is void: its identifier is no longer
    /// legit under the installed configuration.
    fn own_view_void(&self) -> bool {
        match (&self.view, self.current_config()) {
            (Some(v), Some(cfg)) => !Self::view_id_legit(&cfg, v),
            _ => false,
        }
    }

    /// The greatest valid view or proposal currently visible (own or
    /// received), used both for adoption and for coordinator validity.
    ///
    /// Two filters keep stale information from wedging the replica: a view
    /// this processor does not belong to is never a candidate (it could be
    /// adopted but never installed here), and a peer's *proposal* counts
    /// only when that peer is its coordinator — follower echoes must not
    /// resurrect a proposal its coordinator already abandoned.
    fn best_visible_view(&self, config: &ConfigSet) -> Option<View> {
        let me = self.me;
        let mut best: Option<View> = None;
        let mut consider = |candidate: Option<&View>| {
            if let Some(v) = candidate {
                if !Self::view_id_legit(config, v) || !v.members.contains(&me) {
                    return;
                }
                best = Some(match best.take() {
                    None => v.clone(),
                    Some(b) => {
                        if b.older_than(v) {
                            v.clone()
                        } else {
                            b
                        }
                    }
                });
            }
        };
        consider(self.view.as_ref());
        consider(self.prop_view.as_ref());
        for (pid, msg) in &self.peers {
            consider(msg.view.as_ref());
            if let Some(pv) = &msg.prop_view {
                if pv.coordinator() == *pid {
                    consider(Some(pv));
                }
            }
        }
        best
    }

    /// One timer step of the whole stack.
    ///
    /// Context-free facade over the [`Layer`] implementation.
    pub fn poll(&mut self, peers: &[ProcessId]) -> Vec<(ProcessId, SmrMsg)> {
        let mut out = Outbox::new();
        Layer::poll(self, peers, &mut out);
        out.into_messages()
    }

    fn snapshot(&self) -> StateMsg {
        StateMsg {
            view: self.view.clone(),
            prop_view: self.prop_view.clone(),
            status: self.status,
            rnd: self.rnd,
            state: self.state.clone(),
            input: self.current_input.clone(),
            no_crd: self.no_valid_coordinator(),
            suspend: self.suspend,
        }
    }

    fn no_valid_coordinator(&self) -> bool {
        let Some(cfg) = self.current_config() else {
            return true;
        };
        match &self.view {
            None => true,
            Some(v) => {
                let crd = v.coordinator();
                !self.reconfig.trusted().contains(&crd) || !Self::view_id_legit(&cfg, v)
            }
        }
    }

    fn replication_step(&mut self, cfg: &ConfigSet, out: &mut Outbox<SmrMsg>) {
        // Drop a proposal whose identifier is no longer legit under the
        // installed configuration (e.g. adopted from the losing side of a
        // partition before a configuration replacement): it can neither be
        // installed nor compared against fresh identifiers, and while it
        // occupies the slot no election can start.
        if self
            .prop_view
            .as_ref()
            .map(|pv| !Self::view_id_legit(cfg, pv))
            .unwrap_or(false)
        {
            self.prop_view = None;
            if self.status == Status::Propose {
                self.status = Status::Multicast;
            }
        }

        // Drop a foreign proposal its coordinator no longer stands behind:
        // the proposer's own gossip shows neither this proposal nor an
        // installed view equal to it, or the proposer is no longer trusted.
        // Only the coordinator can install its proposal, so a follower that
        // keeps echoing an abandoned one waits forever — and a stuck
        // `prop_view` also blocks the election path.
        if let Some(pv) = self.prop_view.clone() {
            let crd = pv.coordinator();
            if crd != self.me {
                let abandoned = match self.peers.get(&crd) {
                    Some(snap) => {
                        snap.prop_view.as_ref() != Some(&pv) && snap.view.as_ref() != Some(&pv)
                    }
                    None => false,
                };
                if abandoned || !self.reconfig.trusted().contains(&crd) {
                    self.prop_view = None;
                    if self.status == Status::Propose {
                        self.status = Status::Multicast;
                    }
                }
            }
        }

        // Keep the counter service aware of the identifiers this replica
        // itself still holds (they may predate a labeler rebuild). Borrow
        // the view fields and the counter disjointly — no cloning on this
        // per-replica-per-round path.
        let SmrNode {
            view,
            prop_view,
            counter,
            ..
        } = self;
        for v in view.iter().chain(prop_view.iter()) {
            counter.observe(&v.id);
        }

        // Collect any view identifier the counter service granted us.
        for outcome in self.counter.take_completed() {
            if let IncrementOutcome::Committed(counter) = outcome {
                if self.awaiting_view_id {
                    self.awaiting_view_id = false;
                    let members = self.trusted_members(cfg);
                    if !members.is_empty() {
                        self.prop_view = Some(View {
                            id: counter,
                            members,
                        });
                        self.status = Status::Propose;
                    }
                }
            } else {
                self.awaiting_view_id = false;
            }
        }

        // Adopt the greatest visible proposal if it supersedes ours.
        if let Some(best) = self.best_visible_view(cfg) {
            let adopt = match (&self.view, &self.prop_view) {
                (Some(v), _) if v.older_than(&best) && *v != best => true,
                (None, Some(p)) if p.older_than(&best) && *p != best => true,
                (None, None) => true,
                _ => false,
            };
            if adopt && best.coordinator() != self.me {
                self.prop_view = Some(best);
                if self.status == Status::Multicast && self.view.is_none() {
                    self.status = Status::Propose;
                }
            }
        }

        // Coordinator-side work.
        if self.acts_as_coordinator(cfg) {
            self.coordinator_step(cfg, out);
        } else {
            self.follower_step(cfg);
        }

        // Election: when nobody coordinates, a member that sees a majority
        // (and whose peers agree there is no coordinator) requests a view
        // identifier from the counter service.
        if self.no_valid_coordinator()
            && self.prop_view.is_none()
            && !self.awaiting_view_id
            && self.sees_majority(cfg)
            && self.i_should_lead(cfg)
        {
            self.awaiting_view_id = true;
            out.extend(self.counter.request_increment());
        }
    }

    /// Deterministic tie-break for elections: the smallest trusted member
    /// that itself trusts a majority proposes first (others fall back if it
    /// is suspected later).
    fn i_should_lead(&self, cfg: &ConfigSet) -> bool {
        let candidates = self.trusted_members(cfg);
        candidates.iter().next() == Some(&self.me)
    }

    fn acts_as_coordinator(&self, cfg: &ConfigSet) -> bool {
        let leading_view = match (&self.prop_view, &self.view) {
            (Some(p), _) => Some(p),
            (None, Some(v)) => Some(v),
            (None, None) => None,
        };
        match leading_view {
            Some(v) => v.coordinator() == self.me && cfg.contains(&self.me),
            None => false,
        }
    }

    fn coordinator_step(&mut self, cfg: &ConfigSet, out: &mut Outbox<SmrMsg>) {
        match self.status {
            Status::Propose => {
                let Some(prop) = self.prop_view.clone() else {
                    return;
                };
                // A proposed member that is no longer trusted (crashed or
                // partitioned away) can never echo: abandon the proposal and
                // let the election path form a fresh one from the current
                // trusted set.
                let trusted = self.reconfig.trusted();
                if prop.members.iter().any(|m| !trusted.contains(m)) {
                    self.prop_view = None;
                    self.status = Status::Multicast;
                    return;
                }
                // A proposal that does not supersede our own installed view
                // can never be echoed — the members run the same newer-than
                // check before echoing. Abandon it and let the election
                // request a fresh identifier. This closes a one-way-cut
                // wedge: the cut-off side's labeler may mint a fresh label
                // while partitioned, and a view identifier drawn under it is
                // incomparable to the installed view's, so waiting for its
                // echoes would block the multicast loop forever.
                let supersedes = self.own_view_void()
                    || match &self.view {
                        Some(v) => v.older_than(&prop),
                        None => true,
                    };
                if !supersedes {
                    self.prop_view = None;
                    self.status = Status::Multicast;
                    return;
                }
                // Wait until every proposed member echoes the proposal.
                let all_echoed = prop.members.iter().all(|m| {
                    *m == self.me
                        || self
                            .peers
                            .get(m)
                            .and_then(|s| s.prop_view.as_ref())
                            .map(|p| *p == prop)
                            .unwrap_or(false)
                });
                if all_echoed {
                    // synchState: adopt the most advanced replica among the
                    // view members (including ourselves).
                    let mut best_state = self.state.clone();
                    for m in &prop.members {
                        if let Some(s) = self.peers.get(m) {
                            if s.state.applied > best_state.applied {
                                best_state = s.state.clone();
                            }
                        }
                    }
                    self.state = best_state;
                    self.status = Status::Install;
                }
            }
            Status::Install => {
                let Some(prop) = self.prop_view.clone() else {
                    return;
                };
                // Followers adopt the installation from our broadcast; we can
                // switch to multicast immediately.
                self.view = Some(prop);
                self.prop_view = None;
                self.status = Status::Multicast;
                self.rnd = 0;
                self.suspend = false;
                self.views_installed += 1;
            }
            Status::Multicast => {
                let Some(view) = self.view.clone() else {
                    return;
                };
                // Reconfiguration management (Algorithm 4.6): when asked to
                // reconfigure, suspend inputs, wait for every member to
                // suspend, then trigger the delicate reconfiguration.
                if self.reconf_requested {
                    self.suspend = true;
                    let everyone_suspended = view.members.iter().all(|m| {
                        *m == self.me || self.peers.get(m).map(|s| s.suspend).unwrap_or(false)
                    });
                    if everyone_suspended {
                        let target: ConfigSet = self.reconfig.participants();
                        if !target.is_empty() && target != *cfg {
                            if self.reconfig.request_reconfiguration(target) {
                                self.reconf_requested = false;
                            }
                        } else {
                            // Nothing to change: resume.
                            self.reconf_requested = false;
                            self.suspend = false;
                        }
                    }
                    return;
                }

                // A view that no longer matches the trusted membership (e.g.
                // after a reconfiguration or a member crash) is replaced by a
                // new proposal.
                let desired: BTreeSet<ProcessId> = self.trusted_members(cfg);
                if desired != view.members && !desired.is_empty() && !self.awaiting_view_id {
                    self.awaiting_view_id = true;
                    out.extend(self.counter.request_increment());
                    return;
                }

                // One multicast round: gather one input per member (their
                // latest `input` field plus our own pending command), apply
                // them in a deterministic order, and advance the round.
                let mut inputs: Vec<Command> = Vec::new();
                if self.current_input.is_none() {
                    self.current_input = self.pending.pop_front();
                }
                if let Some(cmd) = self.current_input.take() {
                    // The command enters this multicast round and is applied
                    // below: delivered from the submitter's point of view.
                    self.unclaimed_completions += 1;
                    inputs.push(cmd);
                }
                for m in &view.members {
                    if *m == self.me {
                        continue;
                    }
                    if let Some(s) = self.peers.get(m) {
                        if let Some(cmd) = &s.input {
                            inputs.push(cmd.clone());
                        }
                    }
                }
                inputs.sort();
                inputs.dedup();
                if !inputs.is_empty() || !self.suspend {
                    for cmd in &inputs {
                        self.state.apply(cmd);
                        self.commands_applied_total += 1;
                    }
                    if !inputs.is_empty() {
                        self.rnd += 1;
                    }
                }
            }
        }
    }

    fn follower_step(&mut self, cfg: &ConfigSet) {
        let _ = cfg;
        // Followers fetch a new input only while not suspended.
        if self.current_input.is_none() && !self.suspend {
            self.current_input = self.pending.pop_front();
        }
    }

    /// Handles a message from `from`, returning any immediate replies.
    ///
    /// Context-free facade over the [`Layer`] implementation.
    pub fn handle(&mut self, from: ProcessId, msg: SmrMsg) -> Vec<(ProcessId, SmrMsg)> {
        let mut out = Outbox::new();
        Layer::handle(self, from, msg, &mut out);
        out.into_messages()
    }

    fn on_state(&mut self, from: ProcessId, s: StateMsg) {
        // View identifiers are counters: the counter service must observe
        // every identifier still in circulation so its maximum (and hence
        // the next granted identifier) dominates them all.
        for view in s.view.iter().chain(s.prop_view.iter()) {
            self.counter.observe(&view.id);
        }
        // Follow the coordinator: adopt its view, state and suspend flag.
        let from_is_coordinator = s
            .view
            .as_ref()
            .map(|v| v.coordinator() == from)
            .unwrap_or(false)
            || s.prop_view
                .as_ref()
                .map(|v| v.coordinator() == from)
                .unwrap_or(false);
        // Never adopt a view or proposal that is illegitimate under our own
        // installed configuration: an ex-coordinator that fell out of the
        // configuration keeps gossiping its stale view, and adopting it
        // would wipe the election progress of the remaining members every
        // round.
        let legit_here = |v: &View| match self.current_config() {
            Some(cfg) => Self::view_id_legit(&cfg, v),
            None => true,
        };
        if from_is_coordinator {
            match s.status {
                Status::Propose => {
                    if let Some(p) = &s.prop_view {
                        if p.members.contains(&self.me) && legit_here(p) {
                            let newer = self.own_view_void()
                                || match &self.view {
                                    Some(v) => v.older_than(p),
                                    None => true,
                                };
                            if newer {
                                self.prop_view = Some(p.clone());
                                self.status = Status::Propose;
                            }
                        }
                    }
                }
                Status::Install | Status::Multicast => {
                    if let Some(v) = &s.view {
                        if v.members.contains(&self.me) && legit_here(v) {
                            let newer = self.own_view_void()
                                || match &self.view {
                                    Some(cur) => cur.older_than(v) || cur == v,
                                    None => true,
                                };
                            if newer {
                                let view_changed = self.view.as_ref() != Some(v);
                                if view_changed {
                                    self.views_installed += 1;
                                }
                                self.view = Some(v.clone());
                                self.prop_view = None;
                                self.status = Status::Multicast;
                                // Adopt the coordinator's replica state and
                                // round (the reliable-multicast adoption of
                                // Algorithm 4.7, lines 18–22).
                                if s.state.applied >= self.state.applied {
                                    self.state = s.state.clone();
                                }
                                self.rnd = s.rnd;
                                self.suspend = s.suspend;
                                // Our input was delivered once the
                                // coordinator's applied count passed it.
                                if let Some(cmd) = &self.current_input {
                                    if self
                                        .state
                                        .registers
                                        .iter()
                                        .any(|(k, v)| matches!(cmd.op, Op::Write { key, value } if key == *k && value == *v))
                                        || matches!(cmd.op, Op::Noop)
                                    {
                                        self.unclaimed_completions += 1;
                                        self.current_input = None;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        self.peers.insert(from, s);
    }
}

impl Layer for SmrNode {
    type Wire = SmrMsg;

    fn poll(&mut self, peers: &[ProcessId], out: &mut Outbox<SmrMsg>) {
        // 1. Reconfiguration stack, forwarded through our wire format.
        out.extend(self.reconfig.poll(peers));

        // 2. Counter service: keep it aligned with the current configuration
        //    and the reconfiguration status.
        // A configuration replacement that keeps this node a member must
        // still reach the counter service: view identifiers are drawn from
        // majorities of the *installed* configuration, and a counter stuck
        // on the old member set waits for a majority that can never answer
        // again (the chaos campaigns caught exactly this as an endless
        // elect-and-abort loop after a partition shrank the configuration).
        let config = self.current_config();
        if let Some(cfg) = &config {
            if self.counter.config() != cfg {
                self.counter.on_config_change(cfg.clone());
            }
        }
        self.counter
            .set_reconfiguring(!self.reconfig.no_reconfiguration());
        out.extend(self.counter.step());

        // 3. Replication layer.
        if let Some(cfg) = config {
            if cfg.contains(&self.me) {
                self.replication_step(&cfg, out);
            } else {
                // Not a member: follow the installed view passively (state is
                // adopted in `handle`); nothing to drive.
            }
        }

        // 4. Broadcast the replication snapshot to the configuration members
        //    and view members.
        if self.reconfig.is_participant() {
            // Every trusted peer receives the same snapshot, so share one
            // payload across the fan-out instead of deep-cloning the view,
            // replica state, and input per peer.
            let snapshot = self.snapshot();
            let audience: Vec<ProcessId> = self
                .reconfig
                .trusted()
                .into_iter()
                .filter(|p| *p != self.me)
                .collect();
            out.push_to_all(&audience, snapshot);
        }
    }

    fn handle(&mut self, from: ProcessId, msg: SmrMsg, out: &mut Outbox<SmrMsg>) {
        let rest = Router::new(from, msg)
            .lane(out, |from, m: ReconfigMsg, out| {
                out.extend(self.reconfig.handle(from, m))
            })
            .lane(out, |from, m: CounterMsg, out| {
                out.extend(self.counter.on_message(from, m))
            })
            .lane(out, |from, s: StateMsg, _| self.on_state(from, s))
            .finish();
        debug_assert!(rest.is_none(), "every SMR lane is routed");
    }
}

simnet::impl_process_for_layer!(SmrNode);

/// The registers the chaos workload writes to (round-robin).
const CHAOS_KEYS: [u32; 3] = [1, 2, 3];

impl simnet::ScenarioTarget for SmrNode {
    const NAME: &'static str = "smr";

    fn spawn_initial(id: ProcessId, n: usize) -> Self {
        SmrNode::new_member(
            id,
            reconfig::config_set(0..n as u32),
            NodeConfig::for_n(2 * n.max(4)),
        )
    }

    fn spawn_joiner(id: ProcessId, n: usize) -> Self {
        SmrNode::new_joiner(id, NodeConfig::for_n(2 * n.max(4)))
    }

    /// Transient faults hit the replication layer: the peer-snapshot cache,
    /// the multicast round number, register contents and (half the time) the
    /// installed view itself. The `applied` witness is left alone so the
    /// reliable-multicast adoption (Algorithm 4.7, lines 18–22) re-syncs the
    /// corrupted replica from the coordinator's next broadcast; losing the
    /// view triggers the election / view-proposal path instead.
    fn corrupt(&mut self, rng: &mut simnet::SimRng) {
        self.peers.clear();
        self.rnd = rng.range_inclusive(0, 1 << 20);
        for key in CHAOS_KEYS {
            if rng.chance(0.5) {
                self.state
                    .registers
                    .insert(key, rng.range_inclusive(10_000, 20_000));
            }
        }
        if rng.chance(0.5) {
            self.view = None;
            self.prop_view = None;
            self.status = Status::Multicast;
            self.awaiting_view_id = false;
        }
    }

    /// In-flight payload corruption: half the affected packets collapse to
    /// a bare heartbeat (content destroyed, liveness witness kept); the
    /// rest keep the sender-misattributed payload the corruption plan
    /// shuffled in. Stale `State` broadcasts and view traffic from the
    /// wrong sender are exactly what the view-legitimacy checks filter.
    fn corrupt_payload(msg: &mut SmrMsg, rng: &mut simnet::SimRng) -> bool {
        if rng.chance(0.5) {
            *msg = SmrMsg::Reconfig(ReconfigMsg::Heartbeat);
            true
        } else {
            false
        }
    }

    /// Byzantine forging. A forged-sender packet is a bare heartbeat into
    /// the embedded reconfiguration stack. Stale state is the
    /// *view-equivocation* attack virtual synchrony exists to prevent: a
    /// `State` broadcast advertising the target's current view identifier
    /// with a **different** member set (and a stale multicast round). The
    /// replica must refuse to adopt it — the view-legitimacy checks accept
    /// a view only from its coordinator under the installed configuration —
    /// or the view-id-uniqueness invariant trips at the end of the run.
    fn forge_payload(
        forge: simnet::ForgeKind,
        _claimed_sender: ProcessId,
        target: ProcessId,
        sim: &simnet::Simulation<Self>,
        _rng: &mut simnet::SimRng,
    ) -> Option<SmrMsg> {
        match forge {
            simnet::ForgeKind::ForgedSender => Some(SmrMsg::Reconfig(ReconfigMsg::Heartbeat)),
            simnet::ForgeKind::StaleState => {
                let node = sim.process(target)?;
                let view = node.view()?;
                let mut members = view.members.clone();
                let dropped = members.iter().next().copied()?;
                members.remove(&dropped);
                if members.is_empty() {
                    return None;
                }
                Some(SmrMsg::State(StateMsg {
                    view: Some(View {
                        id: view.id.clone(),
                        members,
                    }),
                    prop_view: None,
                    status: Status::Multicast,
                    rnd: 0,
                    state: node.state().clone(),
                    input: None,
                    no_crd: false,
                    suspend: false,
                }))
            }
            simnet::ForgeKind::Replay => None,
        }
    }

    /// Submit a write every few rounds at an arbitrary replica that is part
    /// of the currently installed view (only view members' inputs are read
    /// by the multicast rounds).
    fn drive_workload(
        sim: &mut simnet::Simulation<Self>,
        round: simnet::Round,
        rng: &mut simnet::SimRng,
    ) {
        if round.as_u64() % 5 != 3 {
            return;
        }
        let writers: Vec<ProcessId> = sim
            .active_processes()
            .filter(|(id, p)| p.view().map(|v| v.members.contains(id)).unwrap_or(false))
            .map(|(id, _)| id)
            .collect();
        if let Some(i) = rng.index(writers.len()) {
            let key = CHAOS_KEYS[(round.as_u64() / 5) as usize % CHAOS_KEYS.len()];
            if let Some(node) = sim.process_mut(writers[i]) {
                node.submit_write(key, round.as_u64());
            }
        }
    }

    /// Open-loop client load: an SMR write submitted at a current view
    /// member (non-members reject, like a real front-end refusing a
    /// request it cannot serve). Keys spread over a wide register space
    /// disjoint from `CHAOS_KEYS`, and the run-unique `value` keeps the
    /// follower's delivered-input match (Algorithm 4.7) unambiguous. The
    /// op completes when the command is delivered to the replicated state.
    fn submit_op(sim: &mut simnet::Simulation<Self>, via: ProcessId, key: u64, value: u64) -> bool {
        match sim.process_mut(via) {
            Some(node) => node.submit_local(key, value),
            None => false,
        }
    }

    fn complete_op(sim: &mut simnet::Simulation<Self>, via: ProcessId) -> Option<bool> {
        sim.process_mut(via)?.complete_local()
    }

    /// An SMR write submitted at a current view member (the node-local half
    /// of `submit_op`, shared with the live runtime).
    fn submit_local(&mut self, key: u64, value: u64) -> bool {
        let member = self
            .view
            .as_ref()
            .map(|v| v.members.contains(&self.me))
            .unwrap_or(false);
        if !member {
            return false;
        }
        // Load registers start above the chaos set so state corruption of
        // CHAOS_KEYS never forges a pending op's completion witness.
        self.submit_write(4 + (key % 61) as u32, value);
        true
    }

    fn complete_local(&mut self) -> Option<bool> {
        if self.unclaimed_completions == 0 {
            return None;
        }
        self.unclaimed_completions -= 1;
        Some(true)
    }

    /// The node-local conjunct of [`Self::converged`]: the reconfiguration
    /// layer is calm and installed, and — for configuration members — a
    /// view is installed with no undelivered inputs.
    fn settled(&self) -> bool {
        let r = self.reconfig();
        if !r.is_participant() || !r.no_reconfiguration() {
            return false;
        }
        let Some(config) = r.installed_config() else {
            return false;
        };
        if !config.contains(&self.me) {
            return true;
        }
        self.view.is_some() && self.current_input.is_none() && self.pending.is_empty()
    }

    /// The agreement token: the installed configuration plus — for members
    /// — the view identifier/membership and the replica state. Non-members
    /// report only the configuration component, mirroring
    /// [`Self::converged`]'s two loops.
    fn settle_token(&self) -> String {
        let r = self.reconfig();
        let Some(config) = r.installed_config() else {
            return String::new();
        };
        let cfg = reconfig::types::ConfigValue::Set(config.clone());
        if !config.contains(&self.me) {
            return format!("config={cfg}");
        }
        let view = match &self.view {
            Some(v) => format!(
                "{}:{}:{}:{}@{:?}",
                v.id.label.creator,
                v.id.label.sting,
                v.id.seqn,
                v.id.wid,
                v.members.iter().map(|p| p.as_u32()).collect::<Vec<_>>()
            ),
            None => "none".to_string(),
        };
        format!(
            "config={cfg}\nview={view}\nstate=applied:{} registers:{:?}",
            self.state.applied, self.state.registers
        )
    }

    /// Converged: the reconfiguration layer is calm and agreed, every active
    /// member of the installed configuration sits in the same view with the
    /// same replica state, and no view member still holds undelivered
    /// inputs.
    fn converged(sim: &simnet::Simulation<Self>) -> bool {
        let mut config = None;
        for (_, node) in sim.active_processes() {
            let r = node.reconfig();
            if !r.is_participant() || !r.no_reconfiguration() {
                return false;
            }
            match (r.installed_config(), &config) {
                (None, _) => return false,
                (Some(c), None) => config = Some(c),
                (Some(c), Some(expected)) => {
                    if c != *expected {
                        return false;
                    }
                }
            }
        }
        let Some(config) = config else {
            return true;
        };
        let mut reference: Option<(&View, &ReplicaState)> = None;
        for (id, node) in sim.active_processes() {
            if !config.contains(&id) {
                continue;
            }
            let Some(view) = node.view() else {
                return false;
            };
            if node.current_input.is_some() || !node.pending.is_empty() {
                return false;
            }
            match &reference {
                None => reference = Some((view, node.state())),
                Some((v, s)) => {
                    if view != *v || node.state() != *s {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Safety: view identifiers are drawn from the counter service, so two
    /// replicas holding a view with the *same* identifier must agree on its
    /// member set — the virtual-synchrony property the identifier exists to
    /// provide.
    fn invariant_violations(sim: &simnet::Simulation<Self>) -> Vec<String> {
        let mut by_id: BTreeMap<String, (ProcessId, BTreeSet<ProcessId>)> = BTreeMap::new();
        let mut violations = Vec::new();
        for (id, node) in sim.active_processes() {
            for view in node.view().into_iter().chain(node.prop_view.as_ref()) {
                let key = format!("{:?}", view.id);
                match by_id.get(&key) {
                    None => {
                        by_id.insert(key, (id, view.members.clone()));
                    }
                    Some((holder, members)) => {
                        if *members != view.members {
                            violations.push(format!(
                                "view id reused with different members by {holder} and {id}"
                            ));
                        }
                    }
                }
            }
        }
        violations
    }

    fn state_line(id: simnet::ProcessId, p: &Self) -> String {
        format!(
            "{id} view={:?} status={:?} rnd={} state={:?} applied={} input={:?}",
            p.view, p.status, p.rnd, p.state.registers, p.state.applied, p.current_input
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reconfig::config_set;
    use simnet::{SimConfig, Simulation};

    fn cluster(n: u32, seed: u64) -> Simulation<SmrNode> {
        let cfg = config_set(0..n);
        let mut sim = Simulation::new(SimConfig::default().with_seed(seed).with_max_delay(0));
        for i in 0..n {
            let id = ProcessId::new(i);
            sim.add_process_with_id(
                id,
                SmrNode::new_member(id, cfg.clone(), NodeConfig::for_n(16)),
            );
        }
        sim
    }

    fn common_view(sim: &Simulation<SmrNode>) -> Option<View> {
        let mut views = BTreeSet::new();
        for id in sim.active_ids() {
            match sim.process(id).unwrap().view() {
                Some(v) => {
                    views.insert(format!("{:?}", v));
                    if views.len() > 1 {
                        return None;
                    }
                }
                None => return None,
            }
        }
        sim.process(sim.active_ids()[0]).unwrap().view().cloned()
    }

    #[test]
    fn members_install_a_common_view_with_a_coordinator() {
        let mut sim = cluster(4, 21);
        let rounds = sim.run_until(400, |s| common_view(s).is_some());
        assert!(rounds < 400, "no common view was installed");
        let view = common_view(&sim).unwrap();
        assert_eq!(view.members, config_set(0..4));
        let coordinators: Vec<ProcessId> = sim
            .active_ids()
            .into_iter()
            .filter(|id| sim.process(*id).unwrap().is_coordinator())
            .collect();
        assert_eq!(coordinators.len(), 1, "exactly one coordinator expected");
    }

    #[test]
    fn submitted_writes_replicate_to_every_member() {
        let mut sim = cluster(3, 22);
        sim.run_until(400, |s| common_view(s).is_some());
        sim.process_mut(ProcessId::new(1))
            .unwrap()
            .submit_write(7, 42);
        sim.process_mut(ProcessId::new(2))
            .unwrap()
            .submit_write(9, 99);
        let rounds = sim.run_until(400, |s| {
            s.active_ids().iter().all(|id| {
                let n = s.process(*id).unwrap();
                n.read_register(7) == Some(42) && n.read_register(9) == Some(99)
            })
        });
        assert!(rounds < 400, "writes did not replicate to every member");
    }

    #[test]
    fn coordinator_crash_elects_a_new_one_and_keeps_state() {
        let mut sim = cluster(4, 23);
        sim.run_until(400, |s| common_view(s).is_some());
        sim.process_mut(ProcessId::new(0))
            .unwrap()
            .submit_write(1, 11);
        sim.run_until(400, |s| {
            s.active_ids()
                .iter()
                .all(|id| s.process(*id).unwrap().read_register(1) == Some(11))
        });
        let crd = sim
            .active_ids()
            .into_iter()
            .find(|id| sim.process(*id).unwrap().is_coordinator())
            .expect("a coordinator exists");
        sim.crash(crd);
        let rounds = sim.run_until(800, |s| {
            let coords: Vec<_> = s
                .active_ids()
                .into_iter()
                .filter(|id| s.process(*id).unwrap().is_coordinator())
                .collect();
            coords.len() == 1
        });
        assert!(rounds < 800, "no new coordinator was elected");
        // The replicated state survived the coordinator change.
        for id in sim.active_ids() {
            assert_eq!(sim.process(id).unwrap().read_register(1), Some(11));
        }
    }

    #[test]
    fn coordinator_led_reconfiguration_preserves_state() {
        let mut sim = cluster(4, 24);
        sim.run_until(500, |s| common_view(s).is_some());
        sim.process_mut(ProcessId::new(0))
            .unwrap()
            .submit_write(5, 55);
        sim.run_until(500, |s| {
            s.active_ids()
                .iter()
                .all(|id| s.process(*id).unwrap().read_register(5) == Some(55))
        });
        // A member crashes; the coordinator is asked to reconfigure onto the
        // surviving participants (Algorithm 4.6).
        sim.crash(ProcessId::new(3));
        sim.run_rounds(100);
        let crd = sim
            .active_ids()
            .into_iter()
            .find(|id| sim.process(*id).unwrap().is_coordinator());
        if let Some(crd) = crd {
            sim.process_mut(crd)
                .unwrap()
                .request_coordinator_reconfiguration();
        }
        let rounds = sim.run_until(1200, |s| {
            s.active_ids().iter().all(|id| {
                let n = s.process(*id).unwrap();
                n.reconfig().installed_config() == Some(config_set(0..3))
            })
        });
        assert!(
            rounds < 1200,
            "the configuration never shrank to the survivors"
        );
        // The register survives into the new configuration (Theorem 4.13).
        sim.run_rounds(100);
        for id in sim.active_ids() {
            assert_eq!(sim.process(id).unwrap().read_register(5), Some(55));
        }
    }

    #[test]
    fn writes_continue_after_reconfiguration() {
        let mut sim = cluster(3, 25);
        sim.run_until(500, |s| common_view(s).is_some());
        sim.process_mut(ProcessId::new(0))
            .unwrap()
            .submit_write(1, 1);
        sim.run_rounds(200);
        sim.crash(ProcessId::new(2));
        sim.run_rounds(300);
        sim.process_mut(ProcessId::new(1))
            .unwrap()
            .submit_write(2, 2);
        let rounds = sim.run_until(800, |s| {
            [ProcessId::new(0), ProcessId::new(1)].iter().all(|id| {
                let n = s.process(*id).unwrap();
                n.read_register(1) == Some(1) && n.read_register(2) == Some(2)
            })
        });
        assert!(
            rounds < 800,
            "service did not resume after membership change"
        );
    }
}

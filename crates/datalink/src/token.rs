//! The token-exchange protocol.
//!
//! The paper's description (Section 2): *"Packet `pkt1` is retransmitted
//! until more than the total capacity acknowledgments arrive, and then `pkt2`
//! starts being transmitted. This forms an abstraction of token carrying
//! messages between the two processors. […] We use this token exchange
//! technique to implement a heartbeat for detecting whether a processor is
//! active or not."*
//!
//! [`TokenCarrier`] implements one endpoint of such a link. It is
//! self-stabilizing with bounded state: sequence labels are drawn from the
//! bounded domain `0..label_space` where `label_space = 2·cap + 2`, which is
//! strictly larger than the number of stale packets/acknowledgements a
//! corrupted channel pair can hold, so a stale label can delay but never
//! permanently block progress, and progress resumes within one label
//! wrap-around.

/// A packet of the token-exchange protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenMsg<M> {
    /// Data packet carrying the current label and an optional payload.
    Data {
        /// Bounded sequence label of the packet.
        label: u64,
        /// Payload carried by the token (empty tokens are pure heartbeats).
        payload: Option<M>,
    },
    /// Acknowledgement of a data packet with the given label.
    Ack {
        /// Label being acknowledged.
        label: u64,
    },
}

/// An event produced by [`TokenCarrier::handle`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenEvent<M> {
    /// The token completed one round trip: more than `cap` acknowledgements
    /// of the current label arrived. This is the heartbeat pulse.
    TokenReturned,
    /// A payload was received from the peer (at most once per peer label).
    PayloadReceived(M),
}

/// One endpoint of a token-exchange link with a designated peer.
///
/// The carrier is both a sender (it owns an outgoing token) and a receiver
/// (it acknowledges the peer's token). Call [`TokenCarrier::poll`] on every
/// timer tick to obtain the packets to (re)transmit, and
/// [`TokenCarrier::handle`] on every packet received from the peer.
#[derive(Debug, Clone)]
pub struct TokenCarrier<M> {
    capacity: usize,
    label_space: u64,
    /// Label of the packet currently being transmitted.
    send_label: u64,
    /// Payload attached to the current outgoing token, if any.
    send_payload: Option<M>,
    /// Next payload to attach once the current token returns.
    pending_payload: Option<M>,
    /// Acknowledgements of the current label received so far.
    acks: usize,
    /// Number of completed token round trips (unbounded counter kept only
    /// for observability; the protocol itself never reads it).
    completed: u64,
    /// Last peer label acknowledged (used to deliver each payload once).
    last_peer_label: Option<u64>,
}

impl<M: Clone> TokenCarrier<M> {
    /// Creates a carrier for a link whose one-directional capacity is `cap`
    /// packets.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "link capacity must be at least 1");
        TokenCarrier {
            capacity: cap,
            label_space: 2 * cap as u64 + 2,
            send_label: 0,
            send_payload: None,
            pending_payload: None,
            acks: 0,
            completed: 0,
            last_peer_label: None,
        }
    }

    /// Attaches `payload` to the next token that starts a round trip.
    /// If a payload is already pending it is replaced (the FIFO layer on top
    /// queues payloads and hands them over one at a time).
    pub fn set_next_payload(&mut self, payload: M) {
        self.pending_payload = Some(payload);
    }

    /// Returns `true` when no payload is waiting to be attached to a token.
    pub fn ready_for_payload(&self) -> bool {
        self.pending_payload.is_none()
    }

    /// Number of completed round trips so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// The bounded label space of this carrier.
    pub fn label_space(&self) -> u64 {
        self.label_space
    }

    /// The packets to transmit on a timer tick: the current data packet is
    /// always retransmitted (acknowledgements are only sent in response to
    /// data packets, never spontaneously, as the paper prescribes).
    pub fn poll(&self) -> Vec<TokenMsg<M>> {
        vec![TokenMsg::Data {
            label: self.send_label,
            payload: self.send_payload.clone(),
        }]
    }

    /// Handles a packet received from the peer, returning protocol events and
    /// the packets to send back immediately.
    pub fn handle(&mut self, msg: TokenMsg<M>) -> (Vec<TokenEvent<M>>, Vec<TokenMsg<M>>) {
        let mut events = Vec::new();
        let mut replies = Vec::new();
        match msg {
            TokenMsg::Data { label, payload } => {
                // Acknowledge every data packet we see (the acknowledging
                // policy: acks are sent only when a packet arrives).
                replies.push(TokenMsg::Ack { label });
                // Deliver the payload at most once per peer label change.
                if self.last_peer_label != Some(label) {
                    self.last_peer_label = Some(label);
                    if let Some(p) = payload {
                        events.push(TokenEvent::PayloadReceived(p));
                    }
                }
            }
            TokenMsg::Ack { label } => {
                if label == self.send_label {
                    self.acks += 1;
                    if self.acks > self.capacity {
                        // Token returned: rotate the label and pick up the
                        // next payload.
                        self.completed += 1;
                        self.acks = 0;
                        self.send_label = (self.send_label + 1) % self.label_space;
                        self.send_payload = self.pending_payload.take();
                        events.push(TokenEvent::TokenReturned);
                    }
                }
                // Stale-label acks are ignored; they are bounded in number.
            }
        }
        (events, replies)
    }

    /// Forcibly corrupts the carrier state (test/fault-injection helper):
    /// sets arbitrary label and ack values, as a transient fault would.
    pub fn corrupt(&mut self, label: u64, acks: usize) {
        self.send_label = label;
        self.acks = acks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives two carriers directly against each other (perfect link) for
    /// `iters` iterations, returning delivered payloads at each side.
    fn run_pair(
        a: &mut TokenCarrier<u32>,
        b: &mut TokenCarrier<u32>,
        iters: usize,
    ) -> (Vec<u32>, Vec<u32>) {
        let mut at_a = Vec::new();
        let mut at_b = Vec::new();
        for _ in 0..iters {
            for m in a.poll() {
                let (evs, replies) = b.handle(m);
                for e in evs {
                    if let TokenEvent::PayloadReceived(p) = e {
                        at_b.push(p);
                    }
                }
                for r in replies {
                    let (evs2, _) = a.handle(r);
                    for e in evs2 {
                        if let TokenEvent::PayloadReceived(p) = e {
                            at_a.push(p);
                        }
                    }
                }
            }
            for m in b.poll() {
                let (evs, replies) = a.handle(m);
                for e in evs {
                    if let TokenEvent::PayloadReceived(p) = e {
                        at_a.push(p);
                    }
                }
                for r in replies {
                    let (evs2, _) = b.handle(r);
                    for e in evs2 {
                        if let TokenEvent::PayloadReceived(p) = e {
                            at_b.push(p);
                        }
                    }
                }
            }
        }
        (at_a, at_b)
    }

    #[test]
    fn token_round_trips_accumulate() {
        let mut a: TokenCarrier<u32> = TokenCarrier::new(2);
        let mut b: TokenCarrier<u32> = TokenCarrier::new(2);
        run_pair(&mut a, &mut b, 50);
        assert!(a.completed() > 5, "a completed {}", a.completed());
        assert!(b.completed() > 5, "b completed {}", b.completed());
    }

    #[test]
    fn payload_is_delivered_once() {
        let mut a: TokenCarrier<u32> = TokenCarrier::new(2);
        let mut b: TokenCarrier<u32> = TokenCarrier::new(2);
        a.set_next_payload(42);
        let (_, at_b) = run_pair(&mut a, &mut b, 60);
        assert_eq!(at_b, vec![42]);
    }

    #[test]
    fn requires_more_than_capacity_acks() {
        let mut a: TokenCarrier<u32> = TokenCarrier::new(3);
        // Fewer than cap+1 acks: no round trip completes.
        for _ in 0..3 {
            a.handle(TokenMsg::Ack { label: 0 });
        }
        assert_eq!(a.completed(), 0);
        // One more ack completes it.
        let (events, _) = a.handle(TokenMsg::Ack { label: 0 });
        assert_eq!(a.completed(), 1);
        assert!(events.contains(&TokenEvent::TokenReturned));
    }

    #[test]
    fn stale_acks_do_not_advance_token() {
        let mut a: TokenCarrier<u32> = TokenCarrier::new(2);
        for _ in 0..100 {
            a.handle(TokenMsg::Ack { label: 7 });
        }
        assert_eq!(a.completed(), 0);
    }

    #[test]
    fn labels_stay_within_bounded_space() {
        let mut a: TokenCarrier<u32> = TokenCarrier::new(1);
        let space = a.label_space();
        for _ in 0..1000 {
            let label = match a.poll().pop().unwrap() {
                TokenMsg::Data { label, .. } => label,
                _ => unreachable!(),
            };
            assert!(label < space);
            // Ack it enough times to rotate.
            for _ in 0..=1 {
                a.handle(TokenMsg::Ack { label });
            }
        }
        assert!(a.completed() >= 999);
    }

    #[test]
    fn recovers_from_corrupted_label() {
        let mut a: TokenCarrier<u32> = TokenCarrier::new(2);
        let mut b: TokenCarrier<u32> = TokenCarrier::new(2);
        a.corrupt(9999 % a.label_space(), 77);
        run_pair(&mut a, &mut b, 30);
        let before = a.completed();
        run_pair(&mut a, &mut b, 30);
        assert!(
            a.completed() > before,
            "token exchange stalled after corruption"
        );
    }

    #[test]
    fn duplicate_data_packets_deliver_payload_once() {
        let mut b: TokenCarrier<u32> = TokenCarrier::new(2);
        let msg = TokenMsg::Data {
            label: 3,
            payload: Some(5),
        };
        let (ev1, _) = b.handle(msg.clone());
        let (ev2, _) = b.handle(msg);
        assert_eq!(ev1, vec![TokenEvent::PayloadReceived(5)]);
        assert!(ev2.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _: TokenCarrier<u32> = TokenCarrier::new(0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    proptest! {
        /// Over a lossy, duplicating, bounded channel the token keeps
        /// returning (fair communication ⇒ liveness of the heartbeat).
        #[test]
        fn token_progress_under_lossy_links(seed in 0u64..5000, cap in 1usize..4) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut a: TokenCarrier<u32> = TokenCarrier::new(cap);
            let mut b: TokenCarrier<u32> = TokenCarrier::new(cap);
            let mut ab: Vec<TokenMsg<u32>> = Vec::new();
            let mut ba: Vec<TokenMsg<u32>> = Vec::new();
            for _ in 0..600 {
                for m in a.poll() {
                    if !rng.gen_bool(0.3) {
                        ab.push(m);
                        if ab.len() > cap { ab.remove(0); }
                    }
                }
                for m in b.poll() {
                    if !rng.gen_bool(0.3) {
                        ba.push(m);
                        if ba.len() > cap { ba.remove(0); }
                    }
                }
                for m in ab.drain(..) {
                    let (_, replies) = b.handle(m);
                    for r in replies {
                        if !rng.gen_bool(0.3) {
                            ba.push(r);
                            if ba.len() > cap { ba.remove(0); }
                        }
                    }
                }
                for m in ba.drain(..) {
                    let (_, replies) = a.handle(m);
                    for r in replies {
                        if !rng.gen_bool(0.3) {
                            ab.push(r);
                            if ab.len() > cap { ab.remove(0); }
                        }
                    }
                }
            }
            prop_assert!(a.completed() > 0, "token never returned to a");
            prop_assert!(b.completed() > 0, "token never returned to b");
        }
    }
}

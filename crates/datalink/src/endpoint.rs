//! Composition of the link protocols into one per-peer endpoint.
//!
//! An [`Endpoint`] owns, for a single peer, a snap-stabilizing cleaner and a
//! reliable FIFO channel (which itself wraps the token carrier). Upper-layer
//! messages are only exchanged once the link has been cleaned, exactly as the
//! paper requires of newly established connections.

use crate::fifo::ReliableFifo;
use crate::snap::{SnapCleaner, SnapMsg};
use crate::token::TokenMsg;

/// The wire format of a composed link: either a cleaning packet or a
/// token/FIFO packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkMsg<M> {
    /// Snap-stabilizing cleaning traffic.
    Snap(SnapMsg),
    /// Token-exchange traffic (heartbeats and payload delivery).
    Token(TokenMsg<M>),
}

/// Events surfaced to the layer above the link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkEvent<M> {
    /// The link finished cleaning and is now usable.
    Cleaned,
    /// A payload message was delivered in FIFO order.
    Delivered(M),
}

/// One endpoint of a bidirectional, self-stabilizing link to a single peer.
///
/// Incoming packets are fed to [`Endpoint::handle`], which returns
/// upper-layer [`LinkEvent`]s; all outgoing traffic (periodic retransmissions
/// *and* replies such as acknowledgements) is obtained from
/// [`Endpoint::poll`], which the owner calls on every timer tick.
#[derive(Debug, Clone)]
pub struct Endpoint<M> {
    cleaner: SnapCleaner,
    fifo: ReliableFifo<M>,
    pending_replies: Vec<LinkMsg<M>>,
    was_clean: bool,
}

impl<M: Clone> Endpoint<M> {
    /// Creates an endpoint over a link of one-directional capacity `cap`.
    /// The link starts dirty and must complete cleaning before payload
    /// traffic flows.
    pub fn new(cap: usize) -> Self {
        Endpoint {
            cleaner: SnapCleaner::new(cap),
            fifo: ReliableFifo::new(cap, 2 * cap + 2),
            pending_replies: Vec::new(),
            was_clean: false,
        }
    }

    /// Queues a payload message for FIFO delivery to the peer. Returns
    /// `false` if the bounded send queue overflowed and dropped its oldest
    /// entry.
    pub fn queue_send(&mut self, msg: M) -> bool {
        self.fifo.queue_send(msg)
    }

    /// Returns `true` once the cleaning handshake has completed.
    pub fn is_clean(&self) -> bool {
        self.cleaner.is_clean()
    }

    /// Completed token round trips (heartbeat pulses) on this link.
    pub fn heartbeats(&self) -> u64 {
        self.fifo.heartbeats()
    }

    /// Number of messages waiting to be transmitted.
    pub fn backlog(&self) -> usize {
        self.fifo.backlog()
    }

    /// Restarts the cleaning handshake, e.g. upon a (re)connection signal.
    pub fn reconnect(&mut self) {
        self.cleaner.reconnect();
        self.was_clean = false;
    }

    /// Packets to transmit now: buffered replies, the cleaning probe while
    /// cleaning, and token traffic once the link is clean.
    pub fn poll(&mut self) -> Vec<LinkMsg<M>> {
        let mut out: Vec<LinkMsg<M>> = std::mem::take(&mut self.pending_replies);
        out.extend(self.cleaner.poll().into_iter().map(LinkMsg::Snap));
        if self.cleaner.is_clean() {
            out.extend(self.fifo.poll().into_iter().map(LinkMsg::Token));
        }
        out
    }

    /// Handles a packet from the peer, returning upper-layer events.
    /// Protocol replies (acknowledgements) are buffered and emitted by the
    /// next [`Endpoint::poll`].
    pub fn handle(&mut self, msg: LinkMsg<M>) -> Vec<LinkEvent<M>> {
        let mut events = Vec::new();
        match msg {
            LinkMsg::Snap(s) => {
                self.pending_replies
                    .extend(self.cleaner.handle(s).into_iter().map(LinkMsg::Snap));
            }
            LinkMsg::Token(t) => {
                // Packets of the upper layer are discarded while the link is
                // still being cleaned.
                if self.cleaner.may_deliver() {
                    let (delivered, replies) = self.fifo.handle(t);
                    events.extend(delivered.into_iter().map(LinkEvent::Delivered));
                    self.pending_replies
                        .extend(replies.into_iter().map(LinkMsg::Token));
                }
            }
        }
        if self.cleaner.is_clean() && !self.was_clean {
            self.was_clean = true;
            events.push(LinkEvent::Cleaned);
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs both endpoints for `iters` ticks over perfect channels, returning
    /// the events observed at each side.
    fn run_pair(
        a: &mut Endpoint<u32>,
        b: &mut Endpoint<u32>,
        iters: usize,
    ) -> (Vec<LinkEvent<u32>>, Vec<LinkEvent<u32>>) {
        let mut ev_a = Vec::new();
        let mut ev_b = Vec::new();
        for _ in 0..iters {
            for m in a.poll() {
                ev_b.extend(b.handle(m));
            }
            for m in b.poll() {
                ev_a.extend(a.handle(m));
            }
        }
        (ev_a, ev_b)
    }

    #[test]
    fn link_cleans_then_delivers() {
        let mut a: Endpoint<u32> = Endpoint::new(2);
        let mut b: Endpoint<u32> = Endpoint::new(2);
        a.queue_send(7);
        a.queue_send(8);
        let (ev_a, ev_b) = run_pair(&mut a, &mut b, 200);
        assert!(ev_a.contains(&LinkEvent::Cleaned));
        assert!(ev_b.contains(&LinkEvent::Cleaned));
        let delivered: Vec<u32> = ev_b
            .iter()
            .filter_map(|e| match e {
                LinkEvent::Delivered(x) => Some(*x),
                _ => None,
            })
            .collect();
        assert_eq!(delivered, vec![7, 8]);
        assert!(a.is_clean() && b.is_clean());
        assert!(a.heartbeats() > 0);
    }

    #[test]
    fn payloads_are_not_delivered_before_cleaning() {
        let mut b: Endpoint<u32> = Endpoint::new(2);
        // A token data packet arriving on a dirty link must be discarded.
        let events = b.handle(LinkMsg::Token(TokenMsg::Data {
            label: 0,
            payload: Some(99),
        }));
        assert!(events.is_empty());
    }

    #[test]
    fn reconnect_suspends_payload_traffic_until_recleaned() {
        let mut a: Endpoint<u32> = Endpoint::new(1);
        let mut b: Endpoint<u32> = Endpoint::new(1);
        run_pair(&mut a, &mut b, 50);
        assert!(a.is_clean());
        a.reconnect();
        assert!(!a.is_clean());
        // After running again the link becomes clean and traffic resumes.
        a.queue_send(1);
        let (_, ev_b) = run_pair(&mut a, &mut b, 200);
        assert!(ev_b.contains(&LinkEvent::Delivered(1)));
    }

    #[test]
    fn backlog_tracks_queued_messages() {
        let mut a: Endpoint<u32> = Endpoint::new(1);
        assert_eq!(a.backlog(), 0);
        a.queue_send(1);
        a.queue_send(2);
        assert_eq!(a.backlog(), 2);
    }
}

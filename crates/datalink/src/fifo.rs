//! Self-stabilizing reliable FIFO message delivery.
//!
//! The reconfiguration algorithms assume *"the availability of
//! self-stabilizing protocols for reliable FIFO end-to-end message delivery
//! over unreliable channels with bounded capacity"* (Section 2, citing
//! Dolev et al.). [`ReliableFifo`] provides that facility by carrying each
//! high-level message as the payload of one token round trip of
//! [`crate::token::TokenCarrier`]: the stop-and-wait discipline means at most
//! one message is outstanding, so delivery is in order, and the
//! more-than-capacity acknowledgement rule means a message on the link cannot
//! be lost without the sender noticing.

use std::collections::VecDeque;

use crate::token::{TokenCarrier, TokenEvent, TokenMsg};

/// A reliable, in-order message channel to one designated peer, layered on
/// the token exchange.
#[derive(Debug, Clone)]
pub struct ReliableFifo<M> {
    carrier: TokenCarrier<M>,
    outgoing: VecDeque<M>,
    /// Bound on the send queue; overflow drops the *oldest* queued message
    /// (bounded memory is part of being self-stabilizing).
    queue_bound: usize,
    delivered_count: u64,
    dropped_count: u64,
}

impl<M: Clone> ReliableFifo<M> {
    /// Creates a FIFO channel over a link with one-directional capacity
    /// `cap`, buffering at most `queue_bound` unsent messages.
    ///
    /// # Panics
    ///
    /// Panics if `queue_bound == 0` or `cap == 0`.
    pub fn new(cap: usize, queue_bound: usize) -> Self {
        assert!(queue_bound > 0, "queue bound must be at least 1");
        ReliableFifo {
            carrier: TokenCarrier::new(cap),
            outgoing: VecDeque::new(),
            queue_bound,
            delivered_count: 0,
            dropped_count: 0,
        }
    }

    /// Queues a message for transmission. Returns `false` if the bounded
    /// queue overflowed and its oldest entry was dropped to make room.
    pub fn queue_send(&mut self, msg: M) -> bool {
        let mut ok = true;
        if self.outgoing.len() >= self.queue_bound {
            self.outgoing.pop_front();
            self.dropped_count += 1;
            ok = false;
        }
        self.outgoing.push_back(msg);
        ok
    }

    /// Number of messages waiting to be attached to a token.
    pub fn backlog(&self) -> usize {
        self.outgoing.len()
    }

    /// Messages delivered to this endpoint so far.
    pub fn delivered_count(&self) -> u64 {
        self.delivered_count
    }

    /// Messages dropped from the bounded send queue so far.
    pub fn dropped_count(&self) -> u64 {
        self.dropped_count
    }

    /// Completed token round trips (heartbeat pulses).
    pub fn heartbeats(&self) -> u64 {
        self.carrier.completed()
    }

    /// Packets to transmit on a timer tick.
    pub fn poll(&mut self) -> Vec<TokenMsg<M>> {
        // Hand the next queued message to the carrier if it is idle.
        if self.carrier.ready_for_payload() {
            if let Some(next) = self.outgoing.pop_front() {
                self.carrier.set_next_payload(next);
            }
        }
        self.carrier.poll()
    }

    /// Handles a packet from the peer. Returns `(delivered, replies)`:
    /// the messages delivered in order, and the packets to send back.
    pub fn handle(&mut self, msg: TokenMsg<M>) -> (Vec<M>, Vec<TokenMsg<M>>) {
        let (events, replies) = self.carrier.handle(msg);
        let mut delivered = Vec::new();
        for ev in events {
            if let TokenEvent::PayloadReceived(m) = ev {
                self.delivered_count += 1;
                delivered.push(m);
            }
        }
        (delivered, replies)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_pair(
        a: &mut ReliableFifo<u32>,
        b: &mut ReliableFifo<u32>,
        iters: usize,
    ) -> (Vec<u32>, Vec<u32>) {
        let mut at_a = Vec::new();
        let mut at_b = Vec::new();
        for _ in 0..iters {
            for m in a.poll() {
                let (del, replies) = b.handle(m);
                at_b.extend(del);
                for r in replies {
                    let (del2, _) = a.handle(r);
                    at_a.extend(del2);
                }
            }
            for m in b.poll() {
                let (del, replies) = a.handle(m);
                at_a.extend(del);
                for r in replies {
                    let (del2, _) = b.handle(r);
                    at_b.extend(del2);
                }
            }
        }
        (at_a, at_b)
    }

    #[test]
    fn messages_arrive_in_fifo_order() {
        let mut a = ReliableFifo::new(2, 16);
        let mut b = ReliableFifo::new(2, 16);
        for i in 0..5 {
            a.queue_send(i);
        }
        let (_, at_b) = run_pair(&mut a, &mut b, 200);
        assert_eq!(at_b, vec![0, 1, 2, 3, 4]);
        assert_eq!(b.delivered_count(), 5);
    }

    #[test]
    fn bidirectional_traffic() {
        let mut a = ReliableFifo::new(1, 8);
        let mut b = ReliableFifo::new(1, 8);
        a.queue_send(1);
        a.queue_send(2);
        b.queue_send(10);
        let (at_a, at_b) = run_pair(&mut a, &mut b, 200);
        assert_eq!(at_b, vec![1, 2]);
        assert_eq!(at_a, vec![10]);
    }

    #[test]
    fn bounded_queue_drops_oldest() {
        let mut a: ReliableFifo<u32> = ReliableFifo::new(1, 2);
        assert!(a.queue_send(1));
        assert!(a.queue_send(2));
        assert!(!a.queue_send(3));
        assert_eq!(a.backlog(), 2);
        assert_eq!(a.dropped_count(), 1);
    }

    #[test]
    fn heartbeats_flow_even_without_payloads() {
        let mut a: ReliableFifo<u32> = ReliableFifo::new(2, 4);
        let mut b: ReliableFifo<u32> = ReliableFifo::new(2, 4);
        run_pair(&mut a, &mut b, 50);
        assert!(a.heartbeats() > 0);
        assert!(b.heartbeats() > 0);
    }

    #[test]
    #[should_panic(expected = "queue bound")]
    fn zero_queue_bound_rejected() {
        let _: ReliableFifo<u32> = ReliableFifo::new(1, 0);
    }
}

//! # datalink — self-stabilizing link protocols over unreliable bounded channels
//!
//! Section 2 of *Self-Stabilizing Reconfiguration* assumes three link-level
//! facilities on top of raw, bounded-capacity, lossy/duplicating/reordering
//! channels:
//!
//! 1. a **token-exchange** protocol: a packet is retransmitted until more
//!    than the channel capacity of acknowledgements arrive, after which the
//!    next packet is transmitted — the two endpoints thereby continuously
//!    exchange a "token" which doubles as a heartbeat ([`token`]);
//! 2. a **snap-stabilizing data link** ([`snap`]): when two processors
//!    (re)connect they first *clean* the intermediate link of unknown stale
//!    packets by flooding a cleaning packet until more than the round-trip
//!    capacity of acknowledgements arrive, and only then deliver messages to
//!    the upper layers;
//! 3. **self-stabilizing reliable FIFO delivery** of high-level messages
//!    ([`fifo`]), built from the token exchange.
//!
//! [`endpoint`] composes the three into one per-peer [`endpoint::Endpoint`],
//! and [`heartbeat`] turns completed token exchanges into the liveness pulses
//! consumed by the `(N,Θ)`-failure detector.
//!
//! ```
//! use datalink::endpoint::{Endpoint, LinkEvent};
//!
//! // Two endpoints of one bidirectional link, channel capacity 3.
//! let mut a: Endpoint<&'static str> = Endpoint::new(3);
//! let mut b: Endpoint<&'static str> = Endpoint::new(3);
//! a.queue_send("hello");
//!
//! // Run the link synchronously until the payload is delivered at b.
//! let mut delivered = Vec::new();
//! for _ in 0..64 {
//!     for m in a.poll() {
//!         for ev in b.handle(m) {
//!             if let LinkEvent::Delivered(x) = ev { delivered.push(x); }
//!         }
//!     }
//!     for m in b.poll() {
//!         for _ev in a.handle(m) {}
//!     }
//! }
//! assert_eq!(delivered, vec!["hello"]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod endpoint;
pub mod fifo;
pub mod heartbeat;
pub mod snap;
pub mod token;

pub use endpoint::{Endpoint, LinkEvent, LinkMsg};
pub use heartbeat::HeartbeatMonitor;
pub use snap::{SnapCleaner, SnapMsg, SnapStatus};
pub use token::{TokenCarrier, TokenEvent, TokenMsg};

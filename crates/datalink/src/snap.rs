//! Snap-stabilizing link cleaning.
//!
//! From Section 2: *"when such a connection signal is received by the newly
//! connected parties, they start a communication procedure that uses the
//! bound on the packets in transit […] to clean all unknown packets in
//! transit, by repeatedly sending the same packet until more than the round
//! trip capacity acknowledgments arrive."* Until cleaning finishes, no packet
//! is delivered to the reconfiguration, joining or application layers — this
//! is what prevents a joining processor from contaminating the system with
//! stale information.

/// Packets of the cleaning handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapMsg {
    /// Cleaning probe, tagged with the epoch of the current cleaning attempt.
    Clean {
        /// Local cleaning epoch (bounded; restarts at reconnection).
        epoch: u8,
    },
    /// Acknowledgement of a cleaning probe.
    CleanAck {
        /// Epoch being acknowledged.
        epoch: u8,
    },
}

/// The state of a cleaner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapStatus {
    /// Cleaning in progress; packets to the upper layers must be discarded.
    Cleaning,
    /// The link is clean; upper-layer packets may be delivered.
    Clean,
}

/// One endpoint of the snap-stabilizing cleaning handshake for a single link.
///
/// The round-trip capacity of a link whose one-directional capacity is `cap`
/// is `2·cap`; the cleaner therefore waits for **more than `2·cap`**
/// acknowledgements of its current epoch before declaring the link clean —
/// at that point every packet that was in transit when cleaning started has
/// either been delivered (and discarded by the cleaner) or evicted.
#[derive(Debug, Clone)]
pub struct SnapCleaner {
    round_trip_capacity: usize,
    epoch: u8,
    acks: usize,
    status: SnapStatus,
}

impl SnapCleaner {
    /// Creates a cleaner for a link with one-directional capacity `cap`,
    /// starting in the [`SnapStatus::Cleaning`] state (a freshly established
    /// or re-established connection is never trusted).
    pub fn new(cap: usize) -> Self {
        SnapCleaner {
            round_trip_capacity: 2 * cap,
            epoch: 0,
            acks: 0,
            status: SnapStatus::Cleaning,
        }
    }

    /// Restarts cleaning, e.g. upon a connection signal for this link.
    pub fn reconnect(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        self.acks = 0;
        self.status = SnapStatus::Cleaning;
    }

    /// Current status.
    pub fn status(&self) -> SnapStatus {
        self.status
    }

    /// Returns `true` once the link has been cleaned.
    pub fn is_clean(&self) -> bool {
        self.status == SnapStatus::Clean
    }

    /// Packets to transmit on a timer tick: while cleaning, the probe is
    /// retransmitted; once clean, nothing needs to be sent.
    pub fn poll(&self) -> Vec<SnapMsg> {
        match self.status {
            SnapStatus::Cleaning => vec![SnapMsg::Clean { epoch: self.epoch }],
            SnapStatus::Clean => Vec::new(),
        }
    }

    /// Handles a cleaning packet from the peer; returns packets to send back.
    pub fn handle(&mut self, msg: SnapMsg) -> Vec<SnapMsg> {
        match msg {
            SnapMsg::Clean { epoch } => vec![SnapMsg::CleanAck { epoch }],
            SnapMsg::CleanAck { epoch } => {
                if self.status == SnapStatus::Cleaning && epoch == self.epoch {
                    self.acks += 1;
                    if self.acks > self.round_trip_capacity {
                        self.status = SnapStatus::Clean;
                    }
                }
                Vec::new()
            }
        }
    }

    /// Whether an upper-layer packet received now may be delivered.
    /// While the link is being cleaned, stale packets must be discarded.
    pub fn may_deliver(&self) -> bool {
        self.is_clean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_pair(a: &mut SnapCleaner, b: &mut SnapCleaner, iters: usize) {
        for _ in 0..iters {
            for m in a.poll() {
                for r in b.handle(m) {
                    for r2 in a.handle(r) {
                        b.handle(r2);
                    }
                }
            }
            for m in b.poll() {
                for r in a.handle(m) {
                    for r2 in b.handle(r) {
                        a.handle(r2);
                    }
                }
            }
        }
    }

    #[test]
    fn starts_dirty_and_becomes_clean() {
        let mut a = SnapCleaner::new(2);
        let mut b = SnapCleaner::new(2);
        assert!(!a.may_deliver());
        assert!(!b.may_deliver());
        run_pair(&mut a, &mut b, 20);
        assert!(a.is_clean());
        assert!(b.is_clean());
        assert!(a.poll().is_empty(), "clean endpoint keeps probing");
    }

    #[test]
    fn needs_more_than_round_trip_capacity_acks() {
        let mut a = SnapCleaner::new(2); // round trip capacity 4
        for _ in 0..4 {
            a.handle(SnapMsg::CleanAck { epoch: 0 });
        }
        assert!(!a.is_clean());
        a.handle(SnapMsg::CleanAck { epoch: 0 });
        assert!(a.is_clean());
    }

    #[test]
    fn stale_epoch_acks_are_ignored() {
        let mut a = SnapCleaner::new(1);
        a.reconnect(); // epoch becomes 1
        for _ in 0..100 {
            a.handle(SnapMsg::CleanAck { epoch: 0 });
        }
        assert!(!a.is_clean());
    }

    #[test]
    fn reconnect_restarts_cleaning() {
        let mut a = SnapCleaner::new(1);
        let mut b = SnapCleaner::new(1);
        run_pair(&mut a, &mut b, 10);
        assert!(a.is_clean());
        a.reconnect();
        assert!(!a.is_clean());
        assert_eq!(a.status(), SnapStatus::Cleaning);
        run_pair(&mut a, &mut b, 10);
        assert!(a.is_clean());
    }

    #[test]
    fn clean_probe_is_always_acknowledged() {
        let mut b = SnapCleaner::new(3);
        let replies = b.handle(SnapMsg::Clean { epoch: 9 });
        assert_eq!(replies, vec![SnapMsg::CleanAck { epoch: 9 }]);
        // Even when already clean.
        let mut c = SnapCleaner::new(1);
        let mut d = SnapCleaner::new(1);
        run_pair(&mut c, &mut d, 10);
        let replies = c.handle(SnapMsg::Clean { epoch: 2 });
        assert_eq!(replies.len(), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    proptest! {
        /// Cleaning terminates even over lossy links, for any capacity.
        #[test]
        fn cleaning_terminates_over_lossy_links(seed in 0u64..2000, cap in 1usize..5) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut a = SnapCleaner::new(cap);
            let mut b = SnapCleaner::new(cap);
            for _ in 0..2000 {
                if a.is_clean() && b.is_clean() { break; }
                for m in a.poll() {
                    if !rng.gen_bool(0.4) {
                        for r in b.handle(m) {
                            if !rng.gen_bool(0.4) { a.handle(r); }
                        }
                    }
                }
                for m in b.poll() {
                    if !rng.gen_bool(0.4) {
                        for r in a.handle(m) {
                            if !rng.gen_bool(0.4) { b.handle(r); }
                        }
                    }
                }
            }
            prop_assert!(a.is_clean());
            prop_assert!(b.is_clean());
        }
    }
}

//! Turning token round trips into liveness pulses.
//!
//! The `(N,Θ)`-failure detector consumes one "heartbeat" per completed token
//! exchange with a peer. [`HeartbeatMonitor`] tracks, per peer, how many
//! round trips have completed and how many new pulses have not yet been
//! consumed by the failure detector.

use std::collections::BTreeMap;

use simnet::ProcessId;

/// Per-peer heartbeat bookkeeping.
#[derive(Debug, Clone, Default)]
pub struct HeartbeatMonitor {
    /// Total completed round trips per peer.
    totals: BTreeMap<ProcessId, u64>,
    /// Pulses observed since the last call to [`HeartbeatMonitor::take_pulses`].
    fresh: BTreeMap<ProcessId, u64>,
}

impl HeartbeatMonitor {
    /// Creates an empty monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed token round trip with `peer`.
    pub fn record_pulse(&mut self, peer: ProcessId) {
        *self.totals.entry(peer).or_insert(0) += 1;
        *self.fresh.entry(peer).or_insert(0) += 1;
    }

    /// Total number of round trips completed with `peer`.
    pub fn total(&self, peer: ProcessId) -> u64 {
        self.totals.get(&peer).copied().unwrap_or(0)
    }

    /// Returns and clears the pulses accumulated since the last call; the
    /// failure detector feeds each returned `(peer, count)` into its
    /// heartbeat-count vector.
    pub fn take_pulses(&mut self) -> Vec<(ProcessId, u64)> {
        let out: Vec<(ProcessId, u64)> = self
            .fresh
            .iter()
            .filter(|(_, c)| **c > 0)
            .map(|(p, c)| (*p, *c))
            .collect();
        self.fresh.clear();
        out
    }

    /// Peers that have ever produced a pulse.
    pub fn known_peers(&self) -> Vec<ProcessId> {
        self.totals.keys().copied().collect()
    }

    /// Discards all bookkeeping for `peer` (e.g. after it was declared
    /// crashed and its link torn down).
    pub fn forget(&mut self, peer: ProcessId) {
        self.totals.remove(&peer);
        self.fresh.remove(&peer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pulses_accumulate_and_drain() {
        let mut hb = HeartbeatMonitor::new();
        let p1 = ProcessId::new(1);
        let p2 = ProcessId::new(2);
        hb.record_pulse(p1);
        hb.record_pulse(p1);
        hb.record_pulse(p2);
        assert_eq!(hb.total(p1), 2);
        assert_eq!(hb.total(p2), 1);
        let mut pulses = hb.take_pulses();
        pulses.sort();
        assert_eq!(pulses, vec![(p1, 2), (p2, 1)]);
        // Drained: nothing fresh remains, totals persist.
        assert!(hb.take_pulses().is_empty());
        assert_eq!(hb.total(p1), 2);
    }

    #[test]
    fn unknown_peer_has_zero_total() {
        let hb = HeartbeatMonitor::new();
        assert_eq!(hb.total(ProcessId::new(9)), 0);
        assert!(hb.known_peers().is_empty());
    }

    #[test]
    fn forget_removes_peer() {
        let mut hb = HeartbeatMonitor::new();
        let p = ProcessId::new(3);
        hb.record_pulse(p);
        hb.forget(p);
        assert_eq!(hb.total(p), 0);
        assert!(hb.known_peers().is_empty());
    }
}

//! The heartbeat-count vector detector.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use simnet::ProcessId;

use crate::estimate::gap_estimate;
use crate::trust::TrustView;

/// Identifiers below this bound live in the dense baseline vector; larger
/// ones (which only transient faults or forged packets can produce) spill
/// into an ordered map. Covers the largest populations the campaign tiers
/// run (n = 1024 → `n_bound` = 2048) plus the ghost-identifier ranges the
/// fault plans forge.
const DENSE_LIMIT: u32 = 4096;

/// Absent-entry sentinel for the dense baseline vector. No legal baseline
/// reaches it: baselines are `total − count` with `total ≥ 0` bounded by the
/// number of heartbeats processed and `count ≤ u64::MAX`.
const ABSENT: i128 = i128::MIN;

/// The `(N,Θ)`-failure detector of one processor.
///
/// * `N` bounds the number of processors that can be active at any time; any
///   entry ranked below the `N`-th is ignored.
/// * `Θ` (the *suspicion threshold*) bounds how stale a processor's heartbeat
///   count may become, relative to the freshest counts, before it is
///   suspected.
///
/// The structure is bounded: it retains at most `2·N` entries (the `N` best
/// ranked plus room for newcomers before the next prune).
///
/// Internally the count vector is stored in difference form: a logical clock
/// `total` counts every heartbeat processed, and per peer only the clock
/// value of its latest heartbeat is kept, so that
/// `count(p) = total − base[p]`. This makes [`ThetaFailureDetector::heartbeat`]
/// — which runs for **every** received packet — `O(log N)` instead of the
/// naive `O(N)` sweep incrementing every other entry, while producing
/// exactly the same counts.
#[derive(Debug, Clone)]
pub struct ThetaFailureDetector {
    me: ProcessId,
    n_bound: usize,
    theta: u64,
    /// Logical clock: total heartbeats processed.
    total: i128,
    /// Per-peer baseline for identifiers below [`DENSE_LIMIT`], indexed by
    /// the raw identifier; `count(p) = total − dense[p]`, [`ABSENT`] marks an
    /// untracked slot. Signed because transient-fault injection may set
    /// counts above the clock. The dense layout makes the per-packet
    /// [`ThetaFailureDetector::heartbeat`] a plain array write instead of an
    /// ordered-map insertion.
    dense: Vec<i128>,
    /// Baselines of identifiers at or above [`DENSE_LIMIT`].
    spill: BTreeMap<ProcessId, i128>,
    /// Number of tracked entries across `dense` and `spill`.
    tracked: usize,
    /// Bumped on every mutation; keys `trusted_cache`.
    version: u64,
    /// The trusted set computed at `version`, reused until the next
    /// mutation so the several trust queries a composite node issues per
    /// step rank the vector once. Shared (`Arc`) so callers on the hot path
    /// can hold the set without cloning it, and so a stale version stamp
    /// whose *membership* did not change (the steady-state norm — heartbeats
    /// move counts every round, membership almost never) revalidates the
    /// existing allocation instead of rebuilding the set.
    trusted_cache: RefCell<Option<(u64, Arc<BTreeSet<ProcessId>>)>>,
}

/// A raw count from the difference representation, saturated into `u64`
/// exactly like the former explicit vector (which used `saturating_add`).
fn saturate(diff: i128) -> u64 {
    diff.clamp(0, u64::MAX as i128) as u64
}

impl ThetaFailureDetector {
    /// Creates a detector for processor `me` with participation bound
    /// `n_bound` (the paper's `N`) and suspicion threshold `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n_bound == 0` or `theta == 0`.
    pub fn new(me: ProcessId, n_bound: usize, theta: u64) -> Self {
        assert!(n_bound > 0, "participation bound N must be positive");
        assert!(theta > 0, "suspicion threshold theta must be positive");
        ThetaFailureDetector {
            me,
            n_bound,
            theta,
            total: 0,
            dense: Vec::new(),
            spill: BTreeMap::new(),
            tracked: 0,
            version: 0,
            trusted_cache: RefCell::new(None),
        }
    }

    // ----- baseline storage ------------------------------------------------

    /// Stores `baseline` for `peer`, routing small identifiers to the dense
    /// vector.
    fn set_base(&mut self, peer: ProcessId, baseline: i128) {
        self.version += 1;
        let raw = peer.as_u32();
        if raw < DENSE_LIMIT {
            let idx = raw as usize;
            if idx >= self.dense.len() {
                self.dense.resize(idx + 1, ABSENT);
            }
            if self.dense[idx] == ABSENT {
                self.tracked += 1;
            }
            self.dense[idx] = baseline;
        } else if self.spill.insert(peer, baseline).is_none() {
            self.tracked += 1;
        }
    }

    fn get_base(&self, peer: ProcessId) -> Option<i128> {
        let raw = peer.as_u32();
        if raw < DENSE_LIMIT {
            match self.dense.get(raw as usize) {
                Some(&b) if b != ABSENT => Some(b),
                _ => None,
            }
        } else {
            self.spill.get(&peer).copied()
        }
    }

    fn remove_base(&mut self, peer: ProcessId) {
        self.version += 1;
        let raw = peer.as_u32();
        if raw < DENSE_LIMIT {
            if let Some(slot) = self.dense.get_mut(raw as usize) {
                if *slot != ABSENT {
                    *slot = ABSENT;
                    self.tracked -= 1;
                }
            }
        } else if self.spill.remove(&peer).is_some() {
            self.tracked -= 1;
        }
    }

    /// All tracked `(peer, baseline)` entries in ascending identifier order
    /// (dense identifiers are all smaller than spilled ones).
    fn entries(&self) -> impl Iterator<Item = (ProcessId, i128)> + '_ {
        self.dense
            .iter()
            .enumerate()
            .filter(|(_, &b)| b != ABSENT)
            .map(|(i, &b)| (ProcessId::new(i as u32), b))
            .chain(self.spill.iter().map(|(p, &b)| (*p, b)))
    }

    /// The owner of this detector.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// The participation bound `N`.
    pub fn n_bound(&self) -> usize {
        self.n_bound
    }

    /// The suspicion threshold `Θ`.
    pub fn theta(&self) -> u64 {
        self.theta
    }

    /// Records a heartbeat (token receipt) from `peer`: `peer`'s count is
    /// reset to zero and every other tracked count is incremented by one.
    /// Heartbeats from `me` itself are ignored — a processor always trusts
    /// itself.
    pub fn heartbeat(&mut self, peer: ProcessId) {
        if peer == self.me {
            return;
        }
        // Difference form of "reset `peer` to 0, increment every other
        // tracked count": advance the clock, re-baseline `peer`.
        self.total += 1;
        self.set_base(peer, self.total);
        self.prune();
    }

    /// Keeps the vector bounded: only the `2·N` best-ranked entries are
    /// retained (the paper ignores everything ranked below the `N`-th; we
    /// keep a little slack so newcomers are not evicted prematurely).
    fn prune(&mut self) {
        let limit = 2 * self.n_bound;
        if self.tracked <= limit {
            return;
        }
        let mut ranked = self.ranked();
        ranked.truncate(limit);
        let keep: BTreeSet<ProcessId> = ranked.into_iter().map(|(p, _)| p).collect();
        let evict: Vec<ProcessId> = self
            .entries()
            .map(|(p, _)| p)
            .filter(|p| !keep.contains(p))
            .collect();
        for p in evict {
            self.remove_base(p);
        }
    }

    /// The heartbeat count currently recorded for `peer` (`None` if `peer`
    /// was never heard from or has been pruned).
    pub fn count(&self, peer: ProcessId) -> Option<u64> {
        self.get_base(peer).map(|b| saturate(self.total - b))
    }

    /// All tracked processors ranked from most to least recently heard
    /// (ties broken by identifier).
    pub fn ranked(&self) -> Vec<(ProcessId, u64)> {
        let mut ranked: Vec<(ProcessId, u64)> = self
            .entries()
            .map(|(p, b)| (p, saturate(self.total - b)))
            .collect();
        ranked.sort_by_key(|(p, c)| (*c, *p));
        ranked
    }

    /// Runs `f` on the current trusted set, computing it only when a
    /// mutation happened since the last query.
    fn with_trusted<R>(&self, f: impl FnOnce(&BTreeSet<ProcessId>) -> R) -> R {
        f(&self.trusted_shared())
    }

    /// The trusted set behind a shared handle — the zero-clone face of
    /// [`ThetaFailureDetector::trusted`] for the per-step hot path. The
    /// cached allocation is reused as long as the *membership* is unchanged,
    /// even across heartbeats (which bump the version every round but only
    /// move counts): a cheap subset-plus-cardinality sweep revalidates the
    /// stale stamp before falling back to a full recompute.
    pub fn trusted_shared(&self) -> Arc<BTreeSet<ProcessId>> {
        let mut cache = self.trusted_cache.borrow_mut();
        if let Some((version, set)) = cache.as_ref() {
            if *version == self.version {
                return set.clone();
            }
            if self.cached_still_trusted(set) {
                debug_assert_eq!(
                    **set,
                    self.compute_trusted(),
                    "trusted-set revalidation accepted a stale membership"
                );
                let set = set.clone();
                *cache = Some((self.version, set.clone()));
                return set;
            }
        }
        let set = Arc::new(self.compute_trusted());
        *cache = Some((self.version, set.clone()));
        set
    }

    /// Whether `cached` is still exactly the trusted set, checked without
    /// allocating: every in-window entry must be in `cached` and account —
    /// together with `me` — for its whole cardinality (a subset of equal
    /// size is equal). Only valid for the unranked fast path; more than `N`
    /// window members forces the ranked recompute.
    fn cached_still_trusted(&self, cached: &BTreeSet<ProcessId>) -> bool {
        debug_assert!(cached.contains(&self.me), "trusted sets always hold me");
        if self.tracked == 0 {
            return cached.len() == 1;
        }
        let freshest = self
            .entries()
            .map(|(_, b)| saturate(self.total - b))
            .min()
            .expect("tracked > 0");
        let in_window = |b: i128| saturate(self.total - b).saturating_sub(freshest) <= self.theta;
        let mut window = 0usize;
        let mut me_in_window = false;
        for (p, b) in self.entries() {
            if in_window(b) {
                window += 1;
                me_in_window |= p == self.me;
                if window > self.n_bound || !cached.contains(&p) {
                    return false;
                }
            }
        }
        cached.len() == window + usize::from(!me_in_window)
    }

    /// Computes the trusted set: the first `N` ranked entries whose count
    /// lags the freshest count by at most `Θ`, plus `me`.
    ///
    /// In the common case — no more than `N` processors inside the `Θ`
    /// window — no ranking is needed at all: everyone inside the window
    /// outranks everyone outside it (ranking is by count), so the window
    /// members *are* the first entries and a single unsorted sweep suffices.
    fn compute_trusted(&self) -> BTreeSet<ProcessId> {
        let mut trusted = BTreeSet::new();
        trusted.insert(self.me);
        if self.tracked == 0 {
            return trusted;
        }
        let freshest = self
            .entries()
            .map(|(_, b)| saturate(self.total - b))
            .min()
            .expect("tracked > 0");
        let in_window = |b: i128| saturate(self.total - b).saturating_sub(freshest) <= self.theta;
        let window = self.entries().filter(|(_, b)| in_window(*b)).count();
        if window <= self.n_bound {
            trusted.extend(
                self.entries()
                    .filter(|(_, b)| in_window(*b))
                    .map(|(p, _)| p),
            );
        } else {
            let mut ranked: Vec<(u64, ProcessId)> = self
                .entries()
                .filter(|(_, b)| in_window(*b))
                .map(|(p, b)| (saturate(self.total - b), p))
                .collect();
            ranked.sort_unstable();
            ranked.truncate(self.n_bound);
            trusted.extend(ranked.into_iter().map(|(_, p)| p));
        }
        trusted
    }

    /// Returns `true` when `peer` is currently trusted.
    ///
    /// A processor always trusts itself. Another processor is trusted when
    /// its heartbeat count does not lag the freshest count by more than `Θ`
    /// and it is ranked among the first `N` entries.
    pub fn trusts(&self, peer: ProcessId) -> bool {
        self.with_trusted(|t| t.contains(&peer))
    }

    /// The set of trusted processors (always contains `me`).
    pub fn trusted(&self) -> BTreeSet<ProcessId> {
        self.with_trusted(|t| t.clone())
    }

    /// The set of tracked-but-suspected processors.
    pub fn suspected(&self) -> BTreeSet<ProcessId> {
        self.with_trusted(|trusted| {
            self.entries()
                .map(|(p, _)| p)
                .filter(|p| !trusted.contains(p))
                .collect()
        })
    }

    /// The gap-based estimate of the number of currently active processors
    /// (`nᵢ ≤ N`), counting `me` itself.
    pub fn estimate_active(&self) -> usize {
        let counts: Vec<u64> = self.ranked().into_iter().map(|(_, c)| c).collect();
        let estimate = gap_estimate(&counts, self.theta);
        (estimate + 1).min(self.n_bound) // +1 accounts for `me`
    }

    /// A snapshot of the detector output, suitable for embedding in protocol
    /// messages (the paper's `FD[i]` field).
    pub fn view(&self) -> TrustView {
        TrustView::new(self.trusted())
    }

    /// Discards all knowledge about `peer`.
    pub fn forget(&mut self, peer: ProcessId) {
        self.remove_base(peer);
    }

    /// Overwrites the count of `peer` (transient-fault injection helper).
    pub fn corrupt_count(&mut self, peer: ProcessId, count: u64) {
        if peer != self.me {
            self.set_base(peer, self.total - count as i128);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn trusts_itself_even_with_no_heartbeats() {
        let fd = ThetaFailureDetector::new(pid(0), 4, 8);
        assert!(fd.trusts(pid(0)));
        assert_eq!(fd.trusted().len(), 1);
        assert_eq!(fd.estimate_active(), 1);
    }

    #[test]
    fn frequent_heartbeats_keep_a_peer_trusted() {
        let mut fd = ThetaFailureDetector::new(pid(0), 4, 8);
        for _ in 0..100 {
            fd.heartbeat(pid(1));
            fd.heartbeat(pid(2));
        }
        assert!(fd.trusts(pid(1)));
        assert!(fd.trusts(pid(2)));
        assert!(fd.count(pid(1)).unwrap() <= 1);
    }

    #[test]
    fn silent_peer_becomes_suspected() {
        let mut fd = ThetaFailureDetector::new(pid(0), 4, 8);
        fd.heartbeat(pid(9)); // heard once, then silence
        for _ in 0..50 {
            fd.heartbeat(pid(1));
            fd.heartbeat(pid(2));
        }
        assert!(!fd.trusts(pid(9)));
        assert!(fd.suspected().contains(&pid(9)));
        assert!(fd.trusts(pid(1)));
    }

    #[test]
    fn crashed_processor_is_ranked_last() {
        let mut fd = ThetaFailureDetector::new(pid(0), 8, 8);
        for peer in [1, 2, 3] {
            fd.heartbeat(pid(peer));
        }
        // Processor 3 stops; 1 and 2 keep going.
        for _ in 0..30 {
            fd.heartbeat(pid(1));
            fd.heartbeat(pid(2));
        }
        let ranked = fd.ranked();
        assert_eq!(ranked.last().unwrap().0, pid(3));
    }

    #[test]
    fn estimate_tracks_number_of_active_processors() {
        let mut fd = ThetaFailureDetector::new(pid(0), 16, 4);
        // Four live peers heartbeat in round-robin; one early peer crashes.
        fd.heartbeat(pid(9));
        for _ in 0..50 {
            for peer in [1, 2, 3, 4] {
                fd.heartbeat(pid(peer));
            }
        }
        // me + 4 live peers
        assert_eq!(fd.estimate_active(), 5);
    }

    #[test]
    fn heartbeat_from_self_is_ignored() {
        let mut fd = ThetaFailureDetector::new(pid(0), 4, 4);
        fd.heartbeat(pid(0));
        assert_eq!(fd.count(pid(0)), None);
        assert_eq!(fd.ranked().len(), 0);
    }

    #[test]
    fn vector_stays_bounded() {
        let mut fd = ThetaFailureDetector::new(pid(0), 4, 4);
        for i in 1..100 {
            fd.heartbeat(pid(i));
        }
        assert!(fd.ranked().len() <= 8, "len = {}", fd.ranked().len());
    }

    #[test]
    fn forget_removes_peer() {
        let mut fd = ThetaFailureDetector::new(pid(0), 4, 4);
        fd.heartbeat(pid(1));
        fd.forget(pid(1));
        assert_eq!(fd.count(pid(1)), None);
    }

    #[test]
    fn recovers_from_corrupted_counts() {
        let mut fd = ThetaFailureDetector::new(pid(0), 4, 8);
        for _ in 0..10 {
            fd.heartbeat(pid(1));
            fd.heartbeat(pid(2));
        }
        // Transient fault: a live peer's count is corrupted sky-high, so it
        // lags far behind the other live peer and is suspected.
        fd.corrupt_count(pid(1), 1_000_000);
        assert!(!fd.trusts(pid(1)));
        // Continued heartbeats re-establish trust: self-stabilization of the
        // detector output.
        for _ in 0..5 {
            fd.heartbeat(pid(1));
            fd.heartbeat(pid(2));
        }
        assert!(fd.trusts(pid(1)));
    }

    #[test]
    fn view_reflects_trusted_set() {
        let mut fd = ThetaFailureDetector::new(pid(0), 4, 8);
        for _ in 0..5 {
            fd.heartbeat(pid(1));
        }
        let view = fd.view();
        assert!(view.contains(pid(0)));
        assert!(view.contains(pid(1)));
        assert_eq!(view.len(), 2);
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn zero_theta_rejected() {
        let _ = ThetaFailureDetector::new(pid(0), 4, 0);
    }

    #[test]
    #[should_panic(expected = "N must be positive")]
    fn zero_n_rejected() {
        let _ = ThetaFailureDetector::new(pid(0), 0, 4);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    proptest! {
        /// Processors that heartbeat regularly in the recent past are always
        /// trusted, regardless of the interleaving of older heartbeats.
        #[test]
        fn recently_active_peers_are_trusted(
            old_beats in proptest::collection::vec(1u32..20, 0..100),
            live in proptest::collection::btree_set(1u32..6, 1..5),
        ) {
            let mut fd = ThetaFailureDetector::new(pid(0), 8, 4 * 6);
            for b in old_beats {
                fd.heartbeat(pid(b));
            }
            // A burst of fresh rounds from the live set.
            for _ in 0..10 {
                for p in &live {
                    fd.heartbeat(pid(*p));
                }
            }
            for p in &live {
                prop_assert!(fd.trusts(pid(*p)), "live peer {p} not trusted");
            }
        }

        /// The active estimate never exceeds the participation bound.
        #[test]
        fn estimate_is_bounded_by_n(
            beats in proptest::collection::vec(1u32..50, 0..300),
            n in 1usize..10,
        ) {
            let mut fd = ThetaFailureDetector::new(pid(0), n, 8);
            for b in beats {
                fd.heartbeat(pid(b));
            }
            prop_assert!(fd.estimate_active() <= n);
            prop_assert!(fd.estimate_active() >= 1);
        }
    }
}

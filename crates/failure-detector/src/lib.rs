//! # failure-detector — the (N,Θ)-failure detector
//!
//! Section 2 of *Self-Stabilizing Reconfiguration* describes an extension of
//! the Θ-failure detector: every processor `pᵢ` keeps an ordered heartbeat
//! count vector `nonCrashed` with one entry per processor it exchanges the
//! token with. When `pᵢ` receives the token from `pⱼ` it sets `pⱼ`'s count to
//! zero and increments every other count by one. Processors are thereby
//! ranked by how recently they communicated; a crashed processor's count
//! grows without bound and an ever-expanding *gap* separates it from the
//! counts of live processors. The gap also yields an estimate `nᵢ ≤ N` of the
//! number of processors that are currently active.
//!
//! The detector is *unreliable*: its output may be arbitrarily wrong during
//! unstable periods. The reconfiguration scheme only requires its reliability
//! temporarily — to regain safety after transient faults — and conditions
//! liveness on its (unreliable) signals afterwards.
//!
//! ```
//! use failure_detector::ThetaFailureDetector;
//! use simnet::ProcessId;
//!
//! let me = ProcessId::new(0);
//! let peer = ProcessId::new(1);
//! let dead = ProcessId::new(2);
//! let mut fd = ThetaFailureDetector::new(me, 8, 16);
//! for _ in 0..40 {
//!     fd.heartbeat(peer);
//! }
//! // `peer` keeps renewing its heartbeat while `dead` (which we heard from
//! // once, long ago) falls behind and is eventually suspected.
//! fd.heartbeat(dead);
//! for _ in 0..40 {
//!     fd.heartbeat(peer);
//! }
//! assert!(fd.trusts(peer));
//! assert!(!fd.trusts(dead));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod estimate;
pub mod theta;
pub mod trust;

pub use estimate::{gap_estimate, largest_gap};
pub use theta::ThetaFailureDetector;
pub use trust::TrustView;

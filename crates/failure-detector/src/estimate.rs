//! Gap-based estimation of the number of active processors.
//!
//! The paper (Section 2): the heartbeat counts of live processors stay close
//! to each other, while a crashed processor's count keeps growing, so a
//! *significant, ever-expanding gap* appears between the live prefix of the
//! ranked vector and the crashed suffix. The last processor before the gap is
//! the `nᵢ`-th one, yielding the estimate `nᵢ` of the number of active
//! processors.

/// Finds the position and size of the largest gap between consecutive values
/// of an ascending-sorted slice of heartbeat counts.
///
/// Returns `None` for slices with fewer than two elements.
///
/// ```
/// use failure_detector::largest_gap;
/// // counts: three fresh processors, then one that fell far behind
/// let counts = [0, 1, 2, 100];
/// assert_eq!(largest_gap(&counts), Some((2, 98)));
/// ```
pub fn largest_gap(sorted_counts: &[u64]) -> Option<(usize, u64)> {
    if sorted_counts.len() < 2 {
        return None;
    }
    let mut best: Option<(usize, u64)> = None;
    for i in 0..sorted_counts.len() - 1 {
        let gap = sorted_counts[i + 1].saturating_sub(sorted_counts[i]);
        if best.map(|(_, g)| gap > g).unwrap_or(true) {
            best = Some((i, gap));
        }
    }
    best
}

/// Estimates how many of the ranked processors are active, given their
/// heartbeat counts sorted ascending (freshest first) and the suspicion
/// threshold `theta`.
///
/// The estimate is the length of the prefix that precedes the first gap
/// larger than `theta`; if no such gap exists every ranked processor is
/// considered active.
///
/// ```
/// use failure_detector::gap_estimate;
/// assert_eq!(gap_estimate(&[0, 1, 2, 200, 220], 10), 3);
/// assert_eq!(gap_estimate(&[0, 1, 2], 10), 3);
/// assert_eq!(gap_estimate(&[], 10), 0);
/// ```
pub fn gap_estimate(sorted_counts: &[u64], theta: u64) -> usize {
    for i in 0..sorted_counts.len().saturating_sub(1) {
        let gap = sorted_counts[i + 1].saturating_sub(sorted_counts[i]);
        if gap > theta {
            return i + 1;
        }
    }
    sorted_counts.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn largest_gap_handles_small_inputs() {
        assert_eq!(largest_gap(&[]), None);
        assert_eq!(largest_gap(&[5]), None);
        assert_eq!(largest_gap(&[5, 5]), Some((0, 0)));
    }

    #[test]
    fn largest_gap_finds_the_crash_boundary() {
        let counts = [0, 2, 3, 4, 90, 95];
        assert_eq!(largest_gap(&counts), Some((3, 86)));
    }

    #[test]
    fn gap_estimate_without_crashes_counts_everyone() {
        assert_eq!(gap_estimate(&[0, 1, 2, 3], 5), 4);
    }

    #[test]
    fn gap_estimate_cuts_at_first_large_gap() {
        assert_eq!(gap_estimate(&[0, 1, 50, 51, 200], 10), 2);
    }

    #[test]
    fn gap_estimate_single_entry() {
        assert_eq!(gap_estimate(&[7], 3), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The estimate is always between 0 and the number of entries, and a
        /// prefix of `k` tight counts followed by a huge jump is estimated as
        /// exactly `k`.
        #[test]
        fn estimate_respects_bounds(counts in proptest::collection::vec(0u64..1000, 0..50), theta in 1u64..100) {
            let mut sorted = counts.clone();
            sorted.sort_unstable();
            let est = gap_estimate(&sorted, theta);
            prop_assert!(est <= sorted.len());
        }

        #[test]
        fn synthetic_crash_boundary_is_found(k in 1usize..10, tail in 1usize..10, theta in 5u64..50) {
            // k live processors with counts 0..k, then `tail` crashed ones far away.
            let mut counts: Vec<u64> = (0..k as u64).collect();
            let far = k as u64 + theta * 10;
            counts.extend((0..tail as u64).map(|i| far + i));
            prop_assert_eq!(gap_estimate(&counts, theta), k);
        }
    }
}

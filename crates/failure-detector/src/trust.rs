//! Snapshots of the failure detector output.
//!
//! Protocol messages of the reconfiguration scheme carry the sender's
//! failure-detector reading (the paper's `FD[i]` field). [`TrustView`] is
//! that reading: the set of processors the sender currently trusts.

use std::collections::BTreeSet;

use simnet::ProcessId;

/// An immutable snapshot of a processor's trusted set.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TrustView {
    trusted: BTreeSet<ProcessId>,
}

impl TrustView {
    /// Creates a view from a trusted set.
    pub fn new(trusted: BTreeSet<ProcessId>) -> Self {
        TrustView { trusted }
    }

    /// Creates a view trusting exactly the given processors.
    pub fn from_iter_ids(ids: impl IntoIterator<Item = ProcessId>) -> Self {
        TrustView {
            trusted: ids.into_iter().collect(),
        }
    }

    /// Returns `true` when `p` is trusted in this view.
    pub fn contains(&self, p: ProcessId) -> bool {
        self.trusted.contains(&p)
    }

    /// The trusted processors in ascending identifier order.
    pub fn iter(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.trusted.iter().copied()
    }

    /// The trusted set.
    pub fn as_set(&self) -> &BTreeSet<ProcessId> {
        &self.trusted
    }

    /// Number of trusted processors.
    pub fn len(&self) -> usize {
        self.trusted.len()
    }

    /// Returns `true` when the view trusts nobody.
    pub fn is_empty(&self) -> bool {
        self.trusted.is_empty()
    }

    /// Set intersection of two views.
    pub fn intersection(&self, other: &TrustView) -> TrustView {
        TrustView {
            trusted: self.trusted.intersection(&other.trusted).copied().collect(),
        }
    }

    /// Returns `true` when `quorum` (e.g. a configuration) has a majority of
    /// its members inside this view.
    pub fn has_majority_of(&self, quorum: &BTreeSet<ProcessId>) -> bool {
        if quorum.is_empty() {
            return false;
        }
        let present = quorum.iter().filter(|p| self.trusted.contains(p)).count();
        present > quorum.len() / 2
    }
}

impl FromIterator<ProcessId> for TrustView {
    fn from_iter<T: IntoIterator<Item = ProcessId>>(iter: T) -> Self {
        TrustView::from_iter_ids(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn view(ids: &[u32]) -> TrustView {
        ids.iter().copied().map(pid).collect()
    }

    #[test]
    fn membership_and_len() {
        let v = view(&[1, 2, 3]);
        assert!(v.contains(pid(2)));
        assert!(!v.contains(pid(9)));
        assert_eq!(v.len(), 3);
        assert!(!v.is_empty());
        assert!(TrustView::default().is_empty());
    }

    #[test]
    fn intersection_keeps_common_members() {
        let a = view(&[1, 2, 3, 4]);
        let b = view(&[3, 4, 5]);
        let i = a.intersection(&b);
        assert_eq!(i, view(&[3, 4]));
    }

    #[test]
    fn majority_detection() {
        let config: BTreeSet<ProcessId> = [1, 2, 3, 4, 5].map(pid).into_iter().collect();
        assert!(view(&[1, 2, 3]).has_majority_of(&config));
        assert!(!view(&[1, 2]).has_majority_of(&config));
        assert!(!view(&[1, 2, 3]).has_majority_of(&BTreeSet::new()));
    }

    #[test]
    fn iter_is_sorted() {
        let v = view(&[5, 1, 3]);
        let ids: Vec<u32> = v.iter().map(|p| p.as_u32()).collect();
        assert_eq!(ids, vec![1, 3, 5]);
    }
}

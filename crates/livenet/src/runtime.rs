//! The threaded node runtime: one OS process per protocol process.
//!
//! Thread layout per node:
//!
//! ```text
//!            ┌ acceptor ─ per-inbound-connection reader threads ┐
//!            ├ timer (wall clock, tick_ms per tick)             ├─ mpsc ─▶ event loop
//!            └ control acceptor ─ per-connection line handlers  ┘           (owns the
//!   per-peer writer threads (reconnect + backoff) ◀─ bounded queues ──────   process)
//! ```
//!
//! The event loop is the only thread touching the protocol state. It turns
//! every timer tick into a [`Process::on_timer`] step and every decoded
//! frame into [`Process::on_message`], building the same [`Context`] the
//! simulator's scheduler builds (all known ids, current timer round), and
//! routes the drained outbox: self-sends loop straight back onto the event
//! queue, peer sends are encoded once and handed to that peer's writer
//! thread. Writer queues are bounded and lossy — a slow or dead peer costs
//! dropped frames, never a stalled event loop — matching the simulator's
//! fair-lossy channel model.
//!
//! Peers are discovered from the cluster file and from inbound [`Hello`]s
//! (which carry the dialer's data port), so a rejoiner with a fresh id that
//! was never in the file becomes routable on first contact.

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use simnet::codec::WireCodec;
use simnet::report::Json;
use simnet::scenario::ScenarioTarget;
use simnet::{Context, ProcessId, Round};

use crate::cluster::ClusterSpec;
use crate::control::{render_line, Request};
use crate::frame::{read_frame, write_frame, Hello};
use crate::hex_encode;

/// Per-peer writer queue depth. Frames beyond this are dropped (and
/// counted), like the simulator's bounded fair-lossy channels.
const WRITER_QUEUE: usize = 1024;

/// Reconnect backoff bounds for writer threads.
const BACKOFF_MIN: Duration = Duration::from_millis(10);
const BACKOFF_MAX: Duration = Duration::from_millis(500);

/// How long a freshly started node waits for the cluster file to list it.
const CLUSTER_FILE_WAIT: Duration = Duration::from_secs(30);

/// Configuration for one live node process.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// This node's protocol process id.
    pub me: ProcessId,
    /// Initial population size (the `n` passed to `spawn_initial`).
    pub n: usize,
    /// Spawn as joiner (fresh id arriving into a running system)?
    pub joiner: bool,
    /// Wall milliseconds per timer tick.
    pub tick_ms: u64,
    /// Cluster file to learn peer addresses from. The node binds its own
    /// ports first, announces them on stdout, then waits for this file to
    /// list its id (deploy writes it after collecting every announcement).
    pub cluster_path: PathBuf,
}

/// Counters the event loop maintains and `status` reports.
#[derive(Debug, Default, Clone)]
pub struct NodeStats {
    /// Timer steps executed.
    pub ticks: u64,
    /// Frames handed to writer threads.
    pub sent: u64,
    /// Frames decoded and delivered to `on_message`.
    pub recv: u64,
    /// Frames dropped: full writer queue or no known address for the peer.
    pub drops: u64,
    /// Inbound frames that failed to decode.
    pub decode_errors: u64,
    /// Client operations accepted via `submit`.
    pub submitted: u64,
    /// Client operations claimed as committed / as failed.
    pub completed_ok: u64,
    /// See [`NodeStats::completed_ok`].
    pub completed_fail: u64,
}

enum Event<M> {
    Tick,
    Packet {
        from: ProcessId,
        msg: M,
    },
    Peer {
        id: ProcessId,
        addr: String,
    },
    DecodeError,
    Control {
        request: Request,
        reply: Sender<String>,
    },
}

struct PeerLink {
    queue: SyncSender<Vec<u8>>,
}

/// Runs one live node until it is told to `shutdown` (or its event sources
/// all die). Binds its data and control listeners on `127.0.0.1:0`, prints
/// a `READY id=<id> data=<port> control=<port> pid=<pid>` line on stdout,
/// waits for the cluster file to list its id, then serves.
pub fn run_node<T>(cfg: NodeConfig) -> io::Result<()>
where
    T: ScenarioTarget + 'static,
    T::Msg: WireCodec + Send + 'static,
{
    let data_listener = TcpListener::bind("127.0.0.1:0")?;
    let control_listener = TcpListener::bind("127.0.0.1:0")?;
    let data_port = data_listener.local_addr()?.port();
    let control_port = control_listener.local_addr()?.port();
    {
        let mut out = io::stdout().lock();
        writeln!(
            out,
            "READY id={} data={data_port} control={control_port} pid={}",
            cfg.me.as_u32(),
            std::process::id()
        )?;
        out.flush()?;
    }

    let spec = wait_for_cluster_file(&cfg)?;
    let mut book: BTreeMap<ProcessId, String> = spec
        .nodes
        .iter()
        .filter(|n| n.id != cfg.me)
        .map(|n| (n.id, n.data_addr()))
        .collect();

    let (event_tx, event_rx) = mpsc::channel::<Event<T::Msg>>();
    let timer_period = Arc::new(AtomicU64::new(1));

    spawn_acceptor::<T>(data_listener, event_tx.clone());
    spawn_control_acceptor::<T>(control_listener, event_tx.clone());
    spawn_timer(
        event_tx.clone(),
        Duration::from_millis(cfg.tick_ms.max(1)),
        Arc::clone(&timer_period),
    );

    let node = if cfg.joiner {
        T::spawn_joiner(cfg.me, cfg.n)
    } else {
        T::spawn_initial(cfg.me, cfg.n)
    };
    event_loop::<T>(
        cfg,
        data_port,
        node,
        &mut book,
        event_rx,
        &event_tx,
        &timer_period,
    )
}

fn wait_for_cluster_file(cfg: &NodeConfig) -> io::Result<ClusterSpec> {
    let deadline = Instant::now() + CLUSTER_FILE_WAIT;
    loop {
        if let Ok(spec) = ClusterSpec::load(&cfg.cluster_path) {
            if spec.node(cfg.me).is_some() {
                return Ok(spec);
            }
        }
        if Instant::now() >= deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!(
                    "cluster file {} never listed node {}",
                    cfg.cluster_path.display(),
                    cfg.me
                ),
            ));
        }
        thread::sleep(Duration::from_millis(25));
    }
}

fn spawn_acceptor<T>(listener: TcpListener, events: Sender<Event<T::Msg>>)
where
    T: ScenarioTarget + 'static,
    T::Msg: WireCodec + Send + 'static,
{
    thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            let events = events.clone();
            thread::spawn(move || {
                let _ = serve_inbound::<T>(stream, &events);
            });
        }
    });
}

fn serve_inbound<T>(stream: TcpStream, events: &Sender<Event<T::Msg>>) -> io::Result<()>
where
    T: ScenarioTarget,
    T::Msg: WireCodec + Send + 'static,
{
    stream.set_nodelay(true)?;
    let peer_ip = stream.peer_addr()?.ip();
    let mut reader = BufReader::new(stream);
    let Ok(hello) = Hello::read_from(&mut reader) else {
        return Ok(()); // wrong magic/version: refuse silently
    };
    let _ = events.send(Event::Peer {
        id: hello.sender,
        addr: format!("{peer_ip}:{}", hello.data_port),
    });
    loop {
        match read_frame::<T::Msg>(&mut reader) {
            Ok((from, msg)) => {
                if events.send(Event::Packet { from, msg }).is_err() {
                    return Ok(());
                }
            }
            Err(crate::frame::FrameError::Decode(_)) => {
                // A malformed envelope poisons the stream framing too —
                // count it and drop the connection; the peer reconnects.
                let _ = events.send(Event::DecodeError);
                return Ok(());
            }
            Err(_) => return Ok(()),
        }
    }
}

fn spawn_control_acceptor<T>(listener: TcpListener, events: Sender<Event<T::Msg>>)
where
    T: ScenarioTarget + 'static,
    T::Msg: WireCodec + Send + 'static,
{
    thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            let events = events.clone();
            thread::spawn(move || {
                let _ = serve_control::<T>(stream, &events);
            });
        }
    });
}

fn serve_control<T>(stream: TcpStream, events: &Sender<Event<T::Msg>>) -> io::Result<()>
where
    T: ScenarioTarget,
    T::Msg: WireCodec + Send + 'static,
{
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        let reply_line = match Request::parse(&line) {
            Ok(request) => {
                let (reply_tx, reply_rx) = mpsc::channel();
                if events
                    .send(Event::Control {
                        request,
                        reply: reply_tx,
                    })
                    .is_err()
                {
                    return Ok(()); // event loop gone: node is shutting down
                }
                match reply_rx.recv() {
                    Ok(reply) => reply,
                    Err(_) => return Ok(()),
                }
            }
            Err(err) => render_line(&Json::obj().field("error", err.as_str())),
        };
        writer.write_all(reply_line.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
    Ok(())
}

fn spawn_timer<M: Send + 'static>(
    events: Sender<Event<M>>,
    tick: Duration,
    period: Arc<AtomicU64>,
) {
    thread::spawn(move || {
        let mut since_fire = 0u64;
        loop {
            thread::sleep(tick);
            since_fire += 1;
            if since_fire >= period.load(Ordering::Relaxed).max(1) {
                since_fire = 0;
                if events.send(Event::Tick).is_err() {
                    return;
                }
            }
        }
    });
}

#[allow(clippy::too_many_arguments)]
fn event_loop<T>(
    cfg: NodeConfig,
    my_data_port: u16,
    mut node: T,
    book: &mut BTreeMap<ProcessId, String>,
    events: Receiver<Event<T::Msg>>,
    loopback: &Sender<Event<T::Msg>>,
    timer_period: &AtomicU64,
) -> io::Result<()>
where
    T: ScenarioTarget,
    T::Msg: WireCodec + Send + 'static,
{
    let me = cfg.me;
    let mut links: BTreeMap<ProcessId, PeerLink> = BTreeMap::new();
    let mut ids: Vec<ProcessId> = book.keys().copied().chain([me]).collect();
    ids.sort_unstable();
    let mut stats = NodeStats::default();
    let mut round = 0u64;
    let mut outbox: VecDeque<(ProcessId, T::Msg)> = VecDeque::new();

    while let Ok(event) = events.recv() {
        match event {
            Event::Tick => {
                round += 1;
                stats.ticks += 1;
                let mut ctx = Context::new(me, Round::new(round), &ids);
                node.on_timer(&mut ctx);
                outbox.extend(ctx.into_outbox().into_iter().map(|(to, p)| (to, p.into_msg())));
            }
            Event::Packet { from, msg } => {
                stats.recv += 1;
                let mut ctx = Context::new(me, Round::new(round), &ids);
                node.on_message(from, msg, &mut ctx);
                outbox.extend(ctx.into_outbox().into_iter().map(|(to, p)| (to, p.into_msg())));
            }
            Event::Peer { id, addr } => {
                if id != me && !book.contains_key(&id) {
                    book.insert(id, addr);
                    if let Err(pos) = ids.binary_search(&id) {
                        ids.insert(pos, id);
                    }
                }
            }
            Event::DecodeError => stats.decode_errors += 1,
            Event::Control { request, reply } => {
                let (line, shutdown) =
                    handle_control(&request, &mut node, &mut stats, me, timer_period);
                let _ = reply.send(line);
                if shutdown {
                    return Ok(());
                }
            }
        }
        for (dest, msg) in outbox.drain(..) {
            if dest == me {
                // Self-sends loop back through the queue like the
                // simulator's self-channel (delivered, not synchronous).
                let _ = loopback.send(Event::Packet { from: me, msg });
                stats.sent += 1;
                continue;
            }
            let Some(addr) = book.get(&dest) else {
                stats.drops += 1;
                continue;
            };
            let link = links
                .entry(dest)
                .or_insert_with(|| spawn_writer(me, my_data_port, addr.clone()));
            match link.queue.try_send(msg.to_bytes()) {
                Ok(()) => stats.sent += 1,
                Err(TrySendError::Full(_)) => stats.drops += 1,
                Err(TrySendError::Disconnected(_)) => {
                    // Writer thread died (it never exits on socket errors,
                    // only on queue disconnect, so this is unreachable in
                    // practice); respawn it.
                    links.insert(dest, spawn_writer(me, my_data_port, addr.clone()));
                    stats.drops += 1;
                }
            }
        }
    }
    Ok(())
}

fn handle_control<T>(
    request: &Request,
    node: &mut T,
    stats: &mut NodeStats,
    me: ProcessId,
    timer_period: &AtomicU64,
) -> (String, bool)
where
    T: ScenarioTarget,
{
    let json = match request {
        Request::Status => Json::obj()
            .field("id", u64::from(me.as_u32()))
            .field("settled", node.settled())
            .field("token", hex_encode(node.settle_token().as_bytes()))
            .field("ticks", stats.ticks)
            .field("sent", stats.sent)
            .field("recv", stats.recv)
            .field("drops", stats.drops)
            .field("decode_errors", stats.decode_errors)
            .field("submitted", stats.submitted)
            .field("completed_ok", stats.completed_ok)
            .field("completed_fail", stats.completed_fail)
            .field("timer_period", timer_period.load(Ordering::Relaxed)),
        Request::Submit { key, value } => {
            let accepted = node.submit_local(*key, *value);
            if accepted {
                stats.submitted += 1;
            }
            Json::obj().field("accepted", accepted)
        }
        Request::Claim => match node.complete_local() {
            Some(ok) => {
                if ok {
                    stats.completed_ok += 1;
                } else {
                    stats.completed_fail += 1;
                }
                Json::obj().field("claimed", true).field("ok", ok)
            }
            None => Json::obj().field("claimed", false),
        },
        Request::Timer(period) => {
            timer_period.store(period.unwrap_or(1).max(1), Ordering::Relaxed);
            Json::obj().field("timer_period", timer_period.load(Ordering::Relaxed))
        }
        Request::Floor(period) => {
            let current = timer_period.load(Ordering::Relaxed);
            timer_period.store(current.max(*period).max(1), Ordering::Relaxed);
            Json::obj().field("timer_period", timer_period.load(Ordering::Relaxed))
        }
        Request::Shutdown => {
            return (render_line(&Json::obj().field("bye", true)), true);
        }
    };
    (render_line(&json), false)
}

fn spawn_writer(me: ProcessId, my_data_port: u16, addr: String) -> PeerLink {
    let (tx, rx) = mpsc::sync_channel::<Vec<u8>>(WRITER_QUEUE);
    thread::spawn(move || run_writer(me, my_data_port, &addr, &rx));
    PeerLink { queue: tx }
}

/// Writer thread body: connect with capped exponential backoff, send the
/// hello, then drain the queue into frames. On any socket error, drop the
/// connection and reconnect; frames arriving while disconnected pile into
/// the bounded queue (overflow is dropped at the sender).
fn run_writer(me: ProcessId, my_data_port: u16, addr: &str, rx: &Receiver<Vec<u8>>) {
    let mut backoff = BACKOFF_MIN;
    loop {
        let Ok(stream) = TcpStream::connect(addr) else {
            thread::sleep(backoff);
            backoff = (backoff * 2).min(BACKOFF_MAX);
            // Keep the queue from filling with stale frames while the
            // peer is down: discard whatever accumulated.
            while rx.try_recv().is_ok() {}
            continue;
        };
        backoff = BACKOFF_MIN;
        let _ = stream.set_nodelay(true);
        let mut writer = BufWriter::new(stream);
        // The hello carries our real accept port: a peer that has never
        // seen us in a cluster file (we are a rejoiner with a fresh id)
        // learns the dial-back address from this.
        let hello = Hello {
            sender: me,
            data_port: my_data_port,
        };
        if hello.write_to(writer.get_mut()).is_err() {
            continue;
        }
        'connected: loop {
            let Ok(frame) = rx.recv() else { return };
            if write_frame(&mut writer, me, &frame).is_err() {
                break 'connected;
            }
            // Flush after draining whatever is immediately available so
            // bursts share one syscall.
            let mut burst = 0;
            while let Ok(next) = rx.try_recv() {
                if write_frame(&mut writer, me, &next).is_err() {
                    break 'connected;
                }
                burst += 1;
                if burst >= WRITER_QUEUE {
                    break;
                }
            }
            if writer.flush().is_err() {
                break 'connected;
            }
        }
    }
}

//! Versioned handshake and length-prefixed data framing.
//!
//! Every data connection starts with a [`Hello`]: a magic, the protocol
//! version, the sender's process id, and the sender's *data listen port* so
//! the receiver can dial back even when the sender was not in the original
//! cluster file (a rejoiner with a fresh id).
//!
//! After the hello, the stream carries data frames:
//!
//! ```text
//! [u32 len][u32 sender][envelope bytes = lane tag + payload]
//! ```
//!
//! `len` counts the sender word plus the envelope, little-endian like every
//! integer in the wire codec. The envelope bytes are exactly what the
//! `wire_enum!`-derived [`simnet::codec::WireCodec`] produces, so the live
//! wire format and the codec round-trip tests cover the same bytes.

use std::fmt;
use std::io::{self, Read, Write};

use simnet::codec::{DecodeError, Reader, WireCodec};
use simnet::ProcessId;

/// Magic bytes opening every hello: "self-stabilizing reconfiguration live".
pub const MAGIC: [u8; 4] = *b"SSRL";

/// Version of the handshake + framing layout. Bumped on any layout change;
/// mismatched peers refuse each other instead of misparsing.
pub const PROTOCOL_VERSION: u16 = 1;

/// Upper bound on `len` of a data frame. Far above any real envelope
/// (envelopes are bounded by `MAX_COLLECTION_LEN` element checks), this
/// exists so a corrupt length prefix cannot trigger a huge allocation.
pub const MAX_FRAME_LEN: u32 = 1 << 22;

/// Errors on the framed transport.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying socket error (includes EOF mid-frame).
    Io(io::Error),
    /// The peer did not open with [`MAGIC`].
    BadMagic([u8; 4]),
    /// The peer speaks a different framing version.
    VersionMismatch {
        /// Version the peer announced.
        got: u16,
    },
    /// A frame declared a length above [`MAX_FRAME_LEN`] (or below the
    /// minimum of 4 bytes for the sender word).
    BadLength(u32),
    /// The envelope bytes failed to decode.
    Decode(DecodeError),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(err) => write!(f, "socket error: {err}"),
            FrameError::BadMagic(got) => write!(f, "bad magic {got:?} (want {MAGIC:?})"),
            FrameError::VersionMismatch { got } => {
                write!(f, "protocol version {got} (want {PROTOCOL_VERSION})")
            }
            FrameError::BadLength(len) => {
                write!(f, "frame length {len} outside 4..={MAX_FRAME_LEN}")
            }
            FrameError::Decode(err) => write!(f, "envelope decode failed: {err}"),
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(err: io::Error) -> Self {
        FrameError::Io(err)
    }
}

/// The connection-opening handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// The dialing process.
    pub sender: ProcessId,
    /// Port the dialing process accepts data connections on (its host is
    /// taken from the socket's peer address).
    pub data_port: u16,
}

impl Hello {
    /// Writes the hello to a stream.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let mut buf = Vec::with_capacity(12);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        buf.extend_from_slice(&self.sender.as_u32().to_le_bytes());
        buf.extend_from_slice(&self.data_port.to_le_bytes());
        w.write_all(&buf)
    }

    /// Reads and validates a hello from a stream.
    pub fn read_from(r: &mut impl Read) -> Result<Hello, FrameError> {
        let mut buf = [0u8; 12];
        r.read_exact(&mut buf)?;
        let magic = [buf[0], buf[1], buf[2], buf[3]];
        if magic != MAGIC {
            return Err(FrameError::BadMagic(magic));
        }
        let version = u16::from_le_bytes([buf[4], buf[5]]);
        if version != PROTOCOL_VERSION {
            return Err(FrameError::VersionMismatch { got: version });
        }
        Ok(Hello {
            sender: ProcessId::new(u32::from_le_bytes([buf[6], buf[7], buf[8], buf[9]])),
            data_port: u16::from_le_bytes([buf[10], buf[11]]),
        })
    }
}

/// Writes one data frame carrying an already-encoded envelope.
pub fn write_frame(w: &mut impl Write, sender: ProcessId, envelope: &[u8]) -> io::Result<()> {
    let len = (envelope.len() + 4) as u32;
    debug_assert!(len <= MAX_FRAME_LEN);
    let mut buf = Vec::with_capacity(8 + envelope.len());
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(&sender.as_u32().to_le_bytes());
    buf.extend_from_slice(envelope);
    w.write_all(&buf)
}

/// Reads one data frame and decodes its envelope.
pub fn read_frame<M: WireCodec>(r: &mut impl Read) -> Result<(ProcessId, M), FrameError> {
    let mut head = [0u8; 4];
    r.read_exact(&mut head)?;
    let len = u32::from_le_bytes(head);
    if !(4..=MAX_FRAME_LEN).contains(&len) {
        return Err(FrameError::BadLength(len));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let mut reader = Reader::new(&body);
    let sender =
        ProcessId::new(simnet::codec::WireCodec::decode(&mut reader).map_err(FrameError::Decode)?);
    let msg = M::decode(&mut reader).map_err(FrameError::Decode)?;
    match reader.remaining() {
        0 => Ok((sender, msg)),
        n => Err(FrameError::Decode(DecodeError::Trailing { remaining: n })),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Note(String);
    simnet::wire_newtype_codec!(Note(String));

    #[test]
    fn hello_roundtrips() {
        let hello = Hello {
            sender: ProcessId::new(7),
            data_port: 45000,
        };
        let mut buf = Vec::new();
        hello.write_to(&mut buf).unwrap();
        assert_eq!(Hello::read_from(&mut buf.as_slice()).unwrap(), hello);
    }

    #[test]
    fn hello_rejects_bad_magic_and_version() {
        let mut buf = Vec::new();
        Hello {
            sender: ProcessId::new(1),
            data_port: 1,
        }
        .write_to(&mut buf)
        .unwrap();
        let mut bad_magic = buf.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            Hello::read_from(&mut bad_magic.as_slice()),
            Err(FrameError::BadMagic(_))
        ));
        let mut bad_version = buf.clone();
        bad_version[4] = 99;
        assert!(matches!(
            Hello::read_from(&mut bad_version.as_slice()),
            Err(FrameError::VersionMismatch { got: 99 })
        ));
    }

    #[test]
    fn frames_roundtrip() {
        let msg = Note("over the real wire".to_string());
        let mut buf = Vec::new();
        write_frame(&mut buf, ProcessId::new(3), &msg.to_bytes()).unwrap();
        let (sender, got): (ProcessId, Note) = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!((sender, got), (ProcessId::new(3), msg));
    }

    #[test]
    fn oversized_and_truncated_frames_are_typed_errors() {
        let mut oversized = Vec::new();
        oversized.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        assert!(matches!(
            read_frame::<Note>(&mut oversized.as_slice()),
            Err(FrameError::BadLength(_))
        ));

        let msg = Note("cut short".to_string());
        let mut buf = Vec::new();
        write_frame(&mut buf, ProcessId::new(3), &msg.to_bytes()).unwrap();
        for cut in 0..buf.len() {
            assert!(
                read_frame::<Note>(&mut &buf[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn trailing_bytes_inside_a_frame_are_rejected() {
        let msg = Note("x".to_string());
        let mut envelope = msg.to_bytes();
        envelope.push(0xAA);
        let mut buf = Vec::new();
        write_frame(&mut buf, ProcessId::new(1), &envelope).unwrap();
        assert!(matches!(
            read_frame::<Note>(&mut buf.as_slice()),
            Err(FrameError::Decode(DecodeError::Trailing { remaining: 1 }))
        ));
    }
}

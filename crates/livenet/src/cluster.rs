//! The cluster spec file: which node ids live at which host/port pairs.
//!
//! `simctl deploy` writes this file after booting a cluster; every node
//! process and `simctl drive`/`kill`/`down` read it. Hosts are explicit so
//! a hand-written spec can place nodes on multiple machines later — the
//! deploy path only ever writes `127.0.0.1`.

use std::fs;
use std::io;
use std::path::Path;

use simnet::report::Json;
use simnet::ProcessId;

/// One node of a live cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSpec {
    /// Protocol process id.
    pub id: ProcessId,
    /// Host the node listens on.
    pub host: String,
    /// Data (peer traffic) port.
    pub data_port: u16,
    /// Control protocol port.
    pub control_port: u16,
    /// OS pid, when spawned by `simctl deploy` (absent in hand-written
    /// multi-machine specs).
    pub pid: Option<u32>,
    /// Whether the node was spawned as a joiner (fresh id, late arrival)
    /// rather than a member of the initial population.
    pub joiner: bool,
}

impl NodeSpec {
    /// `host:data_port` dial string.
    pub fn data_addr(&self) -> String {
        format!("{}:{}", self.host, self.data_port)
    }

    /// `host:control_port` dial string.
    pub fn control_addr(&self) -> String {
        format!("{}:{}", self.host, self.control_port)
    }
}

/// A deployed (or deployable) cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterSpec {
    /// `ScenarioTarget::NAME` of the node kind every process runs.
    pub node_kind: String,
    /// Wall milliseconds per timer tick (one simulated round of timer
    /// progress). The live `SetTimer` adapters multiply this base.
    pub tick_ms: u64,
    /// Size of the initial population, passed to `spawn_initial`/
    /// `spawn_joiner` as `n` (stays fixed as joiners arrive).
    pub initial_n: usize,
    /// The nodes, in id order.
    pub nodes: Vec<NodeSpec>,
}

impl ClusterSpec {
    /// Looks up a node by id.
    pub fn node(&self, id: ProcessId) -> Option<&NodeSpec> {
        self.nodes.iter().find(|n| n.id == id)
    }

    /// Renders the spec as deterministic JSON.
    pub fn render(&self) -> String {
        let nodes = self
            .nodes
            .iter()
            .map(|n| {
                let mut obj = Json::obj()
                    .field("id", u64::from(n.id.as_u32()))
                    .field("host", n.host.as_str())
                    .field("data_port", u64::from(n.data_port))
                    .field("control_port", u64::from(n.control_port))
                    .field("joiner", n.joiner);
                if let Some(pid) = n.pid {
                    obj = obj.field("pid", u64::from(pid));
                }
                obj
            })
            .collect::<Vec<_>>();
        Json::obj()
            .field("node_kind", self.node_kind.as_str())
            .field("tick_ms", self.tick_ms)
            .field("initial_n", self.initial_n)
            .field("nodes", nodes)
            .render()
    }

    /// Parses a spec from JSON text.
    pub fn parse(text: &str) -> Result<ClusterSpec, String> {
        let json = Json::parse(text)?;
        let node_kind = json
            .get("node_kind")
            .and_then(Json::as_str)
            .ok_or("cluster spec: missing string field `node_kind`")?
            .to_string();
        let tick_ms = json
            .get("tick_ms")
            .and_then(Json::as_u64)
            .ok_or("cluster spec: missing integer field `tick_ms`")?;
        let initial_n =
            json.get("initial_n")
                .and_then(Json::as_u64)
                .ok_or("cluster spec: missing integer field `initial_n`")? as usize;
        let raw_nodes = json
            .get("nodes")
            .and_then(Json::as_arr)
            .ok_or("cluster spec: missing array field `nodes`")?;
        let mut nodes = Vec::with_capacity(raw_nodes.len());
        for (i, raw) in raw_nodes.iter().enumerate() {
            let field_u64 = |key: &str| {
                raw.get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("cluster spec: node {i}: missing integer `{key}`"))
            };
            nodes.push(NodeSpec {
                id: ProcessId::new(field_u64("id")? as u32),
                host: raw
                    .get("host")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("cluster spec: node {i}: missing string `host`"))?
                    .to_string(),
                data_port: field_u64("data_port")? as u16,
                control_port: field_u64("control_port")? as u16,
                pid: raw.get("pid").and_then(Json::as_u64).map(|p| p as u32),
                joiner: raw.get("joiner").and_then(Json::as_bool).unwrap_or(false),
            });
        }
        Ok(ClusterSpec {
            node_kind,
            tick_ms,
            initial_n,
            nodes,
        })
    }

    /// Writes the spec to a file.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        fs::write(path, self.render())
    }

    /// Reads a spec from a file.
    pub fn load(path: &Path) -> Result<ClusterSpec, String> {
        let text = fs::read_to_string(path)
            .map_err(|err| format!("cannot read cluster file {}: {err}", path.display()))?;
        ClusterSpec::parse(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ClusterSpec {
        ClusterSpec {
            node_kind: "reconfig".to_string(),
            tick_ms: 20,
            initial_n: 4,
            nodes: (0..4)
                .map(|i| NodeSpec {
                    id: ProcessId::new(i),
                    host: "127.0.0.1".to_string(),
                    data_port: 40000 + i as u16,
                    control_port: 41000 + i as u16,
                    pid: (i != 3).then_some(9000 + i),
                    joiner: i == 3,
                })
                .collect(),
        }
    }

    #[test]
    fn spec_roundtrips_through_json() {
        let spec = sample();
        assert_eq!(ClusterSpec::parse(&spec.render()), Ok(spec));
    }

    #[test]
    fn parse_reports_missing_fields() {
        let err = ClusterSpec::parse("{\"tick_ms\": 20}").unwrap_err();
        assert!(err.contains("node_kind"), "{err}");
        let err = ClusterSpec::parse(
            "{\"node_kind\":\"x\",\"tick_ms\":1,\"initial_n\":2,\"nodes\":[{}]}",
        )
        .unwrap_err();
        assert!(err.contains("node 0"), "{err}");
    }
}

//! The line-based control protocol.
//!
//! Each node exposes a control TCP port next to its data port. A request is
//! one line of space-separated tokens; the response is one line of JSON
//! (rendered compactly — `simnet` JSON with newlines stripped would not be
//! one line, so responses are built with [`render_line`]).
//!
//! Requests:
//!
//! | request              | response fields                                  |
//! |----------------------|--------------------------------------------------|
//! | `status`             | `id`, `settled`, `token` (hex), `ticks`, `sent`, `recv`, `drops`, `decode_errors`, `submitted`, `completed_ok`, `completed_fail`, `timer_period` |
//! | `submit <key> <val>` | `accepted`                                       |
//! | `claim`              | `claimed`, `ok` (present when `claimed`)         |
//! | `timer <p>`          | `timer_period` — sets the period to `p` ticks    |
//! | `timer default`      | `timer_period` — restores the base period of 1   |
//! | `floor <p>`          | `timer_period` — raises the period to ≥ `p`      |
//! | `shutdown`           | `bye` — the node exits after replying            |
//!
//! Unknown or malformed requests get `{"error": "..."}`.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use simnet::report::Json;

/// Renders a JSON value on a single line (the pretty renderer is
/// multi-line; the control protocol needs one line per response).
pub fn render_line(json: &Json) -> String {
    let mut out = String::new();
    let mut in_string = false;
    let mut escaped = false;
    // The pretty renderer only emits structural newlines + indentation
    // outside of strings; string contents are JSON-escaped (no raw
    // newlines), so stripping whitespace runs outside strings is exact.
    for c in json.render().chars() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
        } else if c == '"' {
            in_string = true;
            out.push(c);
        } else if !c.is_whitespace() {
            out.push(c);
        }
    }
    out
}

/// A parsed control request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Report settlement, token and counters.
    Status,
    /// Submit one client operation.
    Submit {
        /// Workload key.
        key: u64,
        /// Workload value.
        value: u64,
    },
    /// Claim one completed client operation, if any.
    Claim,
    /// Override the timer period (`None` restores the base period).
    Timer(Option<u64>),
    /// Raise the timer period to at least this many ticks.
    Floor(u64),
    /// Exit the node process.
    Shutdown,
}

impl Request {
    /// Parses one request line. Errors are human-readable and become the
    /// `error` field of the response.
    pub fn parse(line: &str) -> Result<Request, String> {
        let mut words = line.split_whitespace();
        let verb = words.next().ok_or("empty request")?;
        let request = match verb {
            "status" => Request::Status,
            "submit" => {
                let key = parse_u64(words.next(), "submit", "key")?;
                let value = parse_u64(words.next(), "submit", "value")?;
                Request::Submit { key, value }
            }
            "claim" => Request::Claim,
            "timer" => match words.next() {
                Some("default") => Request::Timer(None),
                other => Request::Timer(Some(parse_u64(other, "timer", "period")?)),
            },
            "floor" => Request::Floor(parse_u64(words.next(), "floor", "period")?),
            "shutdown" => Request::Shutdown,
            other => return Err(format!("unknown request `{other}`")),
        };
        match words.next() {
            Some(extra) => Err(format!("trailing token `{extra}` after `{verb}`")),
            None => Ok(request),
        }
    }
}

fn parse_u64(word: Option<&str>, verb: &str, what: &str) -> Result<u64, String> {
    let word = word.ok_or_else(|| format!("`{verb}` needs a {what}"))?;
    word.parse()
        .map_err(|_| format!("`{verb}` {what} `{word}` is not an unsigned integer"))
}

/// A persistent control connection to one node, used by `simctl drive`.
pub struct ControlClient {
    stream: BufReader<TcpStream>,
}

impl ControlClient {
    /// Connects to a node's control port.
    pub fn connect(addr: &str, timeout: Duration) -> io::Result<ControlClient> {
        let parsed = addr
            .parse()
            .map_err(|err| io::Error::new(io::ErrorKind::InvalidInput, format!("{addr}: {err}")))?;
        let stream = TcpStream::connect_timeout(&parsed, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(ControlClient {
            stream: BufReader::new(stream),
        })
    }

    /// Sends one request line, returns the parsed JSON response.
    pub fn request(&mut self, line: &str) -> io::Result<Json> {
        let stream = self.stream.get_mut();
        stream.write_all(line.as_bytes())?;
        stream.write_all(b"\n")?;
        let mut reply = String::new();
        if self.stream.read_line(&mut reply)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "control connection closed",
            ));
        }
        Json::parse(reply.trim_end()).map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err))
    }
}

/// One-shot convenience: connect, send one request, disconnect.
pub fn control_request(addr: &str, line: &str, timeout: Duration) -> io::Result<Json> {
    ControlClient::connect(addr, timeout)?.request(line)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_parse() {
        assert_eq!(Request::parse("status"), Ok(Request::Status));
        assert_eq!(
            Request::parse("submit 7 99"),
            Ok(Request::Submit { key: 7, value: 99 })
        );
        assert_eq!(Request::parse("claim"), Ok(Request::Claim));
        assert_eq!(Request::parse("timer 4"), Ok(Request::Timer(Some(4))));
        assert_eq!(Request::parse("timer default"), Ok(Request::Timer(None)));
        assert_eq!(Request::parse("floor 3"), Ok(Request::Floor(3)));
        assert_eq!(Request::parse("shutdown"), Ok(Request::Shutdown));
    }

    #[test]
    fn malformed_requests_are_described() {
        assert!(Request::parse("").unwrap_err().contains("empty"));
        assert!(Request::parse("submit 1").unwrap_err().contains("value"));
        assert!(Request::parse("submit x 2").unwrap_err().contains("`x`"));
        assert!(Request::parse("status extra")
            .unwrap_err()
            .contains("trailing"));
        assert!(Request::parse("frobnicate")
            .unwrap_err()
            .contains("unknown"));
    }

    #[test]
    fn render_line_is_single_line_and_parseable() {
        let json = Json::obj()
            .field("token", "61 62\\n")
            .field("nested", Json::obj().field("k", 3u64))
            .field("ok", true);
        let line = render_line(&json);
        assert!(!line.contains('\n'), "{line:?}");
        assert_eq!(Json::parse(&line), Ok(json));
    }
}

//! Live runtime: the second backend for the protocol stack.
//!
//! The simulator (`simnet`) executes a [`simnet::Process`] population inside
//! one address space with a virtual clock and modelled channels. This crate
//! executes the *same* process implementations as real OS processes that
//! exchange the *same* envelopes — encoded with the [`simnet::codec`] wire
//! codec — over real localhost (or LAN) TCP sockets, with a wall-clock timer
//! driving `on_timer` steps.
//!
//! The pieces:
//!
//! - [`frame`]: the versioned connection handshake and the length-prefixed
//!   data framing that carries encoded envelopes between peers.
//! - [`cluster`]: the cluster spec file — which node ids live at which
//!   host/port pairs — written by `simctl deploy` and read by every node
//!   and by `simctl drive`.
//! - [`runtime`]: the threaded node runtime — acceptor, per-peer reader and
//!   writer threads with reconnect/backoff, the real-clock timer driver, and
//!   the event loop that feeds decoded packets and timer ticks into the
//!   unchanged `Process::on_message`/`on_timer` path.
//! - [`control`]: the line-based TCP control protocol through which
//!   `simctl drive` submits client operations, polls settlement, retunes
//!   timers (live `SetTimer`/`SetTimerFloor` fault adapters), and shuts a
//!   node down.
//!
//! Fault injection maps onto the deployment instead of the model: `Crash`
//! becomes `kill -9` of a real pid, `Join`/`Rejoin` become freshly spawned
//! processes with fresh ids, and timer faults become control-plane timer
//! overrides. That mapping lives in `simctl`; this crate only provides the
//! mechanisms.

pub mod cluster;
pub mod control;
pub mod frame;
pub mod runtime;

pub use cluster::{ClusterSpec, NodeSpec};
pub use control::{control_request, ControlClient};
pub use frame::{FrameError, Hello, MAX_FRAME_LEN, PROTOCOL_VERSION};
pub use runtime::{run_node, NodeConfig, NodeStats};

/// Hex-encodes bytes (lowercase). Settle tokens may contain newlines, so
/// they cross the line-based control protocol hex-encoded.
pub fn hex_encode(bytes: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(DIGITS[(b >> 4) as usize] as char);
        out.push(DIGITS[(b & 0xf) as usize] as char);
    }
    out
}

/// Decodes a lowercase/uppercase hex string produced by [`hex_encode`].
pub fn hex_decode(text: &str) -> Option<Vec<u8>> {
    fn nibble(c: u8) -> Option<u8> {
        match c {
            b'0'..=b'9' => Some(c - b'0'),
            b'a'..=b'f' => Some(c - b'a' + 10),
            b'A'..=b'F' => Some(c - b'A' + 10),
            _ => None,
        }
    }
    let bytes = text.as_bytes();
    if bytes.len() % 2 != 0 {
        return None;
    }
    bytes
        .chunks(2)
        .map(|pair| Some(nibble(pair[0])? << 4 | nibble(pair[1])?))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::{hex_decode, hex_encode};

    #[test]
    fn hex_roundtrips_arbitrary_bytes() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(hex_decode(&hex_encode(&data)).as_deref(), Some(&data[..]));
        assert_eq!(hex_encode(b"config=\n1"), "636f6e6669673d0a31");
    }

    #[test]
    fn hex_decode_rejects_garbage() {
        assert_eq!(hex_decode("0"), None);
        assert_eq!(hex_decode("0g"), None);
        assert_eq!(hex_decode(""), Some(Vec::new()));
    }
}

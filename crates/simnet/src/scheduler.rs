//! The simulation scheduler.
//!
//! The scheduler realizes the paper's interleaving model at the granularity
//! of *rounds*: in each round the due processors first receive the packets
//! whose (random, bounded) delay has expired and then execute one iteration
//! of their `do forever` loop. The per-round visiting order is random,
//! packets experience random delays, loss, duplication and reordering, and
//! the number of deliveries per round can be bounded — so an execution
//! prefix of any asynchronous interleaving can be produced by a suitable
//! seed and configuration.
//!
//! Two scheduling strategies share that round semantics
//! ([`crate::SchedulerMode`]):
//!
//! * **event-driven** (the default): a run queue of wake-ups. A process is
//!   visited only when its timer is due ([`SimConfig::timer_period`]) or a
//!   packet addressed to it has become deliverable; packet delivery reads
//!   the network's per-destination inbound index. A quiescent system does no
//!   delivery work at all, so large, sparse simulations cost only what their
//!   active processes do.
//! * **round-scan** (the legacy baseline): every round examines every
//!   process and scans the network's channels to rediscover the same due
//!   set the run queue indexes — kept for the scheduler benchmarks.
//!
//! For the same seed the two strategies produce byte-identical executions
//! (same deliveries, same trace, same process states) at any timer period —
//! including per-process overrides ([`Simulation::set_timer_period_override`],
//! the gray-failure/clock-skew model); the event-driven scheduler only
//! *finds* the work cheaper.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use crate::config::{SchedulerMode, SimConfig};
use crate::metrics::Metrics;
use crate::network::Network;
use crate::payload::Payload;
use crate::process::{Context, Process, ProcessId, ProcessStatus};
use crate::report;
use crate::rng::SimRng;
use crate::time::Round;
use crate::trace::{Trace, TraceEvent};

struct Slot<P> {
    process: P,
    status: ProcessStatus,
    /// The round this process's timer fires next.
    next_timer: Round,
    /// Per-process timer period, when it deviates from
    /// [`SimConfig::timer_period`]. Gray failures and clock skew are
    /// modelled by slowing a single process's timer relative to its peers
    /// (see [`crate::fault::GrayFailurePlan`] and [`crate::fault::SkewPlan`]).
    timer_period_override: Option<u64>,
    /// Timer steps this process has taken (for per-process liveness checks).
    timer_steps: u64,
    /// Monotone counter bumped whenever the process state may have changed:
    /// a timer step, a delivery, or a white-box mutation through
    /// [`Simulation::process_mut`]. The incremental digest cache
    /// ([`Simulation::state_digest_with`]) re-formats a process's state line
    /// only when this counter moved since the last digest.
    activity: u64,
}

/// A run queue of wake-ups keyed by round: the heart of the event-driven
/// scheduler. A min-heap of `(round, id)` pairs: pushing and popping reuse
/// the heap's backing storage, so a steady-state round touches no
/// allocator (the `BTreeMap<Round, BTreeSet>` this replaces allocated and
/// freed tree nodes every round). Double-scheduling a process for the same
/// round is harmless — the scheduler deduplicates the merged wake set.
#[derive(Debug, Clone, Default)]
struct WakeQueue {
    due: BinaryHeap<Reverse<(Round, ProcessId)>>,
}

impl WakeQueue {
    fn schedule(&mut self, round: Round, id: ProcessId) {
        self.due.push(Reverse((round, id)));
    }

    /// Removes every wake-up scheduled at or before `now`, appending the
    /// process identifiers (possibly with duplicates) to `into`.
    fn pop_due(&mut self, now: Round, into: &mut Vec<ProcessId>) {
        while let Some(&Reverse((round, id))) = self.due.peek() {
            if round > now {
                break;
            }
            self.due.pop();
            into.push(id);
        }
    }
}

/// A deterministic simulation of a set of processors exchanging messages.
///
/// See the crate-level documentation for an end-to-end example.
pub struct Simulation<P: Process> {
    config: SimConfig,
    rng: SimRng,
    now: Round,
    next_id: u32,
    slots: BTreeMap<ProcessId, Slot<P>>,
    network: Network<P::Msg>,
    metrics: Metrics,
    trace: Trace,
    /// Wake-ups due to timers (event-driven mode).
    timer_wakes: WakeQueue,
    /// Wake-ups due to deliverable packets (event-driven mode).
    packet_wakes: WakeQueue,
    /// Per-round scratch buffers, recycled so a steady-state round performs
    /// no allocation: the merged wake set, the shuffled visiting order, the
    /// delivery batch, and the outbox handed to [`Context`].
    scratch_woken: Vec<ProcessId>,
    scratch_order: Vec<ProcessId>,
    scratch_deliveries: Vec<(ProcessId, P::Msg)>,
    scratch_outbox: Vec<(ProcessId, Payload<P::Msg>)>,
    /// Cached membership snapshot handed to visited processes, rebuilt only
    /// when a processor joins (`ids_dirty`).
    ids_snapshot: Vec<ProcessId>,
    ids_dirty: bool,
    /// Per-process digest-line cache for [`Simulation::state_digest_with`]:
    /// the activity stamp the line was formatted at, and the line itself.
    digest_cache: RefCell<BTreeMap<ProcessId, (u64, String)>>,
}

impl<P: Process> Simulation<P> {
    /// Creates an empty simulation with the given configuration.
    pub fn new(config: SimConfig) -> Self {
        let rng = SimRng::seed_from(config.seed());
        let network = Network::new(config.channel_policy().clone());
        Simulation {
            config,
            rng,
            now: Round::ZERO,
            next_id: 0,
            slots: BTreeMap::new(),
            network,
            metrics: Metrics::new(),
            trace: Trace::new(),
            timer_wakes: WakeQueue::default(),
            packet_wakes: WakeQueue::default(),
            scratch_woken: Vec::new(),
            scratch_order: Vec::new(),
            scratch_deliveries: Vec::new(),
            scratch_outbox: Vec::new(),
            ids_snapshot: Vec::new(),
            ids_dirty: true,
            digest_cache: RefCell::new(BTreeMap::new()),
        }
    }

    /// Adds an active processor with the next free identifier and returns
    /// that identifier.
    pub fn add_process(&mut self, process: P) -> ProcessId {
        let id = ProcessId::new(self.next_id);
        self.next_id += 1;
        self.insert(id, process);
        id
    }

    /// Adds an active processor under a caller-chosen identifier.
    ///
    /// # Panics
    ///
    /// Panics if the identifier is already in use (identifiers are unique
    /// forever; see the paper's system settings).
    pub fn add_process_with_id(&mut self, id: ProcessId, process: P) {
        assert!(
            !self.slots.contains_key(&id),
            "process identifier {id} already in use"
        );
        self.next_id = self.next_id.max(id.as_u32() + 1);
        self.insert(id, process);
    }

    fn insert(&mut self, id: ProcessId, process: P) {
        self.trace.record(TraceEvent::Joined(id));
        self.slots.insert(
            id,
            Slot {
                process,
                status: ProcessStatus::Active,
                next_timer: self.now,
                timer_period_override: None,
                timer_steps: 0,
                activity: 0,
            },
        );
        self.ids_dirty = true;
        self.timer_wakes.schedule(self.now, id);
    }

    /// The next never-used identifier: what [`Simulation::add_process`]
    /// would assign. Identifiers are unique forever (processors never
    /// rejoin under an old one), so fault plans spawning joiners or
    /// crash-recovered processors draw from here.
    pub fn fresh_id(&self) -> ProcessId {
        ProcessId::new(self.next_id)
    }

    /// Crashes a processor: it takes no further steps and never rejoins.
    /// Packets already in flight to or from it remain in the channels, as in
    /// the paper's model. Crashing an unknown or already crashed processor
    /// is a no-op.
    pub fn crash(&mut self, id: ProcessId) {
        if let Some(slot) = self.slots.get_mut(&id) {
            if slot.status.is_active() {
                slot.status = ProcessStatus::Crashed;
                self.trace.record(TraceEvent::Crashed(id));
            }
        }
    }

    /// Runs `n` rounds.
    pub fn run_rounds(&mut self, n: u64) {
        for _ in 0..n {
            self.step_round();
        }
    }

    /// Runs up to `max_rounds` rounds, stopping early as soon as `done`
    /// returns `true` (checked after every round). Returns the number of
    /// rounds executed.
    pub fn run_until(&mut self, max_rounds: u64, mut done: impl FnMut(&Self) -> bool) -> u64 {
        for i in 0..max_rounds {
            self.step_round();
            if done(self) {
                return i + 1;
            }
        }
        max_rounds
    }

    /// Runs `n` rounds, invoking `hook` with the simulation before each
    /// round. Fault plans use the hook to crash processors or inject
    /// corruption at scheduled rounds.
    pub fn run_rounds_with(&mut self, n: u64, mut hook: impl FnMut(&mut Self)) {
        for _ in 0..n {
            hook(self);
            self.step_round();
        }
    }

    /// Executes one scheduler round using the configured strategy.
    pub fn step_round(&mut self) {
        match self.config.scheduler() {
            SchedulerMode::EventDriven => self.step_round_event(),
            SchedulerMode::RoundScan => self.step_round_scan(),
        }
    }

    /// Whether `id`'s timer is due this round.
    fn timer_due(&self, id: ProcessId) -> bool {
        self.slots
            .get(&id)
            .map(|s| s.next_timer <= self.now)
            .unwrap_or(false)
    }

    /// One round of the event-driven run queue: only processes with a due
    /// timer, a deliverable packet or a white-box network mutation are
    /// visited, and their packet delivery reads the per-destination index.
    ///
    /// Wake-ups are a conservative hint, not the source of truth: a woken
    /// process is visited only when it is actually *due* (timer due, or a
    /// deliverable packet waiting). Spurious wake-ups — a stale timer wake
    /// after a [`Simulation::set_timer_period_override`] restore, a packet
    /// wake whose packet was evicted — are discarded without consuming any
    /// randomness, so the visited set (and therefore the execution) matches
    /// [`Simulation::step_round_scan`]'s byte for byte even when per-process
    /// timer periods diverge.
    fn step_round_event(&mut self) {
        self.trace.record(TraceEvent::RoundStarted(self.now));
        let mut woken = std::mem::take(&mut self.scratch_woken);
        let mut order = std::mem::take(&mut self.scratch_order);
        let mut deliveries = std::mem::take(&mut self.scratch_deliveries);
        let mut outbox = std::mem::take(&mut self.scratch_outbox);
        woken.clear();
        order.clear();
        self.timer_wakes.pop_due(self.now, &mut woken);
        self.packet_wakes.pop_due(self.now, &mut woken);
        woken.extend(self.network.take_dirty());
        // Ascending and deduplicated: the iteration order of the sorted set
        // this buffer replaces, so the pre-shuffle order — and therefore the
        // execution — is byte-identical to the historical behaviour.
        woken.sort_unstable();
        woken.dedup();
        for &id in &woken {
            let active = self
                .slots
                .get(&id)
                .map(|s| s.status.is_active())
                .unwrap_or(false);
            if !active {
                continue;
            }
            if self.timer_due(id) {
                order.push(id);
                continue;
            }
            // No due timer: the wake is justified only by a deliverable
            // packet. Packets that are in flight but not yet ready re-arm
            // the wake at their delivery round instead.
            match self.network.earliest_inbound_ready(id) {
                Some(ready) if ready <= self.now => order.push(id),
                Some(ready) => self.packet_wakes.schedule(ready, id),
                None => {}
            }
        }
        self.rng.shuffle(&mut order);
        // The membership snapshot is only read by visited processes; a
        // quiescent round must not pay O(processes) to build it, and it is
        // rebuilt only when a processor has joined since the last round that
        // used it.
        if !order.is_empty() && self.ids_dirty {
            self.ids_snapshot.clear();
            self.ids_snapshot.extend(self.slots.keys().copied());
            self.ids_dirty = false;
        }
        let all_ids = std::mem::take(&mut self.ids_snapshot);

        for &id in &order {
            self.metrics.record_wakeup();
            // Deliver the due packets first (receive steps)...
            deliveries.clear();
            let next_ready = self.network.deliver_due_into(
                id,
                self.now,
                self.config.max_deliveries_per_round(),
                &mut self.rng,
                &mut self.metrics,
                &mut deliveries,
            );
            if let Some(ready) = next_ready {
                // Packets remain (delayed or over the per-round delivery
                // bound): re-wake the destination when they become due.
                self.packet_wakes.schedule(ready.max(self.now), id);
            }
            for (from, msg) in deliveries.drain(..) {
                // The destination may have crashed earlier in this round.
                let Some(slot) = self.slots.get_mut(&id) else {
                    break;
                };
                if !slot.status.is_active() {
                    break;
                }
                self.trace.record(TraceEvent::Delivered { from, to: id });
                let mut ctx = Context::with_outbox(id, self.now, &all_ids, outbox);
                slot.process.on_message(from, msg, &mut ctx);
                slot.activity += 1;
                outbox = ctx.into_outbox();
                self.flush(id, &mut outbox);
            }
            // ...then take the timer step if it is due.
            let Some(slot) = self.slots.get_mut(&id) else {
                continue;
            };
            if !slot.status.is_active() || slot.next_timer > self.now {
                continue;
            }
            self.trace.record(TraceEvent::TimerStep(id));
            self.metrics.record_timer_step();
            let mut ctx = Context::with_outbox(id, self.now, &all_ids, outbox);
            slot.process.on_timer(&mut ctx);
            slot.activity += 1;
            outbox = ctx.into_outbox();
            let period = slot
                .timer_period_override
                .unwrap_or(self.config.timer_period());
            let next = self.now + period;
            slot.next_timer = next;
            slot.timer_steps += 1;
            self.timer_wakes.schedule(next, id);
            self.flush(id, &mut outbox);
        }

        self.ids_snapshot = all_ids;
        self.scratch_woken = woken;
        self.scratch_order = order;
        self.scratch_deliveries = deliveries;
        self.scratch_outbox = outbox;
        self.metrics.record_round();
        self.now = self.now.next();
    }

    /// One round of the legacy whole-system scan: the due processes are
    /// found by examining every process and every channel in the network
    /// instead of consulting the run queue — the behaviour of this crate
    /// before the run queue existed, kept as the baseline the scheduler
    /// benchmarks compare against.
    ///
    /// The visited set is exactly the due set of
    /// [`Simulation::step_round_event`] — a process with neither a due timer
    /// nor a deliverable packet takes no step and consumes no randomness in
    /// either mode — so both strategies produce byte-identical executions
    /// for the same seed, at any timer period and under per-process
    /// overrides. (At the default timer period of 1 every active process is
    /// due every round, which is the historical whole-system scan.)
    fn step_round_scan(&mut self) {
        self.trace.record(TraceEvent::RoundStarted(self.now));
        let all_ids: Vec<ProcessId> = self.slots.keys().copied().collect();
        // The scan discovers the same work the run queue indexes; the hints
        // themselves are irrelevant here, but draining keeps them bounded.
        let _ = self.network.take_dirty();
        let candidates: Vec<(ProcessId, bool)> = self
            .slots
            .iter()
            .filter(|(_, s)| s.status.is_active())
            .map(|(id, s)| (*id, s.next_timer <= self.now))
            .collect();
        let mut order: Vec<ProcessId> = Vec::with_capacity(candidates.len());
        for (id, timer_due) in candidates {
            if timer_due {
                order.push(id);
                continue;
            }
            // The baseline cost model: finding a due packet means scanning
            // the whole network for channels towards `id`.
            self.metrics.record_channel_scan(self.network.link_count());
            match self.network.earliest_inbound_ready_scan(id) {
                Some(ready) if ready <= self.now => order.push(id),
                _ => {}
            }
        }
        self.rng.shuffle(&mut order);

        let mut outbox = std::mem::take(&mut self.scratch_outbox);
        for id in order {
            // Deliver pending packets first (receive steps)...
            let deliveries = self.network.deliver_to(
                id,
                self.now,
                self.config.max_deliveries_per_round(),
                &mut self.rng,
                &mut self.metrics,
            );
            for (from, msg) in deliveries {
                // The destination may have crashed earlier in this round.
                let Some(slot) = self.slots.get_mut(&id) else {
                    break;
                };
                if !slot.status.is_active() {
                    break;
                }
                self.trace.record(TraceEvent::Delivered { from, to: id });
                let mut ctx = Context::with_outbox(id, self.now, &all_ids, outbox);
                slot.process.on_message(from, msg, &mut ctx);
                slot.activity += 1;
                outbox = ctx.into_outbox();
                self.flush(id, &mut outbox);
            }
            // ...then take one timer step (the `do forever` loop body).
            let Some(slot) = self.slots.get_mut(&id) else {
                continue;
            };
            if !slot.status.is_active() || slot.next_timer > self.now {
                continue;
            }
            self.trace.record(TraceEvent::TimerStep(id));
            self.metrics.record_timer_step();
            let mut ctx = Context::with_outbox(id, self.now, &all_ids, outbox);
            slot.process.on_timer(&mut ctx);
            slot.activity += 1;
            outbox = ctx.into_outbox();
            let period = slot
                .timer_period_override
                .unwrap_or(self.config.timer_period());
            slot.next_timer = self.now + period;
            slot.timer_steps += 1;
            self.flush(id, &mut outbox);
        }

        self.scratch_outbox = outbox;
        self.metrics.record_round();
        self.now = self.now.next();
    }

    /// Hands the queued sends to the network, draining `outbox` in place so
    /// the buffer (and its capacity) can be recycled by the caller.
    fn flush(&mut self, from: ProcessId, outbox: &mut Vec<(ProcessId, Payload<P::Msg>)>) {
        let event_driven = self.config.scheduler() == SchedulerMode::EventDriven;
        for (to, payload) in outbox.drain(..) {
            let ready = self.network.send_payload(
                from,
                to,
                payload,
                self.now,
                &mut self.rng,
                &mut self.metrics,
            );
            if event_driven {
                if let Some(ready) = ready {
                    self.packet_wakes.schedule(ready.max(self.now), to);
                }
            }
        }
    }

    /// The current round.
    pub fn now(&self) -> Round {
        self.now
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Execution metrics collected so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The execution trace (disabled by default; see [`Simulation::trace_mut`]).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable access to the trace, e.g. to enable recording.
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// All known processor identifiers (active and crashed), in ascending
    /// order.
    pub fn ids(&self) -> Vec<ProcessId> {
        self.slots.keys().copied().collect()
    }

    /// Identifiers of the processors that are still active.
    pub fn active_ids(&self) -> Vec<ProcessId> {
        self.slots
            .iter()
            .filter(|(_, s)| s.status.is_active())
            .map(|(id, _)| *id)
            .collect()
    }

    /// Returns `true` when `id` exists and has not crashed.
    pub fn is_active(&self, id: ProcessId) -> bool {
        self.slots
            .get(&id)
            .map(|s| s.status.is_active())
            .unwrap_or(false)
    }

    /// Immutable access to the process behind `id`.
    pub fn process(&self, id: ProcessId) -> Option<&P> {
        self.slots.get(&id).map(|s| &s.process)
    }

    /// Mutable access to the process behind `id` (used by transient-fault
    /// injection, which may corrupt local state arbitrarily).
    pub fn process_mut(&mut self, id: ProcessId) -> Option<&mut P> {
        self.slots.get_mut(&id).map(|s| {
            // Conservatively assume the caller mutates: invalidate the
            // cached digest line.
            s.activity += 1;
            &mut s.process
        })
    }

    /// Digests one canonical line per known processor — in ascending
    /// identifier order, crashed processors included — exactly like feeding
    /// `line(id, process)` for every processor to
    /// [`crate::report::digest_lines`]. Unlike the full recompute, only the
    /// lines of processors that *stepped* since the previous call (timer
    /// step, delivery, or white-box mutation through
    /// [`Simulation::process_mut`]) are re-formatted; all others reuse their
    /// cached line. The cache skips formatting, never hashing, so the digest
    /// value is bit-identical to the full recompute — the property the
    /// cross-mode byte-identity contract rests on.
    pub fn state_digest_with(&self, mut line: impl FnMut(ProcessId, &P) -> String) -> u64 {
        use std::collections::btree_map::Entry;
        let mut cache = self.digest_cache.borrow_mut();
        let mut hash = report::FNV_OFFSET_BASIS;
        for (&id, slot) in &self.slots {
            let text: &str = match cache.entry(id) {
                Entry::Vacant(v) => &v.insert((slot.activity, line(id, &slot.process))).1,
                Entry::Occupied(e) => {
                    let cached = e.into_mut();
                    if cached.0 != slot.activity {
                        cached.0 = slot.activity;
                        cached.1 = line(id, &slot.process);
                    }
                    &cached.1
                }
            };
            report::fold_digest_line(&mut hash, text);
        }
        hash
    }

    /// Overrides (or, with `None`, restores) the timer period of a single
    /// process, modelling *gray failures* and *clock skew*: the process is
    /// slow relative to its peers, not dead. Unknown identifiers are
    /// ignored.
    ///
    /// The override takes effect when the process's current timer fires; a
    /// restore pulls the next timer forward to the current round so the
    /// recovered process resumes at full rate immediately. Both scheduler
    /// modes honour overrides identically, so executions stay byte-identical
    /// across [`SchedulerMode`]s.
    ///
    /// # Panics
    ///
    /// Panics if `period == Some(0)`.
    pub fn set_timer_period_override(&mut self, id: ProcessId, period: Option<u64>) {
        if let Some(p) = period {
            assert!(p > 0, "timer period override must be at least 1 round");
        }
        let now = self.now;
        if let Some(slot) = self.slots.get_mut(&id) {
            match period {
                Some(p) => slot.timer_period_override = Some(p),
                None => {
                    if slot.timer_period_override.take().is_some() && slot.next_timer > now {
                        slot.next_timer = now;
                        self.timer_wakes.schedule(now, id);
                    }
                }
            }
        }
    }

    /// The timer-period override currently in force for `id`, if any.
    pub fn timer_period_override(&self, id: ProcessId) -> Option<u64> {
        self.slots.get(&id).and_then(|s| s.timer_period_override)
    }

    /// Number of timer steps `id` has taken so far (`None` for unknown
    /// identifiers). Used by the scenario runner's gray-failure and skew
    /// invariants: a slowed process must take fewer steps than its peers but
    /// must still take some.
    pub fn timer_steps_of(&self, id: ProcessId) -> Option<u64> {
        self.slots.get(&id).map(|s| s.timer_steps)
    }

    /// Iterates over `(id, process)` pairs for every known processor.
    pub fn processes(&self) -> impl Iterator<Item = (ProcessId, &P)> {
        self.slots.iter().map(|(id, s)| (*id, &s.process))
    }

    /// Iterates over `(id, process)` pairs for the active processors only.
    pub fn active_processes(&self) -> impl Iterator<Item = (ProcessId, &P)> {
        self.slots
            .iter()
            .filter(|(_, s)| s.status.is_active())
            .map(|(id, s)| (*id, &s.process))
    }

    /// The network connecting the processors.
    pub fn network(&self) -> &Network<P::Msg> {
        &self.network
    }

    /// Mutable access to the network (used to inject or corrupt packets when
    /// modelling transient faults).
    pub fn network_mut(&mut self) -> &mut Network<P::Msg> {
        &mut self.network
    }

    /// A split-off random number generator for harness-level randomness that
    /// must not perturb the scheduler's stream.
    pub fn fork_rng(&mut self) -> SimRng {
        self.rng.split()
    }
}

impl<P: Process> std::fmt::Debug for Simulation<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("processes", &self.slots.len())
            .field("active", &self.active_ids().len())
            .field("in_flight", &self.network.in_flight_total())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test process: floods its value, adopts the maximum received, counts
    /// timer ticks and received messages.
    #[derive(Debug)]
    struct Gossip {
        value: u64,
        ticks: u64,
        received: u64,
    }

    impl Gossip {
        fn new(value: u64) -> Self {
            Gossip {
                value,
                ticks: 0,
                received: 0,
            }
        }
    }

    impl Process for Gossip {
        type Msg = u64;
        fn on_timer(&mut self, ctx: &mut Context<'_, u64>) {
            self.ticks += 1;
            for peer in ctx.peers() {
                ctx.send(peer, self.value);
            }
        }
        fn on_message(&mut self, _from: ProcessId, msg: u64, _ctx: &mut Context<'_, u64>) {
            self.received += 1;
            self.value = self.value.max(msg);
        }
    }

    fn sim_with(n: u64, cfg: SimConfig) -> Simulation<Gossip> {
        let mut sim = Simulation::new(cfg);
        for i in 0..n {
            sim.add_process(Gossip::new(i));
        }
        sim
    }

    #[test]
    fn gossip_converges_to_max() {
        let mut sim = sim_with(6, SimConfig::default().with_seed(1));
        sim.run_rounds(10);
        for (_, p) in sim.processes() {
            assert_eq!(p.value, 5);
        }
    }

    #[test]
    fn gossip_converges_despite_loss_and_reordering() {
        let cfg = SimConfig::default()
            .with_seed(2)
            .with_loss_probability(0.3)
            .with_duplication_probability(0.1)
            .with_reordering(true)
            .with_max_delay(3)
            .with_channel_capacity(4);
        let mut sim = sim_with(5, cfg);
        let rounds = sim.run_until(500, |s| s.processes().all(|(_, p)| p.value == 4));
        assert!(rounds < 500, "did not converge under lossy links");
    }

    #[test]
    fn crashed_process_takes_no_steps() {
        let mut sim = sim_with(3, SimConfig::default().with_seed(3));
        let victim = ProcessId::new(0);
        sim.run_rounds(2);
        let ticks_before = sim.process(victim).unwrap().ticks;
        sim.crash(victim);
        sim.run_rounds(5);
        assert_eq!(sim.process(victim).unwrap().ticks, ticks_before);
        assert!(!sim.is_active(victim));
        assert_eq!(sim.active_ids().len(), 2);
    }

    #[test]
    fn run_until_stops_early() {
        let mut sim = sim_with(4, SimConfig::default().with_seed(4));
        let rounds = sim.run_until(100, |s| s.processes().all(|(_, p)| p.value == 3));
        assert!(rounds < 100);
        assert!(sim.now().as_u64() >= rounds);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut sim = sim_with(
                5,
                SimConfig::default()
                    .with_seed(seed)
                    .with_loss_probability(0.2),
            );
            sim.run_rounds(20);
            let received: Vec<u64> = sim.processes().map(|(_, p)| p.received).collect();
            (received, sim.metrics().clone())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).1.messages_delivered(), 0);
    }

    #[test]
    fn add_process_with_id_rejects_duplicates() {
        let mut sim: Simulation<Gossip> = Simulation::new(SimConfig::default());
        sim.add_process_with_id(ProcessId::new(5), Gossip::new(0));
        let next = sim.add_process(Gossip::new(1));
        assert_eq!(next, ProcessId::new(6));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.add_process_with_id(ProcessId::new(5), Gossip::new(2));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn joining_mid_execution_participates() {
        let mut sim = sim_with(3, SimConfig::default().with_seed(5));
        sim.run_rounds(3);
        let late = sim.add_process(Gossip::new(100));
        sim.run_rounds(10);
        // The newcomer's larger value spreads to everyone.
        for (_, p) in sim.processes() {
            assert_eq!(p.value, 100);
        }
        assert!(sim.is_active(late));
    }

    #[test]
    fn metrics_and_trace_record_activity() {
        let mut sim = sim_with(3, SimConfig::default().with_seed(6));
        sim.trace_mut().set_enabled(true);
        sim.run_rounds(4);
        assert_eq!(sim.metrics().rounds(), 4);
        assert!(sim.metrics().messages_sent() > 0);
        assert!(sim.metrics().messages_delivered() > 0);
        assert!(!sim.trace().is_empty());
    }

    #[test]
    fn run_rounds_with_hook_runs_before_each_round() {
        let mut sim = sim_with(2, SimConfig::default().with_seed(8));
        let mut crashed = false;
        sim.run_rounds_with(3, |s| {
            if s.now() == Round::new(1) && !crashed {
                s.crash(ProcessId::new(1));
                crashed = true;
            }
        });
        assert!(crashed);
        assert!(!sim.is_active(ProcessId::new(1)));
    }

    #[test]
    fn max_deliveries_per_round_limits_receive_rate() {
        let cfg = SimConfig::default()
            .with_seed(9)
            .with_max_deliveries_per_round(1)
            .with_max_delay(0);
        let mut sim = sim_with(4, cfg);
        sim.run_rounds(1);
        // After one round each process has sent 3 packets but nobody has
        // received more than one yet in the following round.
        sim.run_rounds(1);
        for (_, p) in sim.processes() {
            assert!(p.received <= 2, "received {} > 2", p.received);
        }
    }

    /// Renders a run's trace into one comparable byte string.
    fn trace_bytes(sim: &Simulation<Gossip>) -> String {
        sim.trace()
            .iter()
            .map(|e| format!("{e:?}\n"))
            .collect::<String>()
    }

    fn traced_run(cfg: SimConfig, rounds: u64) -> (String, Vec<u64>, u64) {
        let mut sim = sim_with(5, cfg);
        sim.trace_mut().set_enabled(true);
        sim.run_rounds(rounds);
        let values = sim.processes().map(|(_, p)| p.value).collect();
        (
            trace_bytes(&sim),
            values,
            sim.metrics().messages_delivered(),
        )
    }

    /// The tent-pole equivalence: for the same seed, the event-driven run
    /// queue replays the round-scan execution byte for byte — same trace,
    /// same deliveries, same final process states — even over lossy,
    /// delaying, reordering channels.
    #[test]
    fn event_and_scan_schedulers_produce_byte_identical_traces() {
        for seed in [0u64, 7, 42, 1234] {
            let cfg = SimConfig::default()
                .with_seed(seed)
                .with_loss_probability(0.2)
                .with_duplication_probability(0.1)
                .with_reordering(true)
                .with_max_delay(3)
                .with_channel_capacity(8);
            let scan = traced_run(cfg.clone().with_scheduler(SchedulerMode::RoundScan), 40);
            let event = traced_run(cfg.with_scheduler(SchedulerMode::EventDriven), 40);
            assert_eq!(scan.0, event.0, "traces diverged for seed {seed}");
            assert_eq!(scan.1, event.1, "states diverged for seed {seed}");
            assert_eq!(scan.2, event.2, "deliveries diverged for seed {seed}");
        }
    }

    /// Same seed ⇒ byte-identical trace, in both scheduler modes.
    #[test]
    fn same_seed_gives_byte_identical_traces_per_mode() {
        for mode in [SchedulerMode::EventDriven, SchedulerMode::RoundScan] {
            let cfg = SimConfig::default()
                .with_seed(11)
                .with_loss_probability(0.3)
                .with_max_delay(2)
                .with_scheduler(mode);
            let a = traced_run(cfg.clone(), 30);
            let b = traced_run(cfg, 30);
            assert_eq!(a, b, "non-deterministic execution in {mode:?}");
        }
    }

    /// A process that gossips a fixed number of times and then goes quiet.
    #[derive(Debug)]
    struct Burst {
        sends_left: u64,
        received: u64,
    }

    impl Process for Burst {
        type Msg = u64;
        fn on_timer(&mut self, ctx: &mut Context<'_, u64>) {
            if self.sends_left > 0 {
                self.sends_left -= 1;
                for peer in ctx.peers() {
                    ctx.send(peer, self.sends_left);
                }
            }
        }
        fn on_message(&mut self, _from: ProcessId, _msg: u64, _ctx: &mut Context<'_, u64>) {
            self.received += 1;
        }
    }

    /// Regression for the event-driven rewrite: once the network is
    /// quiescent (all channels drained, nobody sending), rounds perform zero
    /// deliveries and zero channel inspections — the delivery path is not
    /// even consulted.
    #[test]
    fn quiescent_network_performs_zero_delivery_work_per_round() {
        let mut sim: Simulation<Burst> =
            Simulation::new(SimConfig::default().with_seed(3).with_max_delay(1));
        for _ in 0..6 {
            sim.add_process(Burst {
                sends_left: 3,
                received: 0,
            });
        }
        // Drain the burst: 3 send rounds plus the maximum delay.
        sim.run_rounds(10);
        assert_eq!(sim.network().in_flight_total(), 0);
        let delivered = sim.metrics().messages_delivered();
        let visits = sim.metrics().channel_visits();
        assert!(delivered > 0);

        sim.run_rounds(100);
        assert_eq!(
            sim.metrics().messages_delivered(),
            delivered,
            "quiescent rounds delivered packets"
        );
        assert_eq!(
            sim.metrics().channel_visits(),
            visits,
            "quiescent rounds inspected channels"
        );
        assert_eq!(sim.metrics().channel_scans(), 0);
    }

    /// With a slow timer, idle processes are not woken at all: wake-ups scale
    /// with the due work, not with the number of processes.
    #[test]
    fn slow_timers_wake_only_due_processes() {
        let period = 8u64;
        let mut sim: Simulation<Burst> = Simulation::new(
            SimConfig::default()
                .with_seed(4)
                .with_timer_period(period)
                .with_max_delay(0),
        );
        for _ in 0..10 {
            sim.add_process(Burst {
                sends_left: 0,
                received: 0,
            });
        }
        let rounds = 64u64;
        sim.run_rounds(rounds);
        // Each idle process is woken only when its timer fires.
        let expected = 10 * (rounds / period);
        assert_eq!(sim.metrics().wakeups(), expected);
        assert_eq!(sim.metrics().timer_steps(), expected);
    }

    /// A delayed packet wakes its destination exactly when it becomes
    /// deliverable, even when every timer is far in the future.
    #[test]
    fn due_packets_wake_sleeping_destinations() {
        let mut sim: Simulation<Burst> = Simulation::new(
            SimConfig::default()
                .with_seed(5)
                .with_timer_period(1000)
                .with_max_delay(0),
        );
        let a = sim.add_process(Burst {
            sends_left: 1,
            received: 0,
        });
        let b = sim.add_process(Burst {
            sends_left: 0,
            received: 0,
        });
        // Round 0: a's (only) timer fires and sends to b; b is woken for the
        // delivery although its next timer is ~1000 rounds away.
        sim.run_rounds(3);
        assert_eq!(sim.process(b).unwrap().received, 1);
        assert_eq!(sim.process(a).unwrap().received, 0);
    }

    /// A gray-failed (slowed) process takes proportionally fewer timer
    /// steps during the override window and resumes at full rate — on the
    /// very round of the restore — afterwards.
    #[test]
    fn timer_period_override_slows_and_restore_resumes_immediately() {
        let mut sim = sim_with(3, SimConfig::default().with_seed(12).with_max_delay(0));
        let victim = ProcessId::new(1);
        sim.run_rounds(4);
        assert_eq!(sim.timer_steps_of(victim), Some(4));
        assert_eq!(sim.timer_period_override(victim), None);
        sim.set_timer_period_override(victim, Some(5));
        sim.run_rounds(20);
        // One step at the old schedule (round 4), then every 5th round
        // (rounds 9, 14, 19) before the 20-round window closes.
        let slowed = sim.timer_steps_of(victim).unwrap();
        assert_eq!(slowed, 4 + 4);
        assert_eq!(sim.timer_period_override(victim), Some(5));
        sim.set_timer_period_override(victim, None);
        sim.run_rounds(10);
        // Full rate again, starting with the restore round itself.
        assert_eq!(sim.timer_steps_of(victim), Some(slowed + 10));
        // The peers were never slowed.
        assert_eq!(sim.timer_steps_of(ProcessId::new(0)), Some(34));
        // Unknown ids are ignored / absent.
        sim.set_timer_period_override(ProcessId::new(99), Some(2));
        assert_eq!(sim.timer_steps_of(ProcessId::new(99)), None);
    }

    /// The gray-failure tent-pole at the scheduler level: per-process timer
    /// overrides applied and restored mid-run keep the event-driven and
    /// round-scan executions byte-identical — same trace, same states, same
    /// deliveries — even over lossy, delaying links.
    #[test]
    fn timer_period_overrides_are_byte_identical_across_modes() {
        let run = |mode: SchedulerMode| {
            let cfg = SimConfig::default()
                .with_seed(21)
                .with_loss_probability(0.15)
                .with_duplication_probability(0.05)
                .with_max_delay(2)
                .with_scheduler(mode);
            let mut sim = sim_with(6, cfg);
            sim.trace_mut().set_enabled(true);
            for round in 0..60u64 {
                match round {
                    5 => {
                        sim.set_timer_period_override(ProcessId::new(1), Some(7));
                        sim.set_timer_period_override(ProcessId::new(4), Some(3));
                    }
                    30 => sim.set_timer_period_override(ProcessId::new(1), None),
                    45 => sim.set_timer_period_override(ProcessId::new(4), None),
                    _ => {}
                }
                sim.step_round();
            }
            let steps: Vec<u64> = sim
                .ids()
                .iter()
                .map(|id| sim.timer_steps_of(*id).unwrap())
                .collect();
            let values: Vec<u64> = sim.processes().map(|(_, p)| p.value).collect();
            (
                trace_bytes(&sim),
                values,
                steps,
                sim.metrics().messages_delivered(),
            )
        };
        let event = run(SchedulerMode::EventDriven);
        let scan = run(SchedulerMode::RoundScan);
        assert_eq!(event.0, scan.0, "traces diverged under timer overrides");
        assert_eq!(event.1, scan.1, "states diverged under timer overrides");
        assert_eq!(
            event.2, scan.2,
            "step counts diverged under timer overrides"
        );
        assert_eq!(event.3, scan.3, "deliveries diverged under timer overrides");
        // The overrides actually bit: the slowed processes lag their peers.
        assert!(event.2[1] < event.2[0]);
        assert!(event.2[4] < event.2[0]);
    }

    /// White-box packet injection still reaches the destination under
    /// event-driven scheduling (the dirty-set wake-up path).
    #[test]
    fn injected_packets_wake_the_destination() {
        let mut sim: Simulation<Burst> = Simulation::new(
            SimConfig::default()
                .with_seed(6)
                .with_timer_period(1000)
                .with_max_delay(0),
        );
        let a = sim.add_process(Burst {
            sends_left: 0,
            received: 0,
        });
        let b = sim.add_process(Burst {
            sends_left: 0,
            received: 0,
        });
        sim.run_rounds(2);
        sim.network_mut().inject(a, b, 99);
        sim.run_rounds(2);
        assert_eq!(sim.process(b).unwrap().received, 1);
    }
}

//! Declarative chaos scenarios.
//!
//! The paper claims recovery from *any* transient fault on top of crashes,
//! churn and unreliable links. A [`Scenario`] makes that claim testable at
//! scale: it composes the declarative fault plans of [`crate::fault`] and
//! [`crate::partition`] — crashes, joins, partitions/heals, message
//! drop/duplication/delay spikes and transient state corruption — into one
//! named, seed-reproducible fault schedule over rounds. The
//! [`crate::campaign`] module sweeps scenarios × seeds × scheduler modes and
//! records the results; the `simctl` binary runs named scenarios from the
//! [`catalog`] against every composite node of the workspace.
//!
//! Protocol-specific concerns (how to build a node, how to corrupt its
//! state, what "converged" means) live behind the [`ScenarioTarget`] trait,
//! implemented by `ReconfigNode`, `CounterNode`, `SmrNode` and
//! `SharedMemNode` in their own crates.
//!
//! Determinism is a hard requirement: every scenario action happens at a
//! round boundary and draws randomness from a dedicated adversary stream
//! derived from the run's seed, so the same scenario + seed produces
//! byte-identical executions in both [`crate::SchedulerMode`]s — the PR-1
//! scheduler-equivalence guarantee extended to the whole fault layer.
//!
//! ```
//! use simnet::scenario::{LinkProfile, Scenario};
//! use simnet::{ProcessId, Round};
//!
//! let s = Scenario::new("partition-heal", 6)
//!     .describe("split the cluster in half, heal after 20 rounds")
//!     .split_halves_at(Round::new(8))
//!     .heal_at(Round::new(28))
//!     .with_rounds(400);
//! assert_eq!(s.name(), "partition-heal");
//! assert_eq!(s.initial_size(), 6);
//! assert!(s.last_fault_round() >= Round::new(28));
//! ```

use std::collections::{BTreeMap, BTreeSet};

use crate::channel::ChannelPolicy;
use crate::config::{SchedulerMode, SimConfig};
use crate::fault::{
    CorruptionPlan, CrashPlan, GrayFailurePlan, PayloadCorruptionPlan, RecoveryPlan, SkewPlan,
    SpikePlan, SpikeSpec,
};
use crate::partition::{AsymmetricCutPlan, PartitionPlan};
use crate::process::{Process, ProcessId};
use crate::rng::SimRng;
use crate::scheduler::Simulation;
use crate::time::Round;
use crate::ChurnPlan;
use crate::ScriptedFaults;

/// Base behaviour of every link in a scenario, applied outside spike
/// windows. A plain-data mirror of [`ChannelPolicy`] with scenario-friendly
/// defaults (reliable, at most one round of delay).
#[derive(Debug, Clone, PartialEq)]
pub struct LinkProfile {
    /// Per-packet loss probability.
    pub loss: f64,
    /// Per-packet duplication probability.
    pub duplication: f64,
    /// Maximum random delivery delay in rounds.
    pub max_delay: u64,
    /// Whether ready packets may be delivered out of order.
    pub reorder: bool,
    /// Bounded channel capacity in packets.
    pub capacity: usize,
}

impl Default for LinkProfile {
    fn default() -> Self {
        LinkProfile {
            loss: 0.0,
            duplication: 0.0,
            max_delay: 0,
            reorder: false,
            capacity: 16,
        }
    }
}

impl LinkProfile {
    /// The equivalent channel policy.
    pub fn to_policy(&self) -> ChannelPolicy {
        ChannelPolicy {
            capacity: self.capacity,
            loss_probability: self.loss,
            duplication_probability: self.duplication,
            max_delay_rounds: self.max_delay,
            reorder: self.reorder,
        }
    }
}

/// A named, declarative chaos scenario: an initial population plus a
/// schedule of crashes, joins, partitions, spikes and corruptions over
/// rounds, with a round budget and a workload window.
#[derive(Debug, Clone)]
pub struct Scenario {
    name: String,
    description: String,
    n: usize,
    rounds: u64,
    workload_rounds: u64,
    link: LinkProfile,
    crashes: CrashPlan,
    churn: ChurnPlan,
    partitions: PartitionPlan,
    asym_cuts: AsymmetricCutPlan,
    corruptions: CorruptionPlan,
    spikes: SpikePlan,
    gray: GrayFailurePlan,
    skews: SkewPlan,
    payload: PayloadCorruptionPlan,
    recovery: RecoveryPlan,
}

impl Scenario {
    /// Creates an empty scenario over an initial population of `n`
    /// processors, with a default budget of 1,000 rounds and no workload
    /// window.
    pub fn new(name: impl Into<String>, n: usize) -> Self {
        Scenario {
            name: name.into(),
            description: String::new(),
            n,
            rounds: 1_000,
            workload_rounds: 0,
            link: LinkProfile::default(),
            crashes: CrashPlan::new(),
            churn: ChurnPlan::new(),
            partitions: PartitionPlan::new(),
            asym_cuts: AsymmetricCutPlan::new(),
            corruptions: CorruptionPlan::new(),
            spikes: SpikePlan::new(),
            gray: GrayFailurePlan::new(),
            skews: SkewPlan::new(),
            payload: PayloadCorruptionPlan::new(),
            recovery: RecoveryPlan::new(),
        }
    }

    /// Sets the human-readable description (builder style).
    pub fn describe(mut self, description: impl Into<String>) -> Self {
        self.description = description.into();
        self
    }

    /// Sets the maximum number of rounds the runner executes (builder
    /// style). Runs stop early once the target converges.
    pub fn with_rounds(mut self, rounds: u64) -> Self {
        self.rounds = rounds;
        self
    }

    /// Drives the target's workload ([`ScenarioTarget::drive_workload`])
    /// while the current round is below `rounds` (builder style).
    pub fn with_workload_until(mut self, rounds: u64) -> Self {
        self.workload_rounds = rounds;
        self
    }

    /// Sets the base link behaviour (builder style).
    pub fn with_link(mut self, link: LinkProfile) -> Self {
        self.link = link;
        self
    }

    /// Schedules `victims` to crash at `round` (builder style).
    pub fn crash_at(mut self, round: Round, victims: impl IntoIterator<Item = ProcessId>) -> Self {
        self.crashes = self.crashes.crash_all_at(round, victims);
        self
    }

    /// Schedules `count` fresh joiners at `round` (builder style).
    pub fn join_at(mut self, round: Round, count: u32) -> Self {
        self.churn = self.churn.join_at(round, count);
        self
    }

    /// Schedules a partition into `groups` at `round` (builder style).
    pub fn split_at(mut self, round: Round, groups: Vec<Vec<ProcessId>>) -> Self {
        self.partitions = self.partitions.split_at(round, groups);
        self
    }

    /// Schedules a split of the initial population into two halves at
    /// `round` (builder style).
    pub fn split_halves_at(self, round: Round) -> Self {
        let n = self.n;
        let mid = n / 2;
        let lower: Vec<ProcessId> = (0..mid as u32).map(ProcessId::new).collect();
        let upper: Vec<ProcessId> = (mid as u32..n as u32).map(ProcessId::new).collect();
        self.split_at(round, vec![lower, upper])
    }

    /// Schedules a full heal at `round` (builder style).
    pub fn heal_at(mut self, round: Round) -> Self {
        self.partitions = self.partitions.heal_at(round);
        self
    }

    /// Schedules a one-directional cut at `round`: links from members of
    /// `from` towards members of `to` fail while the reverse direction
    /// keeps delivering (builder style).
    pub fn cut_oneway_at(mut self, round: Round, from: Vec<ProcessId>, to: Vec<ProcessId>) -> Self {
        self.asym_cuts = self.asym_cuts.cut_at(round, from, to);
        self
    }

    /// Schedules a one-way cut of the initial population's halves at
    /// `round`: the lower half stops hearing the upper half, while the
    /// upper half still hears everything (builder style).
    pub fn cut_oneway_halves_at(self, round: Round) -> Self {
        let n = self.n;
        let mid = n / 2;
        let lower: Vec<ProcessId> = (0..mid as u32).map(ProcessId::new).collect();
        let upper: Vec<ProcessId> = (mid as u32..n as u32).map(ProcessId::new).collect();
        self.cut_oneway_at(round, upper, lower)
    }

    /// Schedules a heal of every one-directional cut at `round` (builder
    /// style). Symmetric splits are unaffected.
    pub fn heal_oneway_at(mut self, round: Round) -> Self {
        self.asym_cuts = self.asym_cuts.heal_at(round);
        self
    }

    /// Schedules a gray failure: `victims` run at timer period `period`
    /// from `round` for `duration` rounds, then recover (builder style).
    pub fn slow_at(
        mut self,
        round: Round,
        duration: u64,
        period: u64,
        victims: impl IntoIterator<Item = ProcessId>,
    ) -> Self {
        self.gray = self.gray.slow_at(round, duration, period, victims);
        self
    }

    /// Schedules permanent clock skew: `victims` run at timer period
    /// `period` from `round` on, forever (builder style).
    pub fn skew_at(
        mut self,
        round: Round,
        period: u64,
        victims: impl IntoIterator<Item = ProcessId>,
    ) -> Self {
        self.skews = self.skews.skew_at(round, period, victims);
        self
    }

    /// Schedules in-flight payload corruption of every packet travelling
    /// towards `victims` at `round` (builder style).
    pub fn corrupt_payloads_at(
        mut self,
        round: Round,
        victims: impl IntoIterator<Item = ProcessId>,
    ) -> Self {
        self.payload = self.payload.corrupt_inbound_at(round, victims);
        self
    }

    /// Schedules `victims` to crash at `round` and rejoin under fresh
    /// identifiers `downtime` rounds later (builder style).
    pub fn crash_recover_at(
        mut self,
        round: Round,
        victims: impl IntoIterator<Item = ProcessId>,
        downtime: u64,
    ) -> Self {
        self.recovery = self.recovery.crash_recover_at(round, victims, downtime);
        self
    }

    /// Schedules transient state corruption of `victims` at `round`
    /// (builder style).
    pub fn corrupt_at(
        mut self,
        round: Round,
        victims: impl IntoIterator<Item = ProcessId>,
    ) -> Self {
        self.corruptions = self.corruptions.corrupt_at(round, victims);
        self
    }

    /// Schedules a message drop/duplication/delay spike starting at `round`
    /// for `duration` rounds (builder style).
    pub fn spike_at(mut self, round: Round, duration: u64, spec: SpikeSpec) -> Self {
        self.spikes = self.spikes.spike_at(round, duration, spec);
        self
    }

    /// The scenario's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The scenario's description.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// The size of the initial population.
    pub fn initial_size(&self) -> usize {
        self.n
    }

    /// The round budget.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The workload window: workload is driven while `now < workload_rounds`.
    pub fn workload_rounds(&self) -> u64 {
        self.workload_rounds
    }

    /// The base link behaviour.
    pub fn link(&self) -> &LinkProfile {
        &self.link
    }

    /// The crash schedule.
    pub fn crash_plan(&self) -> &CrashPlan {
        &self.crashes
    }

    /// The churn schedule.
    pub fn churn_plan(&self) -> &ChurnPlan {
        &self.churn
    }

    /// The partition schedule.
    pub fn partition_plan(&self) -> &PartitionPlan {
        &self.partitions
    }

    /// The corruption schedule.
    pub fn corruption_plan(&self) -> &CorruptionPlan {
        &self.corruptions
    }

    /// The spike schedule.
    pub fn spike_plan(&self) -> &SpikePlan {
        &self.spikes
    }

    /// The one-directional cut schedule.
    pub fn asymmetric_cut_plan(&self) -> &AsymmetricCutPlan {
        &self.asym_cuts
    }

    /// The gray-failure schedule.
    pub fn gray_plan(&self) -> &GrayFailurePlan {
        &self.gray
    }

    /// The clock-skew schedule.
    pub fn skew_plan(&self) -> &SkewPlan {
        &self.skews
    }

    /// The in-flight payload-corruption schedule.
    pub fn payload_plan(&self) -> &PayloadCorruptionPlan {
        &self.payload
    }

    /// The crash-recovery schedule.
    pub fn recovery_plan(&self) -> &RecoveryPlan {
        &self.recovery
    }

    /// The last round at which this scenario injects any fault (convergence
    /// is only counted after this round). Clock skew is the exception: it
    /// never ends, so convergence is counted *with* the skew in force.
    pub fn last_fault_round(&self) -> Round {
        let mut last = Round::ZERO;
        let mut consider = |r: Option<Round>| {
            if let Some(r) = r {
                last = last.max(r);
            }
        };
        consider(self.crashes.last_round());
        consider(self.churn.last_round());
        consider(self.partitions.last_round());
        consider(self.asym_cuts.last_round());
        consider(self.corruptions.last_round());
        consider(self.spikes.last_round());
        consider(self.gray.last_round());
        consider(self.skews.last_round());
        consider(self.payload.last_round());
        consider(self.recovery.last_round());
        last
    }

    /// The simulation configuration for one run of this scenario.
    pub fn sim_config(&self, seed: u64, mode: SchedulerMode) -> SimConfig {
        let link = &self.link;
        SimConfig::default()
            .with_seed(seed)
            .with_scheduler(mode)
            .with_loss_probability(link.loss)
            .with_duplication_probability(link.duplication)
            .with_max_delay(link.max_delay)
            .with_reordering(link.reorder)
            .with_channel_capacity(link.capacity)
    }

    /// Builds a fresh simulation of this scenario's initial population.
    pub fn build_sim<T: ScenarioTarget>(&self, seed: u64, mode: SchedulerMode) -> Simulation<T> {
        let mut sim = Simulation::new(self.sim_config(seed, mode));
        for i in 0..self.n as u32 {
            let id = ProcessId::new(i);
            sim.add_process_with_id(id, T::spawn_initial(id, self.n));
        }
        sim
    }
}

/// The per-protocol adapter of the chaos engine: everything the scenario
/// runner needs to know about a composite node that the node's own crate
/// must decide — construction, transient corruption, workload, convergence
/// and safety invariants.
///
/// Implemented by `ReconfigNode` (`core`), `CounterNode` (`counters`),
/// `SmrNode` (`vssmr`) and `SharedMemNode` (`sharedmem`).
pub trait ScenarioTarget: Process + Sized {
    /// Short machine-readable name used in reports and `simctl --node`.
    const NAME: &'static str;

    /// Builds member `id` of an initial population of `n` processors.
    fn spawn_initial(id: ProcessId, n: usize) -> Self;

    /// Builds a processor joining a running system whose initial population
    /// had `n` processors.
    fn spawn_joiner(id: ProcessId, n: usize) -> Self;

    /// Applies one transient fault to the local state — the paper's
    /// signature fault class. Implementations must only produce states the
    /// protocol provably recovers from agreement-wise (self-stabilization
    /// quantifies over arbitrary states, but a campaign needs its
    /// convergence predicate to become true again in bounded time).
    fn corrupt(&mut self, rng: &mut SimRng);

    /// Mutates one in-flight packet payload — the paper's channel-content
    /// corruption, driven by [`crate::fault::PayloadCorruptionPlan`].
    /// Returns `true` when the payload was changed. The default leaves the
    /// payload alone: the plan's sender-misattribution shuffle (packets
    /// towards a victim trade payloads across its inbound channels) is
    /// already a genuine corruption, and protocols add their own bit-level
    /// mutations on top (e.g. degrading a rich message to a bare heartbeat,
    /// as a checksum failure would).
    fn corrupt_payload(msg: &mut Self::Msg, rng: &mut SimRng) -> bool {
        let _ = (msg, rng);
        false
    }

    /// Injects one round of application workload (submit writes, request
    /// increments, …). Driven while the scenario's workload window is open.
    /// The default does nothing.
    fn drive_workload(sim: &mut Simulation<Self>, round: Round, rng: &mut SimRng) {
        let _ = (sim, round, rng);
    }

    /// Returns `true` once the system has (re-)converged: the scenario's
    /// liveness criterion.
    fn converged(sim: &Simulation<Self>) -> bool;

    /// Safety-invariant violations observable in the current global state;
    /// checked at the end of a run (after convergence, or after the round
    /// budget is exhausted).
    fn invariant_violations(sim: &Simulation<Self>) -> Vec<String>;

    /// A canonical digest of the global protocol state, used to assert that
    /// both scheduler modes produced the same execution. Must be
    /// deterministic and platform-independent (see
    /// [`crate::report::digest_lines`]).
    fn state_digest(sim: &Simulation<Self>) -> u64;
}

/// What happened during one scenario run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioRun {
    /// Rounds actually executed (≤ the scenario budget).
    pub rounds_run: u64,
    /// Whether the target's convergence predicate held at the end.
    pub converged: bool,
    /// The first round (after the last fault and the workload window) at
    /// which the target reported convergence.
    pub rounds_to_convergence: Option<u64>,
    /// Crashes applied (including crash-recovery crashes).
    pub crashes: u64,
    /// Joins applied (fresh joiners from the churn plan).
    pub joins: u64,
    /// State corruptions applied.
    pub corruptions: u64,
    /// In-flight packets whose payloads were corrupted.
    pub payload_corruptions: u64,
    /// Crash-recovered processors that rejoined under fresh identifiers.
    pub recoveries: u64,
    /// Gray-failure and clock-skew slowdowns applied to processors.
    pub slowdowns: u64,
    /// Invariant violations observed at the end of the run.
    pub invariant_violations: Vec<String>,
    /// The target's state digest at the end of the run.
    pub state_digest: u64,
}

/// Runs `scenario` on `sim` to completion (convergence or round budget).
///
/// All scenario actions are applied at round boundaries in a fixed order —
/// heals/splits, spikes, crashes, joins, corruptions, extra scripted
/// faults, workload — so executions are byte-identical across scheduler
/// modes for the same seed.
pub fn run_scenario<T: ScenarioTarget>(
    scenario: &Scenario,
    sim: &mut Simulation<T>,
) -> ScenarioRun {
    let mut extras = ScriptedFaults::new();
    run_scenario_with_extras(scenario, sim, &mut extras)
}

/// Like [`run_scenario`], additionally applying a [`ScriptedFaults`] script
/// each round: the escape hatch for protocol-specific adversarial actions a
/// declarative plan cannot express.
pub fn run_scenario_with_extras<T: ScenarioTarget>(
    scenario: &Scenario,
    sim: &mut Simulation<T>,
    extras: &mut ScriptedFaults<T>,
) -> ScenarioRun {
    // The adversary's random stream is derived from the simulation seed but
    // independent of the scheduler's draws, so scenario actions cannot
    // perturb (or be perturbed by) delivery randomness.
    let mut adversary_rng = SimRng::seed_from(sim.config().seed() ^ 0xc4a0_5eed_c4a0_5eed);
    let base_policy = scenario.link.to_policy();
    let quiet_after = scenario
        .last_fault_round()
        .max(extras.last_round().unwrap_or(Round::ZERO));
    let n = scenario.n;

    let mut crashes = 0u64;
    let mut joins = 0u64;
    let mut corruptions = 0u64;
    let mut payload_corruptions = 0u64;
    let mut recoveries = 0u64;
    let mut slowdowns = 0u64;
    let mut rounds_to_convergence = None;
    // Mirror of every currently active split (empty = fully connected), so
    // that churned-in processors can be confined with respect to *each*
    // cut instead of silently bridging one of them with open links.
    let mut active_splits: Vec<Vec<Vec<ProcessId>>> = Vec::new();
    // Likewise for one-way cuts: the currently active directed cuts,
    // including the sides joiners were confined to.
    let mut active_oneway: Vec<crate::partition::OnewayCut> = Vec::new();
    // Fault-class safety invariants checked by the runner itself (the
    // target's protocol invariants are collected separately at the end);
    // see docs/FAULTS.md for the class → invariant mapping.
    let mut runner_violations: Vec<String> = Vec::new();
    // Timer-step baselines for the gray-failure and skew liveness checks.
    let mut gray_baseline: BTreeMap<(u64, ProcessId), u64> = BTreeMap::new();
    let mut skew_baseline: BTreeMap<ProcessId, (Round, u64)> = BTreeMap::new();

    for _ in 0..scenario.rounds {
        let now = sim.now();
        // 1. Connectivity changes (heals before splits, see PartitionPlan).
        // The network's blocked-link set is shared between the symmetric
        // and the one-way plan, so after either plan heals, the other
        // plan's still-active blocks are re-asserted.
        if scenario.partitions.heals_at(now) {
            active_splits.clear();
        }
        for groups in scenario.partitions.splits_due(now) {
            active_splits.push(groups.clone());
        }
        scenario.partitions.apply(sim, now);
        if scenario.partitions.heals_at(now) {
            // The full heal lifted every one-way cut still in force.
            for (from, to) in &active_oneway {
                sim.network_mut().cut_oneway(from, to);
            }
        }
        // 2. One-directional cuts. Invariant: the cut direction is blocked
        // and the reverse direction is exactly as blocked as it was after
        // this round's heal (a heal and a cut may share a round) — an
        // asymmetric cut that cuts both ways is a symmetric partition.
        if scenario.asym_cuts.heals_at(now) {
            // Heal the *tracked* cuts (they include confined joiners the
            // declared plan never mentions), then re-assert the symmetric
            // blocks the one-way heal may have lifted.
            for (from, to) in active_oneway.drain(..) {
                sim.network_mut().open_oneway(&from, &to);
            }
            scenario.asym_cuts.apply_heals(sim, now);
            for groups in &active_splits {
                sim.network_mut().split_into(groups);
            }
        }
        let asym_due: Vec<crate::partition::OnewayCut> =
            scenario.asym_cuts.cuts_due(now).cloned().collect();
        active_oneway.extend(asym_due.iter().cloned());
        let reverse_before: Vec<bool> = asym_due
            .iter()
            .flat_map(|(from, to)| {
                to.iter()
                    .flat_map(|b| from.iter().map(|a| sim.network().is_blocked(*b, *a)))
                    .collect::<Vec<bool>>()
            })
            .collect();
        scenario.asym_cuts.apply_cuts(sim, now);
        let mut pair = 0;
        for (from, to) in &asym_due {
            for b in to {
                for a in from {
                    if a != b && !sim.network().is_blocked(*a, *b) {
                        runner_violations
                            .push(format!("asymmetric cut left the link {a} → {b} open"));
                    }
                    if sim.network().is_blocked(*b, *a) != reverse_before[pair] {
                        runner_violations
                            .push(format!("asymmetric cut changed the reverse link {b} → {a}"));
                    }
                    pair += 1;
                }
            }
        }
        // 3. Channel-behaviour spikes.
        scenario.spikes.apply(sim, now, &base_policy);
        // 4. Gray failures and clock skew: per-process timer slowdowns.
        for (start, _, victims, _) in scenario.gray.windows() {
            if *start == now {
                for v in victims {
                    if let Some(steps) = sim.timer_steps_of(*v) {
                        gray_baseline.insert((start.as_u64(), *v), steps);
                    }
                }
            }
        }
        for (round, v, _) in scenario.skews.all_skews() {
            if round == now {
                if let Some(steps) = sim.timer_steps_of(v) {
                    skew_baseline.insert(v, (now, steps));
                }
            }
        }
        // Both timer-fault plans under their composition rule (the skew is
        // a floor under gray windows; slowdowns count transitions).
        slowdowns += crate::fault::apply_timer_faults(&scenario.gray, &scenario.skews, sim, now);
        // Invariant at each window's end: the victim really ran slower —
        // its timer steps fit the slowed period's budget.
        for (start, end, victims, period) in scenario.gray.windows() {
            if *end != now || end == start {
                continue;
            }
            for v in victims {
                let Some(baseline) = gray_baseline.get(&(start.as_u64(), *v)) else {
                    continue;
                };
                let Some(steps_now) = sim.timer_steps_of(*v) else {
                    continue;
                };
                let steps = steps_now - baseline;
                let budget = (*end - *start) / *period + 2;
                if steps > budget {
                    runner_violations.push(format!(
                        "gray failure had no effect: {v} took {steps} timer steps in \
                         [{start}, {end}) at period {period} (budget {budget})"
                    ));
                }
            }
        }
        // 5. Crash failures (plain crashes, then crash-recovery crashes).
        crashes += scenario.crashes.due(now).len() as u64;
        scenario.crashes.apply(sim, now);
        crashes += scenario.recovery.apply_crashes(sim, now);
        // 6. Churn: joiners enter through the protocol's joining path, and
        // crash-recovered processors re-enter the same way under fresh
        // identifiers (the paper's rejoin-as-newcomer rule).
        let joined = scenario.churn.apply(sim, now, |id| T::spawn_joiner(id, n));
        joins += joined.len() as u64;
        let rejoined = scenario
            .recovery
            .apply_rejoins(sim, now, |id| T::spawn_joiner(id, n));
        recoveries += rejoined.len() as u64;
        // While partitions are active, every churned-in processor (id ≥ n
        // — the scenario author could not have named it in the declared
        // groups) is confined to one side of *each* cut, round-robin by
        // id, and the splits are re-applied so its links to the other
        // sides are blocked. This covers joiners arriving during a split,
        // joiners already present when a split fires, and stacked splits.
        for groups in &mut active_splits {
            let covered: BTreeSet<ProcessId> = groups.iter().flatten().copied().collect();
            let stray: Vec<ProcessId> = sim
                .active_ids()
                .into_iter()
                .filter(|id| id.as_u32() as usize >= n && !covered.contains(id))
                .collect();
            if !stray.is_empty() {
                for id in stray {
                    let side = id.as_u32() as usize % groups.len();
                    groups[side].push(id);
                }
                sim.network_mut().split_into(groups);
            }
        }
        // The same confinement for one-way cuts: a joiner outside both
        // groups would otherwise relay around the cut in both directions.
        // Joiners land on a side by identifier parity and inherit its
        // deafness (to-side) or muteness (from-side).
        for (from, to) in &mut active_oneway {
            let covered: BTreeSet<ProcessId> = from.iter().chain(to.iter()).copied().collect();
            let stray: Vec<ProcessId> = sim
                .active_ids()
                .into_iter()
                .filter(|id| id.as_u32() as usize >= n && !covered.contains(id))
                .collect();
            if !stray.is_empty() {
                for id in stray {
                    if id.as_u32() % 2 == 0 {
                        from.push(id);
                    } else {
                        to.push(id);
                    }
                }
                sim.network_mut().cut_oneway(from, to);
            }
        }
        // 7. Transient state corruption.
        corruptions += scenario
            .corruptions
            .apply(sim, now, &mut adversary_rng, |p, rng| p.corrupt(rng));
        // 8. In-flight payload corruption. Invariant: corruption mutates
        // packets, it never creates or destroys them.
        if !scenario.payload.due(now).is_empty() {
            let in_flight_before = sim.network().in_flight_total();
            payload_corruptions +=
                scenario
                    .payload
                    .apply(sim, now, &mut adversary_rng, |msg, rng| {
                        T::corrupt_payload(msg, rng)
                    });
            if sim.network().in_flight_total() != in_flight_before {
                runner_violations
                    .push("payload corruption created or destroyed packets".to_string());
            }
        }
        // 9. Protocol-specific scripted extras.
        extras.apply(sim, now);
        // 10. Application workload.
        if now.as_u64() < scenario.workload_rounds {
            T::drive_workload(sim, now, &mut adversary_rng);
        }

        sim.step_round();

        if rounds_to_convergence.is_none()
            && sim.now() > quiet_after
            && sim.now().as_u64() >= scenario.workload_rounds
            && T::converged(sim)
        {
            rounds_to_convergence = Some(sim.now().as_u64());
            break;
        }
    }

    // End-of-run fault-class invariants.
    // Crash-recovery: the old identifier stays dead forever — recovery
    // means a fresh identifier, never resurrection.
    for victim in scenario.recovery.all_victims() {
        if sim.is_active(victim) {
            runner_violations.push(format!(
                "crash-recovered processor {victim} is still active under its old identifier"
            ));
        }
    }
    // Clock skew: a skewed processor is slow, not dead — given enough
    // rounds it must have taken timer steps at its skewed rate.
    for (v, (since, baseline)) in &skew_baseline {
        if !sim.is_active(*v) {
            continue;
        }
        let elapsed = sim.now().saturating_since(*since);
        let period = sim.timer_period_override(*v).unwrap_or(1);
        if elapsed >= 2 * period {
            let steps = sim.timer_steps_of(*v).unwrap_or(*baseline) - baseline;
            if steps == 0 {
                runner_violations.push(format!(
                    "skewed processor {v} took no timer steps since round {since}"
                ));
            }
        }
    }

    let converged = rounds_to_convergence.is_some() || T::converged(sim);
    let mut invariant_violations = T::invariant_violations(sim);
    invariant_violations.extend(runner_violations);
    ScenarioRun {
        rounds_run: sim.now().as_u64(),
        converged,
        rounds_to_convergence,
        crashes,
        joins,
        corruptions,
        payload_corruptions,
        recoveries,
        slowdowns,
        invariant_violations,
        state_digest: T::state_digest(sim),
    }
}

/// The built-in scenario catalog, sized for an initial population of `n`
/// processors. These are the named scenarios `simctl run` accepts and the
/// CI chaos matrix sweeps.
///
/// | name | fault mix |
/// |------|-----------|
/// | `quiescent` | none — pure bootstrap convergence |
/// | `crash-minority` | a minority of the population crashes at once |
/// | `partition-heal` | the cluster splits in half, then heals |
/// | `churn` | joins and a crash interleaved |
/// | `packet-storm` | a loss/duplication/delay spike window |
/// | `state-blast` | transient state corruption of a minority |
/// | `partition-churn` | joins *during* a partition, heal, late crash |
/// | `chaos-mix` | everything above in one schedule |
/// | `one-way-cut` | an asymmetric cut: half the cluster goes deaf, then heals |
/// | `gray-lag` | a minority runs 6× slow for a window, then recovers |
/// | `wire-corruption` | in-flight payload corruption towards a minority, thrice |
/// | `clock-skew` | a minority runs 3× slow forever — convergence under skew |
/// | `crash-recovery` | a minority crashes and rejoins under fresh identifiers |
pub fn catalog(n: usize) -> Vec<Scenario> {
    let n_u32 = n as u32;
    let minority: Vec<ProcessId> = {
        let k = (n.saturating_sub(1)) / 2;
        (0..k as u32)
            .map(|i| ProcessId::new(n_u32 - 1 - i))
            .collect()
    };
    let storm = SpikeSpec {
        loss: 0.25,
        duplication: 0.1,
        extra_delay: 2,
    };
    vec![
        Scenario::new("quiescent", n)
            .describe("no faults: bootstrap from scratch and settle")
            .with_rounds(1_500)
            .with_workload_until(40),
        Scenario::new("crash-minority", n)
            .describe("a minority of the population crashes simultaneously")
            .crash_at(Round::new(30), minority.clone())
            .with_rounds(1_500)
            .with_workload_until(60),
        Scenario::new("partition-heal", n)
            .describe("the cluster splits into halves and heals 40 rounds later")
            .split_halves_at(Round::new(30))
            .heal_at(Round::new(70))
            .with_rounds(2_000)
            .with_workload_until(110),
        Scenario::new("churn", n)
            .describe("two joiners, then a crash, then one more joiner")
            .join_at(Round::new(30), 2)
            .crash_at(Round::new(45), [ProcessId::new(n_u32 - 1)])
            .join_at(Round::new(60), 1)
            .with_rounds(2_000)
            .with_workload_until(90),
        Scenario::new("packet-storm", n)
            .describe("a 30-round loss/duplication/delay spike on every link")
            .spike_at(Round::new(30), 30, storm)
            .with_rounds(2_000)
            .with_workload_until(90),
        Scenario::new("state-blast", n)
            .describe("transient state corruption of a minority, twice")
            .corrupt_at(Round::new(30), minority.clone())
            .corrupt_at(Round::new(60), vec![ProcessId::new(0)])
            .with_rounds(2_000)
            .with_workload_until(90),
        Scenario::new("partition-churn", n)
            .describe("joins during a partition, heal, then a late crash")
            .split_halves_at(Round::new(30))
            .join_at(Round::new(40), 2)
            .heal_at(Round::new(60))
            .crash_at(Round::new(80), [ProcessId::new(n_u32 - 1)])
            .with_rounds(2_500)
            .with_workload_until(110),
        Scenario::new("chaos-mix", n)
            .describe("spike + partition + crash + joins + corruption, overlapping")
            .spike_at(Round::new(20), 20, storm)
            .split_halves_at(Round::new(30))
            .join_at(Round::new(40), 1)
            .heal_at(Round::new(55))
            .crash_at(Round::new(70), [ProcessId::new(n_u32 - 1)])
            .corrupt_at(Round::new(85), vec![ProcessId::new(0)])
            .with_rounds(3_000)
            .with_workload_until(120),
        Scenario::new("one-way-cut", n)
            .describe("the lower half goes deaf to the upper half, healing 40 rounds later")
            .cut_oneway_halves_at(Round::new(30))
            .heal_oneway_at(Round::new(70))
            .with_rounds(2_500)
            .with_workload_until(110),
        Scenario::new("gray-lag", n)
            .describe("a minority runs at 6x the timer period for 40 rounds, then recovers")
            .slow_at(Round::new(30), 40, 6, minority.clone())
            .with_rounds(2_500)
            .with_workload_until(100),
        Scenario::new("wire-corruption", n)
            .describe("payloads in flight towards a minority are corrupted, three times")
            .corrupt_payloads_at(Round::new(30), minority.clone())
            .corrupt_payloads_at(Round::new(45), vec![ProcessId::new(0)])
            .corrupt_payloads_at(Round::new(60), minority.clone())
            .with_rounds(2_000)
            .with_workload_until(90),
        Scenario::new("clock-skew", n)
            .describe("a minority's clock runs 3x slow forever; the system converges anyway")
            .skew_at(Round::new(20), 3, minority.clone())
            .with_rounds(2_500)
            .with_workload_until(80),
        Scenario::new("crash-recovery", n)
            .describe("a minority crashes, then rejoins under fresh identifiers")
            .crash_recover_at(Round::new(30), minority, 30)
            .with_rounds(2_500)
            .with_workload_until(100),
    ]
}

/// Looks up a catalog scenario by name.
pub fn find(name: &str, n: usize) -> Option<Scenario> {
    catalog(n).into_iter().find(|s| s.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::MaxNode;

    fn run(scenario: &Scenario, seed: u64, mode: SchedulerMode) -> ScenarioRun {
        let mut sim = scenario.build_sim::<MaxNode>(seed, mode);
        run_scenario(scenario, &mut sim)
    }

    #[test]
    fn catalog_names_are_unique_and_findable() {
        let scenarios = catalog(5);
        for s in &scenarios {
            assert!(find(s.name(), 5).is_some(), "{} not findable", s.name());
            assert!(!s.description().is_empty());
        }
        let mut names: Vec<&str> = scenarios.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), scenarios.len(), "duplicate scenario names");
        assert!(find("no-such-scenario", 5).is_none());
    }

    #[test]
    fn every_catalog_scenario_converges_for_the_toy_target() {
        for scenario in catalog(6) {
            let run = run(&scenario, 1, SchedulerMode::EventDriven);
            assert!(
                run.converged,
                "scenario {} did not converge: {run:?}",
                scenario.name()
            );
            assert!(run.invariant_violations.is_empty());
            assert!(run.rounds_to_convergence.unwrap() > scenario.last_fault_round().as_u64());
        }
    }

    #[test]
    fn scenario_runs_are_byte_identical_across_scheduler_modes() {
        for scenario in catalog(6) {
            for seed in [3u64, 17] {
                let event = run(&scenario, seed, SchedulerMode::EventDriven);
                let scan = run(&scenario, seed, SchedulerMode::RoundScan);
                assert_eq!(
                    event,
                    scan,
                    "scenario {} seed {seed} diverged across modes",
                    scenario.name()
                );
            }
        }
    }

    #[test]
    fn fault_counters_match_the_schedule() {
        let scenario = Scenario::new("counts", 5)
            .crash_at(Round::new(2), [ProcessId::new(4)])
            .join_at(Round::new(3), 2)
            .corrupt_at(Round::new(4), [ProcessId::new(0), ProcessId::new(1)])
            .with_rounds(40);
        let run = run(&scenario, 9, SchedulerMode::EventDriven);
        assert_eq!(run.crashes, 1);
        assert_eq!(run.joins, 2);
        assert_eq!(run.corruptions, 2);
        assert_eq!(run.recoveries, 0);
        assert_eq!(run.slowdowns, 0);
        assert!(run.converged);
    }

    /// The new fault classes land and are counted: gray windows and skews
    /// as slowdowns, payload corruption per packet touched, and recovery
    /// crashes/rejoins split across `crashes` and `recoveries`.
    #[test]
    fn new_fault_counters_match_the_schedule() {
        let scenario = Scenario::new("new-counts", 6)
            .slow_at(Round::new(2), 10, 4, [ProcessId::new(1)])
            .skew_at(Round::new(3), 2, [ProcessId::new(2)])
            .corrupt_payloads_at(Round::new(4), [ProcessId::new(0)])
            .crash_recover_at(Round::new(5), [ProcessId::new(5)], 6)
            .with_rounds(80);
        let run = run(&scenario, 4, SchedulerMode::EventDriven);
        assert_eq!(run.slowdowns, 2, "{run:?}");
        assert!(run.payload_corruptions > 0, "{run:?}");
        assert_eq!(run.crashes, 1);
        assert_eq!(run.recoveries, 1);
        assert_eq!(run.joins, 0);
        assert!(run.converged, "{run:?}");
        assert!(run.invariant_violations.is_empty(), "{run:?}");
    }

    /// Crash-recovery through the runner: the victim stays dead, the
    /// replacement joins under a fresh identifier and adopts the system
    /// state.
    #[test]
    fn crash_recovery_rejoins_under_a_fresh_identifier() {
        let scenario = Scenario::new("recovery", 4)
            .crash_recover_at(Round::new(3), [ProcessId::new(3)], 5)
            .with_rounds(60);
        let mut sim = scenario.build_sim::<MaxNode>(2, SchedulerMode::EventDriven);
        let run = run_scenario(&scenario, &mut sim);
        assert!(run.converged, "{run:?}");
        assert_eq!(run.recoveries, 1);
        assert!(!sim.is_active(ProcessId::new(3)));
        assert!(sim.is_active(ProcessId::new(4)));
        // The recovered processor converged with everyone else.
        let value = sim.process(ProcessId::new(4)).unwrap().value;
        assert_eq!(value, sim.process(ProcessId::new(0)).unwrap().value);
    }

    /// A one-way cut keeps information flowing in the open direction only,
    /// and the runner's asymmetry invariant holds.
    #[test]
    fn one_way_cut_is_asymmetric_and_heals() {
        let scenario = Scenario::new("oneway", 4)
            .cut_oneway_halves_at(Round::ZERO)
            .heal_oneway_at(Round::new(12))
            .with_rounds(60);
        let mut sim = scenario.build_sim::<MaxNode>(3, SchedulerMode::EventDriven);
        let run = run_scenario(&scenario, &mut sim);
        assert!(run.converged, "{run:?}");
        assert!(run.invariant_violations.is_empty(), "{run:?}");
        assert!(run.rounds_to_convergence.unwrap() > 12);
        assert_eq!(sim.network().blocked_link_count(), 0);
    }

    /// Gray failure: the slowed process takes fewer steps during the
    /// window, recovers afterwards, and the run converges.
    #[test]
    fn gray_failure_slows_then_recovers() {
        let victim = ProcessId::new(2);
        let scenario = Scenario::new("gray", 4)
            .slow_at(Round::new(4), 20, 5, [victim])
            .with_rounds(80);
        let mut sim = scenario.build_sim::<MaxNode>(5, SchedulerMode::EventDriven);
        let run = run_scenario(&scenario, &mut sim);
        assert!(run.converged, "{run:?}");
        assert!(run.invariant_violations.is_empty(), "{run:?}");
        assert_eq!(run.slowdowns, 1);
        assert_eq!(sim.timer_period_override(victim), None, "override restored");
        let victim_steps = sim.timer_steps_of(victim).unwrap();
        let peer_steps = sim.timer_steps_of(ProcessId::new(0)).unwrap();
        assert!(victim_steps < peer_steps, "{victim_steps} vs {peer_steps}");
    }

    /// A one-way heal and a new cut scheduled for the same round leave
    /// exactly the new cut — and no spurious asymmetry violation, even
    /// when the new cut is the old one reversed.
    #[test]
    fn same_round_oneway_heal_and_cut_flip_cleanly() {
        let a = vec![ProcessId::new(0), ProcessId::new(1)];
        let b = vec![ProcessId::new(2), ProcessId::new(3)];
        let scenario = Scenario::new("flip", 4)
            .cut_oneway_at(Round::new(2), a.clone(), b.clone())
            .cut_oneway_at(Round::new(6), b, a)
            .heal_oneway_at(Round::new(6))
            .heal_oneway_at(Round::new(10))
            .with_rounds(60);
        let mut sim = scenario.build_sim::<MaxNode>(4, SchedulerMode::EventDriven);
        let run = run_scenario(&scenario, &mut sim);
        assert!(run.invariant_violations.is_empty(), "{run:?}");
        assert!(run.converged, "{run:?}");
        assert_eq!(sim.network().blocked_link_count(), 0);
    }

    /// Overlapping symmetric and one-way windows compose: neither plan's
    /// heal lifts the other plan's still-active blocks, even on shared
    /// links.
    #[test]
    fn oneway_and_symmetric_plans_compose_on_shared_links() {
        let p = |i: u32| ProcessId::new(i);
        let lower = || vec![p(0), p(1)];
        let upper = || vec![p(2), p(3)];
        let scenario = Scenario::new("compose", 4)
            .split_at(Round::new(2), vec![lower(), upper()])
            .cut_oneway_at(Round::new(4), upper(), lower())
            .heal_oneway_at(Round::new(6))
            .heal_at(Round::new(20))
            .with_rounds(60);
        let mut sim = scenario.build_sim::<MaxNode>(1, SchedulerMode::EventDriven);
        let mut extras: ScriptedFaults<MaxNode> = ScriptedFaults::new();
        // Between the one-way heal (6) and the full heal (20), the
        // symmetric split must still block both directions.
        extras.at(Round::new(10), |s: &mut Simulation<MaxNode>| {
            assert!(s.network().is_blocked(ProcessId::new(2), ProcessId::new(0)));
            assert!(s.network().is_blocked(ProcessId::new(0), ProcessId::new(2)));
        });
        let run = run_scenario_with_extras(&scenario, &mut sim, &mut extras);
        assert!(run.converged, "{run:?}");
        assert!(run.invariant_violations.is_empty(), "{run:?}");
        assert_eq!(sim.network().blocked_link_count(), 0);

        // The other direction: a symmetric full heal must not lift a
        // one-way cut still in force.
        let scenario = Scenario::new("compose-rev", 4)
            .cut_oneway_at(Round::new(2), upper(), lower())
            .split_at(Round::new(4), vec![lower(), upper()])
            .heal_at(Round::new(6))
            .heal_oneway_at(Round::new(20))
            .with_rounds(60);
        let mut sim = scenario.build_sim::<MaxNode>(1, SchedulerMode::EventDriven);
        let mut extras: ScriptedFaults<MaxNode> = ScriptedFaults::new();
        extras.at(Round::new(10), |s: &mut Simulation<MaxNode>| {
            assert!(s.network().is_blocked(ProcessId::new(2), ProcessId::new(0)));
            assert!(!s.network().is_blocked(ProcessId::new(0), ProcessId::new(2)));
        });
        let run = run_scenario_with_extras(&scenario, &mut sim, &mut extras);
        assert!(run.converged, "{run:?}");
        assert!(run.invariant_violations.is_empty(), "{run:?}");
        assert_eq!(sim.network().blocked_link_count(), 0);
    }

    /// Processors joining during an active one-way cut are confined to one
    /// side of it — they must not relay around the cut in either direction.
    #[test]
    fn joiners_during_a_oneway_cut_do_not_bridge_it() {
        let scenario = Scenario::new("oneway-bridge", 4)
            .cut_oneway_halves_at(Round::ZERO)
            .join_at(Round::new(2), 2)
            .with_rounds(15);
        let mut sim = scenario.build_sim::<MaxNode>(1, SchedulerMode::EventDriven);
        let run = run_scenario(&scenario, &mut sim);
        assert_eq!(run.joins, 2);
        assert!(!run.converged, "a bridged cut would let the halves agree");
        let net = sim.network();
        // Joiner 4 (even) lands on the muted `from` side {2,3}: it hears
        // everyone but cannot send towards the deaf lower half.
        assert!(net.is_blocked(ProcessId::new(4), ProcessId::new(0)));
        assert!(!net.is_blocked(ProcessId::new(0), ProcessId::new(4)));
        // Joiner 5 (odd) lands on the deaf `to` side {0,1}: the upper half
        // (including joiner 4) cannot reach it.
        assert!(net.is_blocked(ProcessId::new(2), ProcessId::new(5)));
        assert!(net.is_blocked(ProcessId::new(4), ProcessId::new(5)));
        assert!(!net.is_blocked(ProcessId::new(5), ProcessId::new(2)));
        // The upper half's maximum (3) never leaked into the deaf side.
        for deaf in [0u32, 1, 5] {
            assert_eq!(sim.process(ProcessId::new(deaf)).unwrap().value, 1);
        }
        for heard in [2u32, 3, 4] {
            assert_eq!(sim.process(ProcessId::new(heard)).unwrap().value, 3);
        }
    }

    /// Adjacent gray windows are one continuous slowdown: the seam neither
    /// restores the victim nor counts a second slowdown.
    #[test]
    fn adjacent_gray_windows_count_one_slowdown() {
        let victim = ProcessId::new(1);
        let scenario = Scenario::new("adjacent", 4)
            .slow_at(Round::new(2), 5, 6, [victim])
            .slow_at(Round::new(7), 5, 6, [victim])
            .with_rounds(60);
        let mut sim = scenario.build_sim::<MaxNode>(9, SchedulerMode::EventDriven);
        let run = run_scenario(&scenario, &mut sim);
        assert!(run.converged, "{run:?}");
        assert_eq!(run.slowdowns, 1, "{run:?}");
        assert_eq!(sim.timer_period_override(victim), None);
    }

    /// A permanent skew survives a gray window on the same victim: the
    /// gray restore must not wipe the skew's override, and the slower of
    /// the two wins while both are in force.
    #[test]
    fn skew_is_a_floor_under_gray_windows() {
        let victim = ProcessId::new(1);
        let scenario = Scenario::new("gray-over-skew", 4)
            .skew_at(Round::new(2), 3, [victim])
            .slow_at(Round::new(4), 8, 7, [victim])
            .with_rounds(80);
        let mut sim = scenario.build_sim::<MaxNode>(8, SchedulerMode::EventDriven);
        let mut extras: ScriptedFaults<MaxNode> = ScriptedFaults::new();
        // Probe the composed override mid-window by gossiping it: plans
        // apply before extras within a round, and with no workload the
        // probe (7 = max(skew 3, gray 7)) dominates every initial value,
        // so the converged value *is* the observed override.
        extras.at(Round::new(6), |s: &mut Simulation<MaxNode>| {
            s.process_mut(ProcessId::new(0)).unwrap().value =
                s.timer_period_override(ProcessId::new(1)).unwrap_or(0);
        });
        let run = run_scenario_with_extras(&scenario, &mut sim, &mut extras);
        assert!(run.converged, "{run:?}");
        assert!(run.invariant_violations.is_empty(), "{run:?}");
        assert_eq!(sim.process(ProcessId::new(0)).unwrap().value, 7);
        // After the gray window the skew is still in force, forever.
        assert_eq!(sim.timer_period_override(victim), Some(3));
    }

    /// Clock skew never heals: the run converges *with* the slow process
    /// still slow.
    #[test]
    fn clock_skew_converges_with_the_skew_in_force() {
        let victim = ProcessId::new(1);
        let scenario = Scenario::new("skew", 4)
            .skew_at(Round::new(2), 3, [victim])
            .with_rounds(80);
        let mut sim = scenario.build_sim::<MaxNode>(6, SchedulerMode::EventDriven);
        let run = run_scenario(&scenario, &mut sim);
        assert!(run.converged, "{run:?}");
        assert!(run.invariant_violations.is_empty(), "{run:?}");
        assert_eq!(sim.timer_period_override(victim), Some(3), "skew persists");
    }

    #[test]
    fn corruption_is_deterministic_per_seed() {
        let scenario = Scenario::new("det", 4)
            .corrupt_at(Round::new(1), [ProcessId::new(0)])
            .with_rounds(30);
        let a = run(&scenario, 5, SchedulerMode::EventDriven);
        let b = run(&scenario, 5, SchedulerMode::EventDriven);
        assert_eq!(a, b);
        let c = run(&scenario, 6, SchedulerMode::EventDriven);
        // A different seed corrupts with different values (almost surely).
        assert_ne!(a.state_digest, c.state_digest);
    }

    #[test]
    fn extras_run_alongside_the_declarative_schedule() {
        let scenario = Scenario::new("extras", 3).with_rounds(20);
        let mut sim = scenario.build_sim::<MaxNode>(1, SchedulerMode::EventDriven);
        let mut extras: ScriptedFaults<MaxNode> = ScriptedFaults::new();
        extras.at(Round::new(2), |s: &mut Simulation<MaxNode>| {
            s.process_mut(ProcessId::new(0)).unwrap().value = 999;
        });
        let run = run_scenario_with_extras(&scenario, &mut sim, &mut extras);
        assert_eq!(extras.applied(), 1);
        assert!(run.converged);
        assert_eq!(sim.process(ProcessId::new(2)).unwrap().value, 999);
    }

    /// Processors joining during an active partition are confined to one
    /// side of the cut — they must not bridge the halves with open links.
    #[test]
    fn joiners_during_a_partition_do_not_bridge_the_cut() {
        let scenario = Scenario::new("bridge", 4)
            .split_halves_at(Round::ZERO)
            .join_at(Round::new(2), 2)
            .with_rounds(15);
        let mut sim = scenario.build_sim::<MaxNode>(1, SchedulerMode::EventDriven);
        let run = run_scenario(&scenario, &mut sim);
        assert_eq!(run.joins, 2);
        assert!(!run.converged, "a bridged cut would let the halves agree");
        // Joiners 4 and 5 land on sides 4 % 2 = 0 and 5 % 2 = 1.
        let net = sim.network();
        assert!(net.is_blocked(ProcessId::new(4), ProcessId::new(2)));
        assert!(net.is_blocked(ProcessId::new(5), ProcessId::new(0)));
        assert!(net.is_blocked(ProcessId::new(4), ProcessId::new(5)));
        assert!(!net.is_blocked(ProcessId::new(4), ProcessId::new(0)));
        assert!(!net.is_blocked(ProcessId::new(5), ProcessId::new(2)));
        // The maximum of side B (value 3) never leaked into side A.
        for a in [0u32, 1, 4] {
            assert_eq!(sim.process(ProcessId::new(a)).unwrap().value, 1);
        }
        for b in [2u32, 3, 5] {
            assert_eq!(sim.process(ProcessId::new(b)).unwrap().value, 3);
        }
    }

    /// The reverse ordering: a processor that joined *before* a later
    /// split is likewise confined when the split fires — a value born on
    /// side B after the split must not reach side A through the joiner.
    #[test]
    fn pre_split_joiners_are_confined_when_the_split_fires() {
        let scenario = Scenario::new("pre-bridge", 4)
            .join_at(Round::new(2), 1)
            .split_halves_at(Round::new(6))
            .corrupt_at(Round::new(8), [ProcessId::new(3)])
            .with_rounds(20);
        let mut sim = scenario.build_sim::<MaxNode>(1, SchedulerMode::EventDriven);
        let run = run_scenario(&scenario, &mut sim);
        assert_eq!(run.joins, 1);
        assert_eq!(run.corruptions, 1);
        assert!(!run.converged, "a bridged cut would let the halves agree");
        // Joiner 4 lands on side 4 % 2 = 0: cut off from side B.
        let net = sim.network();
        assert!(net.is_blocked(ProcessId::new(4), ProcessId::new(2)));
        assert!(net.is_blocked(ProcessId::new(2), ProcessId::new(4)));
        assert!(!net.is_blocked(ProcessId::new(4), ProcessId::new(1)));
        // The corrupted maximum (≥ 100) born on side B after the split
        // stays there; side A — including the pre-split joiner — keeps the
        // pre-split maximum.
        for a in [0u32, 1, 4] {
            assert_eq!(sim.process(ProcessId::new(a)).unwrap().value, 3);
        }
        for b in [2u32, 3] {
            assert!(sim.process(ProcessId::new(b)).unwrap().value >= 100);
        }
    }

    /// Stacked splits without an intervening heal: a joiner is confined
    /// with respect to every active cut, not just the most recent one.
    #[test]
    fn joiners_are_confined_by_every_stacked_split() {
        let p = |i: u32| ProcessId::new(i);
        let scenario = Scenario::new("stacked", 4)
            .split_at(Round::new(2), vec![vec![p(0), p(1)], vec![p(2), p(3)]])
            .split_at(Round::new(4), vec![vec![p(0), p(2)], vec![p(1), p(3)]])
            .join_at(Round::new(6), 1)
            .with_rounds(20);
        let mut sim = scenario.build_sim::<MaxNode>(1, SchedulerMode::EventDriven);
        let run = run_scenario(&scenario, &mut sim);
        assert_eq!(run.joins, 1);
        // Joiner 4 lands on side 4 % 2 = 0 of *both* splits: group {0,1} of
        // the first cut and group {0,2} of the second — so the only peer it
        // may reach is p0 (the intersection).
        let net = sim.network();
        assert!(!net.is_blocked(p(4), p(0)));
        for other in [1u32, 2, 3] {
            assert!(
                net.is_blocked(p(4), p(other)),
                "joiner bridges a stacked cut to p{other}"
            );
        }
    }

    #[test]
    fn partition_delays_convergence_until_heal() {
        let scenario = Scenario::new("split", 4)
            .split_halves_at(Round::new(0))
            .heal_at(Round::new(15))
            .with_rounds(60);
        let run = run(&scenario, 2, SchedulerMode::EventDriven);
        assert!(run.converged);
        assert!(run.rounds_to_convergence.unwrap() > 15);
    }
}

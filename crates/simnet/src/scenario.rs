//! Declarative chaos scenarios over the open fault-plan API.
//!
//! The paper claims recovery from *any* transient fault on top of crashes,
//! churn and unreliable links. A [`Scenario`] makes that claim testable at
//! scale: it composes an open list of [`FaultPlan`]s — the built-in classes
//! of [`crate::fault`], [`crate::partition`] and [`crate::plan`] plus any
//! user-defined plan added through [`Scenario::with_plan`] — into one named,
//! seed-reproducible fault schedule over rounds. Each plan turns rounds into
//! typed [`FaultAction`]s; the runner ([`run_scenario`]) applies them in a
//! fixed per-class phase order, counts them into the run's extensible
//! counter map, and enforces the safety invariants (generic ones itself,
//! class-specific ones through [`FaultPlan::invariant`]). The
//! [`crate::campaign`] module sweeps scenarios × seeds × scheduler modes and
//! records the results; the `simctl` binary runs named scenarios from the
//! [`catalog`] against every composite node of the workspace.
//!
//! Protocol-specific concerns (how to build a node, how to corrupt its
//! state, how to forge a Byzantine payload, what "converged" means) live
//! behind the [`ScenarioTarget`] trait, implemented by `ReconfigNode`,
//! `CounterNode`, `SmrNode` and `SharedMemNode` in their own crates.
//!
//! Determinism is a hard requirement: every fault action happens at a round
//! boundary and draws randomness from a dedicated adversary stream derived
//! from the run's seed, so the same scenario + seed produces byte-identical
//! executions in both [`crate::SchedulerMode`]s — the PR-1
//! scheduler-equivalence guarantee extended to the whole fault layer.
//!
//! ```
//! use simnet::scenario::{LinkProfile, Scenario};
//! use simnet::{ProcessId, Round};
//!
//! let s = Scenario::new("partition-heal", 6)
//!     .describe("split the cluster in half, heal after 20 rounds")
//!     .split_halves_at(Round::new(8))
//!     .heal_at(Round::new(28))
//!     .with_rounds(400);
//! assert_eq!(s.name(), "partition-heal");
//! assert_eq!(s.initial_size(), 6);
//! assert!(s.last_fault_round() >= Round::new(28));
//! // The schedule is visible as typed actions, phase-ordered.
//! assert!(!s.actions_at(Round::new(8)).is_empty());
//! ```

use std::collections::{BTreeMap, BTreeSet};

use crate::channel::ChannelPolicy;
use crate::config::{SchedulerMode, SimConfig};
use crate::fault::{
    CorruptionPlan, CrashPlan, GrayFailurePlan, PayloadCorruptionPlan, RecoveryPlan, SkewPlan,
    SpikePlan, SpikeSpec,
};
use crate::history::{HistoryCfg, HistoryRecorder, OpKind, OpResponse};
use crate::linearize::{self, Spec, Verdict};
use crate::load::{LoadEngine, LoadProfile};
use crate::partition::{AsymmetricCutPlan, PartitionPlan};
use crate::plan::{ByzantinePlan, FaultAction, FaultPlan, ForgeKind, PlanCtx, RunObservations};
use crate::process::{Process, ProcessId};
use crate::rng::SimRng;
use crate::scheduler::Simulation;
use crate::time::Round;
use crate::ChurnPlan;
use crate::ScriptedFaults;

/// Base behaviour of every link in a scenario, applied outside spike
/// windows. A plain-data mirror of [`ChannelPolicy`] with scenario-friendly
/// defaults (reliable, at most one round of delay).
#[derive(Debug, Clone, PartialEq)]
pub struct LinkProfile {
    /// Per-packet loss probability.
    pub loss: f64,
    /// Per-packet duplication probability.
    pub duplication: f64,
    /// Maximum random delivery delay in rounds.
    pub max_delay: u64,
    /// Whether ready packets may be delivered out of order.
    pub reorder: bool,
    /// Bounded channel capacity in packets.
    pub capacity: usize,
}

impl Default for LinkProfile {
    fn default() -> Self {
        LinkProfile {
            loss: 0.0,
            duplication: 0.0,
            max_delay: 0,
            reorder: false,
            capacity: 16,
        }
    }
}

impl LinkProfile {
    /// The equivalent channel policy.
    pub fn to_policy(&self) -> ChannelPolicy {
        ChannelPolicy {
            capacity: self.capacity,
            loss_probability: self.loss,
            duplication_probability: self.duplication,
            max_delay_rounds: self.max_delay,
            reorder: self.reorder,
        }
    }
}

/// A named, declarative chaos scenario: an initial population plus an open
/// list of [`FaultPlan`]s scheduling faults over rounds, with a round budget
/// and a workload window.
///
/// The convenience builders ([`Scenario::crash_at`], [`Scenario::spike_at`],
/// [`Scenario::inject_at`], …) edit the scenario's plan of the matching
/// built-in type in place (adding it on first use); [`Scenario::with_plan`]
/// appends *any* [`FaultPlan`] — the uniform entry point custom fault
/// classes use.
#[derive(Debug, Clone)]
pub struct Scenario {
    name: String,
    description: String,
    n: usize,
    rounds: u64,
    workload_rounds: u64,
    link: LinkProfile,
    plans: Vec<Box<dyn FaultPlan>>,
    load: Option<LoadProfile>,
    history: Option<HistoryCfg>,
}

impl Scenario {
    /// Creates an empty scenario over an initial population of `n`
    /// processors, with a default budget of 1,000 rounds, no workload window
    /// and no fault plans.
    pub fn new(name: impl Into<String>, n: usize) -> Self {
        Scenario {
            name: name.into(),
            description: String::new(),
            n,
            rounds: 1_000,
            workload_rounds: 0,
            link: LinkProfile::default(),
            plans: Vec::new(),
            load: None,
            history: None,
        }
    }

    /// Sets the human-readable description (builder style).
    pub fn describe(mut self, description: impl Into<String>) -> Self {
        self.description = description.into();
        self
    }

    /// Sets the maximum number of rounds the runner executes (builder
    /// style). Runs stop early once the target converges.
    pub fn with_rounds(mut self, rounds: u64) -> Self {
        self.rounds = rounds;
        self
    }

    /// Drives the target's workload ([`ScenarioTarget::drive_workload`])
    /// while the current round is below `rounds` (builder style).
    pub fn with_workload_until(mut self, rounds: u64) -> Self {
        self.workload_rounds = rounds;
        self
    }

    /// Attaches an open-loop client population ([`LoadProfile`]) driven
    /// inside the workload window (builder style). When a load is attached
    /// it *replaces* [`ScenarioTarget::drive_workload`] for this scenario,
    /// and the run publishes the op-latency/goodput counters of
    /// [`crate::load::COUNTER_KEYS`].
    pub fn with_load(mut self, load: LoadProfile) -> Self {
        self.load = Some(load);
        self
    }

    /// Arms operation-history recording and temporal-liveness checking with
    /// the default [`HistoryCfg`] (builder style). An armed run records
    /// every client op the load engine drives, checks the history against
    /// the target's sequential spec ([`ScenarioTarget::lin_spec`]), keeps
    /// probing convergence for a window after it first holds, and publishes
    /// the `converged_round` / `stability_violations` / `lin_ops_checked` /
    /// `lin_result` counters. Unarmed runs are untouched byte-for-byte.
    pub fn with_history(self) -> Self {
        self.with_history_cfg(HistoryCfg::default())
    }

    /// Arms history recording with an explicit [`HistoryCfg`] (builder
    /// style); see [`Scenario::with_history`].
    pub fn with_history_cfg(mut self, cfg: HistoryCfg) -> Self {
        self.history = Some(cfg);
        self
    }

    /// Sets the base link behaviour (builder style).
    pub fn with_link(mut self, link: LinkProfile) -> Self {
        self.link = link;
        self
    }

    /// Appends a fault plan (builder style): the uniform entry point of the
    /// open fault API. Composition order never changes *what* happens in a
    /// round — actions are applied in class-phase order
    /// ([`FaultAction::phase`]) — only the order of same-phase actions.
    pub fn with_plan(mut self, plan: impl FaultPlan + 'static) -> Self {
        self.plans.push(Box::new(plan));
        self
    }

    /// Appends an already-boxed fault plan (builder style).
    pub fn with_boxed_plan(mut self, plan: Box<dyn FaultPlan>) -> Self {
        self.plans.push(plan);
        self
    }

    /// Edits the scenario's plan of type `P` in place, adding a default one
    /// on first use — the engine behind the per-class convenience builders.
    pub fn edit_plan<P: FaultPlan + Default + 'static>(
        mut self,
        edit: impl FnOnce(P) -> P,
    ) -> Self {
        for plan in &mut self.plans {
            if let Some(p) = plan.as_any_mut().downcast_mut::<P>() {
                *p = edit(std::mem::take(p));
                return self;
            }
        }
        self.plans.push(Box::new(edit(P::default())));
        self
    }

    /// Schedules `victims` to crash at `round` (builder style).
    pub fn crash_at(self, round: Round, victims: impl IntoIterator<Item = ProcessId>) -> Self {
        self.edit_plan(|p: CrashPlan| p.crash_all_at(round, victims))
    }

    /// Schedules `count` fresh joiners at `round` (builder style).
    pub fn join_at(self, round: Round, count: u32) -> Self {
        self.edit_plan(|p: ChurnPlan| p.join_at(round, count))
    }

    /// Schedules a partition into `groups` at `round` (builder style).
    pub fn split_at(self, round: Round, groups: Vec<Vec<ProcessId>>) -> Self {
        self.edit_plan(|p: PartitionPlan| p.split_at(round, groups))
    }

    /// Schedules a split of the initial population into two halves at
    /// `round` (builder style).
    pub fn split_halves_at(self, round: Round) -> Self {
        let n = self.n;
        let mid = n / 2;
        let lower: Vec<ProcessId> = (0..mid as u32).map(ProcessId::new).collect();
        let upper: Vec<ProcessId> = (mid as u32..n as u32).map(ProcessId::new).collect();
        self.split_at(round, vec![lower, upper])
    }

    /// Schedules a full heal at `round` (builder style).
    pub fn heal_at(self, round: Round) -> Self {
        self.edit_plan(|p: PartitionPlan| p.heal_at(round))
    }

    /// Schedules a one-directional cut at `round`: links from members of
    /// `from` towards members of `to` fail while the reverse direction
    /// keeps delivering (builder style).
    pub fn cut_oneway_at(self, round: Round, from: Vec<ProcessId>, to: Vec<ProcessId>) -> Self {
        self.edit_plan(|p: AsymmetricCutPlan| p.cut_at(round, from, to))
    }

    /// Schedules a one-way cut of the initial population's halves at
    /// `round`: the lower half stops hearing the upper half, while the
    /// upper half still hears everything (builder style).
    pub fn cut_oneway_halves_at(self, round: Round) -> Self {
        let n = self.n;
        let mid = n / 2;
        let lower: Vec<ProcessId> = (0..mid as u32).map(ProcessId::new).collect();
        let upper: Vec<ProcessId> = (mid as u32..n as u32).map(ProcessId::new).collect();
        self.cut_oneway_at(round, upper, lower)
    }

    /// Schedules a heal of every one-directional cut at `round` (builder
    /// style). Symmetric splits are unaffected.
    pub fn heal_oneway_at(self, round: Round) -> Self {
        self.edit_plan(|p: AsymmetricCutPlan| p.heal_at(round))
    }

    /// Schedules a gray failure: `victims` run at timer period `period`
    /// from `round` for `duration` rounds, then recover (builder style).
    pub fn slow_at(
        self,
        round: Round,
        duration: u64,
        period: u64,
        victims: impl IntoIterator<Item = ProcessId>,
    ) -> Self {
        self.edit_plan(|p: GrayFailurePlan| p.slow_at(round, duration, period, victims))
    }

    /// Schedules permanent clock skew: `victims` run at timer period
    /// `period` from `round` on, forever (builder style).
    pub fn skew_at(
        self,
        round: Round,
        period: u64,
        victims: impl IntoIterator<Item = ProcessId>,
    ) -> Self {
        self.edit_plan(|p: SkewPlan| p.skew_at(round, period, victims))
    }

    /// Schedules in-flight payload corruption of every packet travelling
    /// towards `victims` at `round` (builder style).
    pub fn corrupt_payloads_at(
        self,
        round: Round,
        victims: impl IntoIterator<Item = ProcessId>,
    ) -> Self {
        self.edit_plan(|p: PayloadCorruptionPlan| p.corrupt_inbound_at(round, victims))
    }

    /// Schedules `victims` to crash at `round` and rejoin under fresh
    /// identifiers `downtime` rounds later (builder style).
    pub fn crash_recover_at(
        self,
        round: Round,
        victims: impl IntoIterator<Item = ProcessId>,
        downtime: u64,
    ) -> Self {
        self.edit_plan(|p: RecoveryPlan| p.crash_recover_at(round, victims, downtime))
    }

    /// Schedules transient state corruption of `victims` at `round`
    /// (builder style).
    pub fn corrupt_at(self, round: Round, victims: impl IntoIterator<Item = ProcessId>) -> Self {
        self.edit_plan(|p: CorruptionPlan| p.corrupt_at(round, victims))
    }

    /// Schedules a message drop/duplication/delay spike starting at `round`
    /// for `duration` rounds (builder style).
    pub fn spike_at(self, round: Round, duration: u64, spec: SpikeSpec) -> Self {
        self.edit_plan(|p: SpikePlan| p.spike_at(round, duration, spec))
    }

    /// Schedules one crafted (Byzantine) packet per target at `round`, each
    /// claiming to come from `claimed_sender` (builder style). See
    /// [`ByzantinePlan`].
    pub fn inject_at(
        self,
        round: Round,
        forge: ForgeKind,
        claimed_sender: ProcessId,
        targets: impl IntoIterator<Item = ProcessId>,
    ) -> Self {
        self.edit_plan(|p: ByzantinePlan| p.inject_at(round, forge, claimed_sender, targets))
    }

    /// The scenario's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The scenario's description.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// The size of the initial population.
    pub fn initial_size(&self) -> usize {
        self.n
    }

    /// The round budget.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The workload window: workload is driven while `now < workload_rounds`.
    pub fn workload_rounds(&self) -> u64 {
        self.workload_rounds
    }

    /// The attached client population, if any.
    pub fn load(&self) -> Option<&LoadProfile> {
        self.load.as_ref()
    }

    /// The armed history configuration, if any.
    pub fn history(&self) -> Option<&HistoryCfg> {
        self.history.as_ref()
    }

    /// The base link behaviour.
    pub fn link(&self) -> &LinkProfile {
        &self.link
    }

    /// The scenario's fault plans, in composition order.
    pub fn plans(&self) -> &[Box<dyn FaultPlan>] {
        &self.plans
    }

    /// Downcast access to the scenario's plan of type `P`, if one was
    /// composed.
    pub fn plan<P: FaultPlan + 'static>(&self) -> Option<&P> {
        self.plans
            .iter()
            .find_map(|plan| plan.as_any().downcast_ref::<P>())
    }

    /// The context plans schedule against.
    pub fn plan_ctx(&self) -> PlanCtx {
        PlanCtx {
            base_policy: self.link.to_policy(),
            initial_size: self.n,
        }
    }

    /// Every fault action due at `round`, sorted (stably) into class-phase
    /// order — exactly what the runner applies. Composition order of plans
    /// therefore never changes the per-round action *set*, only the order
    /// of same-phase actions.
    pub fn actions_at(&self, round: Round) -> Vec<FaultAction> {
        let ctx = self.plan_ctx();
        let mut actions: Vec<FaultAction> = self
            .plans
            .iter()
            .flat_map(|p| p.schedule(round, &ctx))
            .collect();
        actions.sort_by_key(FaultAction::phase);
        actions
    }

    /// Whether every scheduled fault action has a live adapter, i.e.
    /// whether `simctl drive` can replay this scenario against a real
    /// cluster. Live-adaptable classes: `Crash` (`kill -9`), `Join` and
    /// `Rejoin` (fresh-id process spawns), `SetTimer`/`SetTimerFloor`
    /// (control-plane timer retuning). Partitions, channel policies,
    /// state/payload corruption and Byzantine injection act on the
    /// simulator's modelled network or address space and stay
    /// simulator-only.
    pub fn live_capable(&self) -> bool {
        (0..=self.last_fault_round().as_u64()).all(|round| {
            self.actions_at(Round::new(round)).iter().all(|action| {
                matches!(
                    action,
                    FaultAction::Crash(_)
                        | FaultAction::Join { .. }
                        | FaultAction::Rejoin { .. }
                        | FaultAction::SetTimer { .. }
                        | FaultAction::SetTimerFloor { .. }
                )
            })
        })
    }

    /// The last round at which this scenario injects any fault (convergence
    /// is only counted after this round). Clock skew is the exception: it
    /// never ends, so convergence is counted *with* the skew in force.
    pub fn last_fault_round(&self) -> Round {
        self.plans
            .iter()
            .filter_map(|p| p.last_round())
            .max()
            .unwrap_or(Round::ZERO)
    }

    /// The simulation configuration for one run of this scenario.
    pub fn sim_config(&self, seed: u64, mode: SchedulerMode) -> SimConfig {
        let link = &self.link;
        SimConfig::default()
            .with_seed(seed)
            .with_scheduler(mode)
            .with_loss_probability(link.loss)
            .with_duplication_probability(link.duplication)
            .with_max_delay(link.max_delay)
            .with_reordering(link.reorder)
            .with_channel_capacity(link.capacity)
    }

    /// Builds a fresh simulation of this scenario's initial population.
    pub fn build_sim<T: ScenarioTarget>(&self, seed: u64, mode: SchedulerMode) -> Simulation<T> {
        let mut sim = Simulation::new(self.sim_config(seed, mode));
        for i in 0..self.n as u32 {
            let id = ProcessId::new(i);
            sim.add_process_with_id(id, T::spawn_initial(id, self.n));
        }
        sim
    }
}

/// The per-protocol adapter of the chaos engine: everything the scenario
/// runner needs to know about a composite node that the node's own crate
/// must decide — construction, transient corruption, Byzantine payload
/// forging, workload, convergence and safety invariants.
///
/// Implemented by `ReconfigNode` (`core`), `CounterNode` (`counters`),
/// `SmrNode` (`vssmr`) and `SharedMemNode` (`sharedmem`).
///
/// Targets must be `Send`: the parallel campaign driver
/// ([`crate::Campaign::with_jobs`]) executes each (scenario, seed) cell on
/// a worker thread of the [`crate::exec`] pool, building the
/// `Simulation<Self>` inside the worker and shipping the finished
/// [`crate::RunRecord`] back. A cell never *shares* protocol state across
/// threads — each worker owns its simulation outright — so the bound only
/// rules out thread-bound handles (`Rc`, `RefCell` captured by the node).
/// Shared-value interning (see `reconfig::shared_set`) is per-thread and
/// `Arc`-based, so interned state satisfies the bound and cells on
/// different workers intern independently without changing observable
/// behaviour (equality falls back to value comparison).
pub trait ScenarioTarget: Process + Sized + Send {
    /// Short machine-readable name used in reports and `simctl --node`.
    const NAME: &'static str;

    /// Builds member `id` of an initial population of `n` processors.
    fn spawn_initial(id: ProcessId, n: usize) -> Self;

    /// Builds a processor joining a running system whose initial population
    /// had `n` processors.
    fn spawn_joiner(id: ProcessId, n: usize) -> Self;

    /// Applies one transient fault to the local state — the paper's
    /// signature fault class. Implementations must only produce states the
    /// protocol provably recovers from agreement-wise (self-stabilization
    /// quantifies over arbitrary states, but a campaign needs its
    /// convergence predicate to become true again in bounded time).
    fn corrupt(&mut self, rng: &mut SimRng);

    /// Mutates one in-flight packet payload — the paper's channel-content
    /// corruption, driven by [`crate::fault::PayloadCorruptionPlan`].
    /// Returns `true` when the payload was changed. The default leaves the
    /// payload alone: the plan's sender-misattribution shuffle (packets
    /// towards a victim trade payloads across its inbound channels) is
    /// already a genuine corruption, and protocols add their own bit-level
    /// mutations on top (e.g. degrading a rich message to a bare heartbeat,
    /// as a checksum failure would).
    fn corrupt_payload(msg: &mut Self::Msg, rng: &mut SimRng) -> bool {
        let _ = (msg, rng);
        false
    }

    /// Forges one crafted packet for the declarative Byzantine adversary
    /// ([`ByzantinePlan`]): a payload of the requested [`ForgeKind`] that
    /// will be injected into the channel `claimed_sender → target` through
    /// [`crate::Network::inject`]. Return `None` when no such payload is
    /// craftable in the current state — the injection is skipped (and not
    /// counted). [`ForgeKind::Replay`] never reaches this hook; the runner
    /// replays in-flight packets protocol-agnostically.
    ///
    /// Implementations must forge payloads the protocol provably *refuses
    /// to adopt into honest state* (stale views, equivocating labels) or
    /// washes out through stabilization — the campaign's convergence
    /// predicate and invariants run with the injections in force.
    fn forge_payload(
        forge: ForgeKind,
        claimed_sender: ProcessId,
        target: ProcessId,
        sim: &Simulation<Self>,
        rng: &mut SimRng,
    ) -> Option<Self::Msg> {
        let _ = (forge, claimed_sender, target, sim, rng);
        None
    }

    /// Injects one round of application workload (submit writes, request
    /// increments, …). Driven while the scenario's workload window is open.
    /// The default does nothing.
    fn drive_workload(sim: &mut Simulation<Self>, round: Round, rng: &mut SimRng) {
        let _ = (sim, round, rng);
    }

    /// Accepts one open-loop client operation at processor `via`: `key` is
    /// the logical client (targets map it onto their own keyspace), `value`
    /// is a run-unique payload. Returns `true` when the operation was
    /// accepted — the load engine ([`crate::load`]) then expects it to be
    /// claimable through [`ScenarioTarget::complete_op`] eventually, and
    /// counts it as rejected otherwise. The default rejects everything:
    /// targets opt into client load explicitly.
    fn submit_op(sim: &mut Simulation<Self>, via: ProcessId, key: u64, value: u64) -> bool {
        let _ = (sim, via, key, value);
        false
    }

    /// Claims the oldest unclaimed completed operation at `via`:
    /// `Some(true)` for a success, `Some(false)` for a protocol-level
    /// failure (abort), `None` when nothing has completed since the last
    /// claim. Called repeatedly after each round, at most once per
    /// operation the engine still has outstanding at `via` — a target whose
    /// completion signal is a standing condition (rather than a drained
    /// queue) can simply report the condition. The default claims nothing.
    fn complete_op(sim: &mut Simulation<Self>, via: ProcessId) -> Option<bool> {
        let _ = (sim, via);
        None
    }

    /// Declares what the operation [`ScenarioTarget::submit_op`] would run
    /// for `(key, value)` does, for history recording: the logical object it
    /// targets and its [`OpKind`]. `None` (the default) means the op is not
    /// recordable — armed runs then record nothing for it. Only consulted
    /// when a history is armed.
    fn op_spec(key: u64, value: u64) -> Option<(u64, OpKind)> {
        let _ = (key, value);
        None
    }

    /// Armed-run variant of [`ScenarioTarget::complete_op`]: claims the
    /// oldest unclaimed completion at `via` *with* its observed value, so
    /// the history records what reads and increments returned. The default
    /// delegates to `complete_op` and observes nothing — correct for targets
    /// without a sequential spec. Targets implementing
    /// [`ScenarioTarget::lin_spec`] must override this to surface observed
    /// values, and must claim exactly the completions `complete_op` would.
    fn claim_op(sim: &mut Simulation<Self>, via: ProcessId) -> Option<OpResponse> {
        Self::complete_op(sim, via).map(|ok| OpResponse {
            ok,
            observed: None,
            indeterminate: false,
        })
    }

    /// The sequential specification armed histories are checked against,
    /// when this target has one. `None` (the default) skips linearizability
    /// checking — armed runs still record histories and enforce the
    /// stays-converged probe.
    fn lin_spec() -> Option<Spec> {
        None
    }

    /// Armed-run variant of [`ScenarioTarget::corrupt`]: applies the same
    /// transient fault *and* reports its client-visible effects as
    /// `(object, value)` pairs, which the runner records as adversary
    /// writes (see [`crate::history::HistoryRecorder::adversary_write`]) so
    /// reads observing a corrupted value linearize against it instead of
    /// tripping a false violation. Implementations must consume exactly the
    /// adversary randomness `corrupt` consumes (byte-determinism couples
    /// armed and unarmed corruption streams only through the rng). The
    /// default delegates to `corrupt` and reports no effects — correct for
    /// targets whose corruption is never client-visible.
    fn corrupt_observed(&mut self, rng: &mut SimRng) -> Vec<(u64, u64)> {
        self.corrupt(rng);
        Vec::new()
    }

    /// Node-local variant of [`ScenarioTarget::submit_op`] for execution
    /// backends that have no [`Simulation`] — the live runtime submits
    /// client operations over a process's control socket and lands here.
    /// Semantics must match `submit_op` called at a live processor.
    /// The default rejects everything, mirroring `submit_op`'s default.
    fn submit_local(&mut self, key: u64, value: u64) -> bool {
        let _ = (key, value);
        false
    }

    /// Node-local variant of [`ScenarioTarget::complete_op`]: claims the
    /// oldest unclaimed completion at this node. Same contract as
    /// `complete_op`, without the simulation handle.
    fn complete_local(&mut self) -> Option<bool> {
        None
    }

    /// This node's *local* claim that it has converged (the node-local
    /// conjunct of [`ScenarioTarget::converged`]). The live driver declares
    /// a cluster converged when every live node is settled **and** all
    /// [`ScenarioTarget::settle_token`]s agree — the same shape as the
    /// simulator's global predicate, assembled from per-process answers.
    /// The default never settles: backends refuse to declare convergence
    /// for targets that do not implement the hook.
    fn settled(&self) -> bool {
        false
    }

    /// A canonical description of the agreement-relevant part of this
    /// node's state (installed configuration, view, register contents …):
    /// newline-separated `key=value` components. The live driver declares
    /// agreement when, for every `key`, all nodes reporting that key report
    /// the same value — so a node reports only the components it has a
    /// stake in (a non-member reports the configuration it follows but no
    /// view/state component), mirroring the pairwise checks of
    /// [`ScenarioTarget::converged`]. An empty token abstains from every
    /// component. Values must be deterministic and platform-independent,
    /// and must not contain newlines.
    fn settle_token(&self) -> String {
        String::new()
    }

    /// Returns `true` once the system has (re-)converged: the scenario's
    /// liveness criterion.
    fn converged(sim: &Simulation<Self>) -> bool;

    /// Safety-invariant violations observable in the current global state;
    /// checked at the end of a run (after convergence, or after the round
    /// budget is exhausted).
    fn invariant_violations(sim: &Simulation<Self>) -> Vec<String>;

    /// One canonical line describing `process`'s state, used to build the
    /// global state digest. Must be deterministic and platform-independent,
    /// and must change whenever digest-relevant state changes.
    fn state_line(id: ProcessId, process: &Self) -> String;

    /// A canonical digest of the global protocol state, used to assert that
    /// both scheduler modes produced the same execution: the FNV-1a fold of
    /// [`ScenarioTarget::state_line`] over every processor in ascending
    /// identifier order (crashed ones included), exactly as
    /// [`crate::report::digest_lines`] computes it. The provided
    /// implementation goes through [`Simulation::state_digest_with`], which
    /// re-formats only the lines of processors that stepped since the last
    /// digest — same value, a fraction of the cost on mostly-quiet systems.
    fn state_digest(sim: &Simulation<Self>) -> u64 {
        sim.state_digest_with(Self::state_line)
    }
}

/// What happened during one scenario run.
///
/// Fault counts live in an extensible per-plan counter map ([`Self::counters`],
/// keys registered by [`FaultPlan::counter_keys`]) instead of fixed fields,
/// so new fault classes extend the report without touching this type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioRun {
    /// Rounds actually executed (≤ the scenario budget).
    pub rounds_run: u64,
    /// Whether the target's convergence predicate held at the end.
    pub converged: bool,
    /// The first round (after the last fault and the workload window) at
    /// which the target reported convergence.
    pub rounds_to_convergence: Option<u64>,
    /// Fault counters keyed by the plans' registered counter keys
    /// (`crashes`, `joins`, `corruptions`, `injections`, …). Keys registered
    /// by the scenario's plans are always present, zero included, so the
    /// report shape depends on the scenario, not on what fired.
    pub counters: BTreeMap<String, u64>,
    /// Invariant violations observed at the end of the run.
    pub invariant_violations: Vec<String>,
    /// The target's state digest at the end of the run.
    pub state_digest: u64,
}

impl ScenarioRun {
    /// The value of one fault counter (0 when the key is absent).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }
}

/// Runs `scenario` on `sim` to completion (convergence or round budget).
///
/// All fault actions are applied at round boundaries in class-phase order —
/// connectivity, one-way cuts, spikes, timer faults, crashes, churn, state
/// corruption, payload corruption, injection — followed by scripted extras
/// and workload, so executions are byte-identical across scheduler modes
/// for the same seed.
pub fn run_scenario<T: ScenarioTarget>(
    scenario: &Scenario,
    sim: &mut Simulation<T>,
) -> ScenarioRun {
    let mut extras = ScriptedFaults::new();
    run_scenario_with_extras(scenario, sim, &mut extras)
}

/// Like [`run_scenario`], additionally applying a [`ScriptedFaults`] script
/// each round: the protocol-typed escape hatch for white-box adversarial
/// actions (arbitrary closures over the whole simulation) that no
/// protocol-agnostic [`FaultPlan`] can express. Declarative crafted-message
/// injection belongs in a [`ByzantinePlan`] instead.
pub fn run_scenario_with_extras<T: ScenarioTarget>(
    scenario: &Scenario,
    sim: &mut Simulation<T>,
    extras: &mut ScriptedFaults<T>,
) -> ScenarioRun {
    // The adversary's random stream is derived from the simulation seed but
    // independent of the scheduler's draws, so fault actions cannot perturb
    // (or be perturbed by) delivery randomness.
    let mut adversary_rng = SimRng::seed_from(sim.config().seed() ^ 0xc4a0_5eed_c4a0_5eed);
    // The client-population engine draws from its own independent stream
    // (see `crate::load`), so attaching a load perturbs neither delivery
    // nor fault randomness.
    let mut load = scenario
        .load
        .as_ref()
        .map(|profile| LoadEngine::new(profile.clone(), sim.config().seed()));
    // Armed runs record every client op; unarmed runs never construct a
    // recorder and follow today's exact code paths.
    let mut recorder = scenario.history.as_ref().map(|_| HistoryRecorder::new());
    let base_policy = scenario.link.to_policy();
    let quiet_after = scenario
        .last_fault_round()
        .max(extras.last_round().unwrap_or(Round::ZERO));
    let n = scenario.n;

    // The extensible counter map: every key the scenario's plans register is
    // present from the start, zero included.
    let mut counters: BTreeMap<String, u64> = scenario
        .plans
        .iter()
        .flat_map(|p| p.counter_keys())
        .map(|k| (k.to_string(), 0))
        .collect();
    let mut rounds_to_convergence = None;
    // Stays-converged probe state (armed runs only): the round the probe
    // window ends, whether the last probe saw convergence, and the
    // converged → unconverged transitions observed inside the window.
    let mut probe_done_at: Option<u64> = None;
    let mut was_converged = false;
    let mut stability_violations: u64 = 0;
    let mut first_unstable: Option<u64> = None;
    // Mirror of every currently active split (empty = fully connected), so
    // that churned-in processors can be confined with respect to *each*
    // cut instead of silently bridging one of them with open links.
    let mut active_splits: Vec<Vec<Vec<ProcessId>>> = Vec::new();
    // Likewise for one-way cuts: the currently active directed cuts,
    // including the sides joiners were confined to.
    let mut active_oneway: Vec<crate::partition::OnewayCut> = Vec::new();
    // Permanent timer-period floors registered by `SetTimerFloor` actions:
    // a windowed `SetTimer` restore never drops a victim below its floor.
    let mut timer_floors: BTreeMap<ProcessId, u64> = BTreeMap::new();
    // Generic safety invariants checked by the runner while it applies
    // actions (the target's protocol invariants and the plans' class
    // invariants are collected at the end); see docs/FAULTS.md.
    let mut runner_violations: Vec<String> = Vec::new();
    // What the plans' end-of-run invariants get to look at.
    let mut obs = RunObservations::default();

    for _ in 0..scenario.rounds {
        let now = sim.now();
        let actions = scenario.actions_at(now);
        // Packet conservation, generalized: fault actions may only create
        // the packets they declare as injections — the in-flight delta over
        // one round's action block must equal the injected count.
        let in_flight_before = if actions.is_empty() {
            0
        } else {
            sim.network().in_flight_total()
        };
        let mut injected_this_round = 0u64;
        // Timer-step baselines for the gray-failure budget and skew
        // liveness invariants: recorded for every victim of a due timer
        // action, before the round's actions apply.
        for action in &actions {
            if let FaultAction::SetTimer { victim, .. }
            | FaultAction::SetTimerFloor { victim, .. } = action
            {
                if let Some(steps) = sim.timer_steps_of(*victim) {
                    obs.timer_steps_at.insert((now, *victim), steps);
                }
            }
        }
        let bump = |counters: &mut BTreeMap<String, u64>, key: &str, by: u64| {
            *counters.entry(key.to_string()).or_insert(0) += by;
        };

        // Timer actions compose across plans within the round: floors
        // register first, then windowed overrides apply against them.
        for action in &actions {
            if let FaultAction::SetTimerFloor { victim, period } = action {
                let floor = timer_floors.entry(*victim).or_insert(*period);
                *floor = (*floor).max(*period);
            }
        }

        let mut past_churn = false;
        for action in &actions {
            // The confinement sweep runs once per round between the churn
            // and corruption phases (below); flush it when crossing.
            if !past_churn && action.phase() > 6 {
                confine_joiners(sim, n, &mut active_splits, &mut active_oneway);
                past_churn = true;
            }
            match action {
                FaultAction::HealSplits => {
                    active_splits.clear();
                    sim.network_mut().heal_all_links();
                    // The full heal lifted every one-way cut still in
                    // force; re-assert them.
                    for (from, to) in &active_oneway {
                        sim.network_mut().cut_oneway(from, to);
                    }
                }
                FaultAction::Split(groups) => {
                    active_splits.push(groups.clone());
                    sim.network_mut().split_into(groups);
                    bump(&mut counters, "splits", 1);
                }
                FaultAction::HealOneway => {
                    // Heal the *tracked* cuts (they include confined joiners
                    // the declared plan never mentions), then re-assert the
                    // symmetric blocks the one-way heal may have lifted.
                    for (from, to) in active_oneway.drain(..) {
                        sim.network_mut().open_oneway(&from, &to);
                    }
                    for groups in &active_splits {
                        sim.network_mut().split_into(groups);
                    }
                }
                FaultAction::CutOneway { from, to } => {
                    // Invariant: the cut direction is blocked and the
                    // reverse direction is exactly as blocked as it was
                    // before this cut (a heal and a cut may share a round) —
                    // an asymmetric cut that cuts both ways is a symmetric
                    // partition.
                    let reverse_before: Vec<bool> = to
                        .iter()
                        .flat_map(|b| {
                            from.iter()
                                .map(|a| sim.network().is_blocked(*b, *a))
                                .collect::<Vec<bool>>()
                        })
                        .collect();
                    active_oneway.push((from.clone(), to.clone()));
                    sim.network_mut().cut_oneway(from, to);
                    bump(&mut counters, "oneway_cuts", 1);
                    let mut pair = 0;
                    for b in to {
                        for a in from {
                            if a != b && !sim.network().is_blocked(*a, *b) {
                                runner_violations
                                    .push(format!("asymmetric cut left the link {a} → {b} open"));
                            }
                            if sim.network().is_blocked(*b, *a) != reverse_before[pair] {
                                runner_violations.push(format!(
                                    "asymmetric cut changed the reverse link {b} → {a}"
                                ));
                            }
                            pair += 1;
                        }
                    }
                }
                FaultAction::SetPolicy(policy) => {
                    sim.network_mut().set_policy(policy.clone());
                    // A switch back to the base policy is a restore, not
                    // another spike: one window counts once.
                    if *policy != base_policy {
                        bump(&mut counters, "spikes", 1);
                    }
                }
                FaultAction::SetTimer { victim, period } => {
                    let floor = timer_floors.get(victim).copied();
                    let effective = match (*period, floor) {
                        (Some(g), Some(s)) => Some(g.max(s)),
                        (g, s) => g.or(s),
                    };
                    if effective.is_some()
                        && sim.timer_period_override(*victim).is_none()
                        && sim.is_active(*victim)
                    {
                        bump(&mut counters, "slowdowns", 1);
                    }
                    sim.set_timer_period_override(*victim, effective);
                }
                FaultAction::SetTimerFloor { victim, period } => {
                    let prior = sim.timer_period_override(*victim);
                    if prior.is_none() && sim.is_active(*victim) {
                        bump(&mut counters, "slowdowns", 1);
                    }
                    let floored = prior.map_or(*period, |p| p.max(*period));
                    sim.set_timer_period_override(*victim, Some(floored));
                }
                FaultAction::Crash(victim) => {
                    sim.crash(*victim);
                    bump(&mut counters, "crashes", 1);
                }
                FaultAction::Join { count } => {
                    for _ in 0..*count {
                        // Reserve the identifier first so the factory can
                        // embed it; joiners enter through the protocol's
                        // joining path.
                        let id = sim.fresh_id();
                        sim.add_process_with_id(id, T::spawn_joiner(id, n));
                        bump(&mut counters, "joins", 1);
                    }
                }
                FaultAction::Rejoin { count } => {
                    // Crash-recovered processors re-enter the joining path
                    // under fresh identifiers (the paper's rejoin-as-
                    // newcomer rule).
                    for _ in 0..*count {
                        let id = sim.fresh_id();
                        sim.add_process_with_id(id, T::spawn_joiner(id, n));
                        bump(&mut counters, "recoveries", 1);
                    }
                }
                FaultAction::CorruptState(victim) => {
                    // Crashed or unknown victims are skipped (a corrupted
                    // crashed node takes no steps anyway) without consuming
                    // adversary randomness.
                    if sim.is_active(*victim) {
                        if let Some(process) = sim.process_mut(*victim) {
                            match recorder.as_mut() {
                                Some(rec) => {
                                    // Armed: the same corruption, with its
                                    // client-visible effects recorded as
                                    // adversary writes.
                                    for (object, value) in
                                        process.corrupt_observed(&mut adversary_rng)
                                    {
                                        rec.adversary_write(object, value, now.as_u64());
                                    }
                                }
                                None => process.corrupt(&mut adversary_rng),
                            }
                            bump(&mut counters, "corruptions", 1);
                        }
                    }
                }
                FaultAction::CorruptPayloads(victim) => {
                    let rng = &mut adversary_rng;
                    let touched = sim
                        .network_mut()
                        .corrupt_inbound_payloads(*victim, |payloads| {
                            // Misattribute: permute the payload *values* over
                            // the packet slots (shuffling the mutable references
                            // would only reorder the temporary list and leave
                            // the channel contents untouched).
                            let mut values: Vec<T::Msg> =
                                payloads.iter().map(|p| (**p).clone()).collect();
                            rng.shuffle(&mut values);
                            for (slot, value) in payloads.iter_mut().zip(values) {
                                **slot = value;
                            }
                            for payload in payloads.iter_mut() {
                                T::corrupt_payload(payload, rng);
                            }
                        });
                    bump(&mut counters, "payload_corruptions", touched as u64);
                }
                FaultAction::Inject {
                    claimed_sender,
                    target,
                    forge,
                } => {
                    let payload: Option<T::Msg> = match forge {
                        // Replay is protocol-agnostic: an exact copy of a
                        // packet already in flight towards the target,
                        // preferring the claimed sender's channel, else the
                        // first inbound channel (ascending sender order)
                        // holding one.
                        ForgeKind::Replay => {
                            let net = sim.network();
                            net.channel(*claimed_sender, *target)
                                .and_then(|ch| ch.in_flight().next().map(|p| p.msg().clone()))
                                .or_else(|| {
                                    net.links().filter(|(_, to)| to == target).find_map(
                                        |(from, to)| {
                                            net.channel(from, to)
                                                .and_then(|ch| ch.in_flight().next())
                                                .map(|p| p.msg().clone())
                                        },
                                    )
                                })
                        }
                        _ => T::forge_payload(
                            *forge,
                            *claimed_sender,
                            *target,
                            sim,
                            &mut adversary_rng,
                        ),
                    };
                    if let Some(msg) = payload {
                        sim.network_mut().inject(*claimed_sender, *target, msg);
                        injected_this_round += 1;
                        bump(&mut counters, "injections", 1);
                    }
                }
            }
        }
        if !past_churn {
            confine_joiners(sim, n, &mut active_splits, &mut active_oneway);
        }
        // The generalized conservation check: whatever the round's actions
        // did to the network, the packet count moved by exactly the number
        // of declared injections.
        if !actions.is_empty() {
            let in_flight_after = sim.network().in_flight_total();
            if in_flight_after != in_flight_before + injected_this_round as usize {
                runner_violations.push(format!(
                    "fault actions created or destroyed packets: in-flight went \
                     {in_flight_before} → {in_flight_after} with {injected_this_round} injections"
                ));
            }
        }
        // Protocol-specific scripted extras, then application workload: the
        // open-loop client population when one is attached, else the
        // target's legacy convergence workload.
        extras.apply(sim, now);
        if now.as_u64() < scenario.workload_rounds {
            match load.as_mut() {
                Some(engine) => engine.drive(sim, recorder.as_mut()),
                None => T::drive_workload(sim, now, &mut adversary_rng),
            }
        }

        sim.step_round();

        if let Some(engine) = load.as_mut() {
            engine.poll(sim, recorder.as_mut());
        }

        if rounds_to_convergence.is_none()
            && sim.now() > quiet_after
            && sim.now().as_u64() >= scenario.workload_rounds
            && T::converged(sim)
        {
            rounds_to_convergence = Some(sim.now().as_u64());
            match scenario.history.as_ref() {
                // Unarmed: stop at first convergence, exactly as before.
                None => break,
                // Armed: keep executing through the probe window, enforcing
                // *eventually-stays-converged* (not just *eventually-
                // converges*).
                Some(cfg) => {
                    probe_done_at = Some(sim.now().as_u64() + cfg.probe_rounds);
                    was_converged = true;
                }
            }
        } else if let Some(done_at) = probe_done_at {
            let now_converged = T::converged(sim);
            if was_converged && !now_converged {
                stability_violations += 1;
                if first_unstable.is_none() {
                    first_unstable = Some(sim.now().as_u64());
                }
            }
            was_converged = now_converged;
            if sim.now().as_u64() >= done_at {
                break;
            }
        }
    }

    // Fold the load engine's op-latency/goodput columns into the counter
    // map before the plans' end-of-run invariants snapshot it.
    if let Some(engine) = load.take() {
        engine.finish(sim.now().as_u64(), &mut counters);
    }

    // Armed-run verdicts: the stays-converged probe and the linearizability
    // check flow into the counter map (and the violation list) before the
    // plans' end-of-run invariants snapshot the counters. `lin_result`
    // encodes 0 = ok, 1 = violation, 2 = budget exhausted (inconclusive,
    // not a failure); `converged_round` is 0 when the run never converged.
    if let Some(cfg) = scenario.history.as_ref() {
        let history = recorder
            .take()
            .expect("armed run always has a recorder")
            .into_history();
        counters.insert(
            "converged_round".to_string(),
            rounds_to_convergence.unwrap_or(0),
        );
        counters.insert("stability_violations".to_string(), stability_violations);
        if stability_violations > 0 {
            runner_violations.push(format!(
                "stability: converged at round {} but lost convergence {} time(s) within the \
                 {}-round probe window (first at round {})",
                rounds_to_convergence.unwrap_or(0),
                stability_violations,
                cfg.probe_rounds,
                first_unstable.unwrap_or(0),
            ));
        }
        let (lin_ops_checked, lin_result) = match T::lin_spec() {
            None => (0, 0),
            Some(spec) => match linearize::check(&history, spec, cfg.lin_budget) {
                Verdict::Ok { ops_checked } => (ops_checked, 0),
                Verdict::Violation {
                    ops_checked,
                    witness,
                } => {
                    runner_violations.push(format!("linearizability: {witness}"));
                    (ops_checked, 1)
                }
                Verdict::BudgetExceeded { ops_checked, .. } => (ops_checked, 2),
            },
        };
        counters.insert("lin_ops_checked".to_string(), lin_ops_checked);
        counters.insert("lin_result".to_string(), lin_result);
    }

    // End-of-run class invariants: the plans inspect what the runner
    // observed (timer baselines, final liveness, final counters).
    obs.end_round = sim.now();
    for id in sim.ids() {
        if let Some(steps) = sim.timer_steps_of(id) {
            obs.final_timer_steps.insert(id, steps);
        }
        if let Some(period) = sim.timer_period_override(id) {
            obs.final_timer_overrides.insert(id, period);
        }
        if sim.is_active(id) {
            obs.final_active.insert(id);
        }
    }
    obs.counters = counters.clone();
    for plan in &scenario.plans {
        runner_violations.extend(plan.invariant(&obs));
    }

    let converged = rounds_to_convergence.is_some() || T::converged(sim);
    let mut invariant_violations = T::invariant_violations(sim);
    invariant_violations.extend(runner_violations);
    ScenarioRun {
        rounds_run: sim.now().as_u64(),
        converged,
        rounds_to_convergence,
        counters,
        invariant_violations,
        state_digest: T::state_digest(sim),
    }
}

/// While partitions are active, every churned-in processor (id ≥ n — the
/// scenario author could not have named it in the declared groups) is
/// confined to one side of *each* cut, round-robin by id, and the cuts are
/// re-applied so its links to the other sides are blocked. This covers
/// joiners arriving during a split, joiners already present when a split
/// fires, and stacked splits — and the same for one-way cuts, where a joiner
/// lands on a side by identifier parity and inherits its deafness (to-side)
/// or muteness (from-side).
fn confine_joiners<T: ScenarioTarget>(
    sim: &mut Simulation<T>,
    n: usize,
    active_splits: &mut [Vec<Vec<ProcessId>>],
    active_oneway: &mut [crate::partition::OnewayCut],
) {
    for groups in active_splits.iter_mut() {
        let covered: BTreeSet<ProcessId> = groups.iter().flatten().copied().collect();
        let stray: Vec<ProcessId> = sim
            .active_ids()
            .into_iter()
            .filter(|id| id.as_u32() as usize >= n && !covered.contains(id))
            .collect();
        if !stray.is_empty() {
            for id in stray {
                let side = id.as_u32() as usize % groups.len();
                groups[side].push(id);
            }
            sim.network_mut().split_into(groups);
        }
    }
    for (from, to) in active_oneway.iter_mut() {
        let covered: BTreeSet<ProcessId> = from.iter().chain(to.iter()).copied().collect();
        let stray: Vec<ProcessId> = sim
            .active_ids()
            .into_iter()
            .filter(|id| id.as_u32() as usize >= n && !covered.contains(id))
            .collect();
        if !stray.is_empty() {
            for id in stray {
                if id.as_u32() % 2 == 0 {
                    from.push(id);
                } else {
                    to.push(id);
                }
            }
            sim.network_mut().cut_oneway(from, to);
        }
    }
}

/// The built-in scenario catalog, sized for an initial population of `n`
/// processors. These are the named scenarios `simctl run` accepts and the
/// CI chaos matrix sweeps.
///
/// | name | fault mix |
/// |------|-----------|
/// | `quiescent` | none — pure bootstrap convergence |
/// | `crash-minority` | a minority of the population crashes at once |
/// | `partition-heal` | the cluster splits in half, then heals |
/// | `churn` | joins and a crash interleaved |
/// | `packet-storm` | a loss/duplication/delay spike window |
/// | `state-blast` | transient state corruption of a minority |
/// | `partition-churn` | joins *during* a partition, heal, late crash |
/// | `chaos-mix` | everything above in one schedule |
/// | `one-way-cut` | an asymmetric cut: half the cluster goes deaf, then heals |
/// | `gray-lag` | a minority runs 6× slow for a window, then recovers |
/// | `wire-corruption` | in-flight payload corruption towards a minority, thrice |
/// | `clock-skew` | a minority runs 3× slow forever — convergence under skew |
/// | `crash-recovery` | a minority crashes and rejoins under fresh identifiers |
/// | `byzantine-storm` | crafted packets: forged-sender, replay and stale-state injections towards a minority |
pub fn catalog(n: usize) -> Vec<Scenario> {
    let n_u32 = n as u32;
    let minority: Vec<ProcessId> = {
        let k = (n.saturating_sub(1)) / 2;
        (0..k as u32)
            .map(|i| ProcessId::new(n_u32 - 1 - i))
            .collect()
    };
    let storm = SpikeSpec {
        loss: 0.25,
        duplication: 0.1,
        extra_delay: 2,
    };
    // A processor identifier that never exists at any population size the
    // campaigns run: forged-sender injections claim to come from it.
    let ghost = ProcessId::new(n_u32 + 40);
    vec![
        Scenario::new("quiescent", n)
            .describe("no faults: bootstrap from scratch and settle")
            .with_rounds(1_500)
            .with_workload_until(40),
        Scenario::new("crash-minority", n)
            .describe("a minority of the population crashes simultaneously")
            .crash_at(Round::new(30), minority.clone())
            .with_rounds(1_500)
            .with_workload_until(60),
        Scenario::new("partition-heal", n)
            .describe("the cluster splits into halves and heals 40 rounds later")
            .split_halves_at(Round::new(30))
            .heal_at(Round::new(70))
            .with_rounds(2_000)
            .with_workload_until(110),
        Scenario::new("churn", n)
            .describe("two joiners, then a crash, then one more joiner")
            .join_at(Round::new(30), 2)
            .crash_at(Round::new(45), [ProcessId::new(n_u32 - 1)])
            .join_at(Round::new(60), 1)
            .with_rounds(2_000)
            .with_workload_until(90),
        Scenario::new("packet-storm", n)
            .describe("a 30-round loss/duplication/delay spike on every link")
            .spike_at(Round::new(30), 30, storm)
            .with_rounds(2_000)
            .with_workload_until(90),
        Scenario::new("state-blast", n)
            .describe("transient state corruption of a minority, twice")
            .corrupt_at(Round::new(30), minority.clone())
            .corrupt_at(Round::new(60), vec![ProcessId::new(0)])
            .with_rounds(2_000)
            .with_workload_until(90),
        Scenario::new("partition-churn", n)
            .describe("joins during a partition, heal, then a late crash")
            .split_halves_at(Round::new(30))
            .join_at(Round::new(40), 2)
            .heal_at(Round::new(60))
            .crash_at(Round::new(80), [ProcessId::new(n_u32 - 1)])
            .with_rounds(2_500)
            .with_workload_until(110),
        Scenario::new("chaos-mix", n)
            .describe("spike + partition + crash + joins + corruption, overlapping")
            .spike_at(Round::new(20), 20, storm)
            .split_halves_at(Round::new(30))
            .join_at(Round::new(40), 1)
            .heal_at(Round::new(55))
            .crash_at(Round::new(70), [ProcessId::new(n_u32 - 1)])
            .corrupt_at(Round::new(85), vec![ProcessId::new(0)])
            .with_rounds(3_000)
            .with_workload_until(120),
        Scenario::new("one-way-cut", n)
            .describe("the lower half goes deaf to the upper half, healing 40 rounds later")
            .cut_oneway_halves_at(Round::new(30))
            .heal_oneway_at(Round::new(70))
            .with_rounds(2_500)
            .with_workload_until(110),
        Scenario::new("gray-lag", n)
            .describe("a minority runs at 6x the timer period for 40 rounds, then recovers")
            .slow_at(Round::new(30), 40, 6, minority.clone())
            .with_rounds(2_500)
            .with_workload_until(100),
        Scenario::new("wire-corruption", n)
            .describe("payloads in flight towards a minority are corrupted, three times")
            .corrupt_payloads_at(Round::new(30), minority.clone())
            .corrupt_payloads_at(Round::new(45), vec![ProcessId::new(0)])
            .corrupt_payloads_at(Round::new(60), minority.clone())
            .with_rounds(2_000)
            .with_workload_until(90),
        Scenario::new("clock-skew", n)
            .describe("a minority's clock runs 3x slow forever; the system converges anyway")
            .skew_at(Round::new(20), 3, minority.clone())
            .with_rounds(2_500)
            .with_workload_until(80),
        Scenario::new("crash-recovery", n)
            .describe("a minority crashes, then rejoins under fresh identifiers")
            .crash_recover_at(Round::new(30), minority.clone(), 30)
            .with_rounds(2_500)
            .with_workload_until(100),
        Scenario::new("byzantine-storm", n)
            .describe(
                "crafted packets: forged-sender heartbeats from a ghost, replays and \
                 stale-state payloads towards a minority",
            )
            .inject_at(
                Round::new(30),
                ForgeKind::ForgedSender,
                ghost,
                minority.clone(),
            )
            .inject_at(
                Round::new(40),
                ForgeKind::Replay,
                ProcessId::new(0),
                minority.clone(),
            )
            .inject_at(
                Round::new(50),
                ForgeKind::StaleState,
                ProcessId::new(0),
                minority.clone(),
            )
            .inject_at(
                Round::new(60),
                ForgeKind::ForgedSender,
                ghost,
                vec![ProcessId::new(0)],
            )
            .with_rounds(2_500)
            .with_workload_until(90),
    ]
}

/// Looks up a catalog scenario by name.
pub fn find(name: &str, n: usize) -> Option<Scenario> {
    catalog(n).into_iter().find(|s| s.name() == name)
}

/// Deterministically samples `k` of the given scenarios, seeded by the
/// campaign seed: a Fisher–Yates permutation of the index space (drawn from
/// [`SimRng`], the same generator every other campaign decision uses) picks
/// *which* scenarios run, and the picked ones keep their original order so
/// a sampled report remains enumeration-ordered — a strict subsequence of
/// the full matrix, diffable cell-for-cell against it. `k >= len` returns
/// the list unchanged. Same (list, k, seed) always selects the same subset,
/// so a sampled CI tier is as reproducible as an exhaustive one.
pub fn sample_scenarios(scenarios: Vec<Scenario>, k: usize, seed: u64) -> Vec<Scenario> {
    if k >= scenarios.len() {
        return scenarios;
    }
    let mut rng = SimRng::seed_from(seed);
    let mut indices: Vec<usize> = (0..scenarios.len()).collect();
    rng.shuffle(&mut indices);
    let mut keep: Vec<usize> = indices.into_iter().take(k).collect();
    keep.sort_unstable();
    scenarios
        .into_iter()
        .enumerate()
        .filter(|(i, _)| keep.binary_search(i).is_ok())
        .map(|(_, s)| s)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::MaxNode;

    fn run(scenario: &Scenario, seed: u64, mode: SchedulerMode) -> ScenarioRun {
        let mut sim = scenario.build_sim::<MaxNode>(seed, mode);
        run_scenario(scenario, &mut sim)
    }

    #[test]
    fn catalog_names_are_unique_and_findable() {
        let scenarios = catalog(5);
        assert!(scenarios.len() >= 14, "catalog shrank below 14 scenarios");
        for s in &scenarios {
            assert!(find(s.name(), 5).is_some(), "{} not findable", s.name());
            assert!(!s.description().is_empty());
        }
        let mut names: Vec<&str> = scenarios.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), scenarios.len(), "duplicate scenario names");
        assert!(find("no-such-scenario", 5).is_none());
    }

    #[test]
    fn live_capable_matches_the_adapter_inventory() {
        let live = [
            "quiescent",
            "crash-minority",
            "churn",
            "gray-lag",
            "clock-skew",
            "crash-recovery",
        ];
        let simulator_only = [
            "partition-heal",
            "packet-storm",
            "state-blast",
            "partition-churn",
            "chaos-mix",
            "one-way-cut",
            "wire-corruption",
            "byzantine-storm",
        ];
        for name in live {
            assert!(
                find(name, 5).unwrap().live_capable(),
                "{name} should be live-capable"
            );
        }
        for name in simulator_only {
            assert!(
                !find(name, 5).unwrap().live_capable(),
                "{name} should be simulator-only"
            );
        }
    }

    #[test]
    fn sample_scenarios_is_deterministic_and_order_preserving() {
        let full = catalog(5);
        let a = sample_scenarios(catalog(5), 4, 99);
        let b = sample_scenarios(catalog(5), 4, 99);
        let names = |v: &[Scenario]| v.iter().map(|s| s.name().to_string()).collect::<Vec<_>>();
        assert_eq!(
            names(&a),
            names(&b),
            "same (k, seed) must pick the same subset"
        );
        assert_eq!(a.len(), 4);
        // The picked scenarios keep their catalog order (a strict
        // subsequence of the full matrix).
        let positions: Vec<usize> = a
            .iter()
            .map(|s| full.iter().position(|f| f.name() == s.name()).unwrap())
            .collect();
        assert!(positions.windows(2).all(|w| w[0] < w[1]), "{positions:?}");
        // The seed genuinely selects: some other seed picks differently.
        assert!(
            (1..50).any(|seed| names(&sample_scenarios(catalog(5), 4, seed)) != names(&a)),
            "sampling ignored its seed"
        );
        // k >= len is the identity.
        assert_eq!(
            sample_scenarios(catalog(5), usize::MAX, 1).len(),
            full.len()
        );
        assert!(sample_scenarios(catalog(5), 0, 1).is_empty());
    }

    #[test]
    fn every_catalog_scenario_converges_for_the_toy_target() {
        for scenario in catalog(6) {
            let run = run(&scenario, 1, SchedulerMode::EventDriven);
            assert!(
                run.converged,
                "scenario {} did not converge: {run:?}",
                scenario.name()
            );
            assert!(run.invariant_violations.is_empty());
            assert!(run.rounds_to_convergence.unwrap() > scenario.last_fault_round().as_u64());
        }
    }

    #[test]
    fn scenario_runs_are_byte_identical_across_scheduler_modes() {
        for scenario in catalog(6) {
            for seed in [3u64, 17] {
                let event = run(&scenario, seed, SchedulerMode::EventDriven);
                let scan = run(&scenario, seed, SchedulerMode::RoundScan);
                assert_eq!(
                    event,
                    scan,
                    "scenario {} seed {seed} diverged across modes",
                    scenario.name()
                );
            }
        }
    }

    #[test]
    fn fault_counters_match_the_schedule() {
        let scenario = Scenario::new("counts", 5)
            .crash_at(Round::new(2), [ProcessId::new(4)])
            .join_at(Round::new(3), 2)
            .corrupt_at(Round::new(4), [ProcessId::new(0), ProcessId::new(1)])
            .with_rounds(40);
        let run = run(&scenario, 9, SchedulerMode::EventDriven);
        assert_eq!(run.counter("crashes"), 1);
        assert_eq!(run.counter("joins"), 2);
        assert_eq!(run.counter("corruptions"), 2);
        assert_eq!(run.counter("recoveries"), 0);
        assert_eq!(run.counter("slowdowns"), 0);
        assert!(run.converged);
        // Registered keys are present even at zero; unregistered keys are
        // absent entirely.
        assert!(run.counters.contains_key("crashes"));
        assert!(!run.counters.contains_key("injections"));
    }

    /// The new fault classes land and are counted: gray windows and skews
    /// as slowdowns, payload corruption per packet touched, and recovery
    /// crashes/rejoins split across `crashes` and `recoveries`.
    #[test]
    fn new_fault_counters_match_the_schedule() {
        let scenario = Scenario::new("new-counts", 6)
            .slow_at(Round::new(2), 10, 4, [ProcessId::new(1)])
            .skew_at(Round::new(3), 2, [ProcessId::new(2)])
            .corrupt_payloads_at(Round::new(4), [ProcessId::new(0)])
            .crash_recover_at(Round::new(5), [ProcessId::new(5)], 6)
            .with_rounds(80);
        let run = run(&scenario, 4, SchedulerMode::EventDriven);
        assert_eq!(run.counter("slowdowns"), 2, "{run:?}");
        assert!(run.counter("payload_corruptions") > 0, "{run:?}");
        assert_eq!(run.counter("crashes"), 1);
        assert_eq!(run.counter("recoveries"), 1);
        assert_eq!(run.counter("joins"), 0);
        assert!(run.converged, "{run:?}");
        assert!(run.invariant_violations.is_empty(), "{run:?}");
    }

    /// Byzantine injection through the runner: forged and replayed packets
    /// land (counted as injections), packet conservation accounts for them,
    /// and the max-flood target still converges.
    #[test]
    fn byzantine_injections_are_applied_and_accounted() {
        let scenario = Scenario::new("byz", 4)
            .inject_at(
                Round::new(3),
                ForgeKind::ForgedSender,
                ProcessId::new(9),
                [ProcessId::new(0), ProcessId::new(1)],
            )
            .inject_at(
                Round::new(5),
                ForgeKind::Replay,
                ProcessId::new(2),
                [ProcessId::new(0)],
            )
            .inject_at(
                Round::new(7),
                ForgeKind::StaleState,
                ProcessId::new(1),
                [ProcessId::new(2)],
            )
            .with_rounds(60);
        let run = run(&scenario, 5, SchedulerMode::EventDriven);
        assert!(run.converged, "{run:?}");
        assert!(run.invariant_violations.is_empty(), "{run:?}");
        assert!(run.counter("injections") >= 3, "{run:?}");
        // Byte-identical across modes with injections in force.
        let scan = run2(&scenario, 5, SchedulerMode::RoundScan);
        assert_eq!(run, scan);
    }

    fn run2(scenario: &Scenario, seed: u64, mode: SchedulerMode) -> ScenarioRun {
        run(scenario, seed, mode)
    }

    /// Two Byzantine plans compose like any other plans: both inject, the
    /// shared `injections` counter sums them, and no invariant misfires on
    /// the composition.
    #[test]
    fn two_byzantine_plans_compose_without_false_violations() {
        let scenario = Scenario::new("byz-pair", 4)
            .with_plan(ByzantinePlan::new().inject_at(
                Round::new(3),
                ForgeKind::ForgedSender,
                ProcessId::new(9),
                [ProcessId::new(0)],
            ))
            .with_plan(ByzantinePlan::new().inject_at(
                Round::new(5),
                ForgeKind::ForgedSender,
                ProcessId::new(9),
                [ProcessId::new(1)],
            ))
            .with_rounds(60);
        let run = run(&scenario, 7, SchedulerMode::EventDriven);
        assert!(run.converged, "{run:?}");
        assert!(run.invariant_violations.is_empty(), "{run:?}");
        assert_eq!(run.counter("injections"), 2, "{run:?}");
    }

    /// One spike window counts as one spike: the closing restore to the
    /// base policy is not re-counted.
    #[test]
    fn a_spike_window_counts_once() {
        let scenario = Scenario::new("spike-count", 4)
            .spike_at(
                Round::new(3),
                6,
                SpikeSpec {
                    loss: 0.3,
                    duplication: 0.0,
                    extra_delay: 1,
                },
            )
            .with_rounds(80);
        let run = run(&scenario, 11, SchedulerMode::EventDriven);
        assert!(run.converged, "{run:?}");
        assert_eq!(run.counter("spikes"), 1, "{run:?}");
        assert_eq!(scenario.plan::<SpikePlan>().unwrap().total(), 1);
    }

    /// A plan's composition order never changes the per-round action set:
    /// phases order the classes, and same-phase actions keep plan order.
    #[test]
    fn with_plan_composition_order_does_not_change_the_action_set() {
        let p = |i: u32| ProcessId::new(i);
        let crash = CrashPlan::new().crash_at(Round::new(4), p(1));
        let churn = ChurnPlan::new().join_at(Round::new(4), 1);
        let skew = SkewPlan::new().skew_at(Round::new(4), 3, [p(2)]);
        let forward = Scenario::new("fwd", 4)
            .with_plan(crash.clone())
            .with_plan(churn.clone())
            .with_plan(skew.clone());
        let backward = Scenario::new("bwd", 4)
            .with_plan(skew)
            .with_plan(churn)
            .with_plan(crash);
        for round in 0..8u64 {
            assert_eq!(
                forward.actions_at(Round::new(round)),
                backward.actions_at(Round::new(round)),
                "round {round}"
            );
        }
    }

    /// Crash-recovery through the runner: the victim stays dead, the
    /// replacement joins under a fresh identifier and adopts the system
    /// state.
    #[test]
    fn crash_recovery_rejoins_under_a_fresh_identifier() {
        let scenario = Scenario::new("recovery", 4)
            .crash_recover_at(Round::new(3), [ProcessId::new(3)], 5)
            .with_rounds(60);
        let mut sim = scenario.build_sim::<MaxNode>(2, SchedulerMode::EventDriven);
        let run = run_scenario(&scenario, &mut sim);
        assert!(run.converged, "{run:?}");
        assert_eq!(run.counter("recoveries"), 1);
        assert!(!sim.is_active(ProcessId::new(3)));
        assert!(sim.is_active(ProcessId::new(4)));
        // The recovered processor converged with everyone else.
        let value = sim.process(ProcessId::new(4)).unwrap().value;
        assert_eq!(value, sim.process(ProcessId::new(0)).unwrap().value);
    }

    /// A one-way cut keeps information flowing in the open direction only,
    /// and the runner's asymmetry invariant holds.
    #[test]
    fn one_way_cut_is_asymmetric_and_heals() {
        let scenario = Scenario::new("oneway", 4)
            .cut_oneway_halves_at(Round::ZERO)
            .heal_oneway_at(Round::new(12))
            .with_rounds(60);
        let mut sim = scenario.build_sim::<MaxNode>(3, SchedulerMode::EventDriven);
        let run = run_scenario(&scenario, &mut sim);
        assert!(run.converged, "{run:?}");
        assert!(run.invariant_violations.is_empty(), "{run:?}");
        assert!(run.rounds_to_convergence.unwrap() > 12);
        assert_eq!(sim.network().blocked_link_count(), 0);
    }

    /// Gray failure: the slowed process takes fewer steps during the
    /// window, recovers afterwards, and the run converges.
    #[test]
    fn gray_failure_slows_then_recovers() {
        let victim = ProcessId::new(2);
        let scenario = Scenario::new("gray", 4)
            .slow_at(Round::new(4), 20, 5, [victim])
            .with_rounds(80);
        let mut sim = scenario.build_sim::<MaxNode>(5, SchedulerMode::EventDriven);
        let run = run_scenario(&scenario, &mut sim);
        assert!(run.converged, "{run:?}");
        assert!(run.invariant_violations.is_empty(), "{run:?}");
        assert_eq!(run.counter("slowdowns"), 1);
        assert_eq!(sim.timer_period_override(victim), None, "override restored");
        let victim_steps = sim.timer_steps_of(victim).unwrap();
        let peer_steps = sim.timer_steps_of(ProcessId::new(0)).unwrap();
        assert!(victim_steps < peer_steps, "{victim_steps} vs {peer_steps}");
    }

    /// A one-way heal and a new cut scheduled for the same round leave
    /// exactly the new cut — and no spurious asymmetry violation, even
    /// when the new cut is the old one reversed.
    #[test]
    fn same_round_oneway_heal_and_cut_flip_cleanly() {
        let a = vec![ProcessId::new(0), ProcessId::new(1)];
        let b = vec![ProcessId::new(2), ProcessId::new(3)];
        let scenario = Scenario::new("flip", 4)
            .cut_oneway_at(Round::new(2), a.clone(), b.clone())
            .cut_oneway_at(Round::new(6), b, a)
            .heal_oneway_at(Round::new(6))
            .heal_oneway_at(Round::new(10))
            .with_rounds(60);
        let mut sim = scenario.build_sim::<MaxNode>(4, SchedulerMode::EventDriven);
        let run = run_scenario(&scenario, &mut sim);
        assert!(run.invariant_violations.is_empty(), "{run:?}");
        assert!(run.converged, "{run:?}");
        assert_eq!(sim.network().blocked_link_count(), 0);
    }

    /// Overlapping symmetric and one-way windows compose: neither plan's
    /// heal lifts the other plan's still-active blocks, even on shared
    /// links.
    #[test]
    fn oneway_and_symmetric_plans_compose_on_shared_links() {
        let p = |i: u32| ProcessId::new(i);
        let lower = || vec![p(0), p(1)];
        let upper = || vec![p(2), p(3)];
        let scenario = Scenario::new("compose", 4)
            .split_at(Round::new(2), vec![lower(), upper()])
            .cut_oneway_at(Round::new(4), upper(), lower())
            .heal_oneway_at(Round::new(6))
            .heal_at(Round::new(20))
            .with_rounds(60);
        let mut sim = scenario.build_sim::<MaxNode>(1, SchedulerMode::EventDriven);
        let mut extras: ScriptedFaults<MaxNode> = ScriptedFaults::new();
        // Between the one-way heal (6) and the full heal (20), the
        // symmetric split must still block both directions.
        extras.at(Round::new(10), |s: &mut Simulation<MaxNode>| {
            assert!(s.network().is_blocked(ProcessId::new(2), ProcessId::new(0)));
            assert!(s.network().is_blocked(ProcessId::new(0), ProcessId::new(2)));
        });
        let run = run_scenario_with_extras(&scenario, &mut sim, &mut extras);
        assert!(run.converged, "{run:?}");
        assert!(run.invariant_violations.is_empty(), "{run:?}");
        assert_eq!(sim.network().blocked_link_count(), 0);

        // The other direction: a symmetric full heal must not lift a
        // one-way cut still in force.
        let scenario = Scenario::new("compose-rev", 4)
            .cut_oneway_at(Round::new(2), upper(), lower())
            .split_at(Round::new(4), vec![lower(), upper()])
            .heal_at(Round::new(6))
            .heal_oneway_at(Round::new(20))
            .with_rounds(60);
        let mut sim = scenario.build_sim::<MaxNode>(1, SchedulerMode::EventDriven);
        let mut extras: ScriptedFaults<MaxNode> = ScriptedFaults::new();
        extras.at(Round::new(10), |s: &mut Simulation<MaxNode>| {
            assert!(s.network().is_blocked(ProcessId::new(2), ProcessId::new(0)));
            assert!(!s.network().is_blocked(ProcessId::new(0), ProcessId::new(2)));
        });
        let run = run_scenario_with_extras(&scenario, &mut sim, &mut extras);
        assert!(run.converged, "{run:?}");
        assert!(run.invariant_violations.is_empty(), "{run:?}");
        assert_eq!(sim.network().blocked_link_count(), 0);
    }

    /// Processors joining during an active one-way cut are confined to one
    /// side of it — they must not relay around the cut in either direction.
    #[test]
    fn joiners_during_a_oneway_cut_do_not_bridge_it() {
        let scenario = Scenario::new("oneway-bridge", 4)
            .cut_oneway_halves_at(Round::ZERO)
            .join_at(Round::new(2), 2)
            .with_rounds(15);
        let mut sim = scenario.build_sim::<MaxNode>(1, SchedulerMode::EventDriven);
        let run = run_scenario(&scenario, &mut sim);
        assert_eq!(run.counter("joins"), 2);
        assert!(!run.converged, "a bridged cut would let the halves agree");
        let net = sim.network();
        // Joiner 4 (even) lands on the muted `from` side {2,3}: it hears
        // everyone but cannot send towards the deaf lower half.
        assert!(net.is_blocked(ProcessId::new(4), ProcessId::new(0)));
        assert!(!net.is_blocked(ProcessId::new(0), ProcessId::new(4)));
        // Joiner 5 (odd) lands on the deaf `to` side {0,1}: the upper half
        // (including joiner 4) cannot reach it.
        assert!(net.is_blocked(ProcessId::new(2), ProcessId::new(5)));
        assert!(net.is_blocked(ProcessId::new(4), ProcessId::new(5)));
        assert!(!net.is_blocked(ProcessId::new(5), ProcessId::new(2)));
        // The upper half's maximum (3) never leaked into the deaf side.
        for deaf in [0u32, 1, 5] {
            assert_eq!(sim.process(ProcessId::new(deaf)).unwrap().value, 1);
        }
        for heard in [2u32, 3, 4] {
            assert_eq!(sim.process(ProcessId::new(heard)).unwrap().value, 3);
        }
    }

    /// Adjacent gray windows are one continuous slowdown: the seam neither
    /// restores the victim nor counts a second slowdown.
    #[test]
    fn adjacent_gray_windows_count_one_slowdown() {
        let victim = ProcessId::new(1);
        let scenario = Scenario::new("adjacent", 4)
            .slow_at(Round::new(2), 5, 6, [victim])
            .slow_at(Round::new(7), 5, 6, [victim])
            .with_rounds(60);
        let mut sim = scenario.build_sim::<MaxNode>(9, SchedulerMode::EventDriven);
        let run = run_scenario(&scenario, &mut sim);
        assert!(run.converged, "{run:?}");
        assert_eq!(run.counter("slowdowns"), 1, "{run:?}");
        assert_eq!(sim.timer_period_override(victim), None);
    }

    /// A permanent skew survives a gray window on the same victim: the
    /// gray restore must not wipe the skew's override, and the slower of
    /// the two wins while both are in force.
    #[test]
    fn skew_is_a_floor_under_gray_windows() {
        let victim = ProcessId::new(1);
        let scenario = Scenario::new("gray-over-skew", 4)
            .skew_at(Round::new(2), 3, [victim])
            .slow_at(Round::new(4), 8, 7, [victim])
            .with_rounds(80);
        let mut sim = scenario.build_sim::<MaxNode>(8, SchedulerMode::EventDriven);
        let mut extras: ScriptedFaults<MaxNode> = ScriptedFaults::new();
        // Probe the composed override mid-window by gossiping it: plans
        // apply before extras within a round, and with no workload the
        // probe (7 = max(skew 3, gray 7)) dominates every initial value,
        // so the converged value *is* the observed override.
        extras.at(Round::new(6), |s: &mut Simulation<MaxNode>| {
            s.process_mut(ProcessId::new(0)).unwrap().value =
                s.timer_period_override(ProcessId::new(1)).unwrap_or(0);
        });
        let run = run_scenario_with_extras(&scenario, &mut sim, &mut extras);
        assert!(run.converged, "{run:?}");
        assert!(run.invariant_violations.is_empty(), "{run:?}");
        assert_eq!(sim.process(ProcessId::new(0)).unwrap().value, 7);
        // After the gray window the skew is still in force, forever.
        assert_eq!(sim.timer_period_override(victim), Some(3));
    }

    /// Clock skew never heals: the run converges *with* the slow process
    /// still slow.
    #[test]
    fn clock_skew_converges_with_the_skew_in_force() {
        let victim = ProcessId::new(1);
        let scenario = Scenario::new("skew", 4)
            .skew_at(Round::new(2), 3, [victim])
            .with_rounds(80);
        let mut sim = scenario.build_sim::<MaxNode>(6, SchedulerMode::EventDriven);
        let run = run_scenario(&scenario, &mut sim);
        assert!(run.converged, "{run:?}");
        assert!(run.invariant_violations.is_empty(), "{run:?}");
        assert_eq!(sim.timer_period_override(victim), Some(3), "skew persists");
    }

    #[test]
    fn corruption_is_deterministic_per_seed() {
        let scenario = Scenario::new("det", 4)
            .corrupt_at(Round::new(1), [ProcessId::new(0)])
            .with_rounds(30);
        let a = run(&scenario, 5, SchedulerMode::EventDriven);
        let b = run(&scenario, 5, SchedulerMode::EventDriven);
        assert_eq!(a, b);
        let c = run(&scenario, 6, SchedulerMode::EventDriven);
        // A different seed corrupts with different values (almost surely).
        assert_ne!(a.state_digest, c.state_digest);
    }

    #[test]
    fn extras_run_alongside_the_declarative_schedule() {
        let scenario = Scenario::new("extras", 3).with_rounds(20);
        let mut sim = scenario.build_sim::<MaxNode>(1, SchedulerMode::EventDriven);
        let mut extras: ScriptedFaults<MaxNode> = ScriptedFaults::new();
        extras.at(Round::new(2), |s: &mut Simulation<MaxNode>| {
            s.process_mut(ProcessId::new(0)).unwrap().value = 999;
        });
        let run = run_scenario_with_extras(&scenario, &mut sim, &mut extras);
        assert_eq!(extras.applied(), 1);
        assert!(run.converged);
        assert_eq!(sim.process(ProcessId::new(2)).unwrap().value, 999);
    }

    /// Processors joining during an active partition are confined to one
    /// side of the cut — they must not bridge the halves with open links.
    #[test]
    fn joiners_during_a_partition_do_not_bridge_the_cut() {
        let scenario = Scenario::new("bridge", 4)
            .split_halves_at(Round::ZERO)
            .join_at(Round::new(2), 2)
            .with_rounds(15);
        let mut sim = scenario.build_sim::<MaxNode>(1, SchedulerMode::EventDriven);
        let run = run_scenario(&scenario, &mut sim);
        assert_eq!(run.counter("joins"), 2);
        assert!(!run.converged, "a bridged cut would let the halves agree");
        // Joiners 4 and 5 land on sides 4 % 2 = 0 and 5 % 2 = 1.
        let net = sim.network();
        assert!(net.is_blocked(ProcessId::new(4), ProcessId::new(2)));
        assert!(net.is_blocked(ProcessId::new(5), ProcessId::new(0)));
        assert!(net.is_blocked(ProcessId::new(4), ProcessId::new(5)));
        assert!(!net.is_blocked(ProcessId::new(4), ProcessId::new(0)));
        assert!(!net.is_blocked(ProcessId::new(5), ProcessId::new(2)));
        // The maximum of side B (value 3) never leaked into side A.
        for a in [0u32, 1, 4] {
            assert_eq!(sim.process(ProcessId::new(a)).unwrap().value, 1);
        }
        for b in [2u32, 3, 5] {
            assert_eq!(sim.process(ProcessId::new(b)).unwrap().value, 3);
        }
    }

    /// The reverse ordering: a processor that joined *before* a later
    /// split is likewise confined when the split fires — a value born on
    /// side B after the split must not reach side A through the joiner.
    #[test]
    fn pre_split_joiners_are_confined_when_the_split_fires() {
        let scenario = Scenario::new("pre-bridge", 4)
            .join_at(Round::new(2), 1)
            .split_halves_at(Round::new(6))
            .corrupt_at(Round::new(8), [ProcessId::new(3)])
            .with_rounds(20);
        let mut sim = scenario.build_sim::<MaxNode>(1, SchedulerMode::EventDriven);
        let run = run_scenario(&scenario, &mut sim);
        assert_eq!(run.counter("joins"), 1);
        assert_eq!(run.counter("corruptions"), 1);
        assert!(!run.converged, "a bridged cut would let the halves agree");
        // Joiner 4 lands on side 4 % 2 = 0: cut off from side B.
        let net = sim.network();
        assert!(net.is_blocked(ProcessId::new(4), ProcessId::new(2)));
        assert!(net.is_blocked(ProcessId::new(2), ProcessId::new(4)));
        assert!(!net.is_blocked(ProcessId::new(4), ProcessId::new(1)));
        // The corrupted maximum (≥ 100) born on side B after the split
        // stays there; side A — including the pre-split joiner — keeps the
        // pre-split maximum.
        for a in [0u32, 1, 4] {
            assert_eq!(sim.process(ProcessId::new(a)).unwrap().value, 3);
        }
        for b in [2u32, 3] {
            assert!(sim.process(ProcessId::new(b)).unwrap().value >= 100);
        }
    }

    /// Stacked splits without an intervening heal: a joiner is confined
    /// with respect to every active cut, not just the most recent one.
    #[test]
    fn joiners_are_confined_by_every_stacked_split() {
        let p = |i: u32| ProcessId::new(i);
        let scenario = Scenario::new("stacked", 4)
            .split_at(Round::new(2), vec![vec![p(0), p(1)], vec![p(2), p(3)]])
            .split_at(Round::new(4), vec![vec![p(0), p(2)], vec![p(1), p(3)]])
            .join_at(Round::new(6), 1)
            .with_rounds(20);
        let mut sim = scenario.build_sim::<MaxNode>(1, SchedulerMode::EventDriven);
        let run = run_scenario(&scenario, &mut sim);
        assert_eq!(run.counter("joins"), 1);
        // Joiner 4 lands on side 4 % 2 = 0 of *both* splits: group {0,1} of
        // the first cut and group {0,2} of the second — so the only peer it
        // may reach is p0 (the intersection).
        let net = sim.network();
        assert!(!net.is_blocked(p(4), p(0)));
        for other in [1u32, 2, 3] {
            assert!(
                net.is_blocked(p(4), p(other)),
                "joiner bridges a stacked cut to p{other}"
            );
        }
    }

    #[test]
    fn partition_delays_convergence_until_heal() {
        let scenario = Scenario::new("split", 4)
            .split_halves_at(Round::new(0))
            .heal_at(Round::new(15))
            .with_rounds(60);
        let run = run(&scenario, 2, SchedulerMode::EventDriven);
        assert!(run.converged);
        assert!(run.rounds_to_convergence.unwrap() > 15);
    }

    #[test]
    fn plan_downcast_accessor_finds_composed_plans() {
        let scenario = Scenario::new("access", 4)
            .crash_at(Round::new(2), [ProcessId::new(0)])
            .spike_at(
                Round::new(3),
                4,
                SpikeSpec {
                    loss: 0.5,
                    duplication: 0.0,
                    extra_delay: 0,
                },
            );
        assert_eq!(scenario.plans().len(), 2);
        assert_eq!(scenario.plan::<CrashPlan>().unwrap().total(), 1);
        assert_eq!(scenario.plan::<SpikePlan>().unwrap().total(), 1);
        assert!(scenario.plan::<ChurnPlan>().is_none());
    }
}

/// Property tests for the open-plan composition rule: the per-round action
/// set of a scenario is independent of the order its plans were composed in.
#[cfg(test)]
mod composition_proptests {
    use super::*;
    use proptest::prelude::*;

    /// One randomly built plan, as a factory so both orders get equal
    /// copies.
    fn build_plan(choice: u8, round: u64, victim: u32, extra: u64) -> Box<dyn FaultPlan> {
        let r = Round::new(round);
        let v = ProcessId::new(victim);
        match choice % 6 {
            0 => Box::new(CrashPlan::new().crash_at(r, v)),
            1 => Box::new(ChurnPlan::new().join_at(r, (extra % 3) as u32 + 1)),
            2 => Box::new(CorruptionPlan::new().corrupt_at(r, [v])),
            3 => Box::new(SkewPlan::new().skew_at(r, extra % 5 + 1, [v])),
            4 => Box::new(GrayFailurePlan::new().slow_at(r, extra % 8, extra % 5 + 2, [v])),
            _ => Box::new(ByzantinePlan::new().inject_at(
                r,
                ForgeKind::Replay,
                v,
                [ProcessId::new((victim + 1) % 4)],
            )),
        }
    }

    proptest! {
        /// Any composition order of arbitrary plans yields the same
        /// phase-ordered action list at every round.
        #[test]
        fn composition_order_never_changes_the_per_round_action_set(
            specs in proptest::collection::vec((0u8..6, 0u64..12, 0u32..4, 0u64..9), 1..5),
            seed in 0usize..24,
        ) {
            let forward = specs
                .iter()
                .fold(Scenario::new("fwd", 4), |s, (c, r, v, e)| {
                    s.with_boxed_plan(build_plan(*c, *r, *v, *e))
                });
            // A deterministic permutation of the same plans.
            let mut order: Vec<usize> = (0..specs.len()).collect();
            order.rotate_left(seed % specs.len().max(1));
            let shuffled = order
                .iter()
                .fold(Scenario::new("shuf", 4), |s, i| {
                    let (c, r, v, e) = specs[*i];
                    s.with_boxed_plan(build_plan(c, r, v, e))
                });
            for round in 0..16u64 {
                let mut a = forward.actions_at(Round::new(round));
                let mut b = shuffled.actions_at(Round::new(round));
                // Same multiset, phase-sorted: compare order-insensitively
                // within phases via a canonical debug rendering.
                let canon = |actions: &mut Vec<FaultAction>| {
                    let mut lines: Vec<String> =
                        actions.iter().map(|x| format!("{}:{x:?}", x.phase())).collect();
                    lines.sort();
                    lines
                };
                prop_assert_eq!(canon(&mut a), canon(&mut b), "round {}", round);
            }
        }
    }
}

//! Fault and churn injection helpers.
//!
//! Self-stabilization is about recovery from *transient faults* — an
//! arbitrary starting state — combined with ordinary crash failures and
//! churn. This module provides declarative schedules for crashes
//! ([`CrashPlan`]), joins ([`ChurnPlan`]), transient state corruption
//! ([`CorruptionPlan`]) and channel-behaviour spikes ([`SpikePlan`]).
//!
//! The plans are the building blocks of the chaos-campaign engine: a
//! [`crate::scenario::Scenario`] composes them into one declarative fault
//! schedule, and the scenario runner applies them at round boundaries.
//! They can also be driven by hand from the scheduler hook
//! ([`crate::Simulation::run_rounds_with`]), which is how the plans were
//! used before the scenario subsystem existed. *How* to corrupt a
//! processor's state is protocol-specific; a [`CorruptionPlan`] only decides
//! *who* and *when*, and delegates the mutation to a caller-supplied closure
//! (the scenario engine uses
//! [`crate::scenario::ScenarioTarget::corrupt`]).

use std::collections::{BTreeMap, BTreeSet};

use crate::channel::ChannelPolicy;
use crate::process::{Process, ProcessId};
use crate::rng::SimRng;
use crate::scheduler::Simulation;
use crate::time::Round;

/// A schedule of crash failures: which processors crash at which round.
///
/// ```
/// use simnet::{CrashPlan, ProcessId, Round};
/// let plan = CrashPlan::new()
///     .crash_at(Round::new(5), ProcessId::new(2))
///     .crash_at(Round::new(5), ProcessId::new(3));
/// assert_eq!(plan.due(Round::new(5)).len(), 2);
/// assert!(plan.due(Round::new(4)).is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CrashPlan {
    schedule: BTreeMap<Round, Vec<ProcessId>>,
}

impl CrashPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `victim` to crash at `round` (builder style).
    pub fn crash_at(mut self, round: Round, victim: ProcessId) -> Self {
        self.schedule.entry(round).or_default().push(victim);
        self
    }

    /// Schedules a group of victims at `round`.
    pub fn crash_all_at(
        mut self,
        round: Round,
        victims: impl IntoIterator<Item = ProcessId>,
    ) -> Self {
        self.schedule.entry(round).or_default().extend(victims);
        self
    }

    /// The victims scheduled for exactly `round`.
    pub fn due(&self, round: Round) -> &[ProcessId] {
        self.schedule.get(&round).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total number of scheduled crashes.
    pub fn total(&self) -> usize {
        self.schedule.values().map(Vec::len).sum()
    }

    /// The last round with a scheduled crash.
    pub fn last_round(&self) -> Option<Round> {
        self.schedule.keys().next_back().copied()
    }

    /// Applies the crashes due at `round` to the simulation.
    pub fn apply<P: Process>(&self, sim: &mut Simulation<P>, round: Round) {
        for victim in self.due(round) {
            sim.crash(*victim);
        }
    }
}

/// A schedule of joins: how many new processors join at which round.
///
/// The caller supplies a factory closure when applying the plan, because only
/// the protocol harness knows how to construct a freshly joining node.
#[derive(Debug, Clone, Default)]
pub struct ChurnPlan {
    joins: BTreeMap<Round, u32>,
}

impl ChurnPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `count` joins at `round` (builder style).
    pub fn join_at(mut self, round: Round, count: u32) -> Self {
        *self.joins.entry(round).or_insert(0) += count;
        self
    }

    /// Number of joins due at exactly `round`.
    pub fn due(&self, round: Round) -> u32 {
        self.joins.get(&round).copied().unwrap_or(0)
    }

    /// Total number of scheduled joins.
    pub fn total(&self) -> u32 {
        self.joins.values().sum()
    }

    /// The last round with a scheduled join.
    pub fn last_round(&self) -> Option<Round> {
        self.joins.keys().next_back().copied()
    }

    /// Applies the joins due at `round`, constructing each new process with
    /// `factory` (which receives the identifier the simulation assigned).
    /// Returns the identifiers of the processors that joined.
    pub fn apply<P: Process>(
        &self,
        sim: &mut Simulation<P>,
        round: Round,
        mut factory: impl FnMut(ProcessId) -> P,
    ) -> Vec<ProcessId> {
        let mut joined = Vec::new();
        for _ in 0..self.due(round) {
            // Reserve the identifier first so the factory can embed it.
            let id = sim.fresh_id();
            let process = factory(id);
            sim.add_process_with_id(id, process);
            joined.push(id);
        }
        joined
    }
}

/// A schedule of transient state corruptions: which processors have their
/// local state corrupted at which round. The plan only records *who* and
/// *when*; the protocol-specific *how* is a closure supplied on application
/// (the scenario engine passes
/// [`crate::scenario::ScenarioTarget::corrupt`]).
///
/// ```
/// use simnet::{fault::CorruptionPlan, ProcessId, Round};
/// let plan = CorruptionPlan::new()
///     .corrupt_at(Round::new(10), [ProcessId::new(0), ProcessId::new(2)]);
/// assert_eq!(plan.due(Round::new(10)).len(), 2);
/// assert_eq!(plan.total(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CorruptionPlan {
    schedule: BTreeMap<Round, Vec<ProcessId>>,
}

impl CorruptionPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules the state of `victims` to be corrupted at `round` (builder
    /// style).
    pub fn corrupt_at(
        mut self,
        round: Round,
        victims: impl IntoIterator<Item = ProcessId>,
    ) -> Self {
        self.schedule.entry(round).or_default().extend(victims);
        self
    }

    /// The victims scheduled for exactly `round`.
    pub fn due(&self, round: Round) -> &[ProcessId] {
        self.schedule.get(&round).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total number of scheduled corruptions.
    pub fn total(&self) -> usize {
        self.schedule.values().map(Vec::len).sum()
    }

    /// The last round with a scheduled corruption.
    pub fn last_round(&self) -> Option<Round> {
        self.schedule.keys().next_back().copied()
    }

    /// Applies the corruptions due at `round`, mutating each victim through
    /// `corrupt` with the adversary's random stream. Crashed or unknown
    /// victims are skipped (a corrupted crashed node takes no steps anyway).
    /// Returns the number of corruptions performed.
    pub fn apply<P: Process>(
        &self,
        sim: &mut Simulation<P>,
        round: Round,
        rng: &mut SimRng,
        mut corrupt: impl FnMut(&mut P, &mut SimRng),
    ) -> u64 {
        let mut applied = 0;
        for victim in self.due(round) {
            if !sim.is_active(*victim) {
                continue;
            }
            if let Some(process) = sim.process_mut(*victim) {
                corrupt(process, rng);
                applied += 1;
            }
        }
        applied
    }
}

/// Overrides a [`ChannelPolicy`] for the duration of a spike: the paper's
/// lossy, duplicating, delaying links turned up to adversarial levels for a
/// bounded window of rounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpikeSpec {
    /// Per-packet loss probability during the spike.
    pub loss: f64,
    /// Per-packet duplication probability during the spike.
    pub duplication: f64,
    /// Extra delivery delay added on top of the base maximum delay.
    pub extra_delay: u64,
}

impl SpikeSpec {
    /// Applies the spike on top of `base`, returning the spiked policy.
    pub fn apply_to(&self, base: &ChannelPolicy) -> ChannelPolicy {
        ChannelPolicy {
            loss_probability: self.loss.max(base.loss_probability),
            duplication_probability: self.duplication.max(base.duplication_probability),
            max_delay_rounds: base.max_delay_rounds + self.extra_delay,
            ..base.clone()
        }
    }
}

/// A schedule of channel-behaviour spikes: windows of rounds during which
/// every link loses, duplicates and delays packets more aggressively than
/// its base policy. Spikes start and end at round boundaries, so scenario
/// executions remain byte-identical across scheduler modes.
///
/// Overlapping windows compose: at any round, the network runs the base
/// policy spiked by *every* window covering that round (element-wise worst
/// case), so a short spike inside a longer one never truncates the longer
/// window on its way out.
#[derive(Debug, Clone, Default)]
pub struct SpikePlan {
    /// Half-open windows `[start, end)` with their specs.
    windows: Vec<(Round, Round, SpikeSpec)>,
    /// Every window start and end: the rounds at which the composed policy
    /// may change.
    boundaries: BTreeSet<Round>,
}

impl SpikePlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `spec` to hold from `round` for `duration` rounds (builder
    /// style). Windows may overlap; the covering specs compose.
    pub fn spike_at(mut self, round: Round, duration: u64, spec: SpikeSpec) -> Self {
        self.windows.push((round, round + duration, spec));
        self.boundaries.insert(round);
        self.boundaries.insert(round + duration);
        self
    }

    /// Total number of scheduled spike windows.
    pub fn total(&self) -> usize {
        self.windows.len()
    }

    /// The last round at which this plan changes the policy (including the
    /// final restore).
    pub fn last_round(&self) -> Option<Round> {
        self.boundaries.iter().next_back().copied()
    }

    /// The policy change due at exactly `round`, if any: `Some(policy)`
    /// means "switch the network to `policy` now". The policy is `base`
    /// spiked by the element-wise worst case of every window covering
    /// `round` (the covering specs are combined first, then applied once,
    /// so overlapping delays take the maximum rather than summing).
    pub fn due(&self, round: Round, base: &ChannelPolicy) -> Option<ChannelPolicy> {
        if !self.boundaries.contains(&round) {
            return None;
        }
        let combined = self
            .windows
            .iter()
            .filter(|(start, end, _)| *start <= round && round < *end)
            .fold(None::<SpikeSpec>, |acc, (_, _, spec)| {
                Some(match acc {
                    None => *spec,
                    Some(a) => SpikeSpec {
                        loss: a.loss.max(spec.loss),
                        duplication: a.duplication.max(spec.duplication),
                        extra_delay: a.extra_delay.max(spec.extra_delay),
                    },
                })
            });
        Some(match combined {
            None => base.clone(),
            Some(spec) => spec.apply_to(base),
        })
    }

    /// Applies the change due at `round` (if any) to the simulation's
    /// network, where `base` is the scenario's un-spiked channel policy.
    pub fn apply<P: Process>(&self, sim: &mut Simulation<P>, round: Round, base: &ChannelPolicy) {
        if let Some(policy) = self.due(round, base) {
            sim.network_mut().set_policy(policy);
        }
    }
}

/// A schedule of *gray failures*: windows of rounds during which a set of
/// processors runs slow — their timer period is multiplied far beyond the
/// common rate — without being dead. Gray failures are the asymmetric
/// middle ground crash detectors are worst at: the slow processor still
/// emits (occasional) heartbeats, still answers (late), and must neither be
/// permanently expelled nor allowed to wedge the system.
///
/// Overlapping windows compose element-wise like [`SpikePlan`] windows: at
/// any boundary round every mentioned victim is set to the *slowest* period
/// of the windows covering that round, or restored when none covers it.
/// Zero-length windows therefore never leave a stale override behind.
///
/// ```
/// use simnet::{fault::GrayFailurePlan, ProcessId, Round};
/// let plan = GrayFailurePlan::new()
///     .slow_at(Round::new(10), 20, 8, [ProcessId::new(2)]);
/// assert_eq!(plan.total(), 1);
/// assert_eq!(plan.last_round(), Some(Round::new(30)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct GrayFailurePlan {
    /// Half-open windows `[start, end)` with their victims and slow period.
    windows: Vec<(Round, Round, Vec<ProcessId>, u64)>,
    /// Every window start and end: the rounds at which overrides change.
    boundaries: BTreeSet<Round>,
}

impl GrayFailurePlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `victims` to run at timer period `period` (instead of the
    /// simulation's base period) from `round` for `duration` rounds
    /// (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn slow_at(
        mut self,
        round: Round,
        duration: u64,
        period: u64,
        victims: impl IntoIterator<Item = ProcessId>,
    ) -> Self {
        assert!(period > 0, "gray-failure timer period must be at least 1");
        self.windows.push((
            round,
            round + duration,
            victims.into_iter().collect(),
            period,
        ));
        self.boundaries.insert(round);
        self.boundaries.insert(round + duration);
        self
    }

    /// Total number of scheduled gray windows.
    pub fn total(&self) -> usize {
        self.windows.len()
    }

    /// The scheduled windows as `(start, end, victims, period)` tuples.
    pub fn windows(&self) -> &[(Round, Round, Vec<ProcessId>, u64)] {
        &self.windows
    }

    /// The last round at which this plan changes a timer period (including
    /// the final restore).
    pub fn last_round(&self) -> Option<Round> {
        self.boundaries.iter().next_back().copied()
    }

    /// The override changes due at exactly `round`: for every victim
    /// mentioned anywhere in the plan, the period it should run at from
    /// this round on (`None` = the base period). Returns `None` when
    /// `round` is not a boundary.
    pub fn due(&self, round: Round) -> Option<BTreeMap<ProcessId, Option<u64>>> {
        if !self.boundaries.contains(&round) {
            return None;
        }
        let mut desired: BTreeMap<ProcessId, Option<u64>> = self
            .windows
            .iter()
            .flat_map(|(_, _, victims, _)| victims.iter().copied())
            .map(|v| (v, None))
            .collect();
        for (start, end, victims, period) in &self.windows {
            if *start <= round && round < *end {
                for v in victims {
                    let slot = desired.entry(*v).or_insert(None);
                    *slot = Some(slot.map_or(*period, |p: u64| p.max(*period)));
                }
            }
        }
        Some(desired)
    }

    /// Applies the changes due at `round` for this plan *in isolation*,
    /// returning the number of processors that transitioned from full
    /// speed to slowed (boundary re-assertions of an already-slowed victim
    /// are not re-counted). When the same scenario also skews a victim
    /// permanently, use [`apply_timer_faults`] — it composes the two plans
    /// so a gray restore cannot wipe a [`SkewPlan`] override.
    pub fn apply<P: Process>(&self, sim: &mut Simulation<P>, round: Round) -> u64 {
        let Some(desired) = self.due(round) else {
            return 0;
        };
        let mut slowed = 0;
        for (victim, period) in desired {
            if period.is_some()
                && sim.timer_period_override(victim).is_none()
                && sim.is_active(victim)
            {
                slowed += 1;
            }
            sim.set_timer_period_override(victim, period);
        }
        slowed
    }
}

/// Applies a [`GrayFailurePlan`] and a [`SkewPlan`] for `round` under their
/// composition rule — the single implementation the scenario runner uses:
///
/// * a permanent skew is a *floor* under any gray window on the same
///   processor: a gray restore never wipes the skew (and never even pulses
///   the victim's timer by clearing and re-setting the override), while a
///   gray window slower than the skew wins for as long as it covers;
/// * slowdowns count *transitions* from full speed to slowed, so adjacent
///   or overlapping windows describing one continuous slow period are
///   counted once.
///
/// Returns the number of processors newly slowed at this round.
pub fn apply_timer_faults<P: Process>(
    gray: &GrayFailurePlan,
    skews: &SkewPlan,
    sim: &mut Simulation<P>,
    round: Round,
) -> u64 {
    let mut slowdowns = 0;
    if let Some(desired) = gray.due(round) {
        for (victim, gray_period) in desired {
            let skew_floor = skews
                .all_skews()
                .filter(|(r, v, _)| *v == victim && *r <= round)
                .map(|(_, _, p)| p)
                .max();
            let effective = match (gray_period, skew_floor) {
                (Some(g), Some(s)) => Some(g.max(s)),
                (g, s) => g.or(s),
            };
            if effective.is_some()
                && sim.timer_period_override(victim).is_none()
                && sim.is_active(victim)
            {
                slowdowns += 1;
            }
            sim.set_timer_period_override(victim, effective);
        }
    }
    for (victim, period) in skews.due(round) {
        let prior = sim.timer_period_override(*victim);
        if prior.is_none() && sim.is_active(*victim) {
            slowdowns += 1;
        }
        let floored = prior.map_or(*period, |p| p.max(*period));
        sim.set_timer_period_override(*victim, Some(floored));
    }
    slowdowns
}

/// A schedule of permanent *clock skew*: from a given round on, a set of
/// processors runs its timer at a different (slower) period than the rest
/// of the system, and never recovers. Relative timer rate is the only
/// notion of clock the asynchronous model has, so skewing one processor's
/// period models drift between local clocks; speeding a processor up is
/// expressed by slowing everyone else down.
///
/// Unlike [`GrayFailurePlan`] there is no restore: the system must reach
/// (and hold) its convergence predicate *with* the skew in force. When the
/// same processor is targeted by both plans, apply them through
/// [`apply_timer_faults`] (as the scenario runner does): the skew is a
/// floor — a gray window slower than the skew wins while it covers, and a
/// gray restore never wipes the skew.
///
/// ```
/// use simnet::{fault::SkewPlan, ProcessId, Round};
/// let plan = SkewPlan::new().skew_at(Round::new(5), 3, [ProcessId::new(0)]);
/// assert_eq!(plan.total(), 1);
/// assert_eq!(plan.last_round(), Some(Round::new(5)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SkewPlan {
    schedule: BTreeMap<Round, Vec<(ProcessId, u64)>>,
}

impl SkewPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `victims` to run at timer period `period` from `round` on,
    /// permanently (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn skew_at(
        mut self,
        round: Round,
        period: u64,
        victims: impl IntoIterator<Item = ProcessId>,
    ) -> Self {
        assert!(period > 0, "skewed timer period must be at least 1");
        self.schedule
            .entry(round)
            .or_default()
            .extend(victims.into_iter().map(|v| (v, period)));
        self
    }

    /// The skews scheduled for exactly `round`.
    pub fn due(&self, round: Round) -> &[(ProcessId, u64)] {
        self.schedule.get(&round).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total number of scheduled skews.
    pub fn total(&self) -> usize {
        self.schedule.values().map(Vec::len).sum()
    }

    /// Every `(victim, period)` pair the plan ever schedules.
    pub fn all_skews(&self) -> impl Iterator<Item = (Round, ProcessId, u64)> + '_ {
        self.schedule
            .iter()
            .flat_map(|(r, v)| v.iter().map(move |(id, p)| (*r, *id, *p)))
    }

    /// The last round with a scheduled skew.
    pub fn last_round(&self) -> Option<Round> {
        self.schedule.keys().next_back().copied()
    }

    /// Applies the skews due at `round`, returning how many took effect.
    pub fn apply<P: Process>(&self, sim: &mut Simulation<P>, round: Round) -> u64 {
        let mut applied = 0;
        for (victim, period) in self.due(round) {
            if sim.is_active(*victim) {
                applied += 1;
            }
            sim.set_timer_period_override(*victim, Some(*period));
        }
        applied
    }
}

/// A schedule of in-flight payload corruption: at given rounds, the
/// contents of every packet currently travelling towards the victims are
/// corrupted through [`crate::Channel::in_flight_mut`]. The packets
/// themselves survive — corruption never creates or destroys packets, per
/// the paper's channel model — but their payloads are shuffled across the
/// victim's inbound channels (so a packet arrives attributed to the wrong
/// sender) and then offered to a protocol-specific mutator
/// ([`crate::scenario::ScenarioTarget::corrupt_payload`]).
///
/// All mutation draws from the adversary's random stream at a round
/// boundary, so executions stay byte-identical across scheduler modes.
///
/// ```
/// use simnet::{fault::PayloadCorruptionPlan, ProcessId, Round};
/// let plan = PayloadCorruptionPlan::new()
///     .corrupt_inbound_at(Round::new(7), [ProcessId::new(1)]);
/// assert_eq!(plan.total(), 1);
/// assert_eq!(plan.last_round(), Some(Round::new(7)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct PayloadCorruptionPlan {
    schedule: BTreeMap<Round, Vec<ProcessId>>,
}

impl PayloadCorruptionPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules the packets in flight towards `victims` to be corrupted at
    /// `round` (builder style).
    pub fn corrupt_inbound_at(
        mut self,
        round: Round,
        victims: impl IntoIterator<Item = ProcessId>,
    ) -> Self {
        self.schedule.entry(round).or_default().extend(victims);
        self
    }

    /// The victims scheduled for exactly `round`.
    pub fn due(&self, round: Round) -> &[ProcessId] {
        self.schedule.get(&round).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total number of scheduled corruption events.
    pub fn total(&self) -> usize {
        self.schedule.values().map(Vec::len).sum()
    }

    /// The last round with a scheduled corruption.
    pub fn last_round(&self) -> Option<Round> {
        self.schedule.keys().next_back().copied()
    }

    /// Applies the corruptions due at `round`: for each victim, the
    /// payloads of all packets in flight towards it are permuted across its
    /// inbound channels and then individually passed to `mutate` (the
    /// protocol-specific bit-flipper; it returns `true` when it changed the
    /// payload). Returns the number of packets exposed to corruption.
    pub fn apply<P: Process>(
        &self,
        sim: &mut Simulation<P>,
        round: Round,
        rng: &mut SimRng,
        mut mutate: impl FnMut(&mut P::Msg, &mut SimRng) -> bool,
    ) -> u64 {
        let mut corrupted = 0;
        for victim in self.due(round) {
            corrupted += sim
                .network_mut()
                .corrupt_inbound_payloads(*victim, |payloads| {
                    // Misattribute: permute the payload *values* over the
                    // packet slots (shuffling the mutable references would
                    // only reorder the temporary list and leave the channel
                    // contents untouched).
                    let mut values: Vec<P::Msg> = payloads.iter().map(|p| (**p).clone()).collect();
                    rng.shuffle(&mut values);
                    for (slot, value) in payloads.iter_mut().zip(values) {
                        **slot = value;
                    }
                    for payload in payloads.iter_mut() {
                        mutate(payload, rng);
                    }
                }) as u64;
        }
        corrupted
    }
}

/// A schedule of crash–recovery events: processors crash and later rejoin
/// the system *under fresh identifiers*, exactly as the paper prescribes
/// (identifiers are never reused; a recovering processor re-enters through
/// the joining mechanism like any newcomer, forcing labeler rebuilds and
/// configuration replacement instead of silent state resurrection).
///
/// ```
/// use simnet::{fault::RecoveryPlan, ProcessId, Round};
/// let plan = RecoveryPlan::new()
///     .crash_recover_at(Round::new(10), [ProcessId::new(3)], 15);
/// assert_eq!(plan.total(), 1);
/// assert_eq!(plan.crashes_due(Round::new(10)).len(), 1);
/// assert_eq!(plan.rejoins_due(Round::new(25)), 1);
/// assert_eq!(plan.last_round(), Some(Round::new(25)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct RecoveryPlan {
    crashes: BTreeMap<Round, Vec<ProcessId>>,
    rejoins: BTreeMap<Round, u32>,
}

impl RecoveryPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `victims` to crash at `round` and to rejoin — one fresh
    /// identifier per victim — `downtime` rounds later (builder style).
    pub fn crash_recover_at(
        mut self,
        round: Round,
        victims: impl IntoIterator<Item = ProcessId>,
        downtime: u64,
    ) -> Self {
        let victims: Vec<ProcessId> = victims.into_iter().collect();
        *self.rejoins.entry(round + downtime).or_insert(0) += victims.len() as u32;
        self.crashes.entry(round).or_default().extend(victims);
        self
    }

    /// The crash victims scheduled for exactly `round`.
    pub fn crashes_due(&self, round: Round) -> &[ProcessId] {
        self.crashes.get(&round).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of fresh-identifier rejoins due at exactly `round`.
    pub fn rejoins_due(&self, round: Round) -> u32 {
        self.rejoins.get(&round).copied().unwrap_or(0)
    }

    /// Total number of scheduled crash–recovery events (victims).
    pub fn total(&self) -> usize {
        self.crashes.values().map(Vec::len).sum()
    }

    /// Every processor the plan ever crashes.
    pub fn all_victims(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.crashes.values().flatten().copied()
    }

    /// The last round with a scheduled crash or rejoin.
    pub fn last_round(&self) -> Option<Round> {
        let last_crash = self.crashes.keys().next_back().copied();
        let last_rejoin = self.rejoins.keys().next_back().copied();
        last_crash.max(last_rejoin)
    }

    /// Applies the crashes due at `round`.
    pub fn apply_crashes<P: Process>(&self, sim: &mut Simulation<P>, round: Round) -> u64 {
        let victims = self.crashes_due(round);
        for victim in victims {
            sim.crash(*victim);
        }
        victims.len() as u64
    }

    /// Applies the rejoins due at `round`, constructing each recovering
    /// processor with `factory` under the fresh identifier the simulation
    /// assigned. Returns the identifiers of the recovered processors.
    pub fn apply_rejoins<P: Process>(
        &self,
        sim: &mut Simulation<P>,
        round: Round,
        mut factory: impl FnMut(ProcessId) -> P,
    ) -> Vec<ProcessId> {
        let mut recovered = Vec::new();
        for _ in 0..self.rejoins_due(round) {
            let id = sim.fresh_id();
            let process = factory(id);
            sim.add_process_with_id(id, process);
            recovered.push(id);
        }
        recovered
    }
}

/// Bundles a crash plan and a churn plan and applies both at the start of
/// each round.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    crashes: CrashPlan,
    churn: ChurnPlan,
}

impl FaultInjector {
    /// Creates an injector from the two plans.
    pub fn new(crashes: CrashPlan, churn: ChurnPlan) -> Self {
        FaultInjector { crashes, churn }
    }

    /// Creates an injector with only a crash plan.
    pub fn crashes_only(crashes: CrashPlan) -> Self {
        FaultInjector {
            crashes,
            churn: ChurnPlan::default(),
        }
    }

    /// The crash plan.
    pub fn crash_plan(&self) -> &CrashPlan {
        &self.crashes
    }

    /// The churn plan.
    pub fn churn_plan(&self) -> &ChurnPlan {
        &self.churn
    }

    /// Applies both plans for `round`; new processes are built by `factory`.
    pub fn apply<P: Process>(
        &self,
        sim: &mut Simulation<P>,
        round: Round,
        factory: impl FnMut(ProcessId) -> P,
    ) -> Vec<ProcessId> {
        self.crashes.apply(sim, round);
        self.churn.apply(sim, round, factory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::process::Context;

    #[derive(Debug, Default)]
    struct Idle;
    impl Process for Idle {
        type Msg = ();
        fn on_timer(&mut self, _ctx: &mut Context<'_, ()>) {}
        fn on_message(&mut self, _from: ProcessId, _msg: (), _ctx: &mut Context<'_, ()>) {}
    }

    #[test]
    fn crash_plan_applies_at_scheduled_round() {
        let mut sim: Simulation<Idle> = Simulation::new(SimConfig::default());
        for _ in 0..4 {
            sim.add_process(Idle);
        }
        let plan = CrashPlan::new()
            .crash_at(Round::new(2), ProcessId::new(0))
            .crash_all_at(Round::new(3), [ProcessId::new(1), ProcessId::new(2)]);
        assert_eq!(plan.total(), 3);
        sim.run_rounds_with(5, |s| {
            let now = s.now();
            plan.apply(s, now);
        });
        assert_eq!(sim.active_ids(), vec![ProcessId::new(3)]);
    }

    #[test]
    fn churn_plan_adds_processes() {
        let mut sim: Simulation<Idle> = Simulation::new(SimConfig::default());
        sim.add_process(Idle);
        let plan = ChurnPlan::new()
            .join_at(Round::new(1), 2)
            .join_at(Round::new(3), 1);
        assert_eq!(plan.total(), 3);
        let mut joined = Vec::new();
        sim.run_rounds_with(5, |s| {
            let now = s.now();
            joined.extend(plan.apply(s, now, |_| Idle));
        });
        assert_eq!(joined.len(), 3);
        assert_eq!(sim.ids().len(), 4);
    }

    #[test]
    fn fault_injector_combines_plans() {
        let mut sim: Simulation<Idle> = Simulation::new(SimConfig::default());
        for _ in 0..2 {
            sim.add_process(Idle);
        }
        let injector = FaultInjector::new(
            CrashPlan::new().crash_at(Round::new(1), ProcessId::new(0)),
            ChurnPlan::new().join_at(Round::new(2), 1),
        );
        sim.run_rounds_with(4, |s| {
            let now = s.now();
            injector.apply(s, now, |_| Idle);
        });
        assert!(!sim.is_active(ProcessId::new(0)));
        assert_eq!(sim.ids().len(), 3);
        assert_eq!(injector.crash_plan().total(), 1);
        assert_eq!(injector.churn_plan().total(), 1);
    }

    #[derive(Debug, Default)]
    struct Cell {
        value: u64,
    }
    impl Process for Cell {
        type Msg = ();
        fn on_timer(&mut self, _ctx: &mut Context<'_, ()>) {}
        fn on_message(&mut self, _from: ProcessId, _msg: (), _ctx: &mut Context<'_, ()>) {}
    }

    #[test]
    fn corruption_plan_mutates_scheduled_victims_only() {
        let mut sim: Simulation<Cell> = Simulation::new(SimConfig::default());
        for _ in 0..3 {
            sim.add_process(Cell::default());
        }
        sim.crash(ProcessId::new(2));
        let plan = CorruptionPlan::new().corrupt_at(
            Round::new(1),
            [ProcessId::new(0), ProcessId::new(2), ProcessId::new(9)],
        );
        assert_eq!(plan.total(), 3);
        assert_eq!(plan.last_round(), Some(Round::new(1)));
        let mut rng = SimRng::seed_from(1);
        let at_zero = plan.apply(&mut sim, Round::ZERO, &mut rng, |p, _| p.value = 7);
        assert_eq!(at_zero, 0);
        let at_one = plan.apply(&mut sim, Round::new(1), &mut rng, |p, _| p.value = 7);
        // The crashed and the unknown victim are skipped.
        assert_eq!(at_one, 1);
        assert_eq!(sim.process(ProcessId::new(0)).unwrap().value, 7);
        assert_eq!(sim.process(ProcessId::new(1)).unwrap().value, 0);
        assert_eq!(sim.process(ProcessId::new(2)).unwrap().value, 0);
    }

    #[test]
    fn spike_plan_switches_and_restores_the_policy() {
        let base = ChannelPolicy::default();
        let plan = SpikePlan::new().spike_at(
            Round::new(5),
            10,
            SpikeSpec {
                loss: 0.4,
                duplication: 0.2,
                extra_delay: 3,
            },
        );
        assert_eq!(plan.total(), 1);
        assert_eq!(plan.last_round(), Some(Round::new(15)));
        assert!(plan.due(Round::new(4), &base).is_none());
        let spiked = plan.due(Round::new(5), &base).unwrap();
        assert_eq!(spiked.loss_probability, 0.4);
        assert_eq!(spiked.duplication_probability, 0.2);
        assert_eq!(spiked.max_delay_rounds, base.max_delay_rounds + 3);
        let restored = plan.due(Round::new(15), &base).unwrap();
        assert_eq!(restored, base);

        let mut sim: Simulation<Cell> = Simulation::new(SimConfig::default());
        sim.add_process(Cell::default());
        plan.apply(&mut sim, Round::new(5), &base);
        assert_eq!(sim.network().policy().loss_probability, 0.4);
        plan.apply(&mut sim, Round::new(15), &base);
        assert_eq!(sim.network().policy(), &base);
    }

    #[test]
    fn back_to_back_spikes_do_not_restore_early() {
        let base = ChannelPolicy::default();
        let first = SpikeSpec {
            loss: 0.5,
            duplication: 0.0,
            extra_delay: 0,
        };
        let second = SpikeSpec {
            loss: 0.1,
            duplication: 0.0,
            extra_delay: 0,
        };
        let plan =
            SpikePlan::new()
                .spike_at(Round::new(0), 5, first)
                .spike_at(Round::new(5), 5, second);
        // The restore of the first spike coincides with the start of the
        // second: the second spike wins.
        let at_five = plan.due(Round::new(5), &base).unwrap();
        assert_eq!(at_five.loss_probability, 0.1);
        assert_eq!(plan.due(Round::new(10), &base).unwrap(), base);
    }

    #[test]
    fn gray_failure_plan_slows_and_restores() {
        let mut sim: Simulation<Idle> = Simulation::new(SimConfig::default());
        for _ in 0..3 {
            sim.add_process(Idle);
        }
        let victim = ProcessId::new(1);
        let plan = GrayFailurePlan::new().slow_at(Round::new(2), 6, 4, [victim]);
        assert_eq!(plan.total(), 1);
        assert_eq!(plan.last_round(), Some(Round::new(8)));
        let mut slowed = 0;
        sim.run_rounds_with(12, |s| {
            let now = s.now();
            slowed += plan.apply(s, now);
        });
        assert_eq!(slowed, 1);
        // Override cleared at the window's end.
        assert_eq!(sim.timer_period_override(victim), None);
        // Steps: rounds 0,1 at period 1, round 2 fires then period 4 → 6,
        // restore at 8 pulls the timer forward, then 8..11 at period 1.
        assert_eq!(sim.timer_steps_of(victim), Some(2 + 2 + 4));
        assert_eq!(sim.timer_steps_of(ProcessId::new(0)), Some(12));
    }

    #[test]
    fn gray_windows_compose_and_zero_length_windows_leave_no_override() {
        let v = ProcessId::new(0);
        // Overlap: the slower (larger) period wins while both windows cover.
        let plan = GrayFailurePlan::new()
            .slow_at(Round::new(0), 10, 3, [v])
            .slow_at(Round::new(5), 10, 8, [v]);
        assert_eq!(plan.due(Round::new(0)).unwrap()[&v], Some(3));
        assert_eq!(plan.due(Round::new(5)).unwrap()[&v], Some(8));
        assert_eq!(plan.due(Round::new(10)).unwrap()[&v], Some(8));
        assert_eq!(plan.due(Round::new(15)).unwrap()[&v], None);
        assert!(plan.due(Round::new(7)).is_none(), "not a boundary");
        // A zero-length window is a boundary but covers nothing.
        let degenerate = GrayFailurePlan::new().slow_at(Round::new(4), 0, 9, [v]);
        assert_eq!(degenerate.due(Round::new(4)).unwrap()[&v], None);
        let mut sim: Simulation<Idle> = Simulation::new(SimConfig::default());
        sim.add_process(Idle);
        sim.run_rounds_with(6, |s| {
            let now = s.now();
            degenerate.apply(s, now);
        });
        assert_eq!(sim.timer_period_override(v), None);
        assert_eq!(sim.timer_steps_of(v), Some(6));
    }

    #[test]
    fn adjacent_gray_windows_keep_the_victim_slowed_across_the_seam() {
        let v = ProcessId::new(0);
        let plan = GrayFailurePlan::new()
            .slow_at(Round::new(0), 5, 6, [v])
            .slow_at(Round::new(5), 5, 6, [v]);
        // At the seam the second window covers: no restore in between.
        assert_eq!(plan.due(Round::new(5)).unwrap()[&v], Some(6));
        assert_eq!(plan.due(Round::new(10)).unwrap()[&v], None);
    }

    #[test]
    fn skew_plan_is_permanent() {
        let mut sim: Simulation<Idle> = Simulation::new(SimConfig::default());
        for _ in 0..2 {
            sim.add_process(Idle);
        }
        let victim = ProcessId::new(1);
        let plan = SkewPlan::new().skew_at(Round::new(3), 5, [victim]);
        assert_eq!(plan.total(), 1);
        assert_eq!(plan.all_skews().count(), 1);
        let mut applied = 0;
        sim.run_rounds_with(20, |s| {
            let now = s.now();
            applied += plan.apply(s, now);
        });
        assert_eq!(applied, 1);
        assert_eq!(sim.timer_period_override(victim), Some(5));
        // Steps 0,1,2,3 at period 1, then rounds 8, 13, 18.
        assert_eq!(sim.timer_steps_of(victim), Some(4 + 3));
        assert_eq!(sim.timer_steps_of(ProcessId::new(0)), Some(20));
    }

    #[test]
    fn payload_corruption_mutates_in_flight_packets_only() {
        let mut sim: Simulation<Cell> = Simulation::new(SimConfig::default());
        for _ in 0..3 {
            sim.add_process(Cell::default());
        }
        let victim = ProcessId::new(2);
        sim.network_mut().inject(ProcessId::new(0), victim, ());
        sim.network_mut().inject(ProcessId::new(1), victim, ());
        let plan = PayloadCorruptionPlan::new().corrupt_inbound_at(Round::new(1), [victim]);
        assert_eq!(plan.total(), 1);
        let mut rng = SimRng::seed_from(1);
        let mut mutated = 0;
        let before = sim.network().in_flight_total();
        assert_eq!(plan.apply(&mut sim, Round::ZERO, &mut rng, |_, _| false), 0);
        let touched = plan.apply(&mut sim, Round::new(1), &mut rng, |_, _| {
            mutated += 1;
            true
        });
        assert_eq!(touched, 2);
        assert_eq!(mutated, 2);
        // Corruption mutates; it never creates or destroys packets.
        assert_eq!(sim.network().in_flight_total(), before);
    }

    #[derive(Debug, Default)]
    struct Wire;
    impl Process for Wire {
        type Msg = u64;
        fn on_timer(&mut self, _ctx: &mut Context<'_, u64>) {}
        fn on_message(&mut self, _from: ProcessId, _msg: u64, _ctx: &mut Context<'_, u64>) {}
    }

    /// The misattribution permutation moves payload *values* between the
    /// victim's inbound channels — not just references in a temporary list.
    #[test]
    fn payload_corruption_permutes_values_across_channels() {
        let victim = ProcessId::new(2);
        let plan = PayloadCorruptionPlan::new().corrupt_inbound_at(Round::ZERO, [victim]);
        let mut swapped = 0;
        let mut kept = 0;
        for seed in 0..16 {
            let mut sim: Simulation<Wire> = Simulation::new(SimConfig::default());
            for _ in 0..3 {
                sim.add_process(Wire);
            }
            sim.network_mut().inject(ProcessId::new(0), victim, 10);
            sim.network_mut().inject(ProcessId::new(1), victim, 20);
            let mut rng = SimRng::seed_from(seed);
            assert_eq!(plan.apply(&mut sim, Round::ZERO, &mut rng, |_, _| false), 2);
            let via_p0 = *sim
                .network()
                .channel(ProcessId::new(0), victim)
                .unwrap()
                .in_flight()
                .next()
                .unwrap()
                .msg();
            match via_p0 {
                20 => swapped += 1,
                10 => kept += 1,
                other => panic!("payload corrupted out of thin air: {other}"),
            }
        }
        // A two-element permutation swaps about half the time: both
        // outcomes must occur, or the shuffle is not touching the channels.
        assert!(swapped > 0, "values never moved between channels");
        assert!(kept > 0, "values always moved — not a permutation draw");
    }

    #[test]
    fn recovery_plan_crashes_then_rejoins_under_fresh_identifiers() {
        let mut sim: Simulation<Idle> = Simulation::new(SimConfig::default());
        for _ in 0..4 {
            sim.add_process(Idle);
        }
        let plan = RecoveryPlan::new().crash_recover_at(
            Round::new(1),
            [ProcessId::new(2), ProcessId::new(3)],
            3,
        );
        assert_eq!(plan.total(), 2);
        assert_eq!(plan.all_victims().count(), 2);
        assert_eq!(plan.last_round(), Some(Round::new(4)));
        let mut crashed = 0;
        let mut recovered = Vec::new();
        sim.run_rounds_with(6, |s| {
            let now = s.now();
            crashed += plan.apply_crashes(s, now);
            recovered.extend(plan.apply_rejoins(s, now, |_| Idle));
        });
        assert_eq!(crashed, 2);
        // The fresh identifiers continue the sequence; the victims stay dead.
        assert_eq!(recovered, vec![ProcessId::new(4), ProcessId::new(5)]);
        assert!(!sim.is_active(ProcessId::new(2)));
        assert!(!sim.is_active(ProcessId::new(3)));
        assert!(sim.is_active(ProcessId::new(4)));
        assert!(sim.is_active(ProcessId::new(5)));
    }

    #[test]
    fn empty_plans_are_noops() {
        let mut sim: Simulation<Idle> = Simulation::new(SimConfig::default());
        sim.add_process(Idle);
        let injector = FaultInjector::default();
        sim.run_rounds_with(3, |s| {
            let now = s.now();
            injector.apply(s, now, |_| Idle);
        });
        assert_eq!(sim.ids().len(), 1);
        assert!(sim.is_active(ProcessId::new(0)));
    }
}

/// Window-composition properties shared by [`SpikePlan`] and
/// [`GrayFailurePlan`]: replaying the boundary-triggered `due`/`apply`
/// changes round by round must reproduce, at *every* round, the value
/// computed directly from the covering windows — across overlapping,
/// adjacent and zero-length windows.
#[cfg(test)]
mod window_proptests {
    use super::*;
    use crate::config::SimConfig;
    use crate::process::Context;
    use proptest::prelude::*;

    #[derive(Debug, Default)]
    struct Idle;
    impl Process for Idle {
        type Msg = ();
        fn on_timer(&mut self, _ctx: &mut Context<'_, ()>) {}
        fn on_message(&mut self, _from: ProcessId, _msg: (), _ctx: &mut Context<'_, ()>) {}
    }

    /// The ground truth: `base` spiked by the element-wise worst case of
    /// every window covering `round`.
    fn spiked_directly(
        windows: &[(u64, u64, SpikeSpec)],
        round: u64,
        base: &ChannelPolicy,
    ) -> ChannelPolicy {
        let mut policy = base.clone();
        let mut covered = false;
        let mut worst = SpikeSpec {
            loss: 0.0,
            duplication: 0.0,
            extra_delay: 0,
        };
        for (start, duration, spec) in windows {
            if *start <= round && round < start + duration {
                covered = true;
                worst.loss = worst.loss.max(spec.loss);
                worst.duplication = worst.duplication.max(spec.duplication);
                worst.extra_delay = worst.extra_delay.max(spec.extra_delay);
            }
        }
        if covered {
            policy = worst.apply_to(base);
        }
        policy
    }

    proptest! {
        /// Arbitrary spike windows — overlapping, adjacent, zero-length —
        /// compose to the element-wise worst case at every round, and the
        /// base policy is restored exactly when no window covers.
        #[test]
        fn spike_windows_compose_to_the_covering_worst_case(
            raw in proptest::collection::vec(
                (0u64..30, 0u64..12, (0u8..5, 0u8..4, 0u64..5)),
                1..6,
            ),
        ) {
            let windows: Vec<(u64, u64, SpikeSpec)> = raw
                .into_iter()
                .map(|(start, duration, (loss, dup, delay))| {
                    (
                        start,
                        duration,
                        SpikeSpec {
                            loss: f64::from(loss) * 0.1,
                            duplication: f64::from(dup) * 0.05,
                            extra_delay: delay,
                        },
                    )
                })
                .collect();
            let base = ChannelPolicy::default();
            let mut plan = SpikePlan::new();
            for (start, duration, spec) in &windows {
                plan = plan.spike_at(Round::new(*start), *duration, *spec);
            }
            // Replay: the policy in force changes only at boundaries.
            let mut in_force = base.clone();
            for round in 0..=45u64 {
                if let Some(next) = plan.due(Round::new(round), &base) {
                    in_force = next;
                }
                let expected = spiked_directly(&windows, round, &base);
                prop_assert_eq!(
                    &in_force, &expected,
                    "round {}: composed policy diverges from covering windows", round
                );
            }
            // Past every window the base policy is back in force.
            prop_assert_eq!(&in_force, &base);
        }

        /// Arbitrary gray-failure windows leave every victim at the slowest
        /// covering period at every round, and no override survives past
        /// its last window (zero-length windows leave none at all).
        #[test]
        fn gray_windows_compose_to_the_slowest_covering_period(
            windows in proptest::collection::vec(
                (0u64..30, 0u64..12, 1u64..10, 0u32..3),
                1..6,
            ),
        ) {
            let mut plan = GrayFailurePlan::new();
            for (start, duration, period, victim) in &windows {
                plan = plan.slow_at(
                    Round::new(*start),
                    *duration,
                    *period,
                    [ProcessId::new(*victim)],
                );
            }
            let mut sim: Simulation<Idle> = Simulation::new(SimConfig::default());
            for _ in 0..3 {
                sim.add_process(Idle);
            }
            for round in 0..=45u64 {
                plan.apply(&mut sim, Round::new(round));
                for victim in 0u32..3 {
                    let expected = windows
                        .iter()
                        .filter(|(s, d, _, v)| {
                            *v == victim && *s <= round && round < s + d
                        })
                        .map(|(_, _, p, _)| *p)
                        .max();
                    prop_assert_eq!(
                        sim.timer_period_override(ProcessId::new(victim)),
                        expected,
                        "round {}, victim {}: override diverges from covering windows",
                        round,
                        victim
                    );
                }
                sim.step_round();
            }
        }
    }
}

//! Fault and churn injection helpers.
//!
//! Self-stabilization is about recovery from *transient faults* — an
//! arbitrary starting state — combined with ordinary crash failures and
//! churn. This module provides declarative schedules for crashes
//! ([`CrashPlan`]), joins ([`ChurnPlan`]), transient state corruption
//! ([`CorruptionPlan`]) and channel-behaviour spikes ([`SpikePlan`]).
//!
//! The plans are the building blocks of the chaos-campaign engine: a
//! [`crate::scenario::Scenario`] composes them into one declarative fault
//! schedule, and the scenario runner applies them at round boundaries.
//! They can also be driven by hand from the scheduler hook
//! ([`crate::Simulation::run_rounds_with`]), which is how the plans were
//! used before the scenario subsystem existed. *How* to corrupt a
//! processor's state is protocol-specific; a [`CorruptionPlan`] only decides
//! *who* and *when*, and delegates the mutation to a caller-supplied closure
//! (the scenario engine uses
//! [`crate::scenario::ScenarioTarget::corrupt`]).

use std::collections::{BTreeMap, BTreeSet};

use crate::channel::ChannelPolicy;
use crate::process::{Process, ProcessId};
use crate::rng::SimRng;
use crate::scheduler::Simulation;
use crate::time::Round;

/// A schedule of crash failures: which processors crash at which round.
///
/// ```
/// use simnet::{CrashPlan, ProcessId, Round};
/// let plan = CrashPlan::new()
///     .crash_at(Round::new(5), ProcessId::new(2))
///     .crash_at(Round::new(5), ProcessId::new(3));
/// assert_eq!(plan.due(Round::new(5)).len(), 2);
/// assert!(plan.due(Round::new(4)).is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CrashPlan {
    schedule: BTreeMap<Round, Vec<ProcessId>>,
}

impl CrashPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `victim` to crash at `round` (builder style).
    pub fn crash_at(mut self, round: Round, victim: ProcessId) -> Self {
        self.schedule.entry(round).or_default().push(victim);
        self
    }

    /// Schedules a group of victims at `round`.
    pub fn crash_all_at(
        mut self,
        round: Round,
        victims: impl IntoIterator<Item = ProcessId>,
    ) -> Self {
        self.schedule.entry(round).or_default().extend(victims);
        self
    }

    /// The victims scheduled for exactly `round`.
    pub fn due(&self, round: Round) -> &[ProcessId] {
        self.schedule.get(&round).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total number of scheduled crashes.
    pub fn total(&self) -> usize {
        self.schedule.values().map(Vec::len).sum()
    }

    /// The last round with a scheduled crash.
    pub fn last_round(&self) -> Option<Round> {
        self.schedule.keys().next_back().copied()
    }

    /// Applies the crashes due at `round` to the simulation.
    pub fn apply<P: Process>(&self, sim: &mut Simulation<P>, round: Round) {
        for victim in self.due(round) {
            sim.crash(*victim);
        }
    }
}

/// A schedule of joins: how many new processors join at which round.
///
/// The caller supplies a factory closure when applying the plan, because only
/// the protocol harness knows how to construct a freshly joining node.
#[derive(Debug, Clone, Default)]
pub struct ChurnPlan {
    joins: BTreeMap<Round, u32>,
}

impl ChurnPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `count` joins at `round` (builder style).
    pub fn join_at(mut self, round: Round, count: u32) -> Self {
        *self.joins.entry(round).or_insert(0) += count;
        self
    }

    /// Number of joins due at exactly `round`.
    pub fn due(&self, round: Round) -> u32 {
        self.joins.get(&round).copied().unwrap_or(0)
    }

    /// Total number of scheduled joins.
    pub fn total(&self) -> u32 {
        self.joins.values().sum()
    }

    /// The last round with a scheduled join.
    pub fn last_round(&self) -> Option<Round> {
        self.joins.keys().next_back().copied()
    }

    /// Applies the joins due at `round`, constructing each new process with
    /// `factory` (which receives the identifier the simulation assigned).
    /// Returns the identifiers of the processors that joined.
    pub fn apply<P: Process>(
        &self,
        sim: &mut Simulation<P>,
        round: Round,
        mut factory: impl FnMut(ProcessId) -> P,
    ) -> Vec<ProcessId> {
        let mut joined = Vec::new();
        for _ in 0..self.due(round) {
            // Reserve the identifier first so the factory can embed it.
            let id = ProcessId::new(sim.ids().iter().map(|p| p.as_u32() + 1).max().unwrap_or(0));
            let process = factory(id);
            sim.add_process_with_id(id, process);
            joined.push(id);
        }
        joined
    }
}

/// A schedule of transient state corruptions: which processors have their
/// local state corrupted at which round. The plan only records *who* and
/// *when*; the protocol-specific *how* is a closure supplied on application
/// (the scenario engine passes
/// [`crate::scenario::ScenarioTarget::corrupt`]).
///
/// ```
/// use simnet::{fault::CorruptionPlan, ProcessId, Round};
/// let plan = CorruptionPlan::new()
///     .corrupt_at(Round::new(10), [ProcessId::new(0), ProcessId::new(2)]);
/// assert_eq!(plan.due(Round::new(10)).len(), 2);
/// assert_eq!(plan.total(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CorruptionPlan {
    schedule: BTreeMap<Round, Vec<ProcessId>>,
}

impl CorruptionPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules the state of `victims` to be corrupted at `round` (builder
    /// style).
    pub fn corrupt_at(
        mut self,
        round: Round,
        victims: impl IntoIterator<Item = ProcessId>,
    ) -> Self {
        self.schedule.entry(round).or_default().extend(victims);
        self
    }

    /// The victims scheduled for exactly `round`.
    pub fn due(&self, round: Round) -> &[ProcessId] {
        self.schedule.get(&round).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total number of scheduled corruptions.
    pub fn total(&self) -> usize {
        self.schedule.values().map(Vec::len).sum()
    }

    /// The last round with a scheduled corruption.
    pub fn last_round(&self) -> Option<Round> {
        self.schedule.keys().next_back().copied()
    }

    /// Applies the corruptions due at `round`, mutating each victim through
    /// `corrupt` with the adversary's random stream. Crashed or unknown
    /// victims are skipped (a corrupted crashed node takes no steps anyway).
    /// Returns the number of corruptions performed.
    pub fn apply<P: Process>(
        &self,
        sim: &mut Simulation<P>,
        round: Round,
        rng: &mut SimRng,
        mut corrupt: impl FnMut(&mut P, &mut SimRng),
    ) -> u64 {
        let mut applied = 0;
        for victim in self.due(round) {
            if !sim.is_active(*victim) {
                continue;
            }
            if let Some(process) = sim.process_mut(*victim) {
                corrupt(process, rng);
                applied += 1;
            }
        }
        applied
    }
}

/// Overrides a [`ChannelPolicy`] for the duration of a spike: the paper's
/// lossy, duplicating, delaying links turned up to adversarial levels for a
/// bounded window of rounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpikeSpec {
    /// Per-packet loss probability during the spike.
    pub loss: f64,
    /// Per-packet duplication probability during the spike.
    pub duplication: f64,
    /// Extra delivery delay added on top of the base maximum delay.
    pub extra_delay: u64,
}

impl SpikeSpec {
    /// Applies the spike on top of `base`, returning the spiked policy.
    pub fn apply_to(&self, base: &ChannelPolicy) -> ChannelPolicy {
        ChannelPolicy {
            loss_probability: self.loss.max(base.loss_probability),
            duplication_probability: self.duplication.max(base.duplication_probability),
            max_delay_rounds: base.max_delay_rounds + self.extra_delay,
            ..base.clone()
        }
    }
}

/// A schedule of channel-behaviour spikes: windows of rounds during which
/// every link loses, duplicates and delays packets more aggressively than
/// its base policy. Spikes start and end at round boundaries, so scenario
/// executions remain byte-identical across scheduler modes.
///
/// Overlapping windows compose: at any round, the network runs the base
/// policy spiked by *every* window covering that round (element-wise worst
/// case), so a short spike inside a longer one never truncates the longer
/// window on its way out.
#[derive(Debug, Clone, Default)]
pub struct SpikePlan {
    /// Half-open windows `[start, end)` with their specs.
    windows: Vec<(Round, Round, SpikeSpec)>,
    /// Every window start and end: the rounds at which the composed policy
    /// may change.
    boundaries: BTreeSet<Round>,
}

impl SpikePlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `spec` to hold from `round` for `duration` rounds (builder
    /// style). Windows may overlap; the covering specs compose.
    pub fn spike_at(mut self, round: Round, duration: u64, spec: SpikeSpec) -> Self {
        self.windows.push((round, round + duration, spec));
        self.boundaries.insert(round);
        self.boundaries.insert(round + duration);
        self
    }

    /// Total number of scheduled spike windows.
    pub fn total(&self) -> usize {
        self.windows.len()
    }

    /// The last round at which this plan changes the policy (including the
    /// final restore).
    pub fn last_round(&self) -> Option<Round> {
        self.boundaries.iter().next_back().copied()
    }

    /// The policy change due at exactly `round`, if any: `Some(policy)`
    /// means "switch the network to `policy` now". The policy is `base`
    /// spiked by the element-wise worst case of every window covering
    /// `round` (the covering specs are combined first, then applied once,
    /// so overlapping delays take the maximum rather than summing).
    pub fn due(&self, round: Round, base: &ChannelPolicy) -> Option<ChannelPolicy> {
        if !self.boundaries.contains(&round) {
            return None;
        }
        let combined = self
            .windows
            .iter()
            .filter(|(start, end, _)| *start <= round && round < *end)
            .fold(None::<SpikeSpec>, |acc, (_, _, spec)| {
                Some(match acc {
                    None => *spec,
                    Some(a) => SpikeSpec {
                        loss: a.loss.max(spec.loss),
                        duplication: a.duplication.max(spec.duplication),
                        extra_delay: a.extra_delay.max(spec.extra_delay),
                    },
                })
            });
        Some(match combined {
            None => base.clone(),
            Some(spec) => spec.apply_to(base),
        })
    }

    /// Applies the change due at `round` (if any) to the simulation's
    /// network, where `base` is the scenario's un-spiked channel policy.
    pub fn apply<P: Process>(&self, sim: &mut Simulation<P>, round: Round, base: &ChannelPolicy) {
        if let Some(policy) = self.due(round, base) {
            sim.network_mut().set_policy(policy);
        }
    }
}

/// Bundles a crash plan and a churn plan and applies both at the start of
/// each round.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    crashes: CrashPlan,
    churn: ChurnPlan,
}

impl FaultInjector {
    /// Creates an injector from the two plans.
    pub fn new(crashes: CrashPlan, churn: ChurnPlan) -> Self {
        FaultInjector { crashes, churn }
    }

    /// Creates an injector with only a crash plan.
    pub fn crashes_only(crashes: CrashPlan) -> Self {
        FaultInjector {
            crashes,
            churn: ChurnPlan::default(),
        }
    }

    /// The crash plan.
    pub fn crash_plan(&self) -> &CrashPlan {
        &self.crashes
    }

    /// The churn plan.
    pub fn churn_plan(&self) -> &ChurnPlan {
        &self.churn
    }

    /// Applies both plans for `round`; new processes are built by `factory`.
    pub fn apply<P: Process>(
        &self,
        sim: &mut Simulation<P>,
        round: Round,
        factory: impl FnMut(ProcessId) -> P,
    ) -> Vec<ProcessId> {
        self.crashes.apply(sim, round);
        self.churn.apply(sim, round, factory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::process::Context;

    #[derive(Debug, Default)]
    struct Idle;
    impl Process for Idle {
        type Msg = ();
        fn on_timer(&mut self, _ctx: &mut Context<'_, ()>) {}
        fn on_message(&mut self, _from: ProcessId, _msg: (), _ctx: &mut Context<'_, ()>) {}
    }

    #[test]
    fn crash_plan_applies_at_scheduled_round() {
        let mut sim: Simulation<Idle> = Simulation::new(SimConfig::default());
        for _ in 0..4 {
            sim.add_process(Idle);
        }
        let plan = CrashPlan::new()
            .crash_at(Round::new(2), ProcessId::new(0))
            .crash_all_at(Round::new(3), [ProcessId::new(1), ProcessId::new(2)]);
        assert_eq!(plan.total(), 3);
        sim.run_rounds_with(5, |s| {
            let now = s.now();
            plan.apply(s, now);
        });
        assert_eq!(sim.active_ids(), vec![ProcessId::new(3)]);
    }

    #[test]
    fn churn_plan_adds_processes() {
        let mut sim: Simulation<Idle> = Simulation::new(SimConfig::default());
        sim.add_process(Idle);
        let plan = ChurnPlan::new()
            .join_at(Round::new(1), 2)
            .join_at(Round::new(3), 1);
        assert_eq!(plan.total(), 3);
        let mut joined = Vec::new();
        sim.run_rounds_with(5, |s| {
            let now = s.now();
            joined.extend(plan.apply(s, now, |_| Idle));
        });
        assert_eq!(joined.len(), 3);
        assert_eq!(sim.ids().len(), 4);
    }

    #[test]
    fn fault_injector_combines_plans() {
        let mut sim: Simulation<Idle> = Simulation::new(SimConfig::default());
        for _ in 0..2 {
            sim.add_process(Idle);
        }
        let injector = FaultInjector::new(
            CrashPlan::new().crash_at(Round::new(1), ProcessId::new(0)),
            ChurnPlan::new().join_at(Round::new(2), 1),
        );
        sim.run_rounds_with(4, |s| {
            let now = s.now();
            injector.apply(s, now, |_| Idle);
        });
        assert!(!sim.is_active(ProcessId::new(0)));
        assert_eq!(sim.ids().len(), 3);
        assert_eq!(injector.crash_plan().total(), 1);
        assert_eq!(injector.churn_plan().total(), 1);
    }

    #[derive(Debug, Default)]
    struct Cell {
        value: u64,
    }
    impl Process for Cell {
        type Msg = ();
        fn on_timer(&mut self, _ctx: &mut Context<'_, ()>) {}
        fn on_message(&mut self, _from: ProcessId, _msg: (), _ctx: &mut Context<'_, ()>) {}
    }

    #[test]
    fn corruption_plan_mutates_scheduled_victims_only() {
        let mut sim: Simulation<Cell> = Simulation::new(SimConfig::default());
        for _ in 0..3 {
            sim.add_process(Cell::default());
        }
        sim.crash(ProcessId::new(2));
        let plan = CorruptionPlan::new().corrupt_at(
            Round::new(1),
            [ProcessId::new(0), ProcessId::new(2), ProcessId::new(9)],
        );
        assert_eq!(plan.total(), 3);
        assert_eq!(plan.last_round(), Some(Round::new(1)));
        let mut rng = SimRng::seed_from(1);
        let at_zero = plan.apply(&mut sim, Round::ZERO, &mut rng, |p, _| p.value = 7);
        assert_eq!(at_zero, 0);
        let at_one = plan.apply(&mut sim, Round::new(1), &mut rng, |p, _| p.value = 7);
        // The crashed and the unknown victim are skipped.
        assert_eq!(at_one, 1);
        assert_eq!(sim.process(ProcessId::new(0)).unwrap().value, 7);
        assert_eq!(sim.process(ProcessId::new(1)).unwrap().value, 0);
        assert_eq!(sim.process(ProcessId::new(2)).unwrap().value, 0);
    }

    #[test]
    fn spike_plan_switches_and_restores_the_policy() {
        let base = ChannelPolicy::default();
        let plan = SpikePlan::new().spike_at(
            Round::new(5),
            10,
            SpikeSpec {
                loss: 0.4,
                duplication: 0.2,
                extra_delay: 3,
            },
        );
        assert_eq!(plan.total(), 1);
        assert_eq!(plan.last_round(), Some(Round::new(15)));
        assert!(plan.due(Round::new(4), &base).is_none());
        let spiked = plan.due(Round::new(5), &base).unwrap();
        assert_eq!(spiked.loss_probability, 0.4);
        assert_eq!(spiked.duplication_probability, 0.2);
        assert_eq!(spiked.max_delay_rounds, base.max_delay_rounds + 3);
        let restored = plan.due(Round::new(15), &base).unwrap();
        assert_eq!(restored, base);

        let mut sim: Simulation<Cell> = Simulation::new(SimConfig::default());
        sim.add_process(Cell::default());
        plan.apply(&mut sim, Round::new(5), &base);
        assert_eq!(sim.network().policy().loss_probability, 0.4);
        plan.apply(&mut sim, Round::new(15), &base);
        assert_eq!(sim.network().policy(), &base);
    }

    #[test]
    fn back_to_back_spikes_do_not_restore_early() {
        let base = ChannelPolicy::default();
        let first = SpikeSpec {
            loss: 0.5,
            duplication: 0.0,
            extra_delay: 0,
        };
        let second = SpikeSpec {
            loss: 0.1,
            duplication: 0.0,
            extra_delay: 0,
        };
        let plan =
            SpikePlan::new()
                .spike_at(Round::new(0), 5, first)
                .spike_at(Round::new(5), 5, second);
        // The restore of the first spike coincides with the start of the
        // second: the second spike wins.
        let at_five = plan.due(Round::new(5), &base).unwrap();
        assert_eq!(at_five.loss_probability, 0.1);
        assert_eq!(plan.due(Round::new(10), &base).unwrap(), base);
    }

    #[test]
    fn empty_plans_are_noops() {
        let mut sim: Simulation<Idle> = Simulation::new(SimConfig::default());
        sim.add_process(Idle);
        let injector = FaultInjector::default();
        sim.run_rounds_with(3, |s| {
            let now = s.now();
            injector.apply(s, now, |_| Idle);
        });
        assert_eq!(sim.ids().len(), 1);
        assert!(sim.is_active(ProcessId::new(0)));
    }
}

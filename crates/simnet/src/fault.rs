//! Fault and churn injection helpers.
//!
//! Self-stabilization is about recovery from *transient faults* — an
//! arbitrary starting state — combined with ordinary crash failures and
//! churn. This module provides declarative schedules for crashes and joins
//! plus a small injector that applies them from the scheduler hook
//! ([`crate::Simulation::run_rounds_with`]). Arbitrary *state* corruption is
//! protocol-specific, so it is performed by each protocol crate's test
//! harness through [`crate::Simulation::process_mut`] and
//! [`crate::Network::channel_mut`].

use std::collections::BTreeMap;

use crate::process::{Process, ProcessId};
use crate::scheduler::Simulation;
use crate::time::Round;

/// A schedule of crash failures: which processors crash at which round.
///
/// ```
/// use simnet::{CrashPlan, ProcessId, Round};
/// let plan = CrashPlan::new()
///     .crash_at(Round::new(5), ProcessId::new(2))
///     .crash_at(Round::new(5), ProcessId::new(3));
/// assert_eq!(plan.due(Round::new(5)).len(), 2);
/// assert!(plan.due(Round::new(4)).is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CrashPlan {
    schedule: BTreeMap<Round, Vec<ProcessId>>,
}

impl CrashPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `victim` to crash at `round` (builder style).
    pub fn crash_at(mut self, round: Round, victim: ProcessId) -> Self {
        self.schedule.entry(round).or_default().push(victim);
        self
    }

    /// Schedules a group of victims at `round`.
    pub fn crash_all_at(
        mut self,
        round: Round,
        victims: impl IntoIterator<Item = ProcessId>,
    ) -> Self {
        self.schedule.entry(round).or_default().extend(victims);
        self
    }

    /// The victims scheduled for exactly `round`.
    pub fn due(&self, round: Round) -> &[ProcessId] {
        self.schedule.get(&round).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total number of scheduled crashes.
    pub fn total(&self) -> usize {
        self.schedule.values().map(Vec::len).sum()
    }

    /// Applies the crashes due at `round` to the simulation.
    pub fn apply<P: Process>(&self, sim: &mut Simulation<P>, round: Round) {
        for victim in self.due(round) {
            sim.crash(*victim);
        }
    }
}

/// A schedule of joins: how many new processors join at which round.
///
/// The caller supplies a factory closure when applying the plan, because only
/// the protocol harness knows how to construct a freshly joining node.
#[derive(Debug, Clone, Default)]
pub struct ChurnPlan {
    joins: BTreeMap<Round, u32>,
}

impl ChurnPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `count` joins at `round` (builder style).
    pub fn join_at(mut self, round: Round, count: u32) -> Self {
        *self.joins.entry(round).or_insert(0) += count;
        self
    }

    /// Number of joins due at exactly `round`.
    pub fn due(&self, round: Round) -> u32 {
        self.joins.get(&round).copied().unwrap_or(0)
    }

    /// Total number of scheduled joins.
    pub fn total(&self) -> u32 {
        self.joins.values().sum()
    }

    /// Applies the joins due at `round`, constructing each new process with
    /// `factory` (which receives the identifier the simulation assigned).
    /// Returns the identifiers of the processors that joined.
    pub fn apply<P: Process>(
        &self,
        sim: &mut Simulation<P>,
        round: Round,
        mut factory: impl FnMut(ProcessId) -> P,
    ) -> Vec<ProcessId> {
        let mut joined = Vec::new();
        for _ in 0..self.due(round) {
            // Reserve the identifier first so the factory can embed it.
            let id = ProcessId::new(sim.ids().iter().map(|p| p.as_u32() + 1).max().unwrap_or(0));
            let process = factory(id);
            sim.add_process_with_id(id, process);
            joined.push(id);
        }
        joined
    }
}

/// Bundles a crash plan and a churn plan and applies both at the start of
/// each round.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    crashes: CrashPlan,
    churn: ChurnPlan,
}

impl FaultInjector {
    /// Creates an injector from the two plans.
    pub fn new(crashes: CrashPlan, churn: ChurnPlan) -> Self {
        FaultInjector { crashes, churn }
    }

    /// Creates an injector with only a crash plan.
    pub fn crashes_only(crashes: CrashPlan) -> Self {
        FaultInjector {
            crashes,
            churn: ChurnPlan::default(),
        }
    }

    /// The crash plan.
    pub fn crash_plan(&self) -> &CrashPlan {
        &self.crashes
    }

    /// The churn plan.
    pub fn churn_plan(&self) -> &ChurnPlan {
        &self.churn
    }

    /// Applies both plans for `round`; new processes are built by `factory`.
    pub fn apply<P: Process>(
        &self,
        sim: &mut Simulation<P>,
        round: Round,
        factory: impl FnMut(ProcessId) -> P,
    ) -> Vec<ProcessId> {
        self.crashes.apply(sim, round);
        self.churn.apply(sim, round, factory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::process::Context;

    #[derive(Debug, Default)]
    struct Idle;
    impl Process for Idle {
        type Msg = ();
        fn on_timer(&mut self, _ctx: &mut Context<'_, ()>) {}
        fn on_message(&mut self, _from: ProcessId, _msg: (), _ctx: &mut Context<'_, ()>) {}
    }

    #[test]
    fn crash_plan_applies_at_scheduled_round() {
        let mut sim: Simulation<Idle> = Simulation::new(SimConfig::default());
        for _ in 0..4 {
            sim.add_process(Idle);
        }
        let plan = CrashPlan::new()
            .crash_at(Round::new(2), ProcessId::new(0))
            .crash_all_at(Round::new(3), [ProcessId::new(1), ProcessId::new(2)]);
        assert_eq!(plan.total(), 3);
        sim.run_rounds_with(5, |s| {
            let now = s.now();
            plan.apply(s, now);
        });
        assert_eq!(sim.active_ids(), vec![ProcessId::new(3)]);
    }

    #[test]
    fn churn_plan_adds_processes() {
        let mut sim: Simulation<Idle> = Simulation::new(SimConfig::default());
        sim.add_process(Idle);
        let plan = ChurnPlan::new()
            .join_at(Round::new(1), 2)
            .join_at(Round::new(3), 1);
        assert_eq!(plan.total(), 3);
        let mut joined = Vec::new();
        sim.run_rounds_with(5, |s| {
            let now = s.now();
            joined.extend(plan.apply(s, now, |_| Idle));
        });
        assert_eq!(joined.len(), 3);
        assert_eq!(sim.ids().len(), 4);
    }

    #[test]
    fn fault_injector_combines_plans() {
        let mut sim: Simulation<Idle> = Simulation::new(SimConfig::default());
        for _ in 0..2 {
            sim.add_process(Idle);
        }
        let injector = FaultInjector::new(
            CrashPlan::new().crash_at(Round::new(1), ProcessId::new(0)),
            ChurnPlan::new().join_at(Round::new(2), 1),
        );
        sim.run_rounds_with(4, |s| {
            let now = s.now();
            injector.apply(s, now, |_| Idle);
        });
        assert!(!sim.is_active(ProcessId::new(0)));
        assert_eq!(sim.ids().len(), 3);
        assert_eq!(injector.crash_plan().total(), 1);
        assert_eq!(injector.churn_plan().total(), 1);
    }

    #[test]
    fn empty_plans_are_noops() {
        let mut sim: Simulation<Idle> = Simulation::new(SimConfig::default());
        sim.add_process(Idle);
        let injector = FaultInjector::default();
        sim.run_rounds_with(3, |s| {
            let now = s.now();
            injector.apply(s, now, |_| Idle);
        });
        assert_eq!(sim.ids().len(), 1);
        assert!(sim.is_active(ProcessId::new(0)));
    }
}

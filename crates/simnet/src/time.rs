//! Logical time for the simulation.
//!
//! The paper's model is fully asynchronous — there is no bound on relative
//! processing or transmission speed — so the only notion of time the
//! simulator needs is an ordinal one: the *round* counter used by the
//! scheduler to interleave steps and to express message delays.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A logical round of the simulation.
///
/// One round corresponds to every active processor executing one iteration of
/// its `do forever` loop and the scheduler delivering the messages whose
/// delay has expired. Rounds are only an accounting device of the simulator;
/// the algorithms themselves never observe them.
///
/// ```
/// use simnet::Round;
/// let r = Round::ZERO + 3;
/// assert_eq!(r.as_u64(), 3);
/// assert!(r > Round::ZERO);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Round(u64);

impl Round {
    /// The first round of an execution.
    pub const ZERO: Round = Round(0);

    /// Creates a round from a raw counter value.
    pub fn new(value: u64) -> Self {
        Round(value)
    }

    /// Returns the raw counter value.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the round that immediately follows this one.
    pub fn next(self) -> Round {
        Round(self.0 + 1)
    }

    /// Saturating difference between two rounds.
    pub fn saturating_since(self, earlier: Round) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Debug for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Round({})", self.0)
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Add<u64> for Round {
    type Output = Round;
    fn add(self, rhs: u64) -> Round {
        Round(self.0 + rhs)
    }
}

impl AddAssign<u64> for Round {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Round> for Round {
    type Output = u64;
    fn sub(self, rhs: Round) -> u64 {
        self.0 - rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_ordering_and_arithmetic() {
        let a = Round::new(5);
        let b = a + 2;
        assert_eq!(b.as_u64(), 7);
        assert!(b > a);
        assert_eq!(b - a, 2);
        assert_eq!(a.next().as_u64(), 6);
    }

    #[test]
    fn saturating_since_never_underflows() {
        let early = Round::new(3);
        let late = Round::new(10);
        assert_eq!(late.saturating_since(early), 7);
        assert_eq!(early.saturating_since(late), 0);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Round::default(), Round::ZERO);
    }

    #[test]
    fn add_assign_advances() {
        let mut r = Round::ZERO;
        r += 4;
        assert_eq!(r, Round::new(4));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", Round::new(9)), "9");
        assert_eq!(format!("{:?}", Round::new(9)), "Round(9)");
    }
}

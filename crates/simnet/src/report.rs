//! Machine-readable campaign reports: a minimal, deterministic JSON model.
//!
//! The chaos-campaign engine ([`crate::campaign`]) records every run into a
//! JSON document that CI archives as a build artifact. Determinism is a hard
//! requirement — the same scenario and seed must produce **byte-identical**
//! reports across repeated runs and across both [`crate::SchedulerMode`]s —
//! so the serializer is fully deterministic: object keys keep insertion
//! order, floats are rendered with a fixed precision, and nothing in the
//! value model depends on hashing or wall-clock time.
//!
//! The environment has no serde, so this module carries its own small value
//! model ([`Json`]), serializer ([`Json::render`]) and recursive-descent
//! parser ([`Json::parse`]); the parser is what `simctl bench-guard` and
//! `simctl diff` use to read reports back.
//!
//! ```
//! use simnet::Json;
//!
//! let doc = Json::obj()
//!     .field("scenario", "one-way-cut")
//!     .field("seed", 7u64)
//!     .field("converged", true);
//! let text = doc.render();
//! // Deterministic: same value, same bytes — and it round-trips.
//! assert_eq!(text, doc.render());
//! let parsed = Json::parse(&text).unwrap();
//! assert_eq!(parsed.get("seed").and_then(Json::as_u64), Some(7));
//! assert_eq!(parsed, doc);
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order so that rendering is
/// deterministic and diff-friendly.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (counters, seeds, digests).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A float, rendered with three decimal places.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Creates an empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds (or replaces) a field on an object (builder style).
    ///
    /// # Panics
    ///
    /// Panics when `self` is not an object.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => {
                let value = value.into();
                if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value;
                } else {
                    fields.push((key.to_string(), value));
                }
            }
            other => panic!("Json::field on non-object {other:?}"),
        }
        self
    }

    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64` (for `UInt`, `Int` and `Float`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(u) => Some(*u as f64),
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(u) => Some(*u),
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as a `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as pretty-printed JSON with two-space indentation
    /// and a trailing newline. The output is byte-deterministic.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                let _ = write!(out, "{f:.3}");
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    item.render_into(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    render_string(key, out);
                    out.push_str(": ");
                    value.render_into(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. Numbers without a fraction or exponent parse
    /// as integers; everything else as floats.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(value)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<u64> for Json {
    fn from(u: u64) -> Json {
        Json::UInt(u)
    }
}

impl From<usize> for Json {
    fn from(u: usize) -> Json {
        Json::UInt(u as u64)
    }
}

impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}

impl From<f64> for Json {
    fn from(f: f64) -> Json {
        Json::Float(f)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences appear
                    // only inside strings).
                    let start = self.pos;
                    let rest =
                        std::str::from_utf8(&self.bytes[start..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("empty string tail")?;
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if fractional {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|e| e.to_string())
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|e| e.to_string())
        } else {
            text.parse::<u64>()
                .map(Json::UInt)
                .map_err(|e| e.to_string())
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }
}

/// FNV-1a over a byte string: the digest primitive used for the
/// `state_digest` field of campaign reports. Deterministic and
/// platform-independent — never replace it with `DefaultHasher`, whose
/// output may change across Rust releases.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The FNV-1a offset basis: the starting value of an incremental
/// [`digest_lines`]-compatible fold.
pub(crate) const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds one line (and the newline separator) into an in-progress FNV-1a
/// digest: the incremental step of [`digest_lines`]. Feeding the same lines
/// in the same order produces the same hash, which is what lets the
/// scheduler's dirty-set digest cache skip re-*formatting* unchanged lines
/// without ever changing the digest value.
pub(crate) fn fold_digest_line(hash: &mut u64, line: &str) {
    for b in line.as_bytes() {
        *hash ^= *b as u64;
        *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    *hash ^= 0x0a;
    *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
}

/// Digests an iterator of labelled strings into one order-sensitive hash.
/// Callers feed per-process canonical state lines (sorted by process
/// identifier) to obtain a cross-mode comparable fingerprint.
pub fn digest_lines<I: IntoIterator<Item = String>>(lines: I) -> u64 {
    let mut hash: u64 = FNV_OFFSET_BASIS;
    for line in lines {
        fold_digest_line(&mut hash, &line);
    }
    hash
}

/// Renders `map` as a JSON object with keys in sorted order (helper for
/// callers aggregating counters).
pub fn obj_from_map(map: &BTreeMap<String, u64>) -> Json {
    let mut obj = Json::obj();
    for (k, v) in map {
        obj = obj.field(k, *v);
    }
    obj
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_deterministic_and_parses_back() {
        let doc = Json::obj()
            .field("name", "chaos")
            .field("count", 3u64)
            .field("ratio", 0.5)
            .field("ok", true)
            .field("none", Json::Null)
            .field(
                "runs",
                Json::Arr(vec![
                    Json::obj().field("seed", 1u64),
                    Json::obj().field("seed", 2u64),
                ]),
            );
        let a = doc.render();
        let b = doc.render();
        assert_eq!(a, b);
        let parsed = Json::parse(&a).unwrap();
        assert_eq!(parsed.get("name").and_then(Json::as_str), Some("chaos"));
        assert_eq!(parsed.get("count").and_then(Json::as_u64), Some(3));
        assert_eq!(parsed.get("ratio").and_then(Json::as_f64), Some(0.5));
        assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(parsed.get("runs").and_then(Json::as_arr).unwrap().len(), 2);
    }

    #[test]
    fn parses_the_bench_summary_shape() {
        let text = r#"{
            "bench": "sched_event_vs_roundscan",
            "sparse_traffic": [
                {"processes": 64, "rounds": 64, "event_ms": 0.182, "roundscan_ms": 1.2, "speedup": 6.6}
            ],
            "reconfig_1024": {"processes": 1024, "converged": true, "wall_ms": 28502.102}
        }"#;
        let doc = Json::parse(text).unwrap();
        let rows = doc.get("sparse_traffic").and_then(Json::as_arr).unwrap();
        assert_eq!(rows[0].get("processes").and_then(Json::as_u64), Some(64));
        assert_eq!(rows[0].get("speedup").and_then(Json::as_f64), Some(6.6));
        assert_eq!(
            doc.get("reconfig_1024")
                .and_then(|r| r.get("converged"))
                .and_then(Json::as_bool),
            Some(true)
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        let doc = Json::Str("a\"b\\c\nd\tüé".to_string());
        let text = doc.render();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn negative_and_float_numbers_parse() {
        let doc = Json::parse("[-3, 2.25, 1e2]").unwrap();
        let items = doc.as_arr().unwrap();
        assert_eq!(items[0], Json::Int(-3));
        assert_eq!(items[1], Json::Float(2.25));
        assert_eq!(items[2], Json::Float(100.0));
    }

    #[test]
    fn field_replaces_existing_key() {
        let doc = Json::obj().field("a", 1u64).field("a", 2u64);
        assert_eq!(doc.get("a").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn fnv_digest_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"chaos"), fnv1a(b"chaos"));
        assert_ne!(fnv1a(b"chaos"), fnv1a(b"order"));
        assert_ne!(
            digest_lines(["a".to_string(), "b".to_string()]),
            digest_lines(["ab".to_string()])
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("{} trailing").is_err());
    }
}

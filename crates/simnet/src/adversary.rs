//! Scripted transient-fault adversaries.
//!
//! Self-stabilization quantifies over *arbitrary* starting states, which a
//! test harness approximates by corrupting processor state and channel
//! contents at chosen points of an execution. Which fields exist and how to
//! corrupt them is protocol-specific, so the adversary is expressed as a
//! script of closures over the whole [`Simulation`]: each action runs at its
//! scheduled round (before the round executes) and may mutate any process
//! (via [`Simulation::process_mut`]) or channel (via
//! [`Simulation::network_mut`]).
//!
//! `ScriptedFaults` is a thin protocol-typed adapter on the edge of the
//! chaos engine: the open fault-plan API ([`crate::plan::FaultPlan`])
//! covers every declarative fault class — including crafted-message
//! injection, which used to be this module's main job and now lives in
//! [`crate::plan::ByzantinePlan`] — and
//! [`crate::scenario::run_scenario_with_extras`] applies a script *on top*
//! of a scenario only for white-box steps no protocol-agnostic plan can
//! express (arbitrary closures over the whole typed [`Simulation`], e.g.
//! asserting link state mid-run or rewriting a specific field of one
//! process).
//!
//! ```
//! use simnet::{ScriptedFaults, Simulation, SimConfig, Process, Context, ProcessId, Round};
//!
//! #[derive(Debug, Default)]
//! struct Holder { value: u64 }
//! impl Process for Holder {
//!     type Msg = ();
//!     fn on_timer(&mut self, _ctx: &mut Context<'_, ()>) {}
//!     fn on_message(&mut self, _f: ProcessId, _m: (), _ctx: &mut Context<'_, ()>) {}
//! }
//!
//! let mut sim = Simulation::new(SimConfig::default());
//! let victim = sim.add_process(Holder::default());
//! let mut faults = ScriptedFaults::new();
//! faults.at(Round::new(2), move |s: &mut Simulation<Holder>| {
//!     s.process_mut(victim).unwrap().value = 999; // arbitrary corruption
//! });
//! faults.drive(&mut sim, 5);
//! assert_eq!(sim.process(victim).unwrap().value, 999);
//! ```

use std::collections::BTreeMap;
use std::fmt;

use crate::process::Process;
use crate::scheduler::Simulation;
use crate::time::Round;

/// One scheduled adversarial action.
type Action<P> = Box<dyn FnMut(&mut Simulation<P>)>;

/// A script of transient-fault injections keyed by round.
pub struct ScriptedFaults<P: Process> {
    actions: BTreeMap<Round, Vec<Action<P>>>,
    applied: u64,
}

impl<P: Process> Default for ScriptedFaults<P> {
    fn default() -> Self {
        ScriptedFaults {
            actions: BTreeMap::new(),
            applied: 0,
        }
    }
}

impl<P: Process> fmt::Debug for ScriptedFaults<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScriptedFaults")
            .field("scheduled_rounds", &self.actions.len())
            .field(
                "scheduled_actions",
                &self.actions.values().map(Vec::len).sum::<usize>(),
            )
            .field("applied", &self.applied)
            .finish()
    }
}

impl<P: Process> ScriptedFaults<P> {
    /// Creates an empty script.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `action` to run just before round `round` executes.
    pub fn at(&mut self, round: Round, action: impl FnMut(&mut Simulation<P>) + 'static) {
        self.actions
            .entry(round)
            .or_default()
            .push(Box::new(action));
    }

    /// Number of actions applied so far.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Total number of scheduled actions (applied or not).
    pub fn scheduled(&self) -> usize {
        self.actions.values().map(Vec::len).sum()
    }

    /// The last round with a scheduled action. The scenario runner counts
    /// convergence only after this round, like the declarative plans.
    pub fn last_round(&self) -> Option<Round> {
        self.actions.keys().next_back().copied()
    }

    /// Runs the actions scheduled for exactly `round`.
    pub fn apply(&mut self, sim: &mut Simulation<P>, round: Round) {
        if let Some(actions) = self.actions.get_mut(&round) {
            for action in actions.iter_mut() {
                action(sim);
                self.applied += 1;
            }
        }
    }

    /// Convenience driver: runs `rounds` rounds of `sim`, applying the
    /// scheduled actions before each round.
    pub fn drive(&mut self, sim: &mut Simulation<P>, rounds: u64) {
        for _ in 0..rounds {
            let now = sim.now();
            self.apply(sim, now);
            sim.step_round();
        }
    }

    /// Convenience driver with early exit: like [`ScriptedFaults::drive`] but
    /// stops as soon as `done` returns `true` (checked after every round).
    /// Returns the number of rounds executed.
    pub fn drive_until(
        &mut self,
        sim: &mut Simulation<P>,
        max_rounds: u64,
        mut done: impl FnMut(&Simulation<P>) -> bool,
    ) -> u64 {
        for i in 0..max_rounds {
            let now = sim.now();
            self.apply(sim, now);
            sim.step_round();
            if done(sim) {
                return i + 1;
            }
        }
        max_rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::process::{Context, ProcessId};

    #[derive(Debug, Default)]
    struct Echo {
        value: u64,
        received: u64,
    }

    impl Process for Echo {
        type Msg = u64;
        fn on_timer(&mut self, ctx: &mut Context<'_, u64>) {
            for peer in ctx.peers() {
                ctx.send(peer, self.value);
            }
        }
        fn on_message(&mut self, _from: ProcessId, msg: u64, _ctx: &mut Context<'_, u64>) {
            self.received += 1;
            self.value = self.value.max(msg);
        }
    }

    #[test]
    fn actions_run_at_their_round_only() {
        let mut sim: Simulation<Echo> =
            Simulation::new(SimConfig::default().with_seed(1).with_max_delay(0));
        let a = sim.add_process(Echo::default());
        let mut faults: ScriptedFaults<Echo> = ScriptedFaults::new();
        faults.at(Round::new(3), move |s| {
            s.process_mut(a).unwrap().value = 42;
        });
        assert_eq!(faults.scheduled(), 1);
        faults.drive(&mut sim, 2);
        assert_eq!(sim.process(a).unwrap().value, 0);
        assert_eq!(faults.applied(), 0);
        faults.drive(&mut sim, 3);
        assert_eq!(sim.process(a).unwrap().value, 42);
        assert_eq!(faults.applied(), 1);
    }

    #[test]
    fn corruption_spreads_and_system_keeps_running() {
        let mut sim: Simulation<Echo> =
            Simulation::new(SimConfig::default().with_seed(2).with_max_delay(0));
        for _ in 0..4 {
            sim.add_process(Echo::default());
        }
        let mut faults: ScriptedFaults<Echo> = ScriptedFaults::new();
        faults.at(Round::new(1), |s: &mut Simulation<Echo>| {
            s.process_mut(ProcessId::new(2)).unwrap().value = 7;
        });
        // Channel corruption: inject a stale packet out of thin air (the
        // adversary may do this; the algorithms must cope).
        faults.at(Round::new(1), |s: &mut Simulation<Echo>| {
            s.network_mut()
                .inject(ProcessId::new(0), ProcessId::new(1), 5);
        });
        let rounds = faults.drive_until(&mut sim, 50, |s| s.processes().all(|(_, p)| p.value == 7));
        assert!(rounds < 50);
        assert_eq!(faults.applied(), 2);
    }

    #[test]
    fn multiple_actions_share_a_round() {
        let mut sim: Simulation<Echo> =
            Simulation::new(SimConfig::default().with_seed(3).with_max_delay(0));
        let a = sim.add_process(Echo::default());
        let b = sim.add_process(Echo::default());
        let mut faults: ScriptedFaults<Echo> = ScriptedFaults::new();
        faults.at(Round::ZERO, move |s: &mut Simulation<Echo>| {
            s.process_mut(a).unwrap().value = 1;
        });
        faults.at(Round::ZERO, move |s: &mut Simulation<Echo>| {
            s.process_mut(b).unwrap().value = 2;
        });
        faults.drive(&mut sim, 1);
        assert_eq!(faults.applied(), 2);
        assert!(format!("{faults:?}").contains("applied: 2"));
    }
}

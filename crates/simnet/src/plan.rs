//! The open fault-plan API: [`FaultPlan`], [`FaultAction`] and the
//! declarative Byzantine adversary ([`ByzantinePlan`]).
//!
//! The paper's adversary is open-ended — self-stabilization must hold under
//! *any* transient fault, including crafted (Byzantine-shaped) messages — so
//! the fault vocabulary cannot be a closed set of hard-coded scenario
//! fields. Every fault class is a [`FaultPlan`]: a declarative schedule that
//! turns rounds into typed [`FaultAction`]s. The scenario runner
//! ([`crate::scenario::run_scenario`]) applies the actions at round
//! boundaries in a fixed per-class phase order, counts them into an
//! extensible per-plan counter map, enforces the generic safety invariants
//! (packet conservation, cut asymmetry), and asks each plan for its
//! class-specific [`FaultPlan::invariant`] checks at the end of the run.
//!
//! All ten built-in fault classes ([`CrashPlan`], [`ChurnPlan`],
//! [`PartitionPlan`], [`AsymmetricCutPlan`], [`CorruptionPlan`],
//! [`SpikePlan`], [`GrayFailurePlan`], [`SkewPlan`],
//! [`PayloadCorruptionPlan`], [`RecoveryPlan`]) implement the trait here, and
//! [`ByzantinePlan`] — crafted-message injection through
//! [`crate::Network::inject`] — is the first fault class born on the open
//! API. [`registry`] lists them all; a test asserts every registered plan is
//! documented in `docs/FAULTS.md` and exercised by the catalog.
//!
//! # Writing your own fault plan
//!
//! A plan is a schedule: it decides *when* and *who*; the runner owns *how*.
//! Emit typed actions and the runner applies them with full bookkeeping —
//! confinement of joiners behind active cuts, counter accounting, packet
//! conservation — exactly as for the built-in classes:
//!
//! ```
//! use simnet::plan::{FaultAction, FaultPlan, PlanCtx, RunObservations};
//! use simnet::scenario::{run_scenario, Scenario};
//! use simnet::{ProcessId, Round, SchedulerMode};
//!
//! /// Crashes the highest-numbered initial processor every `period` rounds
//! /// until `until` — a rolling blackout no built-in plan expresses.
//! #[derive(Debug, Clone, Default)]
//! struct RollingBlackout {
//!     period: u64,
//!     until: u64,
//! }
//!
//! impl FaultPlan for RollingBlackout {
//!     fn kind(&self) -> &'static str {
//!         "rolling-blackout"
//!     }
//!     fn schedule(&self, round: Round, ctx: &PlanCtx) -> Vec<FaultAction> {
//!         let r = round.as_u64();
//!         if self.period > 0 && r < self.until && r % self.period == 0 && r > 0 {
//!             let victim = ctx.initial_size as u32 - 1 - (r / self.period) as u32 % 2;
//!             vec![FaultAction::Crash(ProcessId::new(victim))]
//!         } else {
//!             Vec::new()
//!         }
//!     }
//!     fn last_round(&self) -> Option<Round> {
//!         Some(Round::new(self.until))
//!     }
//!     fn events(&self) -> usize {
//!         if self.period == 0 { 0 } else { (self.until / self.period) as usize }
//!     }
//!     fn counter_keys(&self) -> Vec<&'static str> {
//!         vec!["crashes"]
//!     }
//!     fn invariant(&self, obs: &RunObservations) -> Vec<String> {
//!         // Class invariant: the blackout really landed.
//!         if self.period > 0 && obs.counters.get("crashes") == Some(&0) {
//!             vec!["rolling blackout crashed nobody".to_string()]
//!         } else {
//!             Vec::new()
//!         }
//!     }
//!     fn clone_plan(&self) -> Box<dyn FaultPlan> {
//!         Box::new(self.clone())
//!     }
//!     fn as_any(&self) -> &dyn std::any::Any {
//!         self
//!     }
//!     fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
//!         self
//!     }
//! }
//!
//! // The uniform builder accepts any FaultPlan — no engine edits needed.
//! let scenario = Scenario::new("blackout", 5)
//!     .with_plan(RollingBlackout { period: 4, until: 10 })
//!     .with_rounds(60);
//! let mut sim = scenario.build_sim::<simnet::plan::doctest::Gossip>(1, SchedulerMode::EventDriven);
//! let run = run_scenario(&scenario, &mut sim);
//! assert!(run.counter("crashes") >= 2);
//! assert!(run.invariant_violations.is_empty());
//! ```

use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::channel::ChannelPolicy;
use crate::fault::{
    CorruptionPlan, CrashPlan, GrayFailurePlan, PayloadCorruptionPlan, RecoveryPlan, SkewPlan,
    SpikePlan,
};
use crate::partition::{AsymmetricCutPlan, PartitionPlan};
use crate::process::ProcessId;
use crate::time::Round;
use crate::ChurnPlan;

/// What a plan may know when scheduling its actions: the scenario-level
/// context the runner passes to [`FaultPlan::schedule`].
#[derive(Debug, Clone)]
pub struct PlanCtx {
    /// The scenario's base (un-spiked) channel policy.
    pub base_policy: ChannelPolicy,
    /// The size of the scenario's initial population.
    pub initial_size: usize,
}

/// One typed fault action, produced by [`FaultPlan::schedule`] and applied
/// by the scenario runner. Actions are grouped into per-class *phases*
/// ([`FaultAction::phase`]) so composition order of plans never changes the
/// class order faults land in within a round.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultAction {
    /// Heal every symmetric split (and re-assert still-active one-way cuts).
    HealSplits,
    /// Partition the population into the given groups (both directions cut
    /// between groups).
    Split(Vec<Vec<ProcessId>>),
    /// Heal every one-way cut currently in force (and re-assert still-active
    /// symmetric splits).
    HealOneway,
    /// Block only the links from the first group towards the second.
    CutOneway {
        /// Senders whose packets stop arriving.
        from: Vec<ProcessId>,
        /// Receivers that go deaf towards `from`.
        to: Vec<ProcessId>,
    },
    /// Switch every channel to this policy (spike windows compose inside the
    /// emitting plan; the action carries the already-composed policy).
    SetPolicy(ChannelPolicy),
    /// Set (or with `None` restore) a windowed timer-period override.
    /// Composes with any registered floor: the slower period wins.
    SetTimer {
        /// The slowed processor.
        victim: ProcessId,
        /// Desired period, `None` to restore the base rate.
        period: Option<u64>,
    },
    /// Register a *permanent* timer-period floor: a windowed restore never
    /// drops the victim below it.
    SetTimerFloor {
        /// The permanently skewed processor.
        victim: ProcessId,
        /// The floor period.
        period: u64,
    },
    /// Crash a processor (fail-stop, forever).
    Crash(ProcessId),
    /// Admit `count` fresh joiners through the protocol's joining path.
    Join {
        /// Number of joiners.
        count: u32,
    },
    /// Re-admit `count` crash-recovered processors under fresh identifiers.
    Rejoin {
        /// Number of recovering processors.
        count: u32,
    },
    /// Corrupt the local state of a processor
    /// ([`crate::scenario::ScenarioTarget::corrupt`]).
    CorruptState(ProcessId),
    /// Corrupt the payloads of every packet in flight towards a processor
    /// ([`crate::scenario::ScenarioTarget::corrupt_payload`]).
    CorruptPayloads(ProcessId),
    /// Inject one crafted packet through [`crate::Network::inject`]: the
    /// Byzantine adversary. The payload is forged by the runner
    /// ([`ForgeKind::Replay`]) or the protocol
    /// ([`crate::scenario::ScenarioTarget::forge_payload`]).
    Inject {
        /// The sender the packet *claims* to come from.
        claimed_sender: ProcessId,
        /// The destination.
        target: ProcessId,
        /// What shape of crafted payload to inject.
        forge: ForgeKind,
    },
}

impl FaultAction {
    /// The application phase of this action within a round. The runner
    /// applies all due actions sorted (stably) by phase, so fault classes
    /// always land in the same order regardless of plan composition order:
    /// connectivity first, then timers, crashes, churn, corruption,
    /// injection.
    pub fn phase(&self) -> u8 {
        match self {
            FaultAction::HealSplits | FaultAction::Split(_) => 1,
            FaultAction::HealOneway | FaultAction::CutOneway { .. } => 2,
            FaultAction::SetPolicy(_) => 3,
            FaultAction::SetTimer { .. } | FaultAction::SetTimerFloor { .. } => 4,
            FaultAction::Crash(_) => 5,
            FaultAction::Join { .. } | FaultAction::Rejoin { .. } => 6,
            FaultAction::CorruptState(_) => 7,
            FaultAction::CorruptPayloads(_) => 8,
            FaultAction::Inject { .. } => 9,
        }
    }

    /// The counter key this action feeds in the run's counter map, if any.
    /// Counting semantics per key are the runner's: `crashes`, `joins`,
    /// `recoveries`, `splits` and `oneway_cuts` count applied actions;
    /// `spikes` counts switches to a spiked (non-base) policy, so a
    /// window's closing restore is not re-counted; `slowdowns` counts
    /// full-speed → slowed transitions;
    /// `corruptions` counts victims actually corrupted;
    /// `payload_corruptions` counts packets exposed to corruption;
    /// `injections` counts packets actually injected.
    pub fn counter_key(&self) -> Option<&'static str> {
        match self {
            FaultAction::Crash(_) => Some("crashes"),
            FaultAction::Join { .. } => Some("joins"),
            FaultAction::Rejoin { .. } => Some("recoveries"),
            FaultAction::Split(_) => Some("splits"),
            FaultAction::CutOneway { .. } => Some("oneway_cuts"),
            FaultAction::SetPolicy(_) => Some("spikes"),
            FaultAction::SetTimer { .. } | FaultAction::SetTimerFloor { .. } => Some("slowdowns"),
            FaultAction::CorruptState(_) => Some("corruptions"),
            FaultAction::CorruptPayloads(_) => Some("payload_corruptions"),
            FaultAction::Inject { .. } => Some("injections"),
            FaultAction::HealSplits | FaultAction::HealOneway => None,
        }
    }
}

/// What the runner observed while applying a plan's actions — the input to
/// the end-of-run [`FaultPlan::invariant`] checks.
///
/// Timer-step snapshots are recorded for every victim of every due timer
/// action at that round, *before* the round's actions apply, so plans can
/// bound how many steps a slowed processor took inside a window.
#[derive(Debug, Clone, Default)]
pub struct RunObservations {
    /// Timer steps of `(round, victim)` at each round where a timer action
    /// touched the victim.
    pub timer_steps_at: BTreeMap<(Round, ProcessId), u64>,
    /// The round the run ended at.
    pub end_round: Round,
    /// Final timer steps of every known processor.
    pub final_timer_steps: BTreeMap<ProcessId, u64>,
    /// Final timer-period overrides still in force.
    pub final_timer_overrides: BTreeMap<ProcessId, u64>,
    /// Identifiers active at the end of the run.
    pub final_active: BTreeSet<ProcessId>,
    /// The run's final fault counters.
    pub counters: BTreeMap<String, u64>,
}

/// An open fault class: a declarative schedule of typed [`FaultAction`]s
/// plus its class-specific safety check and counter registration.
///
/// Implementations stay protocol-agnostic — everything protocol-specific
/// (how to corrupt state, how to forge a payload, how to build a joiner)
/// lives behind [`crate::scenario::ScenarioTarget`], dispatched by the
/// runner when it applies the actions. See the [module docs](self) for a
/// worked custom-plan example.
///
/// `Send` is a supertrait: a [`crate::Scenario`] owns its plans, and the
/// parallel campaign driver ([`crate::Campaign::with_jobs`]) ships each
/// (scenario, seed) cell — scenario clone included — to a worker thread of
/// the [`crate::exec`] pool. Plans are declarative schedules (plain data),
/// so the bound costs implementations nothing; a plan that wants shared
/// mutable state must use `Arc<Mutex<…>>` rather than `Rc`/`RefCell`.
pub trait FaultPlan: fmt::Debug + Send {
    /// Short machine-readable class name (`simctl list`, registry test).
    fn kind(&self) -> &'static str;

    /// The actions due at exactly `round`, in application order.
    fn schedule(&self, round: Round, ctx: &PlanCtx) -> Vec<FaultAction>;

    /// The last round at which this plan acts (convergence is counted only
    /// after every plan's last round).
    fn last_round(&self) -> Option<Round>;

    /// Total number of scheduled fault events (for listings).
    fn events(&self) -> usize;

    /// The counter keys this plan feeds; they appear in the run's counter
    /// map even when zero, so report shapes are schedule-independent.
    fn counter_keys(&self) -> Vec<&'static str>;

    /// Class-specific safety violations, evaluated at the end of a run
    /// against what the runner observed. The default has no extra checks
    /// (the runner already enforces the generic invariants: packet
    /// conservation, cut asymmetry, joiner confinement).
    fn invariant(&self, obs: &RunObservations) -> Vec<String> {
        let _ = obs;
        Vec::new()
    }

    /// Clones the plan behind the trait object.
    fn clone_plan(&self) -> Box<dyn FaultPlan>;

    /// Upcast for scenario builder conveniences.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast for scenario builder conveniences.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl Clone for Box<dyn FaultPlan> {
    fn clone(&self) -> Self {
        self.clone_plan()
    }
}

/// Registry of the built-in fault classes: `(Rust type name, plan kind)`.
/// The atlas-completeness test asserts every entry is documented in
/// `docs/FAULTS.md` and appears in at least one catalog scenario.
pub fn registry() -> Vec<(&'static str, &'static str)> {
    vec![
        ("CrashPlan", "crash"),
        ("ChurnPlan", "churn"),
        ("PartitionPlan", "partition"),
        ("AsymmetricCutPlan", "oneway-cut"),
        ("CorruptionPlan", "state-corruption"),
        ("SpikePlan", "spike"),
        ("GrayFailurePlan", "gray-failure"),
        ("SkewPlan", "clock-skew"),
        ("PayloadCorruptionPlan", "payload-corruption"),
        ("RecoveryPlan", "crash-recovery"),
        ("ByzantinePlan", "byzantine"),
    ]
}

macro_rules! plan_boilerplate {
    () => {
        fn clone_plan(&self) -> Box<dyn FaultPlan> {
            Box::new(self.clone())
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    };
}

impl FaultPlan for CrashPlan {
    fn kind(&self) -> &'static str {
        "crash"
    }
    fn schedule(&self, round: Round, _ctx: &PlanCtx) -> Vec<FaultAction> {
        self.due(round)
            .iter()
            .copied()
            .map(FaultAction::Crash)
            .collect()
    }
    fn last_round(&self) -> Option<Round> {
        CrashPlan::last_round(self)
    }
    fn events(&self) -> usize {
        self.total()
    }
    fn counter_keys(&self) -> Vec<&'static str> {
        vec!["crashes"]
    }
    plan_boilerplate!();
}

impl FaultPlan for ChurnPlan {
    fn kind(&self) -> &'static str {
        "churn"
    }
    fn schedule(&self, round: Round, _ctx: &PlanCtx) -> Vec<FaultAction> {
        match self.due(round) {
            0 => Vec::new(),
            count => vec![FaultAction::Join { count }],
        }
    }
    fn last_round(&self) -> Option<Round> {
        ChurnPlan::last_round(self)
    }
    fn events(&self) -> usize {
        self.total() as usize
    }
    fn counter_keys(&self) -> Vec<&'static str> {
        vec!["joins"]
    }
    plan_boilerplate!();
}

impl FaultPlan for PartitionPlan {
    fn kind(&self) -> &'static str {
        "partition"
    }
    fn schedule(&self, round: Round, _ctx: &PlanCtx) -> Vec<FaultAction> {
        let mut actions = Vec::new();
        if self.heals_at(round) {
            actions.push(FaultAction::HealSplits);
        }
        for groups in self.splits_due(round) {
            actions.push(FaultAction::Split(groups.clone()));
        }
        actions
    }
    fn last_round(&self) -> Option<Round> {
        PartitionPlan::last_round(self)
    }
    fn events(&self) -> usize {
        self.total_splits()
    }
    fn counter_keys(&self) -> Vec<&'static str> {
        vec!["splits"]
    }
    plan_boilerplate!();
}

impl FaultPlan for AsymmetricCutPlan {
    fn kind(&self) -> &'static str {
        "oneway-cut"
    }
    fn schedule(&self, round: Round, _ctx: &PlanCtx) -> Vec<FaultAction> {
        let mut actions = Vec::new();
        if self.heals_at(round) {
            actions.push(FaultAction::HealOneway);
        }
        for (from, to) in self.cuts_due(round) {
            actions.push(FaultAction::CutOneway {
                from: from.clone(),
                to: to.clone(),
            });
        }
        actions
    }
    fn last_round(&self) -> Option<Round> {
        AsymmetricCutPlan::last_round(self)
    }
    fn events(&self) -> usize {
        self.total_cuts()
    }
    fn counter_keys(&self) -> Vec<&'static str> {
        vec!["oneway_cuts"]
    }
    plan_boilerplate!();
}

impl FaultPlan for CorruptionPlan {
    fn kind(&self) -> &'static str {
        "state-corruption"
    }
    fn schedule(&self, round: Round, _ctx: &PlanCtx) -> Vec<FaultAction> {
        self.due(round)
            .iter()
            .copied()
            .map(FaultAction::CorruptState)
            .collect()
    }
    fn last_round(&self) -> Option<Round> {
        CorruptionPlan::last_round(self)
    }
    fn events(&self) -> usize {
        self.total()
    }
    fn counter_keys(&self) -> Vec<&'static str> {
        vec!["corruptions"]
    }
    plan_boilerplate!();
}

impl FaultPlan for SpikePlan {
    fn kind(&self) -> &'static str {
        "spike"
    }
    fn schedule(&self, round: Round, ctx: &PlanCtx) -> Vec<FaultAction> {
        match self.due(round, &ctx.base_policy) {
            Some(policy) => vec![FaultAction::SetPolicy(policy)],
            None => Vec::new(),
        }
    }
    fn last_round(&self) -> Option<Round> {
        SpikePlan::last_round(self)
    }
    fn events(&self) -> usize {
        self.total()
    }
    fn counter_keys(&self) -> Vec<&'static str> {
        vec!["spikes"]
    }
    plan_boilerplate!();
}

impl FaultPlan for GrayFailurePlan {
    fn kind(&self) -> &'static str {
        "gray-failure"
    }
    fn schedule(&self, round: Round, _ctx: &PlanCtx) -> Vec<FaultAction> {
        match self.due(round) {
            None => Vec::new(),
            Some(desired) => desired
                .into_iter()
                .map(|(victim, period)| FaultAction::SetTimer { victim, period })
                .collect(),
        }
    }
    fn last_round(&self) -> Option<Round> {
        GrayFailurePlan::last_round(self)
    }
    fn events(&self) -> usize {
        self.total()
    }
    fn counter_keys(&self) -> Vec<&'static str> {
        vec!["slowdowns"]
    }
    /// The victim really ran slower: its timer steps over each window fit
    /// the slowed period's budget.
    fn invariant(&self, obs: &RunObservations) -> Vec<String> {
        let mut violations = Vec::new();
        for (start, end, victims, period) in self.windows() {
            if end == start {
                continue;
            }
            for v in victims {
                let (Some(baseline), Some(steps_then)) = (
                    obs.timer_steps_at.get(&(*start, *v)),
                    obs.timer_steps_at.get(&(*end, *v)),
                ) else {
                    continue;
                };
                let steps = steps_then - baseline;
                let budget = (*end - *start) / *period + 2;
                if steps > budget {
                    violations.push(format!(
                        "gray failure had no effect: {v} took {steps} timer steps in \
                         [{start}, {end}) at period {period} (budget {budget})"
                    ));
                }
            }
        }
        violations
    }
    plan_boilerplate!();
}

impl FaultPlan for SkewPlan {
    fn kind(&self) -> &'static str {
        "clock-skew"
    }
    fn schedule(&self, round: Round, _ctx: &PlanCtx) -> Vec<FaultAction> {
        self.due(round)
            .iter()
            .map(|(victim, period)| FaultAction::SetTimerFloor {
                victim: *victim,
                period: *period,
            })
            .collect()
    }
    fn last_round(&self) -> Option<Round> {
        SkewPlan::last_round(self)
    }
    fn events(&self) -> usize {
        self.total()
    }
    fn counter_keys(&self) -> Vec<&'static str> {
        vec!["slowdowns"]
    }
    /// A skewed processor is slow, not dead: given enough rounds it must
    /// have taken timer steps at its skewed rate.
    fn invariant(&self, obs: &RunObservations) -> Vec<String> {
        let mut violations = Vec::new();
        for (since, v, _) in self.all_skews() {
            let Some(baseline) = obs.timer_steps_at.get(&(since, v)) else {
                continue;
            };
            if !obs.final_active.contains(&v) {
                continue;
            }
            let elapsed = obs.end_round.saturating_since(since);
            let period = obs.final_timer_overrides.get(&v).copied().unwrap_or(1);
            if elapsed >= 2 * period {
                let steps = obs.final_timer_steps.get(&v).unwrap_or(baseline) - baseline;
                if steps == 0 {
                    violations.push(format!(
                        "skewed processor {v} took no timer steps since round {since}"
                    ));
                }
            }
        }
        violations
    }
    plan_boilerplate!();
}

impl FaultPlan for PayloadCorruptionPlan {
    fn kind(&self) -> &'static str {
        "payload-corruption"
    }
    fn schedule(&self, round: Round, _ctx: &PlanCtx) -> Vec<FaultAction> {
        self.due(round)
            .iter()
            .copied()
            .map(FaultAction::CorruptPayloads)
            .collect()
    }
    fn last_round(&self) -> Option<Round> {
        PayloadCorruptionPlan::last_round(self)
    }
    fn events(&self) -> usize {
        self.total()
    }
    fn counter_keys(&self) -> Vec<&'static str> {
        vec!["payload_corruptions"]
    }
    plan_boilerplate!();
}

impl FaultPlan for RecoveryPlan {
    fn kind(&self) -> &'static str {
        "crash-recovery"
    }
    fn schedule(&self, round: Round, _ctx: &PlanCtx) -> Vec<FaultAction> {
        let mut actions: Vec<FaultAction> = self
            .crashes_due(round)
            .iter()
            .copied()
            .map(FaultAction::Crash)
            .collect();
        match self.rejoins_due(round) {
            0 => {}
            count => actions.push(FaultAction::Rejoin { count }),
        }
        actions
    }
    fn last_round(&self) -> Option<Round> {
        RecoveryPlan::last_round(self)
    }
    fn events(&self) -> usize {
        self.total()
    }
    fn counter_keys(&self) -> Vec<&'static str> {
        vec!["crashes", "recoveries"]
    }
    /// The old identifier stays dead forever — recovery means a fresh
    /// identifier, never resurrection.
    fn invariant(&self, obs: &RunObservations) -> Vec<String> {
        self.all_victims()
            .filter(|victim| obs.final_active.contains(victim))
            .map(|victim| {
                format!(
                    "crash-recovered processor {victim} is still active under its old identifier"
                )
            })
            .collect()
    }
    plan_boilerplate!();
}

/// What shape of crafted payload a [`ByzantinePlan`] injection carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ForgeKind {
    /// Replay: an exact copy of a packet currently in flight towards the
    /// target, re-injected under the claimed sender. Handled by the runner,
    /// protocol-agnostically — a replayed packet is always wire-valid.
    Replay,
    /// A syntactically minimal packet attributed to the claimed sender —
    /// typically a bare heartbeat keeping a dead or never-existing
    /// processor "alive" in the failure detectors. Forged by
    /// [`crate::scenario::ScenarioTarget::forge_payload`].
    ForgedSender,
    /// Protocol-specific stale or equivocating state: a stale view, a
    /// label-equivocating counter, a tag-equal-but-different register value.
    /// Forged by [`crate::scenario::ScenarioTarget::forge_payload`]; the
    /// protocol must refuse to *adopt* it into honest state.
    StaleState,
}

impl ForgeKind {
    /// The machine-readable name (`simctl run --plan byzantine=...`).
    pub fn name(self) -> &'static str {
        match self {
            ForgeKind::Replay => "replay",
            ForgeKind::ForgedSender => "forged-sender",
            ForgeKind::StaleState => "stale-state",
        }
    }

    /// Parses a machine-readable name.
    pub fn parse(name: &str) -> Option<ForgeKind> {
        match name {
            "replay" => Some(ForgeKind::Replay),
            "forged-sender" | "forge" => Some(ForgeKind::ForgedSender),
            "stale-state" | "stale" => Some(ForgeKind::StaleState),
            _ => None,
        }
    }
}

/// The declarative Byzantine adversary: a schedule of crafted-message
/// injections through [`crate::Network::inject`]. Each event names the
/// round, the sender the packet claims to come from, the destination, and
/// the [`ForgeKind`] of the payload; the payload itself is forged at
/// injection time — by the runner for replays, by the protocol's
/// [`crate::scenario::ScenarioTarget::forge_payload`] otherwise — so one
/// plan drives all four node types.
///
/// Injection is the one fault class that *creates* packets; the runner's
/// packet-conservation invariant counts them explicitly (in-flight delta per
/// round must equal the number of injected packets) instead of forbidding
/// creation outright.
///
/// ```
/// use simnet::plan::{ByzantinePlan, ForgeKind};
/// use simnet::{ProcessId, Round};
/// let plan = ByzantinePlan::new()
///     .inject_at(Round::new(10), ForgeKind::Replay, ProcessId::new(2), [ProcessId::new(0)])
///     .inject_at(Round::new(12), ForgeKind::ForgedSender, ProcessId::new(9), [ProcessId::new(1)]);
/// assert_eq!(plan.total(), 2);
/// assert_eq!(plan.last_round(), Some(Round::new(12)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ByzantinePlan {
    schedule: BTreeMap<Round, Vec<(ForgeKind, ProcessId, ProcessId)>>,
}

impl ByzantinePlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules one crafted packet per target at `round`, each claiming to
    /// come from `claimed_sender` (builder style).
    pub fn inject_at(
        mut self,
        round: Round,
        forge: ForgeKind,
        claimed_sender: ProcessId,
        targets: impl IntoIterator<Item = ProcessId>,
    ) -> Self {
        self.schedule
            .entry(round)
            .or_default()
            .extend(targets.into_iter().map(|t| (forge, claimed_sender, t)));
        self
    }

    /// The injections scheduled for exactly `round`.
    pub fn due(&self, round: Round) -> &[(ForgeKind, ProcessId, ProcessId)] {
        self.schedule.get(&round).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total number of scheduled injections.
    pub fn total(&self) -> usize {
        self.schedule.values().map(Vec::len).sum()
    }

    /// The last round with a scheduled injection.
    pub fn last_round(&self) -> Option<Round> {
        self.schedule.keys().next_back().copied()
    }
}

impl FaultPlan for ByzantinePlan {
    fn kind(&self) -> &'static str {
        "byzantine"
    }
    fn schedule(&self, round: Round, _ctx: &PlanCtx) -> Vec<FaultAction> {
        self.due(round)
            .iter()
            .map(|(forge, claimed_sender, target)| FaultAction::Inject {
                claimed_sender: *claimed_sender,
                target: *target,
                forge: *forge,
            })
            .collect()
    }
    fn last_round(&self) -> Option<Round> {
        ByzantinePlan::last_round(self)
    }
    fn events(&self) -> usize {
        self.total()
    }
    fn counter_keys(&self) -> Vec<&'static str> {
        vec!["injections"]
    }
    // Injection accounting is the runner's generic conservation invariant
    // (per round, the in-flight delta must equal the declared injections),
    // which attributes packets to the action that created them — a
    // per-plan comparison against the shared `injections` counter would
    // misfire as soon as two Byzantine plans compose.
    plan_boilerplate!();
}

/// Support for the module-level doctest (a minimal public scenario target).
/// Hidden from the docs; not part of the stable API.
#[doc(hidden)]
pub mod doctest {
    use crate::process::{Context, Process, ProcessId};
    use crate::rng::SimRng;
    use crate::scenario::ScenarioTarget;
    use crate::scheduler::Simulation;

    /// Max-flood gossip target used by the fault-plan doctest.
    #[derive(Debug)]
    pub struct Gossip {
        value: u64,
    }

    impl Process for Gossip {
        type Msg = u64;
        fn on_timer(&mut self, ctx: &mut Context<'_, u64>) {
            for peer in ctx.peers() {
                ctx.send(peer, self.value);
            }
        }
        fn on_message(&mut self, _from: ProcessId, msg: u64, _ctx: &mut Context<'_, u64>) {
            self.value = self.value.max(msg);
        }
    }

    impl ScenarioTarget for Gossip {
        const NAME: &'static str = "gossip";
        fn spawn_initial(id: ProcessId, _n: usize) -> Self {
            Gossip {
                value: id.as_u32() as u64,
            }
        }
        fn spawn_joiner(_id: ProcessId, _n: usize) -> Self {
            Gossip { value: 0 }
        }
        fn corrupt(&mut self, rng: &mut SimRng) {
            self.value = rng.range_inclusive(100, 200);
        }
        fn converged(sim: &Simulation<Self>) -> bool {
            let mut values = sim.active_processes().map(|(_, p)| p.value);
            let first = values.next();
            values.all(|v| Some(v) == first)
        }
        fn invariant_violations(_sim: &Simulation<Self>) -> Vec<String> {
            Vec::new()
        }
        fn state_line(id: ProcessId, p: &Self) -> String {
            format!("{id} {}", p.value)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> PlanCtx {
        PlanCtx {
            base_policy: ChannelPolicy::default(),
            initial_size: 4,
        }
    }

    #[test]
    fn registry_covers_every_builtin_plan_kind() {
        let kinds: Vec<&str> = registry().iter().map(|(_, kind)| *kind).collect();
        let plans: Vec<Box<dyn FaultPlan>> = vec![
            Box::new(CrashPlan::new()),
            Box::new(ChurnPlan::new()),
            Box::new(PartitionPlan::new()),
            Box::new(AsymmetricCutPlan::new()),
            Box::new(CorruptionPlan::new()),
            Box::new(SpikePlan::new()),
            Box::new(GrayFailurePlan::new()),
            Box::new(SkewPlan::new()),
            Box::new(PayloadCorruptionPlan::new()),
            Box::new(RecoveryPlan::new()),
            Box::new(ByzantinePlan::new()),
        ];
        assert_eq!(plans.len(), registry().len());
        for plan in &plans {
            assert!(
                kinds.contains(&plan.kind()),
                "{} missing from registry",
                plan.kind()
            );
            assert_eq!(plan.events(), 0);
            assert_eq!(plan.last_round(), None);
            // Cloning through the trait object preserves the kind.
            assert_eq!(plan.clone_plan().kind(), plan.kind());
        }
    }

    #[test]
    fn schedule_translates_plan_events_into_typed_actions() {
        let p = |i: u32| ProcessId::new(i);
        let crash = CrashPlan::new().crash_at(Round::new(3), p(1));
        assert_eq!(
            crash.schedule(Round::new(3), &ctx()),
            vec![FaultAction::Crash(p(1))]
        );
        assert!(crash.schedule(Round::new(2), &ctx()).is_empty());

        let churn = ChurnPlan::new().join_at(Round::new(5), 2);
        assert_eq!(
            churn.schedule(Round::new(5), &ctx()),
            vec![FaultAction::Join { count: 2 }]
        );

        let recovery = RecoveryPlan::new().crash_recover_at(Round::new(1), [p(2)], 4);
        assert_eq!(
            recovery.schedule(Round::new(1), &ctx()),
            vec![FaultAction::Crash(p(2))]
        );
        assert_eq!(
            recovery.schedule(Round::new(5), &ctx()),
            vec![FaultAction::Rejoin { count: 1 }]
        );

        let byz = ByzantinePlan::new().inject_at(Round::new(7), ForgeKind::Replay, p(0), [p(3)]);
        assert_eq!(
            byz.schedule(Round::new(7), &ctx()),
            vec![FaultAction::Inject {
                claimed_sender: p(0),
                target: p(3),
                forge: ForgeKind::Replay
            }]
        );
    }

    #[test]
    fn action_phases_order_the_fault_classes() {
        let p = ProcessId::new(0);
        let actions = [
            FaultAction::HealSplits,
            FaultAction::CutOneway {
                from: vec![p],
                to: vec![p],
            },
            FaultAction::SetPolicy(ChannelPolicy::default()),
            FaultAction::SetTimer {
                victim: p,
                period: None,
            },
            FaultAction::Crash(p),
            FaultAction::Join { count: 1 },
            FaultAction::CorruptState(p),
            FaultAction::CorruptPayloads(p),
            FaultAction::Inject {
                claimed_sender: p,
                target: p,
                forge: ForgeKind::Replay,
            },
        ];
        let phases: Vec<u8> = actions.iter().map(FaultAction::phase).collect();
        let mut sorted = phases.clone();
        sorted.sort_unstable();
        assert_eq!(phases, sorted, "class order is connectivity → injection");
    }

    #[test]
    fn forge_kind_names_round_trip() {
        for kind in [
            ForgeKind::Replay,
            ForgeKind::ForgedSender,
            ForgeKind::StaleState,
        ] {
            assert_eq!(ForgeKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(ForgeKind::parse("nonsense"), None);
    }
}

//! Lightweight execution tracing.
//!
//! A [`Trace`] records coarse-grained scheduler events (rounds, crashes,
//! joins, deliveries) into a bounded ring buffer. Tracing is disabled by
//! default; tests and examples enable it to explain an execution after the
//! fact.

use std::collections::VecDeque;

use crate::process::ProcessId;
use crate::time::Round;

/// One recorded scheduler event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A new round began.
    RoundStarted(Round),
    /// A processor joined the simulation.
    Joined(ProcessId),
    /// A processor crashed.
    Crashed(ProcessId),
    /// A packet from `from` was delivered to `to`.
    Delivered {
        /// Sender of the packet.
        from: ProcessId,
        /// Receiver of the packet.
        to: ProcessId,
    },
    /// A processor took a timer step.
    TimerStep(ProcessId),
}

/// A bounded log of [`TraceEvent`]s.
#[derive(Debug, Clone)]
pub struct Trace {
    enabled: bool,
    capacity: usize,
    events: VecDeque<TraceEvent>,
}

impl Default for Trace {
    fn default() -> Self {
        Trace {
            enabled: false,
            capacity: 4096,
            events: VecDeque::new(),
        }
    }
}

impl Trace {
    /// Creates a disabled trace with the default capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an enabled trace holding at most `capacity` events.
    pub fn enabled_with_capacity(capacity: usize) -> Self {
        Trace {
            enabled: true,
            capacity,
            events: VecDeque::new(),
        }
    }

    /// Enables or disables recording.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Returns `true` when events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event (dropping the oldest if the buffer is full).
    pub fn record(&mut self, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        if self.events.len() >= self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(event);
    }

    /// Iterates over the recorded events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of recorded events currently retained.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` when no event is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Counts the crashes recorded so far.
    pub fn crash_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Crashed(_)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new();
        t.record(TraceEvent::RoundStarted(Round::ZERO));
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_trace_records_events_in_order() {
        let mut t = Trace::enabled_with_capacity(10);
        t.record(TraceEvent::RoundStarted(Round::ZERO));
        t.record(TraceEvent::Crashed(ProcessId::new(1)));
        let events: Vec<_> = t.iter().cloned().collect();
        assert_eq!(
            events,
            vec![
                TraceEvent::RoundStarted(Round::ZERO),
                TraceEvent::Crashed(ProcessId::new(1)),
            ]
        );
        assert_eq!(t.crash_count(), 1);
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let mut t = Trace::enabled_with_capacity(2);
        for i in 0..5 {
            t.record(TraceEvent::RoundStarted(Round::new(i)));
        }
        assert_eq!(t.len(), 2);
        let first = t.iter().next().cloned().unwrap();
        assert_eq!(first, TraceEvent::RoundStarted(Round::new(3)));
    }

    #[test]
    fn toggling_enabled() {
        let mut t = Trace::new();
        t.set_enabled(true);
        t.record(TraceEvent::TimerStep(ProcessId::new(0)));
        t.set_enabled(false);
        t.record(TraceEvent::TimerStep(ProcessId::new(1)));
        assert_eq!(t.len(), 1);
    }
}

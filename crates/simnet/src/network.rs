//! The fully connected network: one [`Channel`] per ordered pair of
//! processors.

use std::collections::{BTreeMap, BTreeSet};

use crate::channel::{Channel, ChannelPolicy, SendOutcome};
use crate::metrics::Metrics;
use crate::payload::Payload;
use crate::process::ProcessId;
use crate::rng::SimRng;
use crate::time::Round;

/// A sorted set of sender identifiers, stored flat.
///
/// This is the value type of the per-destination inbound index. The index
/// used to be a `BTreeSet` pruned on every delivery and re-populated on every
/// send; at steady state that remove/insert cycle freed and reallocated tree
/// nodes hundreds of times per round and dominated the simulator's allocation
/// profile. The flat set is *never* pruned on the hot path: senders
/// accumulate monotonically (membership is checked against the actual channel
/// contents at read time), inserts of an already-known sender are free, and
/// structural removal happens only in the cold white-box paths
/// ([`Network::clear_channel`], [`Network::clear_all`]). Steady-state sends
/// and deliveries therefore touch the allocator exactly zero times.
#[derive(Debug, Clone, Default)]
struct SenderSet(Vec<ProcessId>);

impl SenderSet {
    /// Inserts `id`, keeping the set sorted. No-op when already present.
    fn insert(&mut self, id: ProcessId) {
        if let Err(at) = self.0.binary_search(&id) {
            self.0.insert(at, id);
        }
    }

    /// Removes `id` if present (cold path: white-box channel clears).
    fn remove(&mut self, id: ProcessId) {
        if let Ok(at) = self.0.binary_search(&id) {
            self.0.remove(at);
        }
    }

    /// The senders in ascending order.
    fn iter(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.0.iter().copied()
    }
}

/// The collection of unidirectional channels between every ordered pair of
/// processors. Channels are created lazily when first used, so the network
/// grows as processors join.
///
/// Individual links can be *blocked* to model network partitions: packets
/// sent over a blocked link are silently dropped (and counted as lost) until
/// the link is unblocked. Packets already in flight when the link is blocked
/// stay in the channel and are delivered once the partition heals, matching
/// the paper's model in which channels keep their (bounded) contents across
/// connectivity changes.
#[derive(Debug, Clone)]
pub struct Network<M> {
    policy: ChannelPolicy,
    channels: BTreeMap<(ProcessId, ProcessId), Channel<M>>,
    blocked: BTreeSet<(ProcessId, ProcessId)>,
    /// Per-destination index of senders whose channel may hold packets.
    /// Conservative — a listed channel can be empty (drained, or cleared
    /// white-box); emptiness is checked against the channel itself at read
    /// time, never by pruning the index on the hot path (see [`SenderSet`]).
    /// The event-driven scheduler reads this instead of scanning every
    /// channel in the network.
    inbound: BTreeMap<ProcessId, SenderSet>,
    /// Destinations whose incoming channels were mutated outside the normal
    /// send path (injection, white-box channel access). The scheduler drains
    /// this to wake the affected processes.
    dirty: BTreeSet<ProcessId>,
    /// Scratch sender list recycled across [`Network::deliver_due_into`]
    /// calls so steady-state delivery performs no allocation.
    scratch_senders: Vec<ProcessId>,
}

impl<M: Clone> Network<M> {
    /// Creates an empty network whose channels all follow `policy`.
    pub fn new(policy: ChannelPolicy) -> Self {
        Network {
            policy,
            channels: BTreeMap::new(),
            blocked: BTreeSet::new(),
            inbound: BTreeMap::new(),
            dirty: BTreeSet::new(),
            scratch_senders: Vec::new(),
        }
    }

    /// The shared channel policy.
    pub fn policy(&self) -> &ChannelPolicy {
        &self.policy
    }

    /// Replaces the policy of every channel — existing and future. Packets
    /// already in flight keep their assigned delivery rounds. The scenario
    /// engine uses this to model message-drop/duplication/delay *spikes*
    /// (see [`crate::fault::SpikePlan`]); the change is applied at a round
    /// boundary, so executions stay byte-identical across scheduler modes.
    pub fn set_policy(&mut self, policy: ChannelPolicy) {
        for channel in self.channels.values_mut() {
            channel.set_policy(policy.clone());
        }
        self.policy = policy;
    }

    /// Blocks the unidirectional link `from → to`: subsequent sends over it
    /// are dropped until [`Network::unblock_link`] (or
    /// [`Network::heal_all_links`]) is called.
    pub fn block_link(&mut self, from: ProcessId, to: ProcessId) {
        self.blocked.insert((from, to));
    }

    /// Unblocks the unidirectional link `from → to`.
    pub fn unblock_link(&mut self, from: ProcessId, to: ProcessId) {
        self.blocked.remove(&(from, to));
    }

    /// Returns `true` while the link `from → to` is blocked.
    pub fn is_blocked(&self, from: ProcessId, to: ProcessId) -> bool {
        self.blocked.contains(&(from, to))
    }

    /// Blocks both directions between every pair of processors that belong to
    /// *different* groups, creating a network partition. Processors that
    /// appear in none of the groups keep full connectivity.
    pub fn split_into(&mut self, groups: &[Vec<ProcessId>]) {
        for (gi, ga) in groups.iter().enumerate() {
            for (gj, gb) in groups.iter().enumerate() {
                if gi == gj {
                    continue;
                }
                for a in ga {
                    for b in gb {
                        self.blocked.insert((*a, *b));
                    }
                }
            }
        }
    }

    /// Blocks only the links *from* members of `from` *to* members of `to`,
    /// creating an asymmetric (one-directional) cut: packets still flow in
    /// the reverse direction. The paper's fail-recovery link model allows a
    /// link to fail in one direction while its twin keeps working; this is
    /// the per-direction analogue of [`Network::split_into`].
    pub fn cut_oneway(&mut self, from: &[ProcessId], to: &[ProcessId]) {
        for a in from {
            for b in to {
                if a != b {
                    self.blocked.insert((*a, *b));
                }
            }
        }
    }

    /// Unblocks the links *from* members of `from` *to* members of `to`,
    /// lifting a one-directional cut. Links never blocked are unaffected.
    pub fn open_oneway(&mut self, from: &[ProcessId], to: &[ProcessId]) {
        for a in from {
            for b in to {
                self.blocked.remove(&(*a, *b));
            }
        }
    }

    /// Removes every blocked link, healing all partitions.
    pub fn heal_all_links(&mut self) {
        self.blocked.clear();
    }

    /// Number of currently blocked unidirectional links.
    pub fn blocked_link_count(&self) -> usize {
        self.blocked.len()
    }

    fn channel_entry(&mut self, from: ProcessId, to: ProcessId) -> &mut Channel<M> {
        let policy = self.policy.clone();
        self.channels
            .entry((from, to))
            .or_insert_with(|| Channel::new(policy))
    }

    /// Sends `msg` from `from` to `to` at round `now`, recording the outcome
    /// in `metrics`. Returns the earliest round at which the packet becomes
    /// deliverable, or `None` when it was dropped — the event-driven
    /// scheduler uses this to wake the destination at exactly that round.
    pub fn send(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        msg: M,
        now: Round,
        rng: &mut SimRng,
        metrics: &mut Metrics,
    ) -> Option<Round> {
        self.send_payload(from, to, Payload::owned(msg), now, rng, metrics)
    }

    /// The payload-level form of [`Network::send`]: the scheduler's flush
    /// path hands packets over as [`Payload`]s, so a broadcast fanned out
    /// through [`crate::stack::Outbox::push_to_all`] reaches its channels as
    /// refcount bumps rather than deep clones.
    pub fn send_payload(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        payload: Payload<M>,
        now: Round,
        rng: &mut SimRng,
        metrics: &mut Metrics,
    ) -> Option<Round> {
        if self.blocked.contains(&(from, to)) {
            metrics.record_send(SendOutcome::Lost);
            return None;
        }
        let (outcome, ready) = self
            .channel_entry(from, to)
            .send_payload_timed(payload, now, rng);
        metrics.record_send(outcome);
        if ready.is_some() {
            self.inbound.entry(to).or_default().insert(from);
        }
        ready
    }

    /// Fills `senders` with the senders holding a non-empty channel towards
    /// `to`, in ascending order. Emptiness is checked against the channels;
    /// the index itself is left untouched (see [`SenderSet`]).
    fn nonempty_senders_into(&mut self, to: ProcessId, senders: &mut Vec<ProcessId>) {
        senders.clear();
        let Some(srcs) = self.inbound.get(&to) else {
            return;
        };
        let channels = &self.channels;
        senders.extend(srcs.iter().filter(|src| {
            channels
                .get(&(*src, to))
                .map(|ch| !ch.is_empty())
                .unwrap_or(false)
        }));
    }

    /// The common delivery loop over an already-shuffled sender list.
    /// Appends `(from, msg)` pairs to `into`.
    // Takes the scheduler's loop state piecewise: bundling it into a struct
    // would force per-call construction on the hottest path in the crate.
    #[allow(clippy::too_many_arguments)]
    fn drain_senders_into(
        &mut self,
        to: ProcessId,
        senders: &[ProcessId],
        now: Round,
        limit: usize,
        rng: &mut SimRng,
        metrics: &mut Metrics,
        into: &mut Vec<(ProcessId, M)>,
    ) {
        let start = into.len();
        for from in senders.iter().copied() {
            let delivered = into.len() - start;
            if delivered >= limit {
                break;
            }
            let remaining = limit - delivered;
            if let Some(ch) = self.channels.get_mut(&(from, to)) {
                ch.drain_ready_with(now, remaining, rng, |msg| {
                    metrics.record_delivery();
                    into.push((from, msg));
                });
            }
        }
        metrics.record_delivery_batch(into.len() - start);
    }

    /// Drains up to `limit` deliverable packets addressed to `to`, across all
    /// of its incoming channels, in a random interleaving of senders.
    ///
    /// Returns `(from, msg)` pairs.
    ///
    /// This is the round-scan baseline: it inspects **every** channel in the
    /// network to find the non-empty inbound ones. The event-driven scheduler
    /// uses [`Network::deliver_due`], which reads the per-destination index
    /// instead.
    pub fn deliver_to(
        &mut self,
        to: ProcessId,
        now: Round,
        limit: usize,
        rng: &mut SimRng,
        metrics: &mut Metrics,
    ) -> Vec<(ProcessId, M)> {
        metrics.record_channel_scan(self.channels.len());
        let mut senders: Vec<ProcessId> = self
            .channels
            .iter()
            .filter(|((_, dst), ch)| *dst == to && !ch.is_empty())
            .map(|((src, _), _)| *src)
            .collect();
        rng.shuffle(&mut senders);
        let mut delivered = Vec::new();
        self.drain_senders_into(to, &senders, now, limit, rng, metrics, &mut delivered);
        delivered
    }

    /// Event-driven variant of [`Network::deliver_to`]: visits only the
    /// channels the per-destination inbound index lists for `to`, and
    /// additionally returns the earliest round at which `to` has another
    /// deliverable packet (so the scheduler can re-wake it then).
    ///
    /// For identical RNG states, the shuffled sender list — and therefore the
    /// delivered packets — is identical to [`Network::deliver_to`]'s; only
    /// the lookup cost differs.
    pub fn deliver_due(
        &mut self,
        to: ProcessId,
        now: Round,
        limit: usize,
        rng: &mut SimRng,
        metrics: &mut Metrics,
    ) -> (Vec<(ProcessId, M)>, Option<Round>) {
        let mut delivered = Vec::new();
        let next_ready = self.deliver_due_into(to, now, limit, rng, metrics, &mut delivered);
        (delivered, next_ready)
    }

    /// Allocation-free form of [`Network::deliver_due`]: `(from, msg)` pairs
    /// are appended to the caller's `into` buffer and the sender list is
    /// recycled inside the network, so a steady-state delivery touches no
    /// allocator. Returns the earliest round at which `to` has another
    /// deliverable packet.
    pub fn deliver_due_into(
        &mut self,
        to: ProcessId,
        now: Round,
        limit: usize,
        rng: &mut SimRng,
        metrics: &mut Metrics,
        into: &mut Vec<(ProcessId, M)>,
    ) -> Option<Round> {
        let mut senders = std::mem::take(&mut self.scratch_senders);
        self.nonempty_senders_into(to, &mut senders);
        if senders.is_empty() {
            metrics.record_delivery_batch(0);
            self.scratch_senders = senders;
            return None;
        }
        metrics.record_channel_visits(senders.len());
        rng.shuffle(&mut senders);
        self.drain_senders_into(to, &senders, now, limit, rng, metrics, into);
        // Earliest next delivery among the packets still in flight to `to`.
        let mut next_ready: Option<Round> = None;
        for src in senders.iter().copied() {
            if let Some(ch) = self.channels.get(&(src, to)) {
                if let Some(r) = ch.earliest_ready() {
                    next_ready = Some(next_ready.map_or(r, |cur: Round| cur.min(r)));
                }
            }
        }
        self.scratch_senders = senders;
        next_ready
    }

    /// Removes every packet-wake obligation recorded since the last call:
    /// destinations whose inbound channels were touched through the white-box
    /// APIs ([`Network::inject`], [`Network::channel_mut`]). The scheduler
    /// wakes these processes on the next round so out-of-band packets are
    /// still delivered under event-driven scheduling.
    pub fn take_dirty(&mut self) -> BTreeSet<ProcessId> {
        std::mem::take(&mut self.dirty)
    }

    /// Places a packet directly into the channel `from → to`, bypassing the
    /// loss/delay model. Models stale channel contents after a transient
    /// fault.
    pub fn inject(&mut self, from: ProcessId, to: ProcessId, msg: M) {
        self.channel_entry(from, to).inject(msg);
        self.inbound.entry(to).or_default().insert(from);
        self.dirty.insert(to);
    }

    /// Discards every packet in flight on the channel `from → to`.
    pub fn clear_channel(&mut self, from: ProcessId, to: ProcessId) {
        if let Some(ch) = self.channels.get_mut(&(from, to)) {
            ch.clear();
        }
        if let Some(srcs) = self.inbound.get_mut(&to) {
            srcs.remove(from);
        }
    }

    /// Discards every packet in flight anywhere in the network.
    pub fn clear_all(&mut self) {
        for ch in self.channels.values_mut() {
            ch.clear();
        }
        self.inbound.clear();
    }

    /// Total number of packets in flight across all channels.
    pub fn in_flight_total(&self) -> usize {
        self.channels.values().map(Channel::len).sum()
    }

    /// Immutable access to the channel `from → to`, if it exists.
    pub fn channel(&self, from: ProcessId, to: ProcessId) -> Option<&Channel<M>> {
        self.channels.get(&(from, to))
    }

    /// Mutable access to the channel `from → to`, creating it if necessary.
    /// Exposed so fault injectors and white-box tests can corrupt channel
    /// contents. Conservatively treats the channel as holding packets
    /// afterwards (the delivery path prunes the index if it does not) and
    /// schedules a wake-up for `to`.
    pub fn channel_mut(&mut self, from: ProcessId, to: ProcessId) -> &mut Channel<M> {
        self.inbound.entry(to).or_default().insert(from);
        self.dirty.insert(to);
        self.channel_entry(from, to)
    }

    /// Iterates over all `(from, to)` pairs that currently have a channel.
    pub fn links(&self) -> impl Iterator<Item = (ProcessId, ProcessId)> + '_ {
        self.channels.keys().copied()
    }

    /// Number of channels that currently exist.
    pub fn link_count(&self) -> usize {
        self.channels.len()
    }

    /// The earliest round at which any packet in flight towards `to` becomes
    /// deliverable, read through the per-destination inbound index (the
    /// event-driven scheduler's due check).
    pub fn earliest_inbound_ready(&self, to: ProcessId) -> Option<Round> {
        let srcs = self.inbound.get(&to)?;
        srcs.iter()
            .filter_map(|src| self.channels.get(&(src, to)))
            .filter_map(Channel::earliest_ready)
            .min()
    }

    /// The earliest round at which any packet in flight towards `to` becomes
    /// deliverable, found by scanning every channel in the network (the
    /// round-scan scheduler's due check). Identical result to
    /// [`Network::earliest_inbound_ready`], found the expensive way.
    pub fn earliest_inbound_ready_scan(&self, to: ProcessId) -> Option<Round> {
        self.channels
            .iter()
            .filter(|((_, dst), _)| *dst == to)
            .filter_map(|(_, ch)| ch.earliest_ready())
            .min()
    }

    /// Applies `mutate` once to the payloads of every packet currently in
    /// flight towards `to`, across all of its inbound channels in ascending
    /// sender order. Returns the number of payloads exposed to `mutate`.
    ///
    /// This is the paper's in-flight packet corruption: the packets
    /// themselves (count and delivery rounds) are untouched — corruption
    /// never creates packets out of thin air — only their contents change.
    /// The affected destination is marked dirty so the event-driven
    /// scheduler re-examines it.
    ///
    /// Packets whose payload is shared (broadcast fan-out, duplication) are
    /// un-shared copy-on-write before `mutate` sees them, so corruption never
    /// aliases into other channels' packets.
    pub fn corrupt_inbound_payloads(
        &mut self,
        to: ProcessId,
        mutate: impl FnOnce(&mut [&mut M]),
    ) -> usize {
        let mut payloads: Vec<&mut M> = self
            .channels
            .iter_mut()
            .filter(|((_, dst), _)| *dst == to)
            .flat_map(|(_, ch)| ch.in_flight_mut())
            .map(|packet| packet.msg_mut())
            .collect();
        let touched = payloads.len();
        if touched > 0 {
            mutate(&mut payloads);
            self.dirty.insert(to);
        }
        touched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: u32) -> Vec<ProcessId> {
        (0..n).map(ProcessId::new).collect()
    }

    fn reliable() -> ChannelPolicy {
        ChannelPolicy {
            max_delay_rounds: 0,
            ..ChannelPolicy::default()
        }
    }

    #[test]
    fn point_to_point_delivery() {
        let p = ids(3);
        let mut net: Network<u32> = Network::new(reliable());
        let mut rng = SimRng::seed_from(1);
        let mut metrics = Metrics::default();
        net.send(p[0], p[1], 10, Round::ZERO, &mut rng, &mut metrics);
        net.send(p[2], p[1], 20, Round::ZERO, &mut rng, &mut metrics);
        let mut got = net.deliver_to(p[1], Round::ZERO, usize::MAX, &mut rng, &mut metrics);
        got.sort();
        assert_eq!(got, vec![(p[0], 10), (p[2], 20)]);
        assert_eq!(metrics.messages_delivered(), 2);
        // Nothing was addressed to p0.
        assert!(net
            .deliver_to(p[0], Round::ZERO, usize::MAX, &mut rng, &mut metrics)
            .is_empty());
    }

    #[test]
    fn channels_are_directional() {
        let p = ids(2);
        let mut net: Network<u32> = Network::new(reliable());
        let mut rng = SimRng::seed_from(2);
        let mut metrics = Metrics::default();
        net.send(p[0], p[1], 5, Round::ZERO, &mut rng, &mut metrics);
        assert!(net
            .deliver_to(p[0], Round::ZERO, usize::MAX, &mut rng, &mut metrics)
            .is_empty());
        assert_eq!(
            net.deliver_to(p[1], Round::ZERO, usize::MAX, &mut rng, &mut metrics),
            vec![(p[0], 5)]
        );
    }

    #[test]
    fn inject_and_clear() {
        let p = ids(2);
        let mut net: Network<u32> = Network::new(reliable());
        let mut rng = SimRng::seed_from(3);
        let mut metrics = Metrics::default();
        net.inject(p[0], p[1], 77);
        assert_eq!(net.in_flight_total(), 1);
        net.clear_channel(p[0], p[1]);
        assert_eq!(net.in_flight_total(), 0);
        net.inject(p[0], p[1], 77);
        net.inject(p[1], p[0], 88);
        net.clear_all();
        assert_eq!(net.in_flight_total(), 0);
        assert!(net
            .deliver_to(p[1], Round::new(5), usize::MAX, &mut rng, &mut metrics)
            .is_empty());
    }

    #[test]
    fn delivery_limit_applies_across_senders() {
        let p = ids(4);
        let mut net: Network<u32> = Network::new(reliable());
        let mut rng = SimRng::seed_from(4);
        let mut metrics = Metrics::default();
        for (i, src) in [p[0], p[1], p[2]].iter().enumerate() {
            net.send(*src, p[3], i as u32, Round::ZERO, &mut rng, &mut metrics);
        }
        let got = net.deliver_to(p[3], Round::ZERO, 2, &mut rng, &mut metrics);
        assert_eq!(got.len(), 2);
        assert_eq!(net.in_flight_total(), 1);
    }

    #[test]
    fn blocked_link_drops_new_sends_but_keeps_in_flight() {
        let p = ids(2);
        let mut net: Network<u32> = Network::new(reliable());
        let mut rng = SimRng::seed_from(6);
        let mut metrics = Metrics::default();
        // A packet already in flight before the partition survives it.
        net.send(p[0], p[1], 1, Round::ZERO, &mut rng, &mut metrics);
        net.block_link(p[0], p[1]);
        assert!(net.is_blocked(p[0], p[1]));
        net.send(p[0], p[1], 2, Round::ZERO, &mut rng, &mut metrics);
        assert_eq!(metrics.messages_lost(), 1);
        assert_eq!(net.in_flight_total(), 1);
        // The reverse direction is unaffected.
        net.send(p[1], p[0], 3, Round::ZERO, &mut rng, &mut metrics);
        assert_eq!(net.in_flight_total(), 2);
        net.unblock_link(p[0], p[1]);
        net.send(p[0], p[1], 4, Round::ZERO, &mut rng, &mut metrics);
        let mut got = net.deliver_to(p[1], Round::ZERO, usize::MAX, &mut rng, &mut metrics);
        got.sort();
        assert_eq!(got, vec![(p[0], 1), (p[0], 4)]);
    }

    #[test]
    fn split_into_blocks_cross_group_links_both_ways() {
        let p = ids(5);
        let mut net: Network<u32> = Network::new(reliable());
        net.split_into(&[vec![p[0], p[1]], vec![p[2], p[3]]]);
        // 2 × 2 pairs × both directions = 8 blocked links.
        assert_eq!(net.blocked_link_count(), 8);
        assert!(net.is_blocked(p[0], p[2]));
        assert!(net.is_blocked(p[2], p[0]));
        // Intra-group links stay open, and p4 (in no group) talks to everyone.
        assert!(!net.is_blocked(p[0], p[1]));
        assert!(!net.is_blocked(p[4], p[0]));
        assert!(!net.is_blocked(p[2], p[4]));
        net.heal_all_links();
        assert_eq!(net.blocked_link_count(), 0);
        assert!(!net.is_blocked(p[0], p[2]));
    }

    #[test]
    fn oneway_cut_blocks_one_direction_only() {
        let p = ids(4);
        let mut net: Network<u32> = Network::new(reliable());
        net.cut_oneway(&[p[0], p[1]], &[p[2], p[3]]);
        assert_eq!(net.blocked_link_count(), 4);
        assert!(net.is_blocked(p[0], p[2]));
        assert!(net.is_blocked(p[1], p[3]));
        // The reverse direction keeps working.
        assert!(!net.is_blocked(p[2], p[0]));
        assert!(!net.is_blocked(p[3], p[1]));
        net.open_oneway(&[p[0], p[1]], &[p[2], p[3]]);
        assert_eq!(net.blocked_link_count(), 0);
        // Self-links are never blocked even when a process is in both groups.
        net.cut_oneway(&[p[0]], &[p[0], p[1]]);
        assert!(!net.is_blocked(p[0], p[0]));
        assert!(net.is_blocked(p[0], p[1]));
    }

    #[test]
    fn inbound_ready_index_and_scan_agree() {
        let p = ids(3);
        let mut net: Network<u32> = Network::new(ChannelPolicy {
            max_delay_rounds: 3,
            ..ChannelPolicy::default()
        });
        let mut rng = SimRng::seed_from(9);
        let mut metrics = Metrics::default();
        assert_eq!(net.earliest_inbound_ready(p[1]), None);
        assert_eq!(net.earliest_inbound_ready_scan(p[1]), None);
        net.send(p[0], p[1], 1, Round::ZERO, &mut rng, &mut metrics);
        net.send(p[2], p[1], 2, Round::ZERO, &mut rng, &mut metrics);
        let indexed = net.earliest_inbound_ready(p[1]);
        assert_eq!(indexed, net.earliest_inbound_ready_scan(p[1]));
        assert!(indexed.is_some());
        // Unrelated destination stays quiet.
        assert_eq!(net.earliest_inbound_ready(p[0]), None);
    }

    #[test]
    fn payload_corruption_mutates_without_creating_packets() {
        let p = ids(3);
        let mut net: Network<u32> = Network::new(reliable());
        let mut rng = SimRng::seed_from(7);
        let mut metrics = Metrics::default();
        net.send(p[0], p[2], 10, Round::ZERO, &mut rng, &mut metrics);
        net.send(p[1], p[2], 20, Round::ZERO, &mut rng, &mut metrics);
        let before = net.in_flight_total();
        let touched = net.corrupt_inbound_payloads(p[2], |payloads| {
            for m in payloads {
                **m += 1;
            }
        });
        assert_eq!(touched, 2);
        assert_eq!(net.in_flight_total(), before);
        assert!(net.take_dirty().contains(&p[2]));
        let mut got = net.deliver_to(p[2], Round::ZERO, usize::MAX, &mut rng, &mut metrics);
        got.sort();
        assert_eq!(got, vec![(p[0], 11), (p[1], 21)]);
        // No packets towards p1: the mutation closure is never called.
        let untouched = net.corrupt_inbound_payloads(p[1], |_| panic!("no packets"));
        assert_eq!(untouched, 0);
    }

    #[test]
    fn links_lists_created_channels() {
        let p = ids(2);
        let mut net: Network<u32> = Network::new(reliable());
        let mut rng = SimRng::seed_from(5);
        let mut metrics = Metrics::default();
        net.send(p[0], p[1], 1, Round::ZERO, &mut rng, &mut metrics);
        let links: Vec<_> = net.links().collect();
        assert_eq!(links, vec![(p[0], p[1])]);
        assert!(net.channel(p[0], p[1]).is_some());
        assert!(net.channel(p[1], p[0]).is_none());
    }
}

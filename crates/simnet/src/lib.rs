//! # simnet — deterministic simulation of the paper's system model
//!
//! This crate implements the execution environment assumed by
//! *Self-Stabilizing Reconfiguration* (Dolev, Georgiou, Marcoullis, Schiller;
//! MIDDLEWARE 2016, technical report arXiv:1606.00195): an asynchronous,
//! fully connected message-passing system of processors with
//!
//! * bounded-capacity communication channels that may **lose, duplicate and
//!   reorder** packets (but never create them), satisfying *fair
//!   communication* — a packet that is sent infinitely often is received
//!   infinitely often;
//! * **crash-stop** failures, **joins** of new processors, and — because the
//!   algorithms are self-stabilizing — **transient faults** that corrupt the
//!   local state of processors and the content of channels arbitrarily;
//! * the **interleaving model**: at most one atomic step executes at a time,
//!   each step being a local computation followed by a single send or
//!   receive.
//!
//! The simulator is deterministic given a seed, which makes every experiment
//! in the benchmark harness reproducible.
//!
//! Scheduling is **event-driven** by default: a run queue wakes a process
//! only when its timer is due or a packet addressed to it has become
//! deliverable, and delivery reads a per-destination channel index instead
//! of scanning the whole network (see [`scheduler`] and [`SchedulerMode`]).
//! The legacy whole-system round scan is retained as
//! [`SchedulerMode::RoundScan`] for baseline comparisons; both modes produce
//! byte-identical executions for the same seed.
//!
//! The [`stack`] module provides the protocol-stack composition layer
//! ([`stack::Layer`], [`stack::Outbox`], [`stack::Router`], [`wire_enum!`])
//! that every composite node in the workspace uses to multiplex its
//! sub-layer traffic over one wire format.
//!
//! The fault layer is driven by the **chaos-campaign engine** built on the
//! open fault-plan API ([`plan::FaultPlan`]): a declarative
//! [`scenario::Scenario`] composes any list of fault plans — the built-in
//! crash, churn, partition (symmetric *and* one-directional), message-spike,
//! state-corruption, payload-corruption, gray-failure, clock-skew,
//! crash-recovery and Byzantine-injection classes ([`fault`], [`partition`],
//! [`plan`]) or user-defined ones — each scheduling typed
//! [`plan::FaultAction`]s the runner applies, counts and checks. The
//! [`campaign`] driver sweeps scenarios × seeds × scheduler modes, and
//! [`report`] renders deterministic JSON reports. Protocol crates plug in
//! through [`scenario::ScenarioTarget`]; the `simctl` binary runs the named
//! scenarios of [`scenario::catalog`] from the command line and diffs two
//! reports for PR-to-PR comparison. The complete fault vocabulary, with its
//! mapping to the paper's model and the invariants each class is checked
//! against, is catalogued in `docs/FAULTS.md` at the workspace root.
//!
//! ## Quick example
//!
//! ```
//! use simnet::{Simulation, SimConfig, Process, Context, ProcessId};
//!
//! /// A process that floods a counter value and adopts the maximum it hears.
//! #[derive(Debug, Default)]
//! struct MaxFlood { value: u64 }
//!
//! impl Process for MaxFlood {
//!     type Msg = u64;
//!     fn on_timer(&mut self, ctx: &mut Context<'_, u64>) {
//!         for peer in ctx.peers() {
//!             ctx.send(peer, self.value);
//!         }
//!     }
//!     fn on_message(&mut self, _from: ProcessId, msg: u64, _ctx: &mut Context<'_, u64>) {
//!         self.value = self.value.max(msg);
//!     }
//! }
//!
//! let mut sim = Simulation::new(SimConfig::default().with_seed(7));
//! for v in [3u64, 9, 1, 4] {
//!     sim.add_process(MaxFlood { value: v });
//! }
//! sim.run_rounds(20);
//! assert!(sim.processes().all(|(_, p)| p.value == 9));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod campaign;
pub mod channel;
pub mod codec;
pub mod config;
pub mod exec;
pub mod fault;
pub mod histogram;
pub mod history;
pub mod linearize;
pub mod load;
pub mod metrics;
pub mod network;
pub mod partition;
pub mod payload;
pub mod plan;
pub mod process;
pub mod report;
pub mod rng;
pub mod scenario;
pub mod scheduler;
pub mod stack;
#[cfg(test)]
pub(crate) mod testutil;
pub mod time;
pub mod trace;

pub use adversary::ScriptedFaults;
pub use campaign::{Campaign, CampaignReport, RunRecord};
pub use channel::{Channel, ChannelPolicy, InFlight};
pub use codec::{DecodeError, Reader, WireCodec};
pub use config::{SchedulerMode, SimConfig};
pub use fault::{
    ChurnPlan, CorruptionPlan, CrashPlan, FaultInjector, GrayFailurePlan, PayloadCorruptionPlan,
    RecoveryPlan, SkewPlan, SpikePlan, SpikeSpec,
};
pub use histogram::Histogram;
pub use history::{History, HistoryCfg, HistoryRecorder, Observed, OpKind, OpResponse};
pub use linearize::{Spec, Verdict};
pub use load::{Arrival, LoadProfile};
pub use metrics::Metrics;
pub use network::Network;
pub use partition::{AsymmetricCutPlan, PartitionPlan};
pub use payload::Payload;
pub use plan::{ByzantinePlan, FaultAction, FaultPlan, ForgeKind, PlanCtx, RunObservations};
pub use process::{Context, Process, ProcessId, ProcessStatus};
pub use report::Json;
pub use rng::SimRng;
pub use scenario::{LinkProfile, Scenario, ScenarioRun, ScenarioTarget};
pub use scheduler::Simulation;
pub use stack::{Lane, Layer, Outbox, Router};
pub use time::Round;
pub use trace::{Trace, TraceEvent};

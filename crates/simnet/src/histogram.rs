//! A small fixed-storage histogram for experiment statistics.
//!
//! The benchmark harness measures distributions — rounds to converge, label
//! creations, spurious triggerings — across many seeds. [`Histogram`]
//! accumulates `u64` samples and reports count, min, max, mean and arbitrary
//! percentiles without external dependencies.
//!
//! ```
//! use simnet::Histogram;
//! let mut h = Histogram::new();
//! for v in [5u64, 1, 9, 7, 3] {
//!     h.record(v);
//! }
//! assert_eq!(h.count(), 5);
//! assert_eq!(h.min(), Some(1));
//! assert_eq!(h.max(), Some(9));
//! assert_eq!(h.percentile(50.0), Some(5));
//! ```

use std::fmt;

/// An accumulating sample set with summary statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    samples: Vec<u64>,
    sorted: bool,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.samples.push(value);
        self.sorted = false;
    }

    /// Records every sample of an iterator.
    pub fn record_all(&mut self, values: impl IntoIterator<Item = u64>) {
        for v in values {
            self.record(v);
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Smallest recorded sample.
    pub fn min(&self) -> Option<u64> {
        self.samples.iter().copied().min()
    }

    /// Largest recorded sample.
    pub fn max(&self) -> Option<u64> {
        self.samples.iter().copied().max()
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.samples.iter().sum()
    }

    /// Arithmetic mean of the samples.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.sum() as f64 / self.samples.len() as f64)
        }
    }

    /// The `p`-th percentile (nearest-rank method), `p` in `[0, 100]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a finite value in `[0, 100]`.
    pub fn percentile(&mut self, p: f64) -> Option<u64> {
        assert!(
            p.is_finite() && (0.0..=100.0).contains(&p),
            "percentile must be in [0, 100]"
        );
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let n = self.samples.len();
        // Nearest-rank with an exact path for tenth-of-a-percent
        // percentiles: `0.999 * 1000` lands a hair above `999.0` in f64,
        // which would push p99.9's rank to 1,000 at exactly 1,000 samples.
        // When `p` is (within epsilon of) a whole number of tenths, compute
        // `ceil(tenths·n / 1000)` in integer arithmetic instead.
        let tenths = p * 10.0;
        let rank = if (tenths - tenths.round()).abs() < 1e-9 {
            let tenths = tenths.round() as u64;
            ((tenths * n as u64).div_ceil(1000)) as usize
        } else {
            ((p / 100.0) * n as f64).ceil() as usize
        };
        let idx = rank.saturating_sub(1).min(n - 1);
        Some(self.samples[idx])
    }

    /// The median (50th percentile).
    pub fn median(&mut self) -> Option<u64> {
        self.percentile(50.0)
    }

    /// A one-line summary (`n / min / mean / p50 / p95 / max`) for printing
    /// in benchmark reports.
    pub fn summary(&mut self) -> String {
        if self.is_empty() {
            return "n=0".to_string();
        }
        format!(
            "n={} min={} mean={:.1} p50={} p95={} max={}",
            self.count(),
            self.min().unwrap(),
            self.mean().unwrap(),
            self.percentile(50.0).unwrap(),
            self.percentile(95.0).unwrap(),
            self.max().unwrap()
        )
    }
}

impl FromIterator<u64> for Histogram {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        let mut h = Histogram::new();
        h.record_all(iter);
        h
    }
}

impl Extend<u64> for Histogram {
    fn extend<T: IntoIterator<Item = u64>>(&mut self, iter: T) {
        self.record_all(iter);
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut copy = self.clone();
        write!(f, "{}", copy.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_nothing() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.median(), None);
        assert_eq!(h.summary(), "n=0");
    }

    #[test]
    fn statistics_match_hand_computed_values() {
        let mut h: Histogram = [10u64, 20, 30, 40].into_iter().collect();
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), Some(10));
        assert_eq!(h.max(), Some(40));
        assert_eq!(h.sum(), 100);
        assert_eq!(h.mean(), Some(25.0));
        assert_eq!(h.percentile(50.0), Some(20));
        assert_eq!(h.percentile(100.0), Some(40));
        assert_eq!(h.percentile(0.0), Some(10));
    }

    #[test]
    fn recording_after_a_percentile_query_stays_correct() {
        let mut h = Histogram::new();
        h.record(5);
        assert_eq!(h.median(), Some(5));
        h.record(1);
        h.record(9);
        assert_eq!(h.median(), Some(5));
        assert_eq!(h.max(), Some(9));
    }

    #[test]
    fn extend_and_display() {
        let mut h = Histogram::new();
        h.extend([3u64, 1, 2]);
        let text = format!("{h}");
        assert!(text.contains("n=3"));
        assert!(text.contains("min=1"));
        assert!(text.contains("max=3"));
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn percentile_out_of_range_panics() {
        let mut h: Histogram = [1u64].into_iter().collect();
        let _ = h.percentile(150.0);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut h: Histogram = [42u64].into_iter().collect();
        assert_eq!(h.percentile(1.0), Some(42));
        assert_eq!(h.percentile(50.0), Some(42));
        assert_eq!(h.percentile(99.0), Some(42));
    }

    // The load engine's p99.9 column leans on the tail behaviour below.

    #[test]
    fn empty_histogram_has_no_tail_percentile() {
        let mut h = Histogram::new();
        assert_eq!(h.percentile(99.9), None);
        assert_eq!(h.percentile(0.0), None);
        assert_eq!(h.percentile(100.0), None);
    }

    #[test]
    fn single_sample_tail_percentiles() {
        let mut h: Histogram = [7u64].into_iter().collect();
        assert_eq!(h.percentile(99.9), Some(7));
        assert_eq!(h.percentile(100.0), Some(7));
        assert_eq!(h.percentile(0.0), Some(7));
    }

    #[test]
    fn duplicate_heavy_tail_reports_the_outlier_only_past_its_rank() {
        // 999 fast ops and one slow outlier. At exactly 1,000 samples the
        // p99.9 rank is ceil(999 · 1000 / 1000) = 999 — computed in integer
        // arithmetic, so the f64 artifact that used to push the rank to
        // 1,000 (surfacing the outlier one rank early) no longer applies.
        let mut h: Histogram = std::iter::repeat(2u64)
            .take(999)
            .chain(std::iter::once(500))
            .collect();
        assert_eq!(h.percentile(99.0), Some(2));
        assert_eq!(h.percentile(99.9), Some(2));
        assert_eq!(h.percentile(100.0), Some(500));
        // With 2,000 samples the outlier sits at rank 2,000 while p99.9's
        // rank is 1,999 — the duplicate mass hides a 1-in-2000 outlier.
        h.record_all(std::iter::repeat(2u64).take(1000));
        assert_eq!(h.percentile(99.9), Some(2));
        assert_eq!(h.percentile(100.0), Some(500));
    }

    #[test]
    fn tail_uses_nearest_rank_not_interpolation() {
        // Distinct values 1..=2000: nearest-rank p99.9 is the 1,998th order
        // statistic exactly — ceil(0.999 · 2000) = 1998, never a value
        // interpolated between samples and never rank 1,999 (the f64
        // artifact `0.999 * 2000 = 1998.0000000000002` used to produce).
        let mut h: Histogram = (1u64..=2000).collect();
        assert_eq!(h.percentile(99.9), Some(1998));
        assert_eq!(h.percentile(100.0), Some(2000));
        // The rank is computed on the sample count, not the value range:
        // with 10 distinct values p99.9 is simply the maximum.
        let mut small: Histogram = (1u64..=10).collect();
        assert_eq!(small.percentile(99.9), Some(10));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Percentiles are monotone in `p` and bounded by min/max.
        #[test]
        fn percentiles_are_monotone(
            samples in proptest::collection::vec(0u64..10_000, 1..200),
            p1 in 0.0f64..100.0,
            p2 in 0.0f64..100.0,
        ) {
            let mut h: Histogram = samples.iter().copied().collect();
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            let a = h.percentile(lo).unwrap();
            let b = h.percentile(hi).unwrap();
            prop_assert!(a <= b);
            prop_assert!(h.min().unwrap() <= a);
            prop_assert!(b <= h.max().unwrap());
        }

        /// The mean always lies between min and max.
        #[test]
        fn mean_is_bounded(samples in proptest::collection::vec(0u64..10_000, 1..200)) {
            let h: Histogram = samples.iter().copied().collect();
            let mean = h.mean().unwrap();
            prop_assert!(h.min().unwrap() as f64 <= mean + 1e-9);
            prop_assert!(mean <= h.max().unwrap() as f64 + 1e-9);
        }
    }
}

//! A Wing–Gong linearizability checker over recorded histories.
//!
//! [`check`] decides whether a [`History`] is linearizable against a
//! sequential specification ([`Spec`]): whether there is a total order of
//! the operations that (1) respects real time — an op that responded before
//! another was invoked comes first — and (2) is legal under the spec.
//!
//! The algorithm is the Wing & Gong depth-first search with Lowe's
//! memoized-configurations refinement: a *configuration* is the pair
//! (set of linearized ops, spec state); once a configuration is known not
//! to extend to a full linearization it is never explored again. Candidate
//! ops at each step are the *minimal* remaining ops — those no remaining
//! op precedes in real time — which is the just-in-time frontier rule.
//! Linearizability is local (Herlihy & Wing), so each object's sub-history
//! is checked independently; the search budget is shared across objects and
//! its exhaustion is a distinct inconclusive verdict, not a violation.
//!
//! [`Spec::MonotoneToken`] histories bypass the search entirely: a legal
//! sequence must order committed tokens strictly ascending, so there is
//! exactly one candidate linearization — the token sort — and the history
//! is linearizable iff the tokens are distinct and that sort respects real
//! time (no op responds before an op with a smaller token is invoked).
//! That decision is `O(k log k)` in the number of committed increments,
//! where open-loop queueing makes the general search exponential.
//!
//! Uncertain ops (no observed response — timed out, still pending, or
//! recorded adversary writes) are *optional*: they never bound the
//! real-time frontier, and the search may linearize them anywhere after
//! their invocation or not at all. Failed and uncertain reads constrain
//! nothing and are dropped before the search; failed writes stay as
//! optional ops, since an aborted effect may yet have landed.
//!
//! On failure the checker reports a minimal-violation witness: the longest
//! prefix it managed to linearize and, for each frontier candidate at the
//! deepest stuck configuration, why the spec rejected it.

use std::collections::BTreeMap;
use std::collections::HashSet;
use std::fmt;

use crate::history::{History, Observed, OpKind, OpOutcome, OpRecord};

/// The sequential specification of one checked object class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Spec {
    /// A multi-writer multi-reader register: a read is legal iff it
    /// observes the last linearized write's value (`None` before the first
    /// write), and a write always applies. The sharedmem emulation's object.
    Register,
    /// A monotone token generator: each committed increment's token must be
    /// strictly greater than every previously linearized token — the
    /// paper's Theorem 4.6 monotonicity, with counters `⟨label, seqn, wid⟩`
    /// encoded as lexicographic `[creator, seqn, wid]` tokens.
    MonotoneToken,
}

/// The checker's verdict over one history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Every object's sub-history is linearizable.
    Ok {
        /// Total ops the search considered (optional ops included).
        ops_checked: u64,
    },
    /// Some object's sub-history admits no linearization.
    Violation {
        /// Total ops the search considered before (and including) the
        /// violating object.
        ops_checked: u64,
        /// The minimal-violation witness, one line, ready for a report.
        witness: String,
    },
    /// The search budget ran out before a decision — inconclusive.
    BudgetExceeded {
        /// Total ops the search considered before giving up.
        ops_checked: u64,
        /// The object whose sub-history exhausted the budget.
        object: u64,
    },
}

/// One operation as the search sees it.
#[derive(Debug, Clone, Copy)]
struct LinOp {
    /// Index into the original history (for witness labels).
    record: usize,
    invoke: u64,
    /// `None` for optional ops: they never bound the frontier.
    response: Option<u64>,
    action: Action,
    /// Optional ops may linearize anywhere after their invocation or never.
    optional: bool,
}

/// The spec-level effect of one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    Write(u64),
    Read(Option<u64>),
    Inc([u64; 3]),
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Write(v) => write!(f, "w({v})"),
            Action::Read(None) => write!(f, "r→⊥"),
            Action::Read(Some(v)) => write!(f, "r→{v}"),
            Action::Inc(t) => write!(f, "inc→{}.{}.{}", t[0], t[1], t[2]),
        }
    }
}

/// The memoizable spec state of a configuration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum SpecState {
    Register(Option<u64>),
    Token(Option<[u64; 3]>),
}

impl SpecState {
    fn initial(spec: Spec) -> Self {
        match spec {
            Spec::Register => SpecState::Register(None),
            Spec::MonotoneToken => SpecState::Token(None),
        }
    }

    /// Applies `action`, returning the successor state or `None` when the
    /// spec rejects it in this state.
    fn apply(&self, action: Action) -> Option<SpecState> {
        match (self, action) {
            (SpecState::Register(_), Action::Write(v)) => Some(SpecState::Register(Some(v))),
            (SpecState::Register(held), Action::Read(observed)) => {
                (*held == observed).then(|| self.clone())
            }
            (SpecState::Token(last), Action::Inc(token)) => last
                .map_or(true, |l| l < token)
                .then_some(SpecState::Token(Some(token))),
            _ => None,
        }
    }

    /// Why `apply` rejected `action` — witness text.
    fn rejection(&self, action: Action) -> String {
        match (self, action) {
            (SpecState::Register(held), Action::Read(_)) => match held {
                None => "register unwritten".to_string(),
                Some(v) => format!("register holds {v}"),
            },
            (SpecState::Token(last), Action::Inc(_)) => match last {
                None => "no token yet".to_string(),
                Some(t) => format!("last token {}.{}.{}", t[0], t[1], t[2]),
            },
            _ => "action not in this object's spec".to_string(),
        }
    }
}

/// Projects the history's ops on `object` into search form, dropping ops
/// that constrain nothing.
fn project(history: &History, spec: Spec, object: u64) -> Vec<LinOp> {
    // Values some committed read observed: an *optional* write of any other
    // value is dead weight — it can only matter by linearizing immediately
    // before a read of its value, and removing it from a legal sequence
    // keeps every read's observation intact (no read sits in its window).
    // Partitions mass-produce uncertain writes nobody ever read; dropping
    // them keeps the search polynomial there.
    let read_values: HashSet<u64> = history
        .ops
        .iter()
        .filter(|op| op.object == object)
        .filter_map(|op| match (op.kind, op.outcome) {
            (OpKind::Read, OpOutcome::Ok(Some(Observed::Value(Some(v))))) => Some(v),
            _ => None,
        })
        .collect();
    let mut ops = Vec::new();
    for (record, op) in history.ops.iter().enumerate() {
        if op.object != object {
            continue;
        }
        let lin = match (spec, op.kind, op.outcome) {
            // A committed read observing `v` must linearize at a state
            // holding `v`.
            (Spec::Register, OpKind::Read, OpOutcome::Ok(Some(Observed::Value(v)))) => LinOp {
                record,
                invoke: op.invoke,
                response: op.response,
                action: Action::Read(v),
                optional: false,
            },
            // Failed or uncertain reads (or a read whose claim surfaced no
            // value) observed nothing and constrain nothing.
            (Spec::Register, OpKind::Read, _) => continue,
            // A committed write must linearize; a failed or uncertain one
            // may have landed anyway, so it stays as an optional op with an
            // unbounded response — unless no committed read ever observed
            // its value, in which case it constrains nothing.
            (Spec::Register, OpKind::Write(v), outcome) => {
                let committed = matches!(outcome, OpOutcome::Ok(_));
                if !committed && !read_values.contains(&v) {
                    continue;
                }
                LinOp {
                    record,
                    invoke: op.invoke,
                    response: if committed { op.response } else { None },
                    action: Action::Write(v),
                    optional: !committed,
                }
            }
            // A committed increment's token must extend the monotone order.
            (Spec::MonotoneToken, OpKind::Inc, OpOutcome::Ok(Some(Observed::Token(t)))) => LinOp {
                record,
                invoke: op.invoke,
                response: op.response,
                action: Action::Inc(t),
                optional: false,
            },
            // An increment without an observed token minted nothing a
            // client ever saw — no constraint.
            (Spec::MonotoneToken, OpKind::Inc, _) => continue,
            // Ops outside the spec's vocabulary (e.g. a register write
            // recorded against the counter object) constrain nothing.
            _ => continue,
        };
        ops.push(lin);
    }
    ops
}

/// A short label for one op in witness output.
fn op_label(op: &LinOp, record: &OpRecord) -> String {
    let response = match op.response {
        Some(r) => r.to_string(),
        None => "∞".to_string(),
    };
    format!("{}@{}–{}", op.action, record.invoke, response)
}

/// The per-object Wing–Gong search.
struct Search<'a> {
    ops: &'a [LinOp],
    history: &'a History,
    /// Remaining configuration-visit budget (shared across objects).
    budget: u64,
    visited: u64,
    memo: HashSet<(Vec<u64>, SpecState)>,
    path: Vec<usize>,
    /// Deepest stuck point seen: the linearized prefix and why each
    /// frontier candidate was rejected there.
    best_path: Vec<usize>,
    best_blocked: Vec<String>,
}

enum SearchOutcome {
    Linearizable,
    Violation(String),
    BudgetExceeded,
}

impl Search<'_> {
    /// `Some(true)` = a linearization extends this configuration,
    /// `Some(false)` = none does, `None` = budget exhausted.
    fn dfs(
        &mut self,
        done: &mut Vec<u64>,
        state: &SpecState,
        remaining_mandatory: &mut usize,
    ) -> Option<bool> {
        if *remaining_mandatory == 0 {
            // Optional ops still unlinearized simply never happened.
            return Some(true);
        }
        self.visited += 1;
        if self.visited > self.budget {
            return None;
        }
        if !self.memo.insert((done.clone(), state.clone())) {
            return Some(false);
        }
        // The real-time frontier: the earliest response among remaining
        // ops. An op may linearize next only if it was invoked before that
        // response (ties mean the response really preceded the invocation —
        // responses are claimed before the next round's submissions).
        let mut frontier = u64::MAX;
        for (i, op) in self.ops.iter().enumerate() {
            if done[i / 64] & (1 << (i % 64)) == 0 {
                if let Some(r) = op.response {
                    frontier = frontier.min(r);
                }
            }
        }
        // Candidates are explored in response order: the commit point of a
        // quorum operation sits just before its response, so the response
        // sort is the likely linearization and the greedy first descent
        // usually succeeds with little backtracking. Optional ops (no
        // response) sort last — they are only pulled in when a later read
        // needs their value.
        let mut candidates: Vec<usize> = (0..self.ops.len())
            .filter(|&i| done[i / 64] & (1 << (i % 64)) == 0 && self.ops[i].invoke < frontier)
            .collect();
        candidates.sort_by_key(|&i| (self.ops[i].response.unwrap_or(u64::MAX), self.ops[i].invoke));
        // Eager-read rule: a mandatory frontier read the spec accepts can be
        // linearized immediately *without* exploring alternatives — no
        // remaining op really-precedes a frontier candidate, and a read
        // leaves the state unchanged, so this configuration is linearizable
        // iff the one extending it with the read is. This collapses the
        // exponential choice over concurrent overlapping reads.
        let eager = candidates.iter().copied().find(|&i| {
            let op = &self.ops[i];
            !op.optional && matches!(op.action, Action::Read(_)) && state.apply(op.action).is_some()
        });
        if let Some(i) = eager {
            done[i / 64] |= 1 << (i % 64);
            *remaining_mandatory -= 1;
            self.path.push(i);
            let verdict = self.dfs(done, state, remaining_mandatory);
            self.path.pop();
            *remaining_mandatory += 1;
            done[i / 64] &= !(1 << (i % 64));
            return verdict;
        }
        let mut blocked: Vec<String> = Vec::new();
        // Witness bookkeeping is gated on being at (or past) the deepest
        // stuck point seen so far; re-checked after the children ran, since
        // a child subtree may have pushed the record deeper.
        let deepest = self.path.len() >= self.best_path.len();
        for i in candidates {
            let op = &self.ops[i];
            match state.apply(op.action) {
                Some(next_state) => {
                    done[i / 64] |= 1 << (i % 64);
                    if !op.optional {
                        *remaining_mandatory -= 1;
                    }
                    self.path.push(i);
                    let verdict = self.dfs(done, &next_state, remaining_mandatory);
                    self.path.pop();
                    if !op.optional {
                        *remaining_mandatory += 1;
                    }
                    done[i / 64] &= !(1 << (i % 64));
                    if verdict != Some(false) {
                        return verdict;
                    }
                }
                None => {
                    if deepest && !op.optional {
                        let record = &self.history.ops[op.record];
                        blocked.push(format!(
                            "{} ({})",
                            op_label(op, record),
                            state.rejection(op.action)
                        ));
                    }
                }
            }
        }
        if deepest && self.path.len() >= self.best_path.len() {
            self.best_path = self.path.clone();
            self.best_blocked = blocked;
        }
        Some(false)
    }

    /// Renders the minimal-violation witness from the deepest stuck
    /// configuration.
    fn witness(&self, object: u64) -> String {
        let mandatory = self.ops.iter().filter(|op| !op.optional).count();
        let prefix: Vec<String> = self
            .best_path
            .iter()
            .rev()
            .take(4)
            .rev()
            .map(|&i| op_label(&self.ops[i], &self.history.ops[self.ops[i].record]))
            .collect();
        let elided = self.best_path.len().saturating_sub(prefix.len());
        let shown = if elided > 0 {
            format!("… {}", prefix.join(", "))
        } else {
            prefix.join(", ")
        };
        let blocked = if self.best_blocked.is_empty() {
            "every remaining op precedes another in real time".to_string()
        } else {
            self.best_blocked
                .iter()
                .take(3)
                .cloned()
                .collect::<Vec<_>>()
                .join("; ")
        };
        format!(
            "object {object}: no linearization past {}/{} ops [{shown}]; stuck on: {blocked}",
            self.best_path.len(),
            mandatory,
        )
    }
}

/// Decides a monotone-token sub-history directly: the token sort is the
/// only candidate linearization, so the history is linearizable iff the
/// committed tokens are distinct and no op responds in real time before an
/// op carrying a smaller token is invoked. Returns the violation witness,
/// or `None` when linearizable.
fn monotone_witness(history: &History, object: u64, ops: &[LinOp]) -> Option<String> {
    let token = |op: &LinOp| match op.action {
        Action::Inc(t) => t,
        _ => unreachable!("monotone projection only keeps increments"),
    };
    let mut sorted: Vec<&LinOp> = ops.iter().collect();
    sorted.sort_by_key(|op| token(op));
    for pair in sorted.windows(2) {
        if token(pair[0]) == token(pair[1]) {
            return Some(format!(
                "object {object}: duplicate committed token: {} and {} both minted it",
                op_label(pair[0], &history.ops[pair[0].record]),
                op_label(pair[1], &history.ops[pair[1].record]),
            ));
        }
    }
    // Real time must agree with token order: scanning tokens ascending, an
    // op invoked after some larger-token op already responded is a
    // violation. Track the suffix-minimum response to find it in O(k).
    let mut suffix_min: Vec<(u64, usize)> = vec![(u64::MAX, 0); sorted.len() + 1];
    for (i, op) in sorted.iter().enumerate().rev() {
        let r = op.response.unwrap_or(u64::MAX);
        suffix_min[i] = if r < suffix_min[i + 1].0 {
            (r, i)
        } else {
            suffix_min[i + 1]
        };
    }
    for (i, op) in sorted.iter().enumerate() {
        let (resp, at) = suffix_min[i + 1];
        // A response at round r chronologically precedes an invocation at
        // round r (responses are claimed before the next round's
        // submissions), so equality is already a real-time inversion —
        // matching the search's strict frontier rule.
        if resp <= op.invoke && resp != u64::MAX {
            let earlier = sorted[at];
            return Some(format!(
                "object {object}: token order violates real time: {} responded before {} \
                 was invoked but minted the larger token",
                op_label(earlier, &history.ops[earlier.record]),
                op_label(op, &history.ops[op.record]),
            ));
        }
    }
    None
}

/// Checks `history` against `spec` with a shared search budget (maximum
/// configurations visited across all objects; monotone-token histories are
/// decided directly and never consume it). See the module docs for the
/// algorithm and the treatment of uncertain ops.
pub fn check(history: &History, spec: Spec, budget: u64) -> Verdict {
    let mut ops_checked = 0u64;
    let mut remaining_budget = budget;
    for object in history.objects() {
        let ops = project(history, spec, object);
        ops_checked += ops.len() as u64;
        if ops.is_empty() {
            continue;
        }
        if spec == Spec::MonotoneToken {
            match monotone_witness(history, object, &ops) {
                None => continue,
                Some(witness) => {
                    return Verdict::Violation {
                        ops_checked,
                        witness,
                    }
                }
            }
        }
        let mut search = Search {
            ops: &ops,
            history,
            budget: remaining_budget,
            visited: 0,
            memo: HashSet::new(),
            path: Vec::new(),
            best_path: Vec::new(),
            best_blocked: Vec::new(),
        };
        let words = ops.len().div_ceil(64).max(1);
        let mut done = vec![0u64; words];
        let mut remaining_mandatory = ops.iter().filter(|op| !op.optional).count();
        let outcome = match search.dfs(
            &mut done,
            &SpecState::initial(spec),
            &mut remaining_mandatory,
        ) {
            None => SearchOutcome::BudgetExceeded,
            Some(true) => SearchOutcome::Linearizable,
            Some(false) => SearchOutcome::Violation(search.witness(object)),
        };
        remaining_budget = remaining_budget.saturating_sub(search.visited);
        match outcome {
            SearchOutcome::Linearizable => {}
            SearchOutcome::Violation(witness) => {
                return Verdict::Violation {
                    ops_checked,
                    witness,
                }
            }
            SearchOutcome::BudgetExceeded => {
                return Verdict::BudgetExceeded {
                    ops_checked,
                    object,
                }
            }
        }
    }
    Verdict::Ok { ops_checked }
}

/// `check` with per-object op counts, for tests asserting coverage.
pub fn object_op_counts(history: &History, spec: Spec) -> BTreeMap<u64, usize> {
    history
        .objects()
        .into_iter()
        .map(|object| (object, project(history, spec, object).len()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::ADVERSARY_CLIENT;

    fn history(ops: Vec<OpRecord>) -> History {
        History { ops }
    }

    fn op(
        object: u64,
        kind: OpKind,
        invoke: u64,
        response: Option<u64>,
        outcome: OpOutcome,
    ) -> OpRecord {
        OpRecord {
            client: 0,
            object,
            kind,
            invoke,
            response,
            outcome,
        }
    }

    fn write(object: u64, v: u64, invoke: u64, response: u64) -> OpRecord {
        op(
            object,
            OpKind::Write(v),
            invoke,
            Some(response),
            OpOutcome::Ok(None),
        )
    }

    fn read(object: u64, v: Option<u64>, invoke: u64, response: u64) -> OpRecord {
        op(
            object,
            OpKind::Read,
            invoke,
            Some(response),
            OpOutcome::Ok(Some(Observed::Value(v))),
        )
    }

    fn inc(object: u64, token: [u64; 3], invoke: u64, response: u64) -> OpRecord {
        op(
            object,
            OpKind::Inc,
            invoke,
            Some(response),
            OpOutcome::Ok(Some(Observed::Token(token))),
        )
    }

    fn assert_ok(h: &History, spec: Spec) {
        match check(h, spec, 1_000_000) {
            Verdict::Ok { .. } => {}
            other => panic!("expected linearizable, got {other:?}"),
        }
    }

    fn assert_violation(h: &History, spec: Spec, witness_contains: &str) {
        match check(h, spec, 1_000_000) {
            Verdict::Violation { witness, .. } => assert!(
                witness.contains(witness_contains),
                "witness {witness:?} does not mention {witness_contains:?}"
            ),
            other => panic!("expected a violation, got {other:?}"),
        }
    }

    // ----- register corpus ---------------------------------------------------

    #[test]
    fn sequential_register_history_linearizes() {
        let h = history(vec![
            write(1, 10, 0, 1),
            read(1, Some(10), 2, 3),
            write(1, 20, 4, 5),
            read(1, Some(20), 6, 7),
        ]);
        assert_ok(&h, Spec::Register);
    }

    #[test]
    fn empty_history_linearizes() {
        assert_ok(&history(Vec::new()), Spec::Register);
        assert_ok(&history(Vec::new()), Spec::MonotoneToken);
    }

    #[test]
    fn stale_read_is_rejected_with_a_witness() {
        // w(1) and w(2) complete in sequence; a later read observing the
        // overwritten value is the classic new-old inversion.
        let h = history(vec![
            write(1, 1, 0, 1),
            write(1, 2, 2, 3),
            read(1, Some(1), 4, 5),
        ]);
        assert_violation(&h, Spec::Register, "register holds 2");
    }

    #[test]
    fn lost_update_is_rejected() {
        // Both writes commit in sequence; the first value resurfaces after a
        // read already observed the second — no total order serves both
        // reads.
        let h = history(vec![
            write(1, 1, 0, 1),
            write(1, 2, 2, 3),
            read(1, Some(2), 4, 5),
            read(1, Some(1), 6, 7),
        ]);
        assert_violation(&h, Spec::Register, "register holds 2");
    }

    #[test]
    fn future_read_is_rejected() {
        // The read responded before the only write of its value was even
        // invoked — real time forbids the write to linearize first.
        let h = history(vec![read(1, Some(5), 0, 1), write(1, 5, 2, 3)]);
        assert_violation(&h, Spec::Register, "register unwritten");
    }

    #[test]
    fn unwritten_read_after_a_write_is_rejected() {
        let h = history(vec![write(1, 3, 0, 1), read(1, None, 2, 3)]);
        assert_violation(&h, Spec::Register, "register holds 3");
    }

    #[test]
    fn concurrent_reads_may_observe_either_side_of_a_write() {
        // The write spans rounds 0–10; one overlapping read sees the old
        // state, another the new — both linearize.
        let h = history(vec![
            write(1, 1, 0, 10),
            read(1, None, 1, 2),
            read(1, Some(1), 5, 6),
        ]);
        assert_ok(&h, Spec::Register);
    }

    #[test]
    fn failed_write_may_have_landed() {
        // The protocol reported an abort, but the effect surfaced anyway —
        // the checker must keep the failed write available as an optional
        // op.
        let h = history(vec![
            op(1, OpKind::Write(7), 0, Some(1), OpOutcome::Failed),
            read(1, Some(7), 2, 3),
        ]);
        assert_ok(&h, Spec::Register);
    }

    #[test]
    fn failed_write_need_not_have_landed() {
        let h = history(vec![
            write(1, 1, 0, 1),
            op(1, OpKind::Write(9), 2, Some(3), OpOutcome::Failed),
            read(1, Some(1), 4, 5),
        ]);
        assert_ok(&h, Spec::Register);
    }

    #[test]
    fn adversary_write_explains_a_bogus_observation() {
        // A recorded corruption effect linearizes like an uncertain write,
        // so the read observing the bogus value is not a false violation.
        let h = history(vec![
            write(1, 1, 0, 1),
            OpRecord {
                client: ADVERSARY_CLIENT,
                object: 1,
                kind: OpKind::Write(12_345),
                invoke: 2,
                response: None,
                outcome: OpOutcome::Uncertain,
            },
            read(1, Some(12_345), 4, 5),
        ]);
        assert_ok(&h, Spec::Register);
    }

    #[test]
    fn uncertain_reads_constrain_nothing() {
        // An uncertain (e.g. indeterminate or never-claimed) read observing
        // a stale value is dropped by projection instead of violating.
        let h = history(vec![
            write(1, 1, 0, 1),
            write(1, 2, 2, 3),
            op(1, OpKind::Read, 4, Some(5), OpOutcome::Uncertain),
            read(1, Some(2), 6, 7),
        ]);
        assert_ok(&h, Spec::Register);
    }

    #[test]
    fn objects_are_checked_independently() {
        // Object 5 carries the violation; object 1 is clean — the witness
        // names the right object (linearizability is local).
        let h = history(vec![
            write(1, 1, 0, 1),
            read(1, Some(1), 2, 3),
            write(5, 1, 0, 1),
            write(5, 2, 2, 3),
            read(5, Some(1), 4, 5),
        ]);
        assert_violation(&h, Spec::Register, "object 5");
    }

    #[test]
    fn budget_exhaustion_is_inconclusive_not_a_violation() {
        let h = history(vec![write(1, 1, 0, 1)]);
        match check(&h, Spec::Register, 0) {
            Verdict::BudgetExceeded { object, .. } => assert_eq!(object, 1),
            other => panic!("expected budget exhaustion, got {other:?}"),
        }
    }

    /// The eager-read rule keeps wide read concurrency tractable: dozens of
    /// overlapping reads of the same value decide within a budget linear in
    /// the op count, where branching over their orders would be factorial.
    #[test]
    fn concurrent_read_pile_decides_within_a_linear_budget() {
        let mut ops = vec![write(1, 42, 0, 1)];
        for i in 0..60 {
            ops.push(read(1, Some(42), 2, 100 + i));
        }
        let h = history(ops);
        match check(&h, Spec::Register, 200) {
            Verdict::Ok { ops_checked } => assert_eq!(ops_checked, 61),
            other => panic!("eager-read pruning regressed: {other:?}"),
        }
    }

    // ----- counter corpus ----------------------------------------------------

    #[test]
    fn ascending_tokens_linearize() {
        let h = history(vec![
            inc(0, [1, 1, 0], 0, 1),
            inc(0, [1, 2, 2], 2, 3),
            inc(0, [2, 0, 1], 4, 5),
            op(0, OpKind::Inc, 6, Some(7), OpOutcome::Failed),
        ]);
        assert_ok(&h, Spec::MonotoneToken);
    }

    #[test]
    fn concurrent_increments_linearize_in_token_order() {
        // Two overlapping increments: token order decides, either real-time
        // order is compatible.
        let h = history(vec![inc(0, [1, 2, 1], 0, 10), inc(0, [1, 1, 0], 1, 9)]);
        assert_ok(&h, Spec::MonotoneToken);
    }

    #[test]
    fn duplicate_tokens_are_rejected() {
        let h = history(vec![inc(0, [1, 5, 2], 0, 1), inc(0, [1, 5, 2], 2, 3)]);
        assert_violation(&h, Spec::MonotoneToken, "duplicate committed token");
    }

    #[test]
    fn token_order_against_real_time_is_rejected() {
        // The larger token responded before the smaller one was invoked —
        // the token sort cannot respect real time.
        let h = history(vec![inc(0, [2, 1, 0], 0, 1), inc(0, [1, 1, 0], 5, 6)]);
        assert_violation(&h, Spec::MonotoneToken, "token order violates real time");
    }

    #[test]
    fn failed_increments_hide_their_tokens() {
        // A failed increment's token was never observed; only committed
        // tokens take part in the monotone order.
        let h = history(vec![
            inc(0, [1, 1, 0], 0, 1),
            op(0, OpKind::Inc, 2, Some(3), OpOutcome::Failed),
            inc(0, [1, 2, 0], 4, 5),
        ]);
        assert_ok(&h, Spec::MonotoneToken);
    }

    #[test]
    fn monotone_fast_path_consumes_no_budget() {
        let h = history(vec![inc(0, [1, 1, 0], 0, 1), inc(0, [1, 2, 0], 2, 3)]);
        match check(&h, Spec::MonotoneToken, 0) {
            Verdict::Ok { ops_checked } => assert_eq!(ops_checked, 2),
            other => panic!("monotone path fell through to the search: {other:?}"),
        }
    }

    // ----- property tests ----------------------------------------------------

    use proptest::prelude::*;

    /// Builds a serial register history from `(object, is_write)` pairs:
    /// the ops execute one after the other against a model register file
    /// (op `k` occupies rounds `2k..2k+1`), reads observe exactly the model
    /// value, and write values are globally unique — linearizable by
    /// construction.
    fn serial_register_history(ops: &[(u64, bool)]) -> History {
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut records = Vec::new();
        for (k, &(object, is_write)) in ops.iter().enumerate() {
            let invoke = 2 * k as u64;
            let response = invoke + 1;
            if is_write {
                let value = 1000 + k as u64;
                model.insert(object, value);
                records.push(write(object, value, invoke, response));
            } else {
                records.push(read(object, model.get(&object).copied(), invoke, response));
            }
        }
        history(records)
    }

    proptest! {
        /// Every serial register history linearizes: the execution order
        /// itself is a witness.
        #[test]
        fn serial_register_histories_linearize(
            ops in proptest::collection::vec((0u64..3, any::<bool>()), 0..40),
        ) {
            let h = serial_register_history(&ops);
            prop_assert!(matches!(
                check(&h, Spec::Register, 1_000_000),
                Verdict::Ok { .. }
            ));
        }

        /// Mutating one committed write's value out from under a read that
        /// observed it must flip the verdict to a violation: the read's
        /// observation no longer has a source, and writes of other values
        /// seal every state it could linearize against.
        #[test]
        fn mutating_an_observed_write_breaks_linearizability(
            prefix in 0usize..8,
        ) {
            // w(1000), …, w(1000+prefix), r→last, then one more write — the
            // read pins the mutated write's value between the writes.
            let mut ops: Vec<(u64, bool)> = (0..=prefix).map(|_| (0, true)).collect();
            ops.push((0, false));
            ops.push((0, true));
            let mut h = serial_register_history(&ops);
            // Mutate the write the read observed (index `prefix`).
            let OpKind::Write(v) = h.ops[prefix].kind else {
                panic!("expected a write at the mutation site");
            };
            h.ops[prefix].kind = OpKind::Write(v + 500_000);
            prop_assert!(matches!(
                check(&h, Spec::Register, 1_000_000),
                Verdict::Violation { .. }
            ));
        }

        /// Serial counter histories with ascending tokens linearize, and
        /// swapping any two distinct tokens breaks the real-time agreement.
        #[test]
        fn serial_token_histories_linearize_and_reject_swaps(
            len in 2usize..20,
            swap in 0usize..19,
        ) {
            let records: Vec<OpRecord> = (0..len)
                .map(|k| inc(0, [1, k as u64, 0], 2 * k as u64, 2 * k as u64 + 1))
                .collect();
            let h = history(records);
            prop_assert!(matches!(
                check(&h, Spec::MonotoneToken, 0),
                Verdict::Ok { .. }
            ));
            // Swap two adjacent tokens: the larger one now responds before
            // the smaller one is invoked.
            let i = swap % (len - 1);
            let mut swapped = h.clone();
            let (a, b) = (swapped.ops[i].outcome, swapped.ops[i + 1].outcome);
            swapped.ops[i].outcome = b;
            swapped.ops[i + 1].outcome = a;
            prop_assert!(matches!(
                check(&swapped, Spec::MonotoneToken, 0),
                Verdict::Violation { .. }
            ));
        }
    }
}

//! Deterministic randomness for the simulator.
//!
//! Every random decision of a simulation (packet loss, duplication, delays,
//! scheduling order, fault injection) is drawn from a single [`SimRng`]
//! seeded by [`crate::SimConfig::with_seed`], so that an execution is fully
//! reproducible from its seed.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seedable, deterministic random number generator used throughout the
/// simulator.
///
/// `SimRng` wraps [`rand::rngs::StdRng`] and adds the small set of helpers
/// the scheduler and channel model need. It implements [`RngCore`], so it can
/// be passed to any `rand` API.
///
/// ```
/// use simnet::SimRng;
/// use rand::RngCore;
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Splits off an independent generator, e.g. for a fault injector that
    /// must not perturb the scheduler's random stream.
    pub fn split(&mut self) -> SimRng {
        SimRng::seed_from(self.inner.gen())
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen_bool(p)
        }
    }

    /// Uniformly samples an index in `0..len`. Returns `None` for `len == 0`.
    pub fn index(&mut self, len: usize) -> Option<usize> {
        if len == 0 {
            None
        } else {
            Some(self.inner.gen_range(0..len))
        }
    }

    /// Uniformly samples a value in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_inclusive called with lo > hi");
        self.inner.gen_range(lo..=hi)
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        if items.len() < 2 {
            return;
        }
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element of the slice, if any.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        self.index(items.len()).map(|i| &items[i])
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(1);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..16).all(|_| a.next_u64() == b.next_u64());
        assert!(!same);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-1.0));
        assert!(rng.chance(2.0));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut rng = SimRng::seed_from(4);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn index_handles_empty() {
        let mut rng = SimRng::seed_from(5);
        assert_eq!(rng.index(0), None);
        let i = rng.index(10).unwrap();
        assert!(i < 10);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from(6);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_streams_are_independent_of_parent_consumption() {
        let mut parent = SimRng::seed_from(7);
        let mut child = parent.split();
        // Consuming the parent further must not change what the child yields.
        let first = child.next_u64();
        let mut parent2 = SimRng::seed_from(7);
        let mut child2 = parent2.split();
        parent2.next_u64();
        assert_eq!(first, child2.next_u64());
    }

    #[test]
    fn range_inclusive_bounds() {
        let mut rng = SimRng::seed_from(8);
        for _ in 0..100 {
            let v = rng.range_inclusive(3, 5);
            assert!((3..=5).contains(&v));
        }
        assert_eq!(rng.range_inclusive(9, 9), 9);
    }

    #[test]
    fn choose_returns_member() {
        let mut rng = SimRng::seed_from(9);
        let items = [10, 20, 30];
        let picked = *rng.choose(&items).unwrap();
        assert!(items.contains(&picked));
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
    }
}

//! A small work-stealing thread pool for embarrassingly parallel cells.
//!
//! The chaos-campaign driver ([`crate::Campaign`]) runs a matrix of
//! independent (scenario, seed) cells. Each cell is deterministic in
//! isolation — it derives every random draw from its own seed — so the
//! only thing a parallel driver must add on top of `std::thread` is
//! *deterministic reassembly*: the caller hands over an enumerated list of
//! jobs and gets the results back **in the original order**, no matter
//! which worker ran which job or how the OS scheduled them.
//!
//! [`run_ordered`] does exactly that, hand-rolled on `std::thread` +
//! channels (the workspace's vendored-deps convention: no registry access,
//! so no rayon). The shape:
//!
//! 1. **Enumerate** — job `i` keeps its index for reassembly.
//! 2. **Shard** — jobs are dealt round-robin into one deque per worker, so
//!    the long-running cells of one scenario spread across workers instead
//!    of piling onto one shard.
//! 3. **Steal** — a worker pops from the *front* of its own deque; when
//!    that runs dry it steals from the *back* of the fullest other deque,
//!    so stragglers are balanced instead of serialized.
//! 4. **Reassemble** — every `(index, result)` pair travels over one mpsc
//!    channel; the caller slots results by index, which erases completion
//!    order (and with it the shard partitioning) from the output.
//!
//! A panicking job does not poison the pool: remaining jobs still run, and
//! the first panic (by job index, not completion order — determinism again)
//! is re-raised on the caller's thread once the pool drains.
//!
//! ```
//! use simnet::exec;
//!
//! let jobs: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..64u64)
//!     .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> u64 + Send>)
//!     .collect();
//! let squares = exec::run_ordered(jobs, 8);
//! assert_eq!(squares, (0..64u64).map(|i| i * i).collect::<Vec<_>>());
//! ```

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Mutex;

/// A boxed unit of work producing a `T`, shippable to a worker thread.
pub type Job<'scope, T> = Box<dyn FnOnce() -> T + Send + 'scope>;

/// One worker's deque of enumerated jobs; other workers steal from its back.
type Shard<'scope, T> = VecDeque<(usize, Job<'scope, T>)>;

/// The number of worker threads the platform offers (≥ 1). This is the
/// default for [`crate::Campaign::with_jobs`] and `simctl --jobs`.
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs every job and returns the results **in job order**, using up to
/// `workers` threads (clamped to the job count; `workers <= 1` runs inline
/// on the caller's thread with no pool at all — byte-for-byte the serial
/// code path).
///
/// Jobs must be independent: the pool gives no ordering guarantee about
/// *execution* (that is the point), only about the returned `Vec`. If any
/// job panics, the panic of the smallest job index is re-raised here after
/// all workers have drained their deques.
pub fn run_ordered<'scope, T: Send + 'scope>(jobs: Vec<Job<'scope, T>>, workers: usize) -> Vec<T> {
    let total = jobs.len();
    let workers = workers.min(total).max(1);
    if workers == 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }

    // One deque per worker, dealt round-robin. Mutex-per-deque keeps the
    // steal path simple; cells are coarse (milliseconds and up), so lock
    // traffic is noise.
    let mut shards: Vec<Shard<'scope, T>> = (0..workers).map(|_| VecDeque::new()).collect();
    for (index, job) in jobs.into_iter().enumerate() {
        shards[index % workers].push_back((index, job));
    }
    let shards: Vec<Mutex<Shard<'scope, T>>> = shards.into_iter().map(Mutex::new).collect();
    let (results_tx, results_rx) = mpsc::channel::<(usize, std::thread::Result<T>)>();

    let mut slots: Vec<Option<T>> = (0..total).map(|_| None).collect();
    let mut panics: Vec<(usize, Box<dyn std::any::Any + Send>)> = Vec::new();
    std::thread::scope(|scope| {
        let shards = &shards;
        for me in 0..workers {
            let results_tx = results_tx.clone();
            scope.spawn(move || {
                while let Some((index, job)) = take_job(shards, me) {
                    let outcome = catch_unwind(AssertUnwindSafe(job));
                    if results_tx.send((index, outcome)).is_err() {
                        // The caller is gone (it panicked); stop working.
                        return;
                    }
                }
            });
        }
        drop(results_tx);
        for (index, outcome) in results_rx {
            match outcome {
                Ok(value) => slots[index] = Some(value),
                Err(panic) => panics.push((index, panic)),
            }
        }
    });

    if let Some((_, panic)) = panics.into_iter().min_by_key(|(index, _)| *index) {
        resume_unwind(panic);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("worker pool lost a job result"))
        .collect()
}

/// Pops the next job for worker `me`: the front of its own deque, else a
/// steal from the back of the fullest other deque. Returns `None` only when
/// every deque is empty — jobs already taken are someone else's problem.
fn take_job<'scope, T>(
    shards: &[Mutex<Shard<'scope, T>>],
    me: usize,
) -> Option<(usize, Job<'scope, T>)> {
    if let Some(job) = shards[me].lock().expect("shard lock").pop_front() {
        return Some(job);
    }
    loop {
        // Snapshot the fullest victim; racing stealers are fine, we retry
        // until every deque is observably empty.
        let victim = shards
            .iter()
            .enumerate()
            .filter(|(other, _)| *other != me)
            .map(|(other, shard)| (shard.lock().expect("shard lock").len(), other))
            .max()
            .filter(|(len, _)| *len > 0)
            .map(|(_, other)| other)?;
        if let Some(job) = shards[victim].lock().expect("shard lock").pop_back() {
            return Some(job);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn boxed<T, F: FnOnce() -> T + Send + 'static>(f: F) -> Job<'static, T> {
        Box::new(f)
    }

    #[test]
    fn results_come_back_in_job_order_regardless_of_completion_order() {
        // Early jobs sleep longest, so completion order is roughly the
        // reverse of job order — reassembly must undo that.
        let jobs: Vec<Job<'static, usize>> = (0..16)
            .map(|i| {
                boxed(move || {
                    std::thread::sleep(std::time::Duration::from_millis((16 - i) as u64));
                    i
                })
            })
            .collect();
        for workers in [2, 4, 8] {
            let jobs: Vec<Job<'static, usize>> = (0..16)
                .map(|i| {
                    boxed(move || {
                        std::thread::sleep(std::time::Duration::from_millis((16 - i) as u64));
                        i
                    })
                })
                .collect();
            assert_eq!(run_ordered(jobs, workers), (0..16).collect::<Vec<_>>());
        }
        assert_eq!(run_ordered(jobs, 1), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn every_job_runs_exactly_once() {
        static RUNS: AtomicUsize = AtomicUsize::new(0);
        let jobs: Vec<Job<'static, usize>> = (0..100)
            .map(|i| {
                boxed(move || {
                    RUNS.fetch_add(1, Ordering::SeqCst);
                    i
                })
            })
            .collect();
        let results = run_ordered(jobs, 7);
        assert_eq!(RUNS.load(Ordering::SeqCst), 100);
        assert_eq!(results, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn workers_clamp_to_the_job_count_and_zero_means_one() {
        assert_eq!(run_ordered(vec![boxed(|| 7usize)], 64), vec![7]);
        assert_eq!(run_ordered(vec![boxed(|| 7usize)], 0), vec![7]);
        assert_eq!(run_ordered(Vec::<Job<'static, usize>>::new(), 4), vec![]);
    }

    #[test]
    fn jobs_may_borrow_from_the_caller() {
        let inputs: Vec<u64> = (0..32).collect();
        let jobs: Vec<Job<'_, u64>> = inputs
            .iter()
            .map(|value| Box::new(move || value * 2) as Job<'_, u64>)
            .collect();
        let doubled = run_ordered(jobs, 4);
        assert_eq!(doubled, inputs.iter().map(|v| v * 2).collect::<Vec<_>>());
    }

    #[test]
    fn the_lowest_indexed_panic_wins_and_other_jobs_still_run() {
        static SURVIVORS: AtomicUsize = AtomicUsize::new(0);
        let mut jobs: Vec<Job<'static, usize>> = Vec::new();
        for i in 0..12 {
            if i == 3 || i == 9 {
                jobs.push(boxed(move || panic!("job {i} exploded")));
            } else {
                jobs.push(boxed(move || {
                    SURVIVORS.fetch_add(1, Ordering::SeqCst);
                    i
                }));
            }
        }
        let panic = catch_unwind(AssertUnwindSafe(|| run_ordered(jobs, 4))).unwrap_err();
        let message = panic.downcast_ref::<String>().cloned().unwrap_or_default();
        assert_eq!(message, "job 3 exploded");
        assert_eq!(SURVIVORS.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn an_idle_worker_steals_from_a_loaded_shard() {
        // Two workers, four jobs: round-robin gives each shard two jobs.
        // Worker 0's jobs block until the *last* job (shard 1's second) has
        // run — which can only happen if worker 1 (or a steal) makes
        // progress independently. A deadlock here means stealing or
        // sharding broke; completing at all is the assertion.
        let gate = std::sync::Arc::new(std::sync::Barrier::new(2));
        let jobs: Vec<Job<'static, usize>> = (0..4)
            .map(|i| {
                let gate = std::sync::Arc::clone(&gate);
                boxed(move || {
                    if i % 2 == 0 {
                        gate.wait();
                    }
                    i
                })
            })
            .collect();
        assert_eq!(run_ordered(jobs, 2), vec![0, 1, 2, 3]);
    }
}

//! Operation-history recording for armed scenario runs.
//!
//! A scenario armed with [`crate::Scenario::with_history`] records every
//! client operation the open-loop load engine ([`crate::load`]) drives
//! through [`crate::ScenarioTarget::submit_op`] as an [`OpRecord`]: who
//! invoked what on which object, at which round, and what (if anything)
//! came back. The finished [`History`] is what the linearizability checker
//! ([`crate::linearize`]) consumes.
//!
//! The recording model is Jepsen-style:
//!
//! * a **completed** op has both an invoke and a response round, and its
//!   [`OpOutcome`] says whether the protocol committed or aborted it;
//! * an op that never produced a response within the run — timed out and
//!   never claimed, or still pending at the end — is **uncertain**
//!   ([`OpOutcome::Uncertain`]): its effect may or may not have taken place,
//!   so the checker lets it linearize anywhere after its invocation *or
//!   never*;
//! * a completion the service itself disclaims — served under a
//!   **collapsed** configuration installed by the majority-loss recovery
//!   path, which the paper lets trade atomicity for liveness — is resolved
//!   as uncertain too ([`OpResponse::indeterminate`]): the client saw a
//!   response, but the service never promised it an ordered one;
//! * a transient state corruption with client-visible effects (e.g. the
//!   sharedmem adversary installing a bogus register value under a
//!   dominating tag) is recorded as an **adversary write**: an uncertain
//!   write by the reserved client [`ADVERSARY_CLIENT`], invoked at the
//!   corruption round. Reads that observe the bogus value then linearize
//!   against it instead of tripping a false violation. Targets report these
//!   effects through [`crate::ScenarioTarget::corrupt_observed`].
//!
//! Recording is strictly opt-in: an unarmed run never constructs a
//! recorder, calls the exact same target hooks as before, and produces a
//! byte-identical report.

use std::collections::BTreeSet;

/// The synthetic client identifier adversary writes are attributed to.
pub const ADVERSARY_CLIENT: u64 = u64::MAX;

/// What a recorded client operation does, as declared by
/// [`crate::ScenarioTarget::op_spec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Read the object's value.
    Read,
    /// Write the given value to the object.
    Write(u64),
    /// Increment the object (a counter), minting the next token.
    Inc,
}

/// A value observed at an operation's response, surfaced by
/// [`crate::ScenarioTarget::claim_op`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Observed {
    /// A register read's result; `None` means the register was observed
    /// unwritten.
    Value(Option<u64>),
    /// A committed counter token, ordered lexicographically. The sharedmem
    /// paper's counter `⟨label, seqn, wid⟩` maps onto
    /// `[label.creator, seqn, wid]`: creators totally order distinct labels
    /// under `≺lb`, and a creator mints at most one label per run short of
    /// sequence-number exhaustion (bound 2⁶³).
    Token([u64; 3]),
}

/// An operation's response as the target reports it when a history is
/// armed: the success bit [`crate::ScenarioTarget::complete_op`] already
/// returns, plus the observed value (for reads and increments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpResponse {
    /// `true` when the protocol committed the operation.
    pub ok: bool,
    /// What the operation observed, when its kind observes anything.
    pub observed: Option<Observed>,
    /// `true` when the service itself disclaims atomicity for this
    /// completion — it was served under a *collapsed* configuration (one
    /// installed by the majority-loss recovery path, holding no majority of
    /// the population), where the paper trades safety for liveness. The
    /// recorder classifies such ops [`OpOutcome::Uncertain`]: their effect
    /// is real but unordered, exactly like a response that never arrived.
    pub indeterminate: bool,
}

/// How a recorded operation ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpOutcome {
    /// Committed; reads and increments carry what they observed.
    Ok(Option<Observed>),
    /// The protocol reported a failure (abort). Failed *writes* are still
    /// treated as uncertain by the checker — an aborted effect may yet have
    /// landed — while failed reads constrain nothing and are dropped.
    Failed,
    /// No response was observed within the run (timed out unclaimed, still
    /// pending at the end, or an adversary write).
    Uncertain,
}

/// One recorded client operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecord {
    /// The logical client that invoked the op ([`ADVERSARY_CLIENT`] for
    /// recorded corruption effects).
    pub client: u64,
    /// The object the op targets (register identifier; 0 for the counter).
    pub object: u64,
    /// What the op does.
    pub kind: OpKind,
    /// The round the op was submitted in.
    pub invoke: u64,
    /// The round the response was claimed in; `None` when no response was
    /// ever observed. A timed-out op that completes late records its real
    /// (late) response round.
    pub response: Option<u64>,
    /// How the op ended.
    pub outcome: OpOutcome,
}

/// A complete recorded history of one scenario run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct History {
    /// Every recorded op, in invocation order.
    pub ops: Vec<OpRecord>,
}

impl History {
    /// Number of recorded ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The distinct objects the history touches, in ascending order.
    /// Linearizability is local (composable), so the checker verifies each
    /// object's sub-history independently.
    pub fn objects(&self) -> BTreeSet<u64> {
        self.ops.iter().map(|op| op.object).collect()
    }
}

/// Accumulates [`OpRecord`]s during an armed run: the load engine invokes
/// ops as it submits them and resolves them as it claims responses;
/// unresolved ops surface as [`OpOutcome::Uncertain`].
#[derive(Debug, Default)]
pub struct HistoryRecorder {
    ops: Vec<OpRecord>,
}

impl HistoryRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an invocation, returning the op's index for later
    /// resolution.
    pub fn invoke(&mut self, client: u64, object: u64, kind: OpKind, round: u64) -> usize {
        self.ops.push(OpRecord {
            client,
            object,
            kind,
            invoke: round,
            response: None,
            outcome: OpOutcome::Uncertain,
        });
        self.ops.len() - 1
    }

    /// Resolves op `idx` with the response claimed at `round`. An
    /// indeterminate response — one the service completed under a collapsed
    /// configuration — resolves to [`OpOutcome::Uncertain`]: the response
    /// round is still recorded, but the checker treats the op as optional
    /// and discards whatever it observed.
    pub fn resolve(&mut self, idx: usize, round: u64, response: OpResponse) {
        let op = &mut self.ops[idx];
        op.response = Some(round);
        op.outcome = if response.indeterminate {
            OpOutcome::Uncertain
        } else if response.ok {
            OpOutcome::Ok(response.observed)
        } else {
            OpOutcome::Failed
        };
    }

    /// Records a client-visible corruption effect: an uncertain write of
    /// `value` to `object` by the adversary, invoked at `round`.
    pub fn adversary_write(&mut self, object: u64, value: u64, round: u64) {
        self.ops.push(OpRecord {
            client: ADVERSARY_CLIENT,
            object,
            kind: OpKind::Write(value),
            invoke: round,
            response: None,
            outcome: OpOutcome::Uncertain,
        });
    }

    /// Finishes recording; ops never resolved stay uncertain.
    pub fn into_history(self) -> History {
        History { ops: self.ops }
    }
}

/// Configuration of an armed history run: how long the runner keeps
/// probing convergence after it first holds, and the linearizability
/// checker's search budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryCfg {
    /// Rounds the runner keeps executing after first convergence,
    /// re-evaluating the convergence predicate each round: the
    /// *eventually-stays-converged* probe window. Every converged →
    /// unconverged transition inside it counts into the
    /// `stability_violations` counter and fails the run.
    pub probe_rounds: u64,
    /// Maximum number of search configurations the linearizability checker
    /// may visit per run (shared across the run's objects). Exhaustion is
    /// the distinct verdict `lin_result = 2`, not a violation.
    pub lin_budget: u64,
}

impl Default for HistoryCfg {
    fn default() -> Self {
        HistoryCfg {
            probe_rounds: 64,
            lin_budget: 500_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_round_trips_invoke_and_resolve() {
        let mut rec = HistoryRecorder::new();
        let a = rec.invoke(7, 1, OpKind::Write(5), 3);
        let b = rec.invoke(8, 1, OpKind::Read, 4);
        rec.resolve(
            a,
            9,
            OpResponse {
                ok: true,
                observed: None,
                indeterminate: false,
            },
        );
        rec.resolve(
            b,
            10,
            OpResponse {
                ok: true,
                observed: Some(Observed::Value(Some(5))),
                indeterminate: false,
            },
        );
        let unresolved = rec.invoke(9, 2, OpKind::Read, 11);
        let history = rec.into_history();
        assert_eq!(history.len(), 3);
        assert_eq!(history.ops[a].response, Some(9));
        assert_eq!(history.ops[a].outcome, OpOutcome::Ok(None));
        assert_eq!(
            history.ops[b].outcome,
            OpOutcome::Ok(Some(Observed::Value(Some(5))))
        );
        assert_eq!(history.ops[unresolved].outcome, OpOutcome::Uncertain);
        assert_eq!(history.objects().into_iter().collect::<Vec<_>>(), [1, 2]);
    }

    #[test]
    fn adversary_writes_are_uncertain_writes_by_the_reserved_client() {
        let mut rec = HistoryRecorder::new();
        rec.adversary_write(3, 12_345, 40);
        let history = rec.into_history();
        let op = &history.ops[0];
        assert_eq!(op.client, ADVERSARY_CLIENT);
        assert_eq!(op.kind, OpKind::Write(12_345));
        assert_eq!(op.invoke, 40);
        assert_eq!(op.response, None);
        assert_eq!(op.outcome, OpOutcome::Uncertain);
    }

    #[test]
    fn failed_ops_resolve_as_failed() {
        let mut rec = HistoryRecorder::new();
        let a = rec.invoke(1, 0, OpKind::Inc, 5);
        rec.resolve(
            a,
            8,
            OpResponse {
                ok: false,
                observed: None,
                indeterminate: false,
            },
        );
        assert_eq!(rec.into_history().ops[a].outcome, OpOutcome::Failed);
    }

    /// A committed response the service disclaims (served under a collapsed
    /// configuration) resolves as uncertain, response round kept.
    #[test]
    fn indeterminate_responses_resolve_as_uncertain() {
        let mut rec = HistoryRecorder::new();
        let a = rec.invoke(1, 2, OpKind::Read, 5);
        rec.resolve(
            a,
            9,
            OpResponse {
                ok: true,
                observed: Some(Observed::Value(Some(7))),
                indeterminate: true,
            },
        );
        let op = &rec.into_history().ops[a];
        assert_eq!(op.outcome, OpOutcome::Uncertain);
        assert_eq!(op.response, Some(9));
    }
}

//! Processors and their interface to the simulated environment.
//!
//! The paper (Section 2) models processing entities as processors with
//! unique identifiers drawn from a totally ordered set `P`. A processor takes
//! *atomic steps*: local computation followed by a single communication
//! operation, triggered either by a periodic timer (whose rate is unknown —
//! the system is asynchronous) or by the arrival of a packet. This module
//! defines the [`Process`] trait realizing exactly those two entry points and
//! the [`Context`] handle a process uses to send packets.

use std::fmt;

use crate::payload::Payload;
use crate::time::Round;

/// Unique identifier of a processor, drawn from the totally ordered set `P`.
///
/// Identifiers are never reused: a crashed processor never rejoins under the
/// same identifier (rejoins are modelled as transient faults, as in the
/// paper).
///
/// ```
/// use simnet::ProcessId;
/// let a = ProcessId::new(1);
/// let b = ProcessId::new(2);
/// assert!(a < b);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(u32);

impl ProcessId {
    /// Creates an identifier from its raw value.
    pub fn new(raw: u32) -> Self {
        ProcessId(raw)
    }

    /// Returns the raw value of the identifier.
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u32> for ProcessId {
    fn from(raw: u32) -> Self {
        ProcessId(raw)
    }
}

/// Lifecycle status of a processor inside a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcessStatus {
    /// The processor is active: it takes timer steps and receives packets.
    Active,
    /// The processor has crashed. It takes no further steps and never
    /// rejoins (crash-stop).
    Crashed,
}

impl ProcessStatus {
    /// Returns `true` for [`ProcessStatus::Active`].
    pub fn is_active(self) -> bool {
        matches!(self, ProcessStatus::Active)
    }
}

/// The behaviour of a processor.
///
/// A process reacts to exactly two kinds of input events, mirroring the
/// paper's step model:
///
/// * [`Process::on_timer`] — the periodic timer firing, i.e. one iteration of
///   the algorithm's `do forever` loop;
/// * [`Process::on_message`] — the arrival of a packet from another
///   processor.
///
/// Both receive a [`Context`] through which the process can send packets and
/// observe its own identifier and the identifiers of the other processors.
pub trait Process {
    /// The message (high-level packet payload) type exchanged by this
    /// protocol.
    type Msg: Clone;

    /// One iteration of the process's `do forever` loop.
    fn on_timer(&mut self, ctx: &mut Context<'_, Self::Msg>);

    /// Handles the arrival of `msg` sent by `from`.
    fn on_message(&mut self, from: ProcessId, msg: Self::Msg, ctx: &mut Context<'_, Self::Msg>);
}

/// Handle through which a process interacts with the simulated network
/// during one atomic step.
///
/// All sends performed through the context are buffered and handed to the
/// network when the step completes, preserving the atomic-step abstraction.
/// The buffer holds [`Payload`]s, not bare messages, so a broadcast queued
/// through [`crate::stack::Outbox::push_to_all`] travels to the network as
/// `n` handles over one shared allocation instead of `n` deep clones.
pub struct Context<'a, M> {
    me: ProcessId,
    now: Round,
    peers: &'a [ProcessId],
    outbox: Vec<(ProcessId, Payload<M>)>,
}

impl<'a, M> Context<'a, M> {
    /// Creates a context for one step of process `me` at round `now`.
    /// `peers` lists every processor the simulation knows about (including
    /// crashed ones and `me` itself).
    pub fn new(me: ProcessId, now: Round, peers: &'a [ProcessId]) -> Self {
        Context::with_outbox(me, now, peers, Vec::new())
    }

    /// Like [`Context::new`], but reusing an (empty) outbox buffer so a
    /// steady-state scheduler step performs no allocation: the scheduler
    /// recycles one send buffer across steps and recovers it through
    /// [`Context::into_outbox`] after flushing.
    pub fn with_outbox(
        me: ProcessId,
        now: Round,
        peers: &'a [ProcessId],
        outbox: Vec<(ProcessId, Payload<M>)>,
    ) -> Self {
        debug_assert!(outbox.is_empty(), "recycled outbox must be drained");
        Context {
            me,
            now,
            peers,
            outbox,
        }
    }

    /// The identifier of the process taking this step.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// The current simulation round (an accounting value; algorithms should
    /// not rely on it for correctness).
    pub fn now(&self) -> Round {
        self.now
    }

    /// All processor identifiers known to the simulation except the caller.
    ///
    /// This models the fully connected topology: a processor can address a
    /// packet to any other processor. It does *not* reveal which of them are
    /// alive — that is the failure detector's job.
    pub fn peers(&self) -> Vec<ProcessId> {
        self.peers
            .iter()
            .copied()
            .filter(|&p| p != self.me)
            .collect()
    }

    /// All processor identifiers known to the simulation, including the
    /// caller.
    pub fn all_ids(&self) -> Vec<ProcessId> {
        self.peers.to_vec()
    }

    /// All processor identifiers known to the simulation, including the
    /// caller, as the borrowed slice (no copy; the lifetime is that of the
    /// simulation's identifier snapshot, not of this context).
    pub fn ids(&self) -> &'a [ProcessId] {
        self.peers
    }

    /// Takes the send buffer out of the context so a caller can fill it
    /// through another collector (see `impl_process_for_layer!`), to be
    /// handed back via [`Context::restore_sends`]. Packets already queued
    /// stay in the returned buffer.
    #[doc(hidden)]
    pub fn take_sends(&mut self) -> Vec<(ProcessId, Payload<M>)> {
        std::mem::take(&mut self.outbox)
    }

    /// Restores a send buffer taken with [`Context::take_sends`]. Packets
    /// queued in the meantime are kept, in order, before the restored ones.
    #[doc(hidden)]
    pub fn restore_sends(&mut self, mut sends: Vec<(ProcessId, Payload<M>)>) {
        if self.outbox.is_empty() {
            self.outbox = sends;
        } else {
            self.outbox.append(&mut sends);
        }
    }

    /// Queues a packet for `to`. Sending to oneself is permitted and is
    /// delivered through the network like any other packet.
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.outbox.push((to, Payload::owned(msg)));
    }

    /// Queues an already-wrapped payload for `to` (the shared-broadcast
    /// path; see [`crate::stack::Outbox::push_to_all`]).
    pub fn send_payload(&mut self, to: ProcessId, payload: Payload<M>) {
        self.outbox.push((to, payload));
    }

    /// Number of packets queued so far in this step.
    pub fn pending_sends(&self) -> usize {
        self.outbox.len()
    }

    /// Consumes the context and returns the queued packets as payloads (what
    /// the scheduler's flush path feeds to [`crate::Network::send_payload`]).
    pub fn into_outbox(self) -> Vec<(ProcessId, Payload<M>)> {
        self.outbox
    }
}

impl<M> fmt::Debug for Context<'_, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Context")
            .field("me", &self.me)
            .field("now", &self.now)
            .field("pending_sends", &self.outbox.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_ordering_follows_raw_value() {
        let ids: Vec<ProcessId> = (0..5).map(ProcessId::new).collect();
        for w in ids.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(ProcessId::new(3).as_u32(), 3);
        assert_eq!(ProcessId::from(7u32), ProcessId::new(7));
    }

    #[test]
    fn context_peers_excludes_self() {
        let all: Vec<ProcessId> = (0..4).map(ProcessId::new).collect();
        let ctx: Context<'_, ()> = Context::new(ProcessId::new(2), Round::ZERO, &all);
        let peers = ctx.peers();
        assert_eq!(peers.len(), 3);
        assert!(!peers.contains(&ProcessId::new(2)));
        assert_eq!(ctx.all_ids().len(), 4);
    }

    #[test]
    fn context_collects_outbox_in_order() {
        let all: Vec<ProcessId> = (0..3).map(ProcessId::new).collect();
        let mut ctx: Context<'_, u32> = Context::new(ProcessId::new(0), Round::new(5), &all);
        ctx.send(ProcessId::new(1), 11);
        ctx.send(ProcessId::new(2), 22);
        assert_eq!(ctx.pending_sends(), 2);
        assert_eq!(ctx.now(), Round::new(5));
        assert_eq!(ctx.me(), ProcessId::new(0));
        let out: Vec<(ProcessId, u32)> = ctx
            .into_outbox()
            .into_iter()
            .map(|(to, payload)| (to, payload.into_msg()))
            .collect();
        assert_eq!(out, vec![(ProcessId::new(1), 11), (ProcessId::new(2), 22)]);
    }

    #[test]
    fn status_is_active_helper() {
        assert!(ProcessStatus::Active.is_active());
        assert!(!ProcessStatus::Crashed.is_active());
    }

    #[test]
    fn process_id_display() {
        assert_eq!(format!("{}", ProcessId::new(4)), "p4");
        assert_eq!(format!("{:?}", ProcessId::new(4)), "p4");
    }
}

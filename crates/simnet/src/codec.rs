//! Deterministic binary wire codec for the live runtime.
//!
//! Every envelope declared with [`wire_enum!`](crate::wire_enum) gets a
//! derived [`WireCodec`] implementation: one byte of **lane tag** (the
//! variant's declaration index) followed by the variant payload, each payload
//! field encoded in declaration order. Payload types implement [`WireCodec`]
//! by hand (or via [`wire_struct_codec!`](crate::wire_struct_codec)) in the
//! crate that defines them.
//!
//! ## Encoding rules
//!
//! The format is deliberately boring, so that two builds of the workspace
//! always agree on the bytes:
//!
//! * integers are **fixed-width little-endian** (`u16`/`u32`/`u64`);
//! * `bool` is one byte, `0` or `1` — anything else is a decode error;
//! * `Option<T>` is a presence byte (`0`/`1`) followed by the value;
//! * collections (`String`, `Vec`, `BTreeSet`, `BTreeMap`) are a `u32`
//!   element count followed by the elements in iteration order (which is the
//!   canonical sorted order for the B-tree collections, so equal values
//!   always serialize to equal bytes);
//! * `Arc<T>` encodes as `T`; decoding allocates a fresh `Arc` — interning is
//!   a sender-side optimisation, and every cross-`Arc` comparison in the
//!   protocol stack falls back to value equality, so a non-interned decode is
//!   behaviour-identical;
//! * enums are a one-byte tag (declaration index) followed by the payload.
//!
//! Framing (length prefixes, protocol version, sender identity) lives one
//! level up, in `livenet`; this module is only concerned with the payload
//! bytes between the frame boundaries. The one versioning rule codec
//! implementors must follow: **never reorder or remove variants or fields** —
//! append new variants at the end, and bump `livenet`'s protocol version for
//! anything else (see `docs/LIVE.md`).
//!
//! ## Malformed input
//!
//! [`decode`](WireCodec::decode) never panics on malformed bytes: every error
//! path returns a typed [`DecodeError`]. Length claims are validated against
//! the bytes actually remaining *before* any allocation, so a hostile
//! four-byte header cannot make the decoder reserve gigabytes.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

use crate::process::ProcessId;

/// Hard cap on a single declared collection/string length. Anything above is
/// rejected as [`DecodeError::TooLarge`] even if the buffer could supply it.
pub const MAX_COLLECTION_LEN: usize = 1 << 24;

/// A typed decoding failure. All malformed input maps here; decoding never
/// panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the value was complete.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes that were available.
        available: usize,
    },
    /// An enum tag byte did not name any declared variant.
    UnknownLane {
        /// The enum type being decoded.
        ty: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A declared length exceeds [`MAX_COLLECTION_LEN`].
    TooLarge {
        /// The declared element count.
        declared: usize,
        /// The enforced maximum.
        limit: usize,
    },
    /// A value was structurally invalid (bad bool byte, non-UTF-8 string,
    /// unordered/duplicate set elements, …).
    Invalid {
        /// What was being decoded.
        ty: &'static str,
        /// Why it was rejected.
        reason: &'static str,
    },
    /// The value decoded cleanly but bytes were left over (only raised by
    /// [`WireCodec::from_bytes`], which requires exact consumption).
    Trailing {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { needed, available } => {
                write!(f, "truncated input: needed {needed} bytes, had {available}")
            }
            DecodeError::UnknownLane { ty, tag } => {
                write!(f, "unknown lane tag {tag} for {ty}")
            }
            DecodeError::TooLarge { declared, limit } => {
                write!(f, "declared length {declared} exceeds limit {limit}")
            }
            DecodeError::Invalid { ty, reason } => write!(f, "invalid {ty}: {reason}"),
            DecodeError::Trailing { remaining } => {
                write!(f, "{remaining} trailing bytes after value")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// A bounds-checked cursor over an input buffer.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next `n` bytes, or fails with [`DecodeError::Truncated`].
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `u32` element count and validates it: it must not exceed
    /// [`MAX_COLLECTION_LEN`], and — since every element encodes to at least
    /// `min_elem_bytes` bytes — it must be satisfiable by the bytes that
    /// remain. The check runs *before* any allocation.
    pub fn length(&mut self, min_elem_bytes: usize) -> Result<usize, DecodeError> {
        let declared = self.u32()? as usize;
        if declared > MAX_COLLECTION_LEN {
            return Err(DecodeError::TooLarge {
                declared,
                limit: MAX_COLLECTION_LEN,
            });
        }
        let needed = declared.saturating_mul(min_elem_bytes.max(1));
        if needed > self.remaining() {
            return Err(DecodeError::Truncated {
                needed,
                available: self.remaining(),
            });
        }
        Ok(declared)
    }
}

/// Deterministic binary encode/decode for one wire value.
///
/// Derived for every [`wire_enum!`](crate::wire_enum) envelope; implemented
/// by hand (or via [`wire_struct_codec!`](crate::wire_struct_codec)) for the
/// payload types the envelopes carry.
pub trait WireCodec: Sized {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes one value from `r`, leaving the cursor after it.
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError>;

    /// Encodes into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decodes a value that must consume `bytes` exactly; trailing bytes are
    /// a [`DecodeError::Trailing`] error.
    fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let value = Self::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(DecodeError::Trailing {
                remaining: r.remaining(),
            });
        }
        Ok(value)
    }
}

impl WireCodec for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        r.u8()
    }
}

impl WireCodec for u16 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        r.u16()
    }
}

impl WireCodec for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        r.u32()
    }
}

impl WireCodec for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        r.u64()
    }
}

impl WireCodec for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError::Invalid {
                ty: "bool",
                reason: "byte is neither 0 nor 1",
            }),
        }
    }
}

impl WireCodec for ProcessId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_u32().encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(ProcessId::new(r.u32()?))
    }
}

impl WireCodec for String {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = r.length(1)?;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::Invalid {
            ty: "String",
            reason: "not valid UTF-8",
        })
    }
}

impl<T: WireCodec> WireCodec for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(DecodeError::Invalid {
                ty: "Option",
                reason: "presence byte is neither 0 nor 1",
            }),
        }
    }
}

impl<T: WireCodec> WireCodec for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        for item in self {
            item.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = r.length(1)?;
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            items.push(T::decode(r)?);
        }
        Ok(items)
    }
}

impl<T: WireCodec + Ord> WireCodec for BTreeSet<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        for item in self {
            item.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = r.length(1)?;
        let mut set = BTreeSet::new();
        for _ in 0..len {
            let item = T::decode(r)?;
            if !set.insert(item) {
                return Err(DecodeError::Invalid {
                    ty: "BTreeSet",
                    reason: "duplicate element",
                });
            }
        }
        Ok(set)
    }
}

impl<K: WireCodec + Ord, V: WireCodec> WireCodec for BTreeMap<K, V> {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        for (k, v) in self {
            k.encode(out);
            v.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = r.length(2)?;
        let mut map = BTreeMap::new();
        for _ in 0..len {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            if map.insert(k, v).is_some() {
                return Err(DecodeError::Invalid {
                    ty: "BTreeMap",
                    reason: "duplicate key",
                });
            }
        }
        Ok(map)
    }
}

impl<A: WireCodec, B: WireCodec> WireCodec for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<T: WireCodec> WireCodec for Arc<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (**self).encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Arc::new(T::decode(r)?))
    }
}

/// Implements [`WireCodec`] for a named-field struct, encoding the listed
/// fields in order. The field list must cover every field of the struct (the
/// generated constructor would fail to compile otherwise), which keeps the
/// codec honest when a struct grows.
///
/// ```
/// use simnet::wire_struct_codec;
///
/// #[derive(Debug, Clone, PartialEq, Eq)]
/// pub struct Probe { pub seq: u64, pub urgent: bool }
/// wire_struct_codec!(Probe { seq, urgent });
///
/// use simnet::codec::WireCodec;
/// let p = Probe { seq: 7, urgent: true };
/// assert_eq!(Probe::from_bytes(&p.to_bytes()), Ok(p));
/// ```
#[macro_export]
macro_rules! wire_struct_codec {
    ($ty:ty { $($field:ident),* $(,)? }) => {
        impl $crate::codec::WireCodec for $ty {
            fn encode(&self, out: &mut ::std::vec::Vec<u8>) {
                $( $crate::codec::WireCodec::encode(&self.$field, out); )*
            }
            fn decode(
                r: &mut $crate::codec::Reader<'_>,
            ) -> ::std::result::Result<Self, $crate::codec::DecodeError> {
                ::std::result::Result::Ok(Self {
                    $( $field: $crate::codec::WireCodec::decode(r)?, )*
                })
            }
        }
    };
}

/// Implements [`WireCodec`] for a single-field tuple struct (newtype),
/// delegating to the inner type. Invoke it in the module that defines the
/// struct — it works through field `.0`, so the field may stay private.
///
/// ```
/// use simnet::wire_newtype_codec;
///
/// #[derive(Debug, Clone, PartialEq, Eq)]
/// pub struct Seq(u64);
/// wire_newtype_codec!(Seq(u64));
///
/// use simnet::codec::WireCodec;
/// assert_eq!(Seq::from_bytes(&Seq(9).to_bytes()), Ok(Seq(9)));
/// ```
#[macro_export]
macro_rules! wire_newtype_codec {
    ($ty:ident ( $inner:ty )) => {
        impl $crate::codec::WireCodec for $ty {
            fn encode(&self, out: &mut ::std::vec::Vec<u8>) {
                $crate::codec::WireCodec::encode(&self.0, out);
            }
            fn decode(
                r: &mut $crate::codec::Reader<'_>,
            ) -> ::std::result::Result<Self, $crate::codec::DecodeError> {
                ::std::result::Result::Ok($ty(<$inner as $crate::codec::WireCodec>::decode(r)?))
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: WireCodec + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = value.to_bytes();
        assert_eq!(T::from_bytes(&bytes), Ok(value));
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(0xBEEFu16);
        roundtrip(0xDEAD_BEEFu32);
        roundtrip(u64::MAX);
        roundtrip(true);
        roundtrip(false);
        roundtrip(ProcessId::new(42));
        roundtrip(String::from("héllo wörld"));
        roundtrip(Option::<u64>::None);
        roundtrip(Some(9u32));
        roundtrip(vec![1u64, 2, 3]);
        roundtrip([3u32, 1, 2].into_iter().collect::<BTreeSet<_>>());
        roundtrip(
            [(1u32, 10u64), (2, 20)]
                .into_iter()
                .collect::<BTreeMap<_, _>>(),
        );
        roundtrip((ProcessId::new(1), 7u64));
        roundtrip(Arc::new(vec![5u8, 6]));
    }

    #[test]
    fn integers_are_little_endian_fixed_width() {
        assert_eq!(0x0102_0304u32.to_bytes(), vec![4, 3, 2, 1]);
        assert_eq!(1u64.to_bytes(), vec![1, 0, 0, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn truncated_input_is_a_typed_error() {
        let bytes = 0xDEAD_BEEFu32.to_bytes();
        assert!(matches!(
            u32::from_bytes(&bytes[..3]),
            Err(DecodeError::Truncated { .. })
        ));
        let s = String::from("hello").to_bytes();
        assert!(matches!(
            String::from_bytes(&s[..6]),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn oversized_length_claims_are_rejected_before_allocation() {
        // Declares u32::MAX elements with a 4-byte body.
        let mut bytes = u32::MAX.to_bytes();
        bytes.extend_from_slice(&[0, 0, 0, 0]);
        let err = Vec::<u64>::from_bytes(&bytes).unwrap_err();
        assert!(matches!(
            err,
            DecodeError::TooLarge { .. } | DecodeError::Truncated { .. }
        ));
        // A length just over the hard cap is TooLarge even if plausible.
        let mut bytes = ((MAX_COLLECTION_LEN + 1) as u32).to_bytes();
        bytes.extend_from_slice(&[0u8; 16]);
        assert!(matches!(
            Vec::<u8>::from_bytes(&bytes),
            Err(DecodeError::TooLarge { .. })
        ));
    }

    #[test]
    fn invalid_values_are_rejected() {
        assert!(matches!(
            bool::from_bytes(&[2]),
            Err(DecodeError::Invalid { ty: "bool", .. })
        ));
        assert!(matches!(
            Option::<u8>::from_bytes(&[9, 0]),
            Err(DecodeError::Invalid { ty: "Option", .. })
        ));
        let mut bad_utf8 = 2u32.to_bytes();
        bad_utf8.extend_from_slice(&[0xFF, 0xFE]);
        assert!(matches!(
            String::from_bytes(&bad_utf8),
            Err(DecodeError::Invalid { ty: "String", .. })
        ));
        // Duplicate set elements are not silently merged.
        let mut dup = 2u32.to_bytes();
        dup.extend_from_slice(&[7, 7]);
        assert!(matches!(
            BTreeSet::<u8>::from_bytes(&dup),
            Err(DecodeError::Invalid { ty: "BTreeSet", .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected_by_from_bytes() {
        let mut bytes = 5u32.to_bytes();
        bytes.push(0);
        assert_eq!(
            u32::from_bytes(&bytes),
            Err(DecodeError::Trailing { remaining: 1 })
        );
    }
}

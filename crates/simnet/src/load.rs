//! Open-loop client-population workloads with per-operation latency.
//!
//! A [`LoadProfile`] attaches a population of logical clients to a
//! [`crate::Scenario`]: every round inside the scenario's workload window the
//! engine draws an arrival count from a deterministic [`Arrival`] process,
//! maps each arriving client onto one of the currently active processors,
//! and submits a keyed operation through
//! [`crate::ScenarioTarget::submit_op`]. Completions are claimed back
//! through [`crate::ScenarioTarget::complete_op`] after every round, and the
//! invoke→response distance **in rounds** is folded into a [`Histogram`] —
//! latency measured in rounds is byte-deterministic and diffable across
//! machines, unlike wall-clock.
//!
//! The engine's random stream is derived from the simulation seed but
//! independent of both the scheduler's and the fault adversary's draws, so
//! attaching a load neither perturbs delivery randomness nor fault
//! schedules. All floating-point arithmetic in the Poisson sampler sticks to
//! IEEE-exact operations (`+`, `*`, `/`, `floor`, `min`) plus literal
//! constants — no `libm` calls whose last-bit behaviour varies across
//! platforms — so arrival streams are byte-identical everywhere.
//!
//! Results surface as ten opt-in counters in [`crate::ScenarioRun::counters`]
//! (see [`COUNTER_KEYS`]), flowing through campaign reports and
//! `simctl diff` without any schema change. Scenarios without a load profile
//! carry none of the keys, so existing reports are unchanged byte-for-byte.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use rand::RngCore;

use crate::histogram::Histogram;
use crate::history::{HistoryRecorder, OpResponse};
use crate::process::ProcessId;
use crate::rng::SimRng;
use crate::scenario::ScenarioTarget;
use crate::scheduler::Simulation;

/// Salt folded into the simulation seed for the engine's private stream.
const LOAD_SEED_SALT: u64 = 0x10ad_c11e_0a75_10ad;

/// Largest accepted Poisson rate (arrivals per round). The sampler's cost is
/// linear in the rate, so an unbounded rate would turn one round into an
/// unbounded loop.
const MAX_POISSON_RATE: f64 = 1_000_000.0;

/// Chunk size for Poisson additivity: a draw at rate λ is the sum of
/// independent draws at rates summing to λ, which keeps the Knuth
/// product-of-uniforms below f64 underflow.
const POISSON_CHUNK: f64 = 16.0;

/// `e^-1` to the nearest f64 — the only transcendental constant the portable
/// exponential needs.
const EXP_NEG_1: f64 = 0.367_879_441_171_442_33;

/// The report counters a load-carrying run always publishes (zero included),
/// in key order. `op_latency_*` percentiles are nearest-rank over completed
/// ops, in rounds; `op_goodput_per_kround` is completed ops per 1,000 rounds
/// executed; `ops_inflight` counts ops still pending (and not timed out)
/// when the run ended.
pub const COUNTER_KEYS: [&str; 10] = [
    "op_goodput_per_kround",
    "op_latency_p50_rounds",
    "op_latency_p99_rounds",
    "op_latency_p999_rounds",
    "op_timeouts",
    "ops_completed",
    "ops_failed",
    "ops_inflight",
    "ops_rejected",
    "ops_submitted",
];

/// A deterministic arrival process: how many client operations arrive in
/// each round of the workload window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrival {
    /// Poisson arrivals at `rate` ops per round (the open-loop classic).
    Poisson {
        /// Mean arrivals per round, in `(0, 1e6]`.
        rate: f64,
    },
    /// `size` ops arrive together every `period` rounds, none in between.
    Burst {
        /// Ops per burst.
        size: u64,
        /// Rounds between bursts (≥ 1); bursts fire when `round % period == 0`.
        period: u64,
    },
}

impl Arrival {
    /// Parses a command-line arrival spec: `poisson:RATE` or
    /// `burst:SIZE:PERIOD`.
    pub fn parse(spec: &str) -> Result<Arrival, String> {
        let (kind, rest) = spec.split_once(':').ok_or_else(|| {
            format!("arrival spec `{spec}`: expected poisson:RATE or burst:SIZE:PERIOD")
        })?;
        match kind {
            "poisson" => {
                let rate: f64 = rest
                    .parse()
                    .map_err(|_| format!("arrival spec `{spec}`: RATE must be a number"))?;
                if !rate.is_finite() || rate <= 0.0 || rate > MAX_POISSON_RATE {
                    return Err(format!(
                        "arrival spec `{spec}`: RATE must be in (0, {MAX_POISSON_RATE}]"
                    ));
                }
                Ok(Arrival::Poisson { rate })
            }
            "burst" => {
                let (size, period) = rest
                    .split_once(':')
                    .ok_or_else(|| format!("arrival spec `{spec}`: expected burst:SIZE:PERIOD"))?;
                let size: u64 = size
                    .parse()
                    .map_err(|_| format!("arrival spec `{spec}`: SIZE must be an integer"))?;
                let period: u64 = period
                    .parse()
                    .map_err(|_| format!("arrival spec `{spec}`: PERIOD must be an integer"))?;
                if size == 0 || period == 0 {
                    return Err(format!(
                        "arrival spec `{spec}`: SIZE and PERIOD must be ≥ 1"
                    ));
                }
                Ok(Arrival::Burst { size, period })
            }
            other => Err(format!(
                "arrival spec `{spec}`: unknown process `{other}` (expected poisson or burst)"
            )),
        }
    }
}

impl Arrival {
    /// Draws this round's arrival count. Deterministic in (`rng` state,
    /// `round`); shared by the simulator's load engine and the live
    /// driver (`simctl drive`), so both submit identical open-loop
    /// streams for a given seed.
    pub fn draw(&self, rng: &mut SimRng, round: u64) -> u64 {
        match *self {
            Arrival::Poisson { rate } => poisson(rng, rate),
            Arrival::Burst { size, period } => {
                if round % period == 0 {
                    size
                } else {
                    0
                }
            }
        }
    }
}

impl fmt::Display for Arrival {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Arrival::Poisson { rate } => write!(f, "poisson:{rate}"),
            Arrival::Burst { size, period } => write!(f, "burst:{size}:{period}"),
        }
    }
}

/// An open-loop client population attached to a scenario: `clients` logical
/// clients multiplexed over the active processors, submitting keyed
/// operations under an [`Arrival`] process.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadProfile {
    /// Number of logical clients; each arrival is drawn uniformly from this
    /// population and its client index is the operation key.
    pub clients: u64,
    /// The arrival process driving submissions.
    pub arrival: Arrival,
    /// Rounds after which a pending op counts as timed out (0 = never). A
    /// timed-out op that later completes is not double-counted.
    pub op_timeout: u64,
}

impl LoadProfile {
    /// A profile with `clients` clients under `arrival` and no op timeout.
    pub fn new(clients: u64, arrival: Arrival) -> Self {
        LoadProfile {
            clients: clients.max(1),
            arrival,
            op_timeout: 0,
        }
    }

    /// Sets the op timeout in rounds (builder style; 0 disables).
    pub fn with_op_timeout(mut self, rounds: u64) -> Self {
        self.op_timeout = rounds;
        self
    }
}

/// One submitted-but-unclaimed operation.
#[derive(Debug)]
struct PendingOp {
    invoked: u64,
    timed_out: bool,
    /// Index of this op in the armed run's history recorder; `None` on
    /// unarmed runs or when the target declares no op spec.
    op: Option<usize>,
}

/// The per-run engine: draws arrivals, routes submissions, claims
/// completions FIFO per processor, and folds latencies into counters.
#[derive(Debug)]
pub(crate) struct LoadEngine {
    profile: LoadProfile,
    rng: SimRng,
    /// Monotone op sequence — doubles as the submitted value, so every op's
    /// payload is globally unique within a run.
    next_value: u64,
    pending: BTreeMap<ProcessId, VecDeque<PendingOp>>,
    latencies: Histogram,
    submitted: u64,
    rejected: u64,
    completed: u64,
    failed: u64,
    timeouts: u64,
}

impl LoadEngine {
    pub(crate) fn new(profile: LoadProfile, sim_seed: u64) -> Self {
        LoadEngine {
            profile,
            rng: SimRng::seed_from(sim_seed ^ LOAD_SEED_SALT),
            next_value: 0,
            pending: BTreeMap::new(),
            latencies: Histogram::new(),
            submitted: 0,
            rejected: 0,
            completed: 0,
            failed: 0,
            timeouts: 0,
        }
    }

    /// Draws this round's arrivals and submits them, called once per round
    /// inside the workload window, before the round steps. On armed runs
    /// (`history` is `Some`) every accepted submission the target declares
    /// an op spec for is recorded as an invocation.
    pub(crate) fn drive<T: ScenarioTarget>(
        &mut self,
        sim: &mut Simulation<T>,
        mut history: Option<&mut HistoryRecorder>,
    ) {
        let now = sim.now().as_u64();
        let arrivals = self.profile.arrival.draw(&mut self.rng, now);
        if arrivals == 0 {
            return;
        }
        let actives = sim.active_ids();
        for _ in 0..arrivals {
            let client = self.rng.next_u64() % self.profile.clients.max(1);
            if actives.is_empty() {
                self.rejected += 1;
                continue;
            }
            let via = actives[(client % actives.len() as u64) as usize];
            let value = self.next_value;
            self.next_value += 1;
            if T::submit_op(sim, via, client, value) {
                self.submitted += 1;
                let op = history.as_deref_mut().and_then(|rec| {
                    T::op_spec(client, value)
                        .map(|(object, kind)| rec.invoke(client, object, kind, now))
                });
                self.pending.entry(via).or_default().push_back(PendingOp {
                    invoked: now,
                    timed_out: false,
                    op,
                });
            } else {
                self.rejected += 1;
            }
        }
    }

    /// Claims completed ops FIFO per processor and sweeps timeouts, called
    /// once per round after the round steps. The claim loop is bounded by
    /// the number of ops this engine has outstanding at each processor, so
    /// targets whose `complete_op` reports a standing condition (e.g. the
    /// reconfiguration probe) cannot over-complete.
    pub(crate) fn poll<T: ScenarioTarget>(
        &mut self,
        sim: &mut Simulation<T>,
        mut history: Option<&mut HistoryRecorder>,
    ) {
        let now = sim.now().as_u64();
        let vias: Vec<ProcessId> = self.pending.keys().copied().collect();
        for via in vias {
            loop {
                let outstanding = self.pending.get(&via).map_or(0, VecDeque::len);
                if outstanding == 0 {
                    break;
                }
                // Unarmed runs claim through today's exact hook; armed runs
                // claim through the observing variant so the history records
                // what reads and increments returned.
                let response = if history.is_some() {
                    T::claim_op(sim, via)
                } else {
                    T::complete_op(sim, via).map(|ok| OpResponse {
                        ok,
                        observed: None,
                        indeterminate: false,
                    })
                };
                let Some(response) = response else {
                    break;
                };
                let ok = response.ok;
                let op = self
                    .pending
                    .get_mut(&via)
                    .and_then(VecDeque::pop_front)
                    .expect("claim loop checked outstanding > 0");
                // The history records the real (possibly late) response
                // round even for ops the latency accounting already wrote
                // off as timeouts — real time is what the checker needs.
                if let (Some(rec), Some(idx)) = (history.as_deref_mut(), op.op) {
                    rec.resolve(idx, now, response);
                }
                if op.timed_out {
                    // Already accounted as a timeout; the late response is
                    // dropped on the floor like a real client would.
                    continue;
                }
                let latency = now.saturating_sub(op.invoked).max(1);
                if ok {
                    self.completed += 1;
                    self.latencies.record(latency);
                } else {
                    self.failed += 1;
                }
            }
            if self.profile.op_timeout > 0 {
                if let Some(queue) = self.pending.get_mut(&via) {
                    for op in queue.iter_mut() {
                        if !op.timed_out
                            && now.saturating_sub(op.invoked) >= self.profile.op_timeout
                        {
                            op.timed_out = true;
                            self.timeouts += 1;
                        }
                    }
                }
            }
        }
        self.pending.retain(|_, queue| !queue.is_empty());
    }

    /// Folds the engine's results into a run's counter map.
    pub(crate) fn finish(mut self, rounds_run: u64, counters: &mut BTreeMap<String, u64>) {
        let inflight = self
            .pending
            .values()
            .flatten()
            .filter(|op| !op.timed_out)
            .count() as u64;
        let goodput = (self.completed * 1000).checked_div(rounds_run).unwrap_or(0);
        // Percentiles report 0 when nothing completed — unambiguous, since
        // a real completion is never faster than 1 round.
        let entries = [
            ("op_goodput_per_kround", goodput),
            (
                "op_latency_p50_rounds",
                self.latencies.percentile(50.0).unwrap_or(0),
            ),
            (
                "op_latency_p99_rounds",
                self.latencies.percentile(99.0).unwrap_or(0),
            ),
            (
                "op_latency_p999_rounds",
                self.latencies.percentile(99.9).unwrap_or(0),
            ),
            ("op_timeouts", self.timeouts),
            ("ops_completed", self.completed),
            ("ops_failed", self.failed),
            ("ops_inflight", inflight),
            ("ops_rejected", self.rejected),
            ("ops_submitted", self.submitted),
        ];
        for (key, value) in entries {
            counters.insert(key.to_string(), value);
        }
    }
}

/// Uniform draw in `[0, 1)` with 53 random bits — the standard exact
/// bits-to-double construction.
fn uniform(rng: &mut SimRng) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
}

/// `e^-x` for `x ∈ [0, 16]`, computed from IEEE-exact arithmetic only:
/// `e^-x = (e^-1)^⌊x⌋ · Σ (-f)^k / k!` with an 18-term Maclaurin tail for
/// the fractional part. Accurate to well under 1e-12 relative error on the
/// domain, and — unlike `f64::exp` — bit-identical on every platform.
fn exp_neg(x: f64) -> f64 {
    debug_assert!((0.0..=POISSON_CHUNK).contains(&x));
    let whole = x.floor();
    let frac = x - whole;
    let mut result = 1.0;
    let mut i = 0.0;
    while i < whole {
        result *= EXP_NEG_1;
        i += 1.0;
    }
    let mut term = 1.0;
    let mut sum = 1.0;
    for k in 1..=18 {
        term *= -frac / k as f64;
        sum += term;
    }
    result * sum
}

/// A Poisson draw at `rate` via Knuth's product-of-uniforms, chunked through
/// Poisson additivity so the product never underflows: a draw at rate λ is
/// the sum of independent draws at chunk rates ≤ 16 summing to λ.
fn poisson(rng: &mut SimRng, rate: f64) -> u64 {
    if rate <= 0.0 {
        return 0;
    }
    let mut remaining = rate.min(MAX_POISSON_RATE);
    let mut total = 0u64;
    while remaining > 0.0 {
        let chunk = remaining.min(POISSON_CHUNK);
        remaining -= chunk;
        let threshold = exp_neg(chunk);
        let mut product = 1.0;
        loop {
            product *= uniform(rng);
            if product <= threshold {
                break;
            }
            total += 1;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchedulerMode;
    use crate::scenario::{run_scenario, Scenario};
    use crate::testutil::MaxNode;

    #[test]
    fn parse_accepts_both_processes() {
        assert_eq!(
            Arrival::parse("poisson:4.5"),
            Ok(Arrival::Poisson { rate: 4.5 })
        );
        assert_eq!(
            Arrival::parse("burst:100:8"),
            Ok(Arrival::Burst {
                size: 100,
                period: 8
            })
        );
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "poisson",
            "poisson:0",
            "poisson:-3",
            "poisson:inf",
            "poisson:nan",
            "poisson:1e9",
            "burst:100",
            "burst:0:5",
            "burst:5:0",
            "burst:a:b",
            "uniform:3",
            "",
        ] {
            assert!(Arrival::parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn arrival_display_round_trips() {
        for spec in ["poisson:2.5", "burst:1000:4"] {
            let parsed = Arrival::parse(spec).unwrap();
            assert_eq!(parsed.to_string(), spec);
            assert_eq!(Arrival::parse(&parsed.to_string()), Ok(parsed));
        }
    }

    #[test]
    fn exp_neg_matches_known_values() {
        assert_eq!(exp_neg(0.0), 1.0);
        assert!((exp_neg(1.0) - EXP_NEG_1).abs() < 1e-14);
        // e^-0.5 and e^-10 against externally computed references.
        assert!((exp_neg(0.5) - 0.606_530_659_712_633_4).abs() < 1e-12);
        assert!((exp_neg(10.0) - 4.539_992_976_248_485e-5).abs() < 1e-16);
    }

    #[test]
    fn poisson_mean_is_roughly_the_rate() {
        let mut rng = SimRng::seed_from(11);
        for rate in [0.5, 4.0, 40.0] {
            let draws = 20_000;
            let total: u64 = (0..draws).map(|_| poisson(&mut rng, rate)).sum();
            let mean = total as f64 / draws as f64;
            assert!(
                (mean - rate).abs() < rate * 0.05 + 0.05,
                "rate {rate}: mean {mean}"
            );
        }
    }

    #[test]
    fn poisson_stream_is_seed_deterministic() {
        let mut a = SimRng::seed_from(77);
        let mut b = SimRng::seed_from(77);
        for _ in 0..256 {
            assert_eq!(poisson(&mut a, 7.3), poisson(&mut b, 7.3));
        }
    }

    fn loaded_scenario(arrival: Arrival) -> Scenario {
        Scenario::new("loaded", 4)
            .with_rounds(80)
            .with_workload_until(40)
            .with_load(LoadProfile::new(1_000, arrival).with_op_timeout(20))
    }

    #[test]
    fn engine_counters_are_identical_across_scheduler_modes() {
        let scenario = loaded_scenario(Arrival::Poisson { rate: 3.0 });
        let mut runs = [SchedulerMode::EventDriven, SchedulerMode::RoundScan]
            .into_iter()
            .map(|mode| {
                let mut sim = scenario.build_sim::<MaxNode>(9, mode);
                run_scenario(&scenario, &mut sim)
            });
        let a = runs.next().unwrap();
        let b = runs.next().unwrap();
        assert_eq!(a, b);
        assert!(a.counter("ops_submitted") > 0);
        assert_eq!(
            a.counter("ops_submitted"),
            a.counter("ops_completed") + a.counter("ops_inflight")
        );
        // MaxNode completes every accepted op on the next poll.
        assert_eq!(a.counter("op_latency_p50_rounds"), 1);
        assert_eq!(a.counter("op_latency_p999_rounds"), 1);
    }

    #[test]
    fn burst_arrivals_submit_on_the_period() {
        let scenario = loaded_scenario(Arrival::Burst {
            size: 10,
            period: 8,
        });
        let mut sim = scenario.build_sim::<MaxNode>(3, SchedulerMode::EventDriven);
        let run = run_scenario(&scenario, &mut sim);
        // Bursts fire at rounds 0, 8, 16, 24, 32 within the 40-round window.
        assert_eq!(run.counter("ops_submitted"), 50);
        assert_eq!(run.counter("ops_rejected"), 0);
    }

    #[test]
    fn loaded_run_publishes_every_counter_key() {
        let scenario = loaded_scenario(Arrival::Poisson { rate: 1.0 });
        let mut sim = scenario.build_sim::<MaxNode>(5, SchedulerMode::EventDriven);
        let run = run_scenario(&scenario, &mut sim);
        for key in COUNTER_KEYS {
            assert!(run.counters.contains_key(key), "missing {key}");
        }
    }

    #[test]
    fn unloaded_run_publishes_no_load_keys() {
        let scenario = Scenario::new("bare", 3).with_rounds(40);
        let mut sim = scenario.build_sim::<MaxNode>(5, SchedulerMode::EventDriven);
        let run = run_scenario(&scenario, &mut sim);
        for key in COUNTER_KEYS {
            assert!(!run.counters.contains_key(key), "unexpected {key}");
        }
    }
}

//! Bounded-capacity, unreliable communication channels.
//!
//! Section 2 of the paper: links have a bounded capacity `cap`; packets may
//! be lost, reordered or duplicated, but never created out of thin air
//! (except that after a transient fault a channel may hold stale packets —
//! modelled here through [`Channel::inject`]). Fair communication holds: a
//! packet sent infinitely often is received infinitely often, which the
//! probabilistic loss model guarantees with probability one for any loss
//! probability below one.

use std::collections::VecDeque;

use crate::payload::Payload;
use crate::rng::SimRng;
use crate::time::Round;

/// Behavioural parameters of a channel.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelPolicy {
    /// Maximum number of packets the channel can hold (`cap` in the paper).
    pub capacity: usize,
    /// Probability that a packet is dropped on send.
    pub loss_probability: f64,
    /// Probability that a packet is duplicated on send.
    pub duplication_probability: f64,
    /// Maximum extra delivery delay, in rounds, added uniformly at random.
    pub max_delay_rounds: u64,
    /// Whether ready packets may be delivered out of order.
    pub reorder: bool,
}

impl Default for ChannelPolicy {
    fn default() -> Self {
        ChannelPolicy {
            capacity: 16,
            loss_probability: 0.0,
            duplication_probability: 0.0,
            max_delay_rounds: 1,
            reorder: false,
        }
    }
}

/// A packet travelling through a channel together with its earliest delivery
/// round.
///
/// The payload may be shared with other packets (broadcast fan-out, channel
/// duplication); read it through [`InFlight::msg`] and mutate it through the
/// copy-on-write [`InFlight::msg_mut`]. The slot itself lives in the
/// channel's `VecDeque` ring buffer, which doubles as the free-list: once the
/// ring has reached its high-water mark, enqueue/evict/deliver reuse slots
/// without touching the allocator (only [`Channel::clear`] releases the
/// ring).
#[derive(Debug, Clone, PartialEq)]
pub struct InFlight<M> {
    /// The payload — owned, or one handle to an allocation shared with other
    /// packets.
    payload: Payload<M>,
    /// The first round at which the packet may be delivered.
    pub ready_at: Round,
}

impl<M> InFlight<M> {
    /// A shared view of the payload.
    pub fn msg(&self) -> &M {
        self.payload.get()
    }
}

impl<M: Clone> InFlight<M> {
    /// Mutable access to the payload, copy-on-write: corrupting a packet
    /// whose payload is shared un-shares it first, so the mutation never
    /// aliases into other packets.
    pub fn msg_mut(&mut self) -> &mut M {
        self.payload.make_mut()
    }
}

/// What happened to a packet handed to [`Channel::send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// The packet was placed in the channel.
    Enqueued,
    /// The packet was dropped by the lossy link.
    Lost,
    /// The packet was enqueued and a duplicate was enqueued as well.
    Duplicated,
    /// The channel was full; an old packet was evicted to make room
    /// (the paper allows either the new or an old packet to be lost when the
    /// capacity is exceeded).
    EvictedOld,
}

/// A unidirectional channel between an ordered pair of processors.
///
/// ```
/// use simnet::{Channel, ChannelPolicy, SimRng, Round};
/// let mut ch: Channel<&'static str> = Channel::new(ChannelPolicy::default());
/// let mut rng = SimRng::seed_from(1);
/// ch.send("hello", Round::ZERO, &mut rng);
/// let delivered = ch.drain_ready(Round::new(10), usize::MAX, &mut rng);
/// assert_eq!(delivered, vec!["hello"]);
/// ```
#[derive(Debug, Clone)]
pub struct Channel<M> {
    policy: ChannelPolicy,
    queue: VecDeque<InFlight<M>>,
}

impl<M: Clone> Channel<M> {
    /// Creates an empty channel with the given policy.
    pub fn new(policy: ChannelPolicy) -> Self {
        Channel {
            policy,
            queue: VecDeque::new(),
        }
    }

    /// Number of packets currently in flight.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Returns `true` when no packet is in flight.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// The channel policy.
    pub fn policy(&self) -> &ChannelPolicy {
        &self.policy
    }

    /// Replaces the channel policy. Packets already in flight keep the
    /// delivery rounds they were assigned on send; only subsequent sends
    /// (and reordering decisions) follow the new policy. Scenario-driven
    /// loss/delay spikes use this through [`crate::Network::set_policy`].
    pub fn set_policy(&mut self, policy: ChannelPolicy) {
        self.policy = policy;
    }

    /// Sends a packet at round `now`, applying loss, duplication, bounded
    /// capacity and random delay according to the policy.
    pub fn send(&mut self, msg: M, now: Round, rng: &mut SimRng) -> SendOutcome {
        self.send_timed(msg, now, rng).0
    }

    /// Like [`Channel::send`], additionally reporting the earliest delivery
    /// round of the packet(s) just enqueued (`None` when the packet was
    /// lost). The event-driven scheduler uses this to wake the destination
    /// exactly when the packet becomes deliverable.
    pub fn send_timed(
        &mut self,
        msg: M,
        now: Round,
        rng: &mut SimRng,
    ) -> (SendOutcome, Option<Round>) {
        self.send_payload_timed(Payload::owned(msg), now, rng)
    }

    /// The payload-level form of [`Channel::send_timed`]: broadcasts hand
    /// every destination one handle to a shared payload instead of a deep
    /// clone. Loss drops the payload without ever copying it; duplication
    /// promotes it to shared and enqueues a second handle. RNG draw order is
    /// loss → duplication → per-enqueue delay, identical for owned and
    /// shared payloads.
    pub fn send_payload_timed(
        &mut self,
        payload: Payload<M>,
        now: Round,
        rng: &mut SimRng,
    ) -> (SendOutcome, Option<Round>) {
        if rng.chance(self.policy.loss_probability) {
            return (SendOutcome::Lost, None);
        }
        let duplicated = rng.chance(self.policy.duplication_probability);
        if duplicated {
            let (first, dup) = payload.split();
            let (_, first_ready) = self.enqueue(first, now, rng, SendOutcome::Enqueued);
            let (dup_outcome, dup_ready) = self.enqueue(dup, now, rng, SendOutcome::Duplicated);
            return (dup_outcome, Some(first_ready.min(dup_ready)));
        }
        let (outcome, ready) = self.enqueue(payload, now, rng, SendOutcome::Enqueued);
        (outcome, Some(ready))
    }

    fn enqueue(
        &mut self,
        payload: Payload<M>,
        now: Round,
        rng: &mut SimRng,
        ok: SendOutcome,
    ) -> (SendOutcome, Round) {
        let delay = if self.policy.max_delay_rounds == 0 {
            0
        } else {
            rng.range_inclusive(0, self.policy.max_delay_rounds)
        };
        let ready_at = now + delay;
        let packet = InFlight { payload, ready_at };
        if self.queue.len() >= self.policy.capacity {
            // Bounded capacity: evict the oldest in-flight packet.
            self.queue.pop_front();
            self.queue.push_back(packet);
            (SendOutcome::EvictedOld, ready_at)
        } else {
            self.queue.push_back(packet);
            (ok, ready_at)
        }
    }

    /// The earliest round at which any in-flight packet becomes deliverable.
    pub fn earliest_ready(&self) -> Option<Round> {
        self.queue.iter().map(|p| p.ready_at).min()
    }

    /// Places a packet directly into the channel, bypassing loss and delay.
    ///
    /// This models the *stale packets* a channel may contain after a
    /// transient fault. The bounded capacity is still enforced.
    pub fn inject(&mut self, msg: M) {
        if self.queue.len() >= self.policy.capacity {
            self.queue.pop_front();
        }
        self.queue.push_back(InFlight {
            payload: Payload::owned(msg),
            ready_at: Round::ZERO,
        });
    }

    /// Removes and returns up to `limit` packets whose delivery round has
    /// been reached. When the policy enables reordering, ready packets are
    /// drawn in random order; otherwise FIFO order among ready packets is
    /// preserved.
    pub fn drain_ready(&mut self, now: Round, limit: usize, rng: &mut SimRng) -> Vec<M> {
        let mut delivered = Vec::new();
        self.drain_ready_with(now, limit, rng, |msg| delivered.push(msg));
        delivered
    }

    /// Allocation-free form of [`Channel::drain_ready`]: each delivered
    /// payload is handed to `sink` instead of collected into a fresh vector.
    /// Returns the number of packets delivered. Draws from the RNG exactly
    /// as [`Channel::drain_ready`] does (one pick per packet, only under
    /// reordering), so executions are unchanged.
    pub fn drain_ready_with(
        &mut self,
        now: Round,
        limit: usize,
        rng: &mut SimRng,
        mut sink: impl FnMut(M),
    ) -> usize {
        let mut delivered = 0usize;
        if !self.policy.reorder {
            // FIFO among ready packets: repeatedly remove the frontmost
            // ready one. No index list, no RNG draw.
            while delivered < limit {
                let Some(pick) = self.queue.iter().position(|p| p.ready_at <= now) else {
                    break;
                };
                let packet = self.queue.remove(pick).expect("index is valid");
                sink(packet.payload.into_msg());
                delivered += 1;
            }
        } else {
            let mut ready: Vec<usize> = Vec::new();
            while delivered < limit {
                ready.clear();
                ready.extend(
                    self.queue
                        .iter()
                        .enumerate()
                        .filter(|(_, p)| p.ready_at <= now)
                        .map(|(i, _)| i),
                );
                if ready.is_empty() {
                    break;
                }
                let pick = *rng.choose(&ready).expect("ready is non-empty");
                let packet = self.queue.remove(pick).expect("index is valid");
                sink(packet.payload.into_msg());
                delivered += 1;
            }
        }
        delivered
    }

    /// Discards every packet in flight (used by the snap-stabilizing data
    /// link's cleaning phase and by fault injection helpers).
    pub fn clear(&mut self) {
        self.queue.clear();
    }

    /// Immutable view of the in-flight packets (used by tests and by the
    /// white-box stale-information checks of the benchmark harness).
    pub fn in_flight(&self) -> impl Iterator<Item = &InFlight<M>> {
        self.queue.iter()
    }

    /// Mutable access to in-flight packets, allowing fault injectors to
    /// corrupt channel contents in place.
    pub fn in_flight_mut(&mut self) -> impl Iterator<Item = &mut InFlight<M>> {
        self.queue.iter_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from(42)
    }

    #[test]
    fn fifo_delivery_without_reordering() {
        let mut ch = Channel::new(ChannelPolicy {
            max_delay_rounds: 0,
            ..ChannelPolicy::default()
        });
        let mut r = rng();
        for i in 0..5u32 {
            ch.send(i, Round::ZERO, &mut r);
        }
        let out = ch.drain_ready(Round::ZERO, usize::MAX, &mut r);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert!(ch.is_empty());
    }

    #[test]
    fn delay_withholds_delivery_until_ready() {
        let mut ch = Channel::new(ChannelPolicy {
            max_delay_rounds: 5,
            ..ChannelPolicy::default()
        });
        let mut r = rng();
        ch.send(7u32, Round::ZERO, &mut r);
        // Not necessarily ready at round 0, but must be ready by round 5.
        let early = ch.drain_ready(Round::ZERO, usize::MAX, &mut r).len();
        let late = ch.drain_ready(Round::new(5), usize::MAX, &mut r).len();
        assert_eq!(early + late, 1);
    }

    #[test]
    fn capacity_bound_evicts_oldest() {
        let mut ch = Channel::new(ChannelPolicy {
            capacity: 3,
            max_delay_rounds: 0,
            ..ChannelPolicy::default()
        });
        let mut r = rng();
        for i in 0..10u32 {
            ch.send(i, Round::ZERO, &mut r);
        }
        assert_eq!(ch.len(), 3);
        let out = ch.drain_ready(Round::ZERO, usize::MAX, &mut r);
        assert_eq!(out, vec![7, 8, 9]);
    }

    #[test]
    fn full_loss_drops_everything() {
        let mut ch = Channel::new(ChannelPolicy {
            loss_probability: 1.0,
            ..ChannelPolicy::default()
        });
        let mut r = rng();
        for i in 0..10u32 {
            assert_eq!(ch.send(i, Round::ZERO, &mut r), SendOutcome::Lost);
        }
        assert!(ch.is_empty());
    }

    #[test]
    fn duplication_creates_two_copies() {
        let mut ch = Channel::new(ChannelPolicy {
            duplication_probability: 1.0,
            max_delay_rounds: 0,
            ..ChannelPolicy::default()
        });
        let mut r = rng();
        ch.send(1u32, Round::ZERO, &mut r);
        assert_eq!(ch.len(), 2);
    }

    #[test]
    fn inject_bypasses_loss_and_delay() {
        let mut ch = Channel::new(ChannelPolicy {
            loss_probability: 1.0,
            max_delay_rounds: 10,
            ..ChannelPolicy::default()
        });
        let mut r = rng();
        ch.inject(99u32);
        let out = ch.drain_ready(Round::ZERO, usize::MAX, &mut r);
        assert_eq!(out, vec![99]);
    }

    #[test]
    fn reordering_still_delivers_every_packet() {
        let mut ch = Channel::new(ChannelPolicy {
            reorder: true,
            max_delay_rounds: 0,
            capacity: 64,
            ..ChannelPolicy::default()
        });
        let mut r = rng();
        for i in 0..20u32 {
            ch.send(i, Round::ZERO, &mut r);
        }
        let mut out = ch.drain_ready(Round::ZERO, usize::MAX, &mut r);
        out.sort_unstable();
        assert_eq!(out, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn drain_limit_is_respected() {
        let mut ch = Channel::new(ChannelPolicy {
            max_delay_rounds: 0,
            ..ChannelPolicy::default()
        });
        let mut r = rng();
        for i in 0..6u32 {
            ch.send(i, Round::ZERO, &mut r);
        }
        let first = ch.drain_ready(Round::ZERO, 2, &mut r);
        assert_eq!(first, vec![0, 1]);
        assert_eq!(ch.len(), 4);
    }

    #[test]
    fn clear_discards_in_flight() {
        let mut ch = Channel::new(ChannelPolicy::default());
        let mut r = rng();
        ch.send(1u32, Round::ZERO, &mut r);
        ch.clear();
        assert!(ch.is_empty());
    }

    #[test]
    fn fair_communication_under_heavy_loss() {
        // A packet retransmitted repeatedly over a very lossy link is
        // eventually delivered: the probabilistic analogue of the paper's
        // fair communication assumption.
        let mut ch = Channel::new(ChannelPolicy {
            loss_probability: 0.9,
            max_delay_rounds: 0,
            ..ChannelPolicy::default()
        });
        let mut r = rng();
        let mut delivered = false;
        for attempt in 0..1000u64 {
            ch.send(1u32, Round::new(attempt), &mut r);
            if !ch
                .drain_ready(Round::new(attempt), usize::MAX, &mut r)
                .is_empty()
            {
                delivered = true;
                break;
            }
        }
        assert!(delivered);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The channel never exceeds its capacity and never invents packets.
        #[test]
        fn capacity_is_never_exceeded(
            cap in 1usize..16,
            sends in proptest::collection::vec(0u32..1000, 0..200),
            seed in 0u64..u64::MAX,
        ) {
            let mut ch = Channel::new(ChannelPolicy {
                capacity: cap,
                loss_probability: 0.1,
                duplication_probability: 0.1,
                max_delay_rounds: 2,
                reorder: true,
            });
            let mut rng = SimRng::seed_from(seed);
            let mut sent = std::collections::HashSet::new();
            for (i, m) in sends.iter().enumerate() {
                sent.insert(*m);
                ch.send(*m, Round::new(i as u64), &mut rng);
                prop_assert!(ch.len() <= cap);
            }
            let delivered = ch.drain_ready(Round::new(10_000), usize::MAX, &mut rng);
            for m in delivered {
                prop_assert!(sent.contains(&m), "channel created packet {m}");
            }
        }

        /// The shared-payload channel is observationally identical to the
        /// pre-arena owned reference implementation: same `SendOutcome`s,
        /// same delivered sequences, same in-flight contents, across random
        /// policies (loss/duplication/delay/reorder/capacity eviction) and
        /// random interleavings of sends, shared-payload sends, drains,
        /// injections, corruption and clears.
        #[test]
        fn arena_channel_matches_owned_reference(
            raw_policy in (1usize..12, 0.0f64..0.4, 0.0f64..0.4, 0u64..4, any::<bool>()),
            raw_ops in proptest::collection::vec((0u8..16, 0u32..1000, 0u64..8), 0..120),
            seed in 0u64..u64::MAX,
        ) {
            let (capacity, loss, dup, delay, reorder) = raw_policy;
            let policy = ChannelPolicy {
                capacity,
                loss_probability: loss,
                duplication_probability: dup,
                max_delay_rounds: delay,
                reorder,
            };
            let ops: Vec<reference::Op> = raw_ops.iter().map(reference::Op::decode).collect();
            reference::check_equivalence(policy, &ops, seed);
        }

        /// Without loss, duplication or eviction pressure every packet sent is
        /// eventually delivered exactly once.
        #[test]
        fn reliable_channel_delivers_exactly_once(
            sends in proptest::collection::vec(0u32..1000, 0..64),
            seed in 0u64..u64::MAX,
        ) {
            let mut ch = Channel::new(ChannelPolicy {
                capacity: 1024,
                loss_probability: 0.0,
                duplication_probability: 0.0,
                max_delay_rounds: 3,
                reorder: false,
            });
            let mut rng = SimRng::seed_from(seed);
            for m in &sends {
                ch.send(*m, Round::ZERO, &mut rng);
            }
            let delivered = ch.drain_ready(Round::new(100), usize::MAX, &mut rng);
            prop_assert_eq!(delivered, sends);
        }
    }
}

/// The pre-arena channel, transcribed verbatim: an owned `VecDeque<(M, Round)>`
/// with the historical clone-per-send path. It exists only as the oracle for
/// the `arena_channel_matches_owned_reference` property above.
#[cfg(test)]
mod reference {
    use super::*;
    use proptest::prelude::*;

    pub struct RefChannel<M> {
        policy: ChannelPolicy,
        queue: VecDeque<(M, Round)>,
    }

    impl<M: Clone> RefChannel<M> {
        pub fn new(policy: ChannelPolicy) -> Self {
            RefChannel {
                policy,
                queue: VecDeque::new(),
            }
        }

        pub fn send_timed(
            &mut self,
            msg: M,
            now: Round,
            rng: &mut SimRng,
        ) -> (SendOutcome, Option<Round>) {
            if rng.chance(self.policy.loss_probability) {
                return (SendOutcome::Lost, None);
            }
            let duplicated = rng.chance(self.policy.duplication_probability);
            let (outcome, first_ready) = self.enqueue(msg.clone(), now, rng, SendOutcome::Enqueued);
            if duplicated {
                let (dup_outcome, dup_ready) = self.enqueue(msg, now, rng, SendOutcome::Duplicated);
                return (dup_outcome, Some(first_ready.min(dup_ready)));
            }
            (outcome, Some(first_ready))
        }

        fn enqueue(
            &mut self,
            msg: M,
            now: Round,
            rng: &mut SimRng,
            ok: SendOutcome,
        ) -> (SendOutcome, Round) {
            let delay = if self.policy.max_delay_rounds == 0 {
                0
            } else {
                rng.range_inclusive(0, self.policy.max_delay_rounds)
            };
            let ready_at = now + delay;
            if self.queue.len() >= self.policy.capacity {
                self.queue.pop_front();
                self.queue.push_back((msg, ready_at));
                (SendOutcome::EvictedOld, ready_at)
            } else {
                self.queue.push_back((msg, ready_at));
                (ok, ready_at)
            }
        }

        pub fn inject(&mut self, msg: M) {
            if self.queue.len() >= self.policy.capacity {
                self.queue.pop_front();
            }
            self.queue.push_back((msg, Round::ZERO));
        }

        pub fn drain_ready(&mut self, now: Round, limit: usize, rng: &mut SimRng) -> Vec<M> {
            let mut delivered = Vec::new();
            if !self.policy.reorder {
                while delivered.len() < limit {
                    let Some(pick) = self.queue.iter().position(|(_, r)| *r <= now) else {
                        break;
                    };
                    delivered.push(self.queue.remove(pick).expect("index is valid").0);
                }
            } else {
                let mut ready: Vec<usize> = Vec::new();
                while delivered.len() < limit {
                    ready.clear();
                    ready.extend(
                        self.queue
                            .iter()
                            .enumerate()
                            .filter(|(_, (_, r))| *r <= now)
                            .map(|(i, _)| i),
                    );
                    if ready.is_empty() {
                        break;
                    }
                    let pick = *rng.choose(&ready).expect("ready is non-empty");
                    delivered.push(self.queue.remove(pick).expect("index is valid").0);
                }
            }
            delivered
        }

        pub fn clear(&mut self) {
            self.queue.clear();
        }

        pub fn msgs(&self) -> Vec<M> {
            self.queue.iter().map(|(m, _)| m.clone()).collect()
        }

        pub fn corrupt(&mut self, mut mutate: impl FnMut(&mut M)) {
            for (m, _) in self.queue.iter_mut() {
                mutate(m);
            }
        }
    }

    /// One step of the random interleaving the equivalence property drives
    /// through both channels.
    #[derive(Debug, Clone)]
    pub enum Op {
        /// A plain owned send.
        Send(u32),
        /// A send whose payload is already shared with a live outside handle
        /// (a broadcast sibling), exercising the shared enqueue and the
        /// clone-on-delivery path.
        SendShared(u32),
        /// Drain up to `limit` ready packets.
        Drain { limit: usize },
        /// Out-of-band injection (stale packet after a transient fault).
        Inject(u32),
        /// In-place payload corruption of everything in flight.
        Corrupt(u32),
        /// Discard everything in flight.
        Clear,
        /// Let simulated time pass.
        Advance(u64),
    }

    impl Op {
        /// Decodes one raw `(selector, value, aux)` triple drawn by the
        /// property test into an op, weighting sends most heavily.
        pub fn decode(&(sel, value, aux): &(u8, u32, u64)) -> Op {
            match sel {
                0..=4 => Op::Send(value),
                5..=8 => Op::SendShared(value),
                9..=11 => Op::Drain {
                    limit: aux as usize,
                },
                12 => Op::Inject(value),
                13 => Op::Corrupt(value % 49 + 1),
                14 => Op::Clear,
                _ => Op::Advance(aux % 4),
            }
        }
    }

    pub fn check_equivalence(policy: ChannelPolicy, ops: &[Op], seed: u64) {
        let mut arena: Channel<u32> = Channel::new(policy.clone());
        let mut oracle: RefChannel<u32> = RefChannel::new(policy);
        let mut arena_rng = SimRng::seed_from(seed);
        let mut oracle_rng = SimRng::seed_from(seed);
        // Live sibling handles of `SendShared` payloads (with the value each
        // was created with): they keep the refcount above one so delivery has
        // to take the clone path, and they must never observe corruption.
        let mut siblings: Vec<(u32, Payload<u32>)> = Vec::new();
        let mut now = Round::ZERO;
        for op in ops {
            match op {
                Op::Send(m) => {
                    let got = arena.send_timed(*m, now, &mut arena_rng);
                    let want = oracle.send_timed(*m, now, &mut oracle_rng);
                    prop_assert_eq!(got, want);
                }
                Op::SendShared(m) => {
                    let mut fan = Payload::fan_out(*m, 2);
                    siblings.push((*m, fan.next()));
                    let got = arena.send_payload_timed(fan.next(), now, &mut arena_rng);
                    let want = oracle.send_timed(*m, now, &mut oracle_rng);
                    prop_assert_eq!(got, want);
                }
                Op::Drain { limit } => {
                    let got = arena.drain_ready(now, *limit, &mut arena_rng);
                    let want = oracle.drain_ready(now, *limit, &mut oracle_rng);
                    prop_assert_eq!(got, want);
                }
                Op::Inject(m) => {
                    arena.inject(*m);
                    oracle.inject(*m);
                }
                Op::Corrupt(delta) => {
                    for packet in arena.in_flight_mut() {
                        *packet.msg_mut() += delta;
                    }
                    oracle.corrupt(|m| *m += delta);
                    // Copy-on-write: corruption never leaks into the live
                    // broadcast siblings.
                    prop_assert!(siblings.iter().all(|(v, p)| p.get() == v));
                }
                Op::Clear => {
                    arena.clear();
                    oracle.clear();
                }
                Op::Advance(by) => now = now + *by,
            }
            let in_flight: Vec<u32> = arena.in_flight().map(|p| *p.msg()).collect();
            prop_assert_eq!(in_flight, oracle.msgs());
        }
    }
}

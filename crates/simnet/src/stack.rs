//! Protocol-stack composition: one shared mechanism for multiplexing the
//! message traffic of layered protocols over a single wire format.
//!
//! The paper's middleware is explicitly a *stack* (Figure 1): data link →
//! `(N,Θ)`-failure detector → recSA/recMA/joining → labels → counters →
//! virtually synchronous SMR / shared memory. A composite node that runs
//! several of those layers on one processor has to (a) wrap every sub-layer's
//! outgoing messages into one tagged wire enum and (b) demultiplex incoming
//! wire messages back to the right sub-layer. Before this module existed,
//! each composite node hand-rolled that plumbing; now it is expressed once,
//! here, and every node in the workspace composes the same way:
//!
//! * a composite declares its wire format with [`wire_enum!`](crate::wire_enum), which derives
//!   a [`Lane`] (injection/projection pair) per tagged variant;
//! * outgoing traffic of any sub-layer is pushed into an [`Outbox`], which
//!   wraps native messages into the wire format on the way in — this is also
//!   how *upper* layers send through *lower* ones (e.g. the SMR layer sends
//!   counter-service requests by pushing `CounterMsg`s into its
//!   `Outbox<SmrMsg>`);
//! * incoming wire messages are dispatched with a [`Router`], which peels the
//!   lanes off one by one and hands each sub-layer its native message type;
//! * the composite implements [`Layer`], and [`impl_process_for_layer!`](crate::impl_process_for_layer)
//!   turns any `Layer` into a [`crate::Process`] that can run in a
//!   [`crate::Simulation`].
//!
//! ```
//! use simnet::stack::{Layer, Outbox, Router};
//! use simnet::{wire_enum, ProcessId};
//!
//! // Two toy sub-layer protocols with distinct message types. Payload types
//! // implement `simnet::codec::WireCodec` (here via `wire_newtype_codec!`)
//! // so the wire enum's derived codec can carry them on real sockets.
//! #[derive(Debug, Clone, PartialEq, Eq)]
//! pub struct Ping(pub u64);
//! # simnet::wire_newtype_codec!(Ping(u64));
//! #[derive(Debug, Clone, PartialEq, Eq)]
//! pub struct Gossip(pub String);
//! # simnet::wire_newtype_codec!(Gossip(String));
//!
//! wire_enum! {
//!     /// The composite wire format.
//!     #[derive(Debug, Clone, PartialEq, Eq)]
//!     pub enum WireMsg {
//!         /// Liveness probes.
//!         Ping(Ping),
//!         /// Rumour spreading.
//!         Gossip(Gossip),
//!     }
//! }
//!
//! #[derive(Default)]
//! struct Node { pings: u64, rumours: Vec<String> }
//!
//! impl Layer for Node {
//!     type Wire = WireMsg;
//!     fn poll(&mut self, peers: &[ProcessId], out: &mut Outbox<WireMsg>) {
//!         for p in peers {
//!             out.push(*p, Ping(self.pings)); // wrapped into WireMsg::Ping
//!         }
//!     }
//!     fn handle(&mut self, from: ProcessId, wire: WireMsg, out: &mut Outbox<WireMsg>) {
//!         Router::new(from, wire)
//!             .lane(out, |_from, Ping(n), _out| self.pings = self.pings.max(n))
//!             .lane(out, |_from, Gossip(r), _out| self.rumours.push(r))
//!             .finish();
//!     }
//! }
//!
//! let mut node = Node::default();
//! let mut out = Outbox::new();
//! node.handle(ProcessId::new(1), WireMsg::Gossip(Gossip("hi".into())), &mut out);
//! assert_eq!(node.rumours, vec!["hi".to_string()]);
//! assert!(out.is_empty());
//! ```

use crate::payload::Payload;
use crate::process::{Context, ProcessId};

/// Injection/projection between a sub-layer's native message type and a
/// composite wire format `W`.
///
/// Implementations are normally derived by [`wire_enum!`](crate::wire_enum); one lane per
/// tagged variant of the wire enum.
pub trait Lane<W>: Sized {
    /// Wraps a native message into the wire format.
    fn wrap(self) -> W;
    /// Projects a wire message back to this lane, or returns it unchanged
    /// when it belongs to another lane.
    fn try_unwrap(wire: W) -> Result<Self, W>;
}

/// Collects `(destination, wire message)` pairs during one atomic step,
/// wrapping every sub-layer's native messages on the way in.
///
/// Internally messages are stored as [`Payload`]s: point-to-point pushes own
/// their message inline (allocation-free), while [`Outbox::push_to_all`]
/// queues one shared allocation per *broadcast* rather than one deep clone
/// per *destination* — the sharing survives all the way through the network
/// into the channels.
#[derive(Debug)]
pub struct Outbox<W> {
    msgs: Vec<(ProcessId, Payload<W>)>,
}

impl<W> Default for Outbox<W> {
    fn default() -> Self {
        Outbox { msgs: Vec::new() }
    }
}

impl<W> Outbox<W> {
    /// Creates an empty outbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an outbox on top of an existing buffer, so a per-step outbox
    /// can reuse a recycled allocation (see `impl_process_for_layer!`, which
    /// borrows the simulation's per-step send buffer instead of allocating).
    /// Messages already in the buffer are kept.
    pub fn from_buffer(msgs: Vec<(ProcessId, Payload<W>)>) -> Self {
        Outbox { msgs }
    }

    /// Queues one native message of lane `M` for `to`.
    pub fn push<M: Lane<W>>(&mut self, to: ProcessId, msg: M) {
        self.msgs.push((to, Payload::owned(msg.wrap())));
    }

    /// Queues one already-wrapped wire message for `to` (used for unit
    /// variants of the wire enum, which carry no lane payload).
    pub fn push_wire(&mut self, to: ProcessId, wire: W) {
        self.msgs.push((to, Payload::owned(wire)));
    }

    /// Queues one native message for *every* destination in `peers`, sharing
    /// a single payload allocation across all of them: the broadcast travels
    /// through the network as refcount bumps, and only deliveries that
    /// overlap other live handles pay a clone. Use this where the same value
    /// genuinely fans out (state snapshots, gossip); per-peer messages keep
    /// going through [`Outbox::push`].
    pub fn push_to_all<M: Lane<W>>(&mut self, peers: &[ProcessId], msg: M) {
        if peers.is_empty() {
            return;
        }
        let mut fan = Payload::fan_out(msg.wrap(), peers.len());
        for to in peers {
            self.msgs.push((*to, fan.next()));
        }
    }

    /// Queues a batch of native messages, wrapping each one. This is the
    /// send-through path: a sub-layer's `(destination, message)` output goes
    /// out over the composite's wire format unchanged.
    pub fn extend<M: Lane<W>>(&mut self, batch: impl IntoIterator<Item = (ProcessId, M)>) {
        for (to, msg) in batch {
            self.push(to, msg);
        }
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// Returns `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Consumes the outbox, returning the queued payloads in send order (the
    /// allocation-free hand-back used by `impl_process_for_layer!`).
    pub fn into_payloads(self) -> Vec<(ProcessId, Payload<W>)> {
        self.msgs
    }

    /// Hands every queued message to a simulation [`Context`].
    pub fn send_via(self, ctx: &mut Context<'_, W>) {
        for (to, payload) in self.msgs {
            ctx.send_payload(to, payload);
        }
    }
}

impl<W: Clone> Outbox<W> {
    /// Consumes the outbox, returning the queued wire messages in send order.
    /// Owned messages move; shared broadcast payloads clone per destination
    /// (this is the facade/tests path — the simulation hot path hands the
    /// payloads through [`Outbox::into_payloads`] unchanged).
    pub fn into_messages(self) -> Vec<(ProcessId, W)> {
        self.msgs
            .into_iter()
            .map(|(to, payload)| (to, payload.into_msg()))
            .collect()
    }
}

/// Dispatches one incoming wire message through the lanes of a stack.
///
/// Lanes are tried in the order they are chained; the first lane whose
/// payload type matches consumes the message. [`Router::finish`] returns any
/// message no lane claimed (e.g. a unit variant of the wire enum), which the
/// caller pattern-matches directly.
#[must_use = "call .finish() to observe messages no lane claimed"]
#[derive(Debug)]
pub struct Router<W> {
    from: ProcessId,
    wire: Option<W>,
}

impl<W> Router<W> {
    /// Starts routing `wire`, received from `from`.
    pub fn new(from: ProcessId, wire: W) -> Self {
        Router {
            from,
            wire: Some(wire),
        }
    }

    /// Offers the message to lane `M`: if it belongs there, `handler` runs
    /// with the native message and the shared outbox; otherwise the message
    /// stays available for the next lane.
    pub fn lane<M: Lane<W>>(
        mut self,
        out: &mut Outbox<W>,
        handler: impl FnOnce(ProcessId, M, &mut Outbox<W>),
    ) -> Self {
        if let Some(wire) = self.wire.take() {
            match M::try_unwrap(wire) {
                Ok(msg) => handler(self.from, msg, out),
                Err(wire) => self.wire = Some(wire),
            }
        }
        self
    }

    /// Ends the dispatch, returning the message if no lane claimed it.
    pub fn finish(self) -> Option<W> {
        self.wire
    }
}

/// A protocol layer (or a whole stack of them) in poll/handle form: the
/// context-free shape every composite node in this workspace exposes, so
/// higher layers can embed it and forward its traffic through their own
/// [`Outbox`].
pub trait Layer {
    /// The wire format this layer speaks.
    type Wire: Clone;

    /// One timer step (`do forever` iteration) of the layer. `peers` lists
    /// every processor the node may address.
    fn poll(&mut self, peers: &[ProcessId], out: &mut Outbox<Self::Wire>);

    /// Handles one received wire message, pushing any replies into `out`.
    fn handle(&mut self, from: ProcessId, wire: Self::Wire, out: &mut Outbox<Self::Wire>);
}

/// Defines a composite wire enum and derives a [`Lane`] implementation per
/// payload-carrying variant. Unit variants are allowed and stay lane-less
/// (send them with [`Outbox::push_wire`], observe them via
/// [`Router::finish`]).
///
/// Also derives [`crate::codec::WireCodec`]: the wire encoding is one byte of
/// lane tag — the variant's declaration index — followed by the payload's
/// encoding (nothing for unit variants). Every payload type must therefore
/// implement `WireCodec`; an undeclared tag byte decodes to
/// [`crate::codec::DecodeError::UnknownLane`]. Because tags are declaration
/// indices, appending variants is wire-compatible but reordering or removing
/// them is a breaking protocol change (see `docs/LIVE.md`).
///
/// See the [module documentation](self) for a full example.
#[macro_export]
macro_rules! wire_enum {
    (
        $(#[$meta:meta])*
        $vis:vis enum $name:ident {
            $(
                $(#[$vmeta:meta])*
                $variant:ident $( ( $payload:ty ) )?
            ),* $(,)?
        }
    ) => {
        $(#[$meta])*
        $vis enum $name {
            $(
                $(#[$vmeta])*
                $variant $( ( $payload ) )?,
            )*
        }

        $(
            $crate::__wire_enum_lane! { $name, $variant $( ( $payload ) )? }
        )*

        impl $crate::codec::WireCodec for $name {
            fn encode(&self, out: &mut ::std::vec::Vec<u8>) {
                $crate::__wire_enum_encode_step! {
                    self, out, $name, 0u8;
                    $( $variant $( ( $payload ) )? ),*
                }
            }

            fn decode(
                r: &mut $crate::codec::Reader<'_>,
            ) -> ::std::result::Result<Self, $crate::codec::DecodeError> {
                let tag = r.u8()?;
                $crate::__wire_enum_decode_step! {
                    tag, r, $name, 0u8;
                    $( $variant $( ( $payload ) )? ),*
                }
            }
        }
    };
}

/// Implementation detail of [`wire_enum!`](crate::wire_enum): emits the
/// encode body as a chain of `if let` arms, threading the variant's
/// declaration index through as a constant-folded unary sum (macro_rules has
/// no `${index()}` on this toolchain).
#[doc(hidden)]
#[macro_export]
macro_rules! __wire_enum_encode_step {
    ($self:expr, $out:ident, $name:ident, $idx:expr ; ) => {
        // Every variant was peeled off in an earlier arm; nothing reaches
        // here, but the chain needs a tail expression.
        {}
    };
    ($self:expr, $out:ident, $name:ident, $idx:expr ; $variant:ident ( $payload:ty ) $(, $($rest:tt)*)?) => {
        if let $name::$variant(payload) = $self {
            $out.push($idx);
            $crate::codec::WireCodec::encode(payload, $out);
        } else {
            $crate::__wire_enum_encode_step! {
                $self, $out, $name, $idx + 1u8; $($($rest)*)?
            }
        }
    };
    ($self:expr, $out:ident, $name:ident, $idx:expr ; $variant:ident $(, $($rest:tt)*)?) => {
        if let $name::$variant = $self {
            $out.push($idx);
        } else {
            $crate::__wire_enum_encode_step! {
                $self, $out, $name, $idx + 1u8; $($($rest)*)?
            }
        }
    };
}

/// Implementation detail of [`wire_enum!`](crate::wire_enum): emits the
/// decode body as a chain of tag comparisons mirroring
/// [`__wire_enum_encode_step!`](crate::__wire_enum_encode_step).
#[doc(hidden)]
#[macro_export]
macro_rules! __wire_enum_decode_step {
    ($tag:ident, $r:ident, $name:ident, $idx:expr ; ) => {
        ::std::result::Result::Err($crate::codec::DecodeError::UnknownLane {
            ty: ::std::stringify!($name),
            tag: $tag,
        })
    };
    ($tag:ident, $r:ident, $name:ident, $idx:expr ; $variant:ident ( $payload:ty ) $(, $($rest:tt)*)?) => {
        if $tag == ($idx) {
            ::std::result::Result::Ok($name::$variant(
                <$payload as $crate::codec::WireCodec>::decode($r)?,
            ))
        } else {
            $crate::__wire_enum_decode_step! {
                $tag, $r, $name, $idx + 1u8; $($($rest)*)?
            }
        }
    };
    ($tag:ident, $r:ident, $name:ident, $idx:expr ; $variant:ident $(, $($rest:tt)*)?) => {
        if $tag == ($idx) {
            ::std::result::Result::Ok($name::$variant)
        } else {
            $crate::__wire_enum_decode_step! {
                $tag, $r, $name, $idx + 1u8; $($($rest)*)?
            }
        }
    };
}

/// Implementation detail of [`wire_enum!`](crate::wire_enum).
#[doc(hidden)]
#[macro_export]
macro_rules! __wire_enum_lane {
    ($name:ident, $variant:ident) => {};
    ($name:ident, $variant:ident ( $payload:ty )) => {
        impl $crate::stack::Lane<$name> for $payload {
            fn wrap(self) -> $name {
                $name::$variant(self)
            }
            fn try_unwrap(wire: $name) -> ::std::result::Result<Self, $name> {
                match wire {
                    $name::$variant(msg) => Ok(msg),
                    other => ::std::result::Result::Err(other),
                }
            }
        }
    };
}

/// Implements [`crate::Process`] for a type that implements [`Layer`],
/// delegating the two step entry points through an [`Outbox`]. Keeps the
/// `Process` impl of every composite node a two-line facade.
#[macro_export]
macro_rules! impl_process_for_layer {
    ($ty:ty) => {
        impl $crate::Process for $ty {
            type Msg = <$ty as $crate::stack::Layer>::Wire;

            fn on_timer(&mut self, ctx: &mut $crate::Context<'_, Self::Msg>) {
                // The outbox borrows the context's (recycled) send buffer —
                // a steady-state poll wraps and queues every message without
                // allocating a second collection.
                let mut out = $crate::stack::Outbox::from_buffer(ctx.take_sends());
                $crate::stack::Layer::poll(self, ctx.ids(), &mut out);
                ctx.restore_sends(out.into_payloads());
            }

            fn on_message(
                &mut self,
                from: $crate::ProcessId,
                msg: Self::Msg,
                ctx: &mut $crate::Context<'_, Self::Msg>,
            ) {
                let mut out = $crate::stack::Outbox::from_buffer(ctx.take_sends());
                $crate::stack::Layer::handle(self, from, msg, &mut out);
                ctx.restore_sends(out.into_payloads());
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Lower(u32);
    crate::wire_newtype_codec!(Lower(u32));
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Upper(String);
    crate::wire_newtype_codec!(Upper(String));

    wire_enum! {
        #[derive(Debug, Clone, PartialEq, Eq)]
        enum Wire {
            Beat,
            Lower(Lower),
            Upper(Upper),
        }
    }

    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn outbox_wraps_native_messages_per_lane() {
        let mut out: Outbox<Wire> = Outbox::new();
        assert!(out.is_empty());
        out.push(pid(1), Lower(7));
        out.push(pid(2), Upper("x".into()));
        out.push_wire(pid(3), Wire::Beat);
        out.extend(vec![(pid(4), Lower(8))]);
        assert_eq!(out.len(), 4);
        let msgs = out.into_messages();
        assert_eq!(
            msgs,
            vec![
                (pid(1), Wire::Lower(Lower(7))),
                (pid(2), Wire::Upper(Upper("x".into()))),
                (pid(3), Wire::Beat),
                (pid(4), Wire::Lower(Lower(8))),
            ]
        );
    }

    #[test]
    fn push_to_all_shares_one_payload_across_destinations() {
        let mut out: Outbox<Wire> = Outbox::new();
        out.push_to_all(&[pid(1), pid(2), pid(3)], Lower(9));
        assert_eq!(out.len(), 3);
        let payloads = out.into_payloads();
        assert!(payloads.iter().all(|(_, p)| p.is_shared()));
        assert!(payloads
            .iter()
            .all(|(_, p)| *p.get() == Wire::Lower(Lower(9))));

        // A single destination stays owned (no allocation), an empty peer
        // list queues nothing.
        let mut out: Outbox<Wire> = Outbox::new();
        out.push_to_all(&[pid(7)], Lower(1));
        out.push_to_all(&[], Lower(2));
        let payloads = out.into_payloads();
        assert_eq!(payloads.len(), 1);
        assert!(!payloads[0].1.is_shared());
    }

    #[test]
    fn router_dispatches_to_the_matching_lane_only() {
        let mut out: Outbox<Wire> = Outbox::new();
        let mut lower_seen = None;
        let mut upper_seen = None;
        let rest = Router::new(pid(9), Wire::Lower(Lower(5)))
            .lane(&mut out, |from, m: Lower, _| lower_seen = Some((from, m)))
            .lane(&mut out, |from, m: Upper, _| upper_seen = Some((from, m)))
            .finish();
        assert_eq!(lower_seen, Some((pid(9), Lower(5))));
        assert_eq!(upper_seen, None);
        assert_eq!(rest, None);
    }

    #[test]
    fn router_hands_back_unit_variants() {
        let mut out: Outbox<Wire> = Outbox::new();
        let rest = Router::new(pid(1), Wire::Beat)
            .lane(&mut out, |_, _m: Lower, _| panic!("wrong lane"))
            .lane(&mut out, |_, _m: Upper, _| panic!("wrong lane"))
            .finish();
        assert_eq!(rest, Some(Wire::Beat));
    }

    #[test]
    fn lanes_can_reply_through_the_shared_outbox() {
        let mut out: Outbox<Wire> = Outbox::new();
        Router::new(pid(2), Wire::Lower(Lower(1)))
            .lane(&mut out, |from, Lower(n), out: &mut Outbox<Wire>| {
                out.push(from, Lower(n + 1));
                out.push(from, Upper("ack".into()));
            })
            .finish();
        assert_eq!(
            out.into_messages(),
            vec![
                (pid(2), Wire::Lower(Lower(2))),
                (pid(2), Wire::Upper(Upper("ack".into()))),
            ]
        );
    }

    #[test]
    fn derived_codec_tags_follow_declaration_order() {
        use crate::codec::{DecodeError, WireCodec};
        // Unit variant: tag only.
        assert_eq!(Wire::Beat.to_bytes(), vec![0]);
        // Payload variants: tag byte, then the payload encoding.
        assert_eq!(Wire::Lower(Lower(7)).to_bytes(), vec![1, 7, 0, 0, 0]);
        let upper = Wire::Upper(Upper("hi".into())).to_bytes();
        assert_eq!(upper[0], 2);
        for wire in [
            Wire::Beat,
            Wire::Lower(Lower(u32::MAX)),
            Wire::Upper(Upper("é".into())),
        ] {
            assert_eq!(Wire::from_bytes(&wire.to_bytes()), Ok(wire));
        }
        // A tag past the last declared variant is a typed error, not a panic.
        assert_eq!(
            Wire::from_bytes(&[3]),
            Err(DecodeError::UnknownLane { ty: "Wire", tag: 3 })
        );
        // Empty input is truncated, not a panic.
        assert!(matches!(
            Wire::from_bytes(&[]),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn roundtrip_wrap_unwrap() {
        let wrapped = Lower(3).wrap();
        assert_eq!(wrapped, Wire::Lower(Lower(3)));
        assert_eq!(Lower::try_unwrap(wrapped), Ok(Lower(3)));
        assert_eq!(
            Lower::try_unwrap(Wire::Upper(Upper("y".into()))),
            Err(Wire::Upper(Upper("y".into())))
        );
    }
}

//! Test-only support: a toy [`ScenarioTarget`] shared by the scenario and
//! campaign test modules.

use crate::process::{Context, Process, ProcessId};
use crate::rng::SimRng;
use crate::scenario::ScenarioTarget;
use crate::scheduler::Simulation;
use crate::time::Round;

/// A self-stabilizing toy target: every process floods its value and adopts
/// the maximum; "converged" means everyone agrees; corruption randomizes the
/// value; the workload trickles fresh values in through process 0. Recovery
/// is guaranteed because the maximum always wins.
#[derive(Debug)]
pub(crate) struct MaxNode {
    pub(crate) id: ProcessId,
    pub(crate) value: u64,
    /// Accepted-but-unclaimed load ops (see [`ScenarioTarget::complete_op`]);
    /// deliberately absent from `state_line` so attaching a load never
    /// changes the digest semantics under test.
    pub(crate) unclaimed_ops: u64,
}

impl Process for MaxNode {
    type Msg = u64;
    fn on_timer(&mut self, ctx: &mut Context<'_, u64>) {
        for peer in ctx.peers() {
            ctx.send(peer, self.value);
        }
    }
    fn on_message(&mut self, _from: ProcessId, msg: u64, _ctx: &mut Context<'_, u64>) {
        self.value = self.value.max(msg);
    }
}

impl ScenarioTarget for MaxNode {
    const NAME: &'static str = "max";

    fn spawn_initial(id: ProcessId, _n: usize) -> Self {
        MaxNode {
            id,
            value: id.as_u32() as u64,
            unclaimed_ops: 0,
        }
    }

    fn spawn_joiner(id: ProcessId, _n: usize) -> Self {
        MaxNode {
            id,
            value: 0,
            unclaimed_ops: 0,
        }
    }

    fn corrupt(&mut self, rng: &mut SimRng) {
        self.value = rng.range_inclusive(100, 200);
    }

    /// In-flight corruption scrambles the gossiped value (bounded, so the
    /// max-flood still converges on whatever the largest surviving value is).
    fn corrupt_payload(msg: &mut u64, rng: &mut SimRng) -> bool {
        if rng.chance(0.5) {
            *msg = rng.range_inclusive(300, 400);
            true
        } else {
            false
        }
    }

    /// Byzantine forging for the toy target: a forged-sender packet is a
    /// bounded bogus value (it floods and wins like any maximum); stale
    /// state echoes the target's own current value back at it.
    fn forge_payload(
        forge: crate::plan::ForgeKind,
        _claimed_sender: ProcessId,
        target: ProcessId,
        sim: &Simulation<Self>,
        rng: &mut SimRng,
    ) -> Option<u64> {
        match forge {
            crate::plan::ForgeKind::ForgedSender => Some(rng.range_inclusive(500, 600)),
            crate::plan::ForgeKind::StaleState => sim.process(target).map(|p| p.value),
            crate::plan::ForgeKind::Replay => None,
        }
    }

    /// A deterministic trickle of new values through process 0.
    fn drive_workload(sim: &mut Simulation<Self>, round: Round, _rng: &mut SimRng) {
        if round.as_u64() % 4 == 0 {
            if let Some(p) = sim.process_mut(ProcessId::new(0)) {
                p.value = p.value.max(round.as_u64());
            }
        }
    }

    /// Open-loop load hooks for the toy target: an accepted op folds a
    /// bounded value into the max-flood and completes on the next poll.
    fn submit_op(sim: &mut Simulation<Self>, via: ProcessId, _key: u64, value: u64) -> bool {
        match sim.process_mut(via) {
            Some(p) => {
                p.value = p.value.max(value % 50);
                p.unclaimed_ops += 1;
                true
            }
            None => false,
        }
    }

    fn complete_op(sim: &mut Simulation<Self>, via: ProcessId) -> Option<bool> {
        let p = sim.process_mut(via)?;
        if p.unclaimed_ops == 0 {
            return None;
        }
        p.unclaimed_ops -= 1;
        Some(true)
    }

    fn converged(sim: &Simulation<Self>) -> bool {
        let mut values = sim.active_processes().map(|(_, p)| p.value);
        match values.next() {
            None => true,
            Some(first) => values.all(|v| v == first),
        }
    }

    fn invariant_violations(sim: &Simulation<Self>) -> Vec<String> {
        sim.active_processes()
            .filter(|(id, p)| p.id != *id)
            .map(|(id, p)| format!("{id} claims to be {}", p.id))
            .collect()
    }

    fn state_line(id: ProcessId, p: &Self) -> String {
        format!("{id} value={}", p.value)
    }
}

//! Declarative network-partition schedules.
//!
//! The paper's channels never disappear, but transient faults and violated
//! churn assumptions can leave parts of the system unable to talk to each
//! other for a while. [`PartitionPlan`] schedules *splits* (groups of
//! processors that lose mutual connectivity) and *heals* at specific rounds
//! and applies them from the scheduler hook
//! ([`crate::Simulation::run_rounds_with`]), in the same declarative style as
//! [`crate::CrashPlan`] and [`crate::ChurnPlan`].
//!
//! ```
//! use simnet::{PartitionPlan, ProcessId, Round};
//! let p: Vec<ProcessId> = (0..4).map(ProcessId::new).collect();
//! let plan = PartitionPlan::new()
//!     .split_at(Round::new(10), vec![vec![p[0], p[1]], vec![p[2], p[3]]])
//!     .heal_at(Round::new(50));
//! assert!(plan.splits_due(Round::new(10)).next().is_some());
//! assert!(plan.heals_at(Round::new(50)));
//! ```

use std::collections::{BTreeMap, BTreeSet};

use crate::process::{Process, ProcessId};
use crate::scheduler::Simulation;
use crate::time::Round;

/// A schedule of network splits and heals.
#[derive(Debug, Clone, Default)]
pub struct PartitionPlan {
    splits: BTreeMap<Round, Vec<Vec<Vec<ProcessId>>>>,
    heals: BTreeSet<Round>,
}

impl PartitionPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a split into `groups` at `round` (builder style). Processors
    /// in different groups lose connectivity in both directions; processors
    /// mentioned in no group are unaffected.
    pub fn split_at(mut self, round: Round, groups: Vec<Vec<ProcessId>>) -> Self {
        self.splits.entry(round).or_default().push(groups);
        self
    }

    /// Schedules a full heal (unblocking every link) at `round`.
    pub fn heal_at(mut self, round: Round) -> Self {
        self.heals.insert(round);
        self
    }

    /// The splits scheduled for exactly `round`.
    pub fn splits_due(&self, round: Round) -> impl Iterator<Item = &Vec<Vec<ProcessId>>> {
        self.splits.get(&round).into_iter().flatten()
    }

    /// Returns `true` when a heal is scheduled for exactly `round`.
    pub fn heals_at(&self, round: Round) -> bool {
        self.heals.contains(&round)
    }

    /// Total number of scheduled split events.
    pub fn total_splits(&self) -> usize {
        self.splits.values().map(Vec::len).sum()
    }

    /// The last round with a scheduled split or heal.
    pub fn last_round(&self) -> Option<Round> {
        let last_split = self.splits.keys().next_back().copied();
        let last_heal = self.heals.iter().next_back().copied();
        match (last_split, last_heal) {
            (Some(s), Some(h)) => Some(s.max(h)),
            (s, h) => s.or(h),
        }
    }

    /// Applies the events due at `round` to the simulation. Heals are applied
    /// before splits so that a heal and a split scheduled for the same round
    /// leave exactly the new split in place.
    pub fn apply<P: Process>(&self, sim: &mut Simulation<P>, round: Round) {
        if self.heals_at(round) {
            sim.network_mut().heal_all_links();
        }
        for groups in self.splits_due(round) {
            sim.network_mut().split_into(groups);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::process::Context;

    /// Gossip process used to observe whether information crosses a cut.
    #[derive(Debug)]
    struct Gossip {
        value: u64,
    }

    impl Process for Gossip {
        type Msg = u64;
        fn on_timer(&mut self, ctx: &mut Context<'_, u64>) {
            for peer in ctx.peers() {
                ctx.send(peer, self.value);
            }
        }
        fn on_message(&mut self, _from: ProcessId, msg: u64, _ctx: &mut Context<'_, u64>) {
            self.value = self.value.max(msg);
        }
    }

    #[test]
    fn builder_records_events() {
        let plan = PartitionPlan::new()
            .split_at(
                Round::new(1),
                vec![vec![ProcessId::new(0)], vec![ProcessId::new(1)]],
            )
            .split_at(
                Round::new(1),
                vec![vec![ProcessId::new(2)], vec![ProcessId::new(3)]],
            )
            .heal_at(Round::new(9));
        assert_eq!(plan.total_splits(), 2);
        assert_eq!(plan.splits_due(Round::new(1)).count(), 2);
        assert_eq!(plan.splits_due(Round::new(2)).count(), 0);
        assert!(plan.heals_at(Round::new(9)));
        assert!(!plan.heals_at(Round::new(8)));
    }

    #[test]
    fn partition_prevents_cross_group_gossip_until_healed() {
        let mut sim: Simulation<Gossip> =
            Simulation::new(SimConfig::default().with_seed(1).with_max_delay(0));
        for v in [1u64, 2, 3, 100] {
            sim.add_process(Gossip { value: v });
        }
        let group_a = vec![ProcessId::new(0), ProcessId::new(1)];
        let group_b = vec![ProcessId::new(2), ProcessId::new(3)];
        let plan = PartitionPlan::new()
            .split_at(Round::ZERO, vec![group_a, group_b])
            .heal_at(Round::new(10));
        sim.run_rounds_with(8, |s| {
            let now = s.now();
            plan.apply(s, now);
        });
        // While partitioned, the large value stays on its side of the cut.
        assert_eq!(sim.process(ProcessId::new(0)).unwrap().value, 2);
        assert_eq!(sim.process(ProcessId::new(3)).unwrap().value, 100);
        sim.run_rounds_with(10, |s| {
            let now = s.now();
            plan.apply(s, now);
        });
        // After the heal, everyone learns the maximum.
        for (_, p) in sim.processes() {
            assert_eq!(p.value, 100);
        }
    }

    #[test]
    fn heal_and_split_at_same_round_leave_new_split() {
        let mut sim: Simulation<Gossip> =
            Simulation::new(SimConfig::default().with_seed(2).with_max_delay(0));
        for v in [1u64, 2, 3] {
            sim.add_process(Gossip { value: v });
        }
        let plan = PartitionPlan::new()
            .split_at(
                Round::ZERO,
                vec![vec![ProcessId::new(0)], vec![ProcessId::new(1)]],
            )
            .heal_at(Round::new(3))
            .split_at(
                Round::new(3),
                vec![vec![ProcessId::new(1)], vec![ProcessId::new(2)]],
            );
        sim.run_rounds_with(4, |s| {
            let now = s.now();
            plan.apply(s, now);
        });
        let net = sim.network();
        assert!(!net.is_blocked(ProcessId::new(0), ProcessId::new(1)));
        assert!(net.is_blocked(ProcessId::new(1), ProcessId::new(2)));
    }
}

//! Declarative network-partition schedules.
//!
//! The paper's channels never disappear, but transient faults and violated
//! churn assumptions can leave parts of the system unable to talk to each
//! other for a while. [`PartitionPlan`] schedules *splits* (groups of
//! processors that lose mutual connectivity) and *heals* at specific rounds
//! and applies them from the scheduler hook
//! ([`crate::Simulation::run_rounds_with`]), in the same declarative style as
//! [`crate::CrashPlan`] and [`crate::ChurnPlan`].
//!
//! ```
//! use simnet::{PartitionPlan, ProcessId, Round};
//! let p: Vec<ProcessId> = (0..4).map(ProcessId::new).collect();
//! let plan = PartitionPlan::new()
//!     .split_at(Round::new(10), vec![vec![p[0], p[1]], vec![p[2], p[3]]])
//!     .heal_at(Round::new(50));
//! assert!(plan.splits_due(Round::new(10)).next().is_some());
//! assert!(plan.heals_at(Round::new(50)));
//! ```

use std::collections::{BTreeMap, BTreeSet};

use crate::process::{Process, ProcessId};
use crate::scheduler::Simulation;
use crate::time::Round;

/// A schedule of network splits and heals.
#[derive(Debug, Clone, Default)]
pub struct PartitionPlan {
    splits: BTreeMap<Round, Vec<Vec<Vec<ProcessId>>>>,
    heals: BTreeSet<Round>,
}

impl PartitionPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a split into `groups` at `round` (builder style). Processors
    /// in different groups lose connectivity in both directions; processors
    /// mentioned in no group are unaffected.
    pub fn split_at(mut self, round: Round, groups: Vec<Vec<ProcessId>>) -> Self {
        self.splits.entry(round).or_default().push(groups);
        self
    }

    /// Schedules a full heal (unblocking every link) at `round`.
    pub fn heal_at(mut self, round: Round) -> Self {
        self.heals.insert(round);
        self
    }

    /// The splits scheduled for exactly `round`.
    pub fn splits_due(&self, round: Round) -> impl Iterator<Item = &Vec<Vec<ProcessId>>> {
        self.splits.get(&round).into_iter().flatten()
    }

    /// Returns `true` when a heal is scheduled for exactly `round`.
    pub fn heals_at(&self, round: Round) -> bool {
        self.heals.contains(&round)
    }

    /// Total number of scheduled split events.
    pub fn total_splits(&self) -> usize {
        self.splits.values().map(Vec::len).sum()
    }

    /// The last round with a scheduled split or heal.
    pub fn last_round(&self) -> Option<Round> {
        let last_split = self.splits.keys().next_back().copied();
        let last_heal = self.heals.iter().next_back().copied();
        last_split.max(last_heal)
    }

    /// Applies the events due at `round` to the simulation. Heals are applied
    /// before splits so that a heal and a split scheduled for the same round
    /// leave exactly the new split in place.
    pub fn apply<P: Process>(&self, sim: &mut Simulation<P>, round: Round) {
        if self.heals_at(round) {
            sim.network_mut().heal_all_links();
        }
        for groups in self.splits_due(round) {
            sim.network_mut().split_into(groups);
        }
    }
}

/// A schedule of *asymmetric* (one-directional) cuts: links from one group
/// towards another fail while the reverse direction keeps delivering. This
/// is the paper's fail-recovery link model taken seriously — a channel and
/// its twin fail independently — and the condition under which failure
/// detectors disagree most violently: the cut-off side suspects processors
/// that can still hear *it* perfectly well.
///
/// Heals lift exactly the directed links this plan's cuts blocked. The
/// network's blocked-link set is shared (not reference-counted), so when
/// driving this plan by hand alongside a [`PartitionPlan`] over
/// overlapping links, schedule the two on disjoint windows: a one-way heal
/// would lift a direction a symmetric split also blocked, and a symmetric
/// full heal lifts every one-way cut. Inside a
/// [`crate::scenario::Scenario`] the runner composes the two safely by
/// re-asserting whichever plan's blocks are still active after the other
/// plan heals.
///
/// ```
/// use simnet::{AsymmetricCutPlan, ProcessId, Round};
/// let p: Vec<ProcessId> = (0..4).map(ProcessId::new).collect();
/// let plan = AsymmetricCutPlan::new()
///     .cut_at(Round::new(10), vec![p[0], p[1]], vec![p[2], p[3]])
///     .heal_at(Round::new(50));
/// assert_eq!(plan.total_cuts(), 1);
/// assert_eq!(plan.last_round(), Some(Round::new(50)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct AsymmetricCutPlan {
    cuts: BTreeMap<Round, Vec<OnewayCut>>,
    heals: BTreeSet<Round>,
}

/// One scheduled one-directional cut: the links from every member of the
/// first group towards every member of the second are blocked.
pub type OnewayCut = (Vec<ProcessId>, Vec<ProcessId>);

impl AsymmetricCutPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules the links from every member of `from` towards every member
    /// of `to` to fail at `round` (builder style). The reverse links keep
    /// working.
    pub fn cut_at(mut self, round: Round, from: Vec<ProcessId>, to: Vec<ProcessId>) -> Self {
        self.cuts.entry(round).or_default().push((from, to));
        self
    }

    /// Schedules a heal at `round`: every directed link blocked by this
    /// plan's cuts (scheduled at any round) is unblocked.
    pub fn heal_at(mut self, round: Round) -> Self {
        self.heals.insert(round);
        self
    }

    /// The cuts scheduled for exactly `round`.
    pub fn cuts_due(&self, round: Round) -> impl Iterator<Item = &OnewayCut> {
        self.cuts.get(&round).into_iter().flatten()
    }

    /// Returns `true` when a heal is scheduled for exactly `round`.
    pub fn heals_at(&self, round: Round) -> bool {
        self.heals.contains(&round)
    }

    /// Total number of scheduled cut events.
    pub fn total_cuts(&self) -> usize {
        self.cuts.values().map(Vec::len).sum()
    }

    /// The last round with a scheduled cut or heal.
    pub fn last_round(&self) -> Option<Round> {
        let last_cut = self.cuts.keys().next_back().copied();
        let last_heal = self.heals.iter().next_back().copied();
        last_cut.max(last_heal)
    }

    /// Applies the events due at `round`. Heals are applied before cuts
    /// (see [`AsymmetricCutPlan::apply_heals`]), so a heal and a cut
    /// scheduled for the same round leave exactly the new cut in place.
    pub fn apply<P: Process>(&self, sim: &mut Simulation<P>, round: Round) {
        self.apply_heals(sim, round);
        self.apply_cuts(sim, round);
    }

    /// Applies only the heal due at `round`, if any. Split out so callers
    /// that observe link state between the heal and the new cuts (the
    /// scenario runner's asymmetry invariant) can do so.
    pub fn apply_heals<P: Process>(&self, sim: &mut Simulation<P>, round: Round) {
        if self.heals_at(round) {
            for (from, to) in self.cuts.values().flatten() {
                sim.network_mut().open_oneway(from, to);
            }
        }
    }

    /// Applies only the cuts due at `round`.
    pub fn apply_cuts<P: Process>(&self, sim: &mut Simulation<P>, round: Round) {
        for (from, to) in self.cuts_due(round) {
            sim.network_mut().cut_oneway(from, to);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::process::Context;

    /// Gossip process used to observe whether information crosses a cut.
    #[derive(Debug)]
    struct Gossip {
        value: u64,
    }

    impl Process for Gossip {
        type Msg = u64;
        fn on_timer(&mut self, ctx: &mut Context<'_, u64>) {
            for peer in ctx.peers() {
                ctx.send(peer, self.value);
            }
        }
        fn on_message(&mut self, _from: ProcessId, msg: u64, _ctx: &mut Context<'_, u64>) {
            self.value = self.value.max(msg);
        }
    }

    #[test]
    fn builder_records_events() {
        let plan = PartitionPlan::new()
            .split_at(
                Round::new(1),
                vec![vec![ProcessId::new(0)], vec![ProcessId::new(1)]],
            )
            .split_at(
                Round::new(1),
                vec![vec![ProcessId::new(2)], vec![ProcessId::new(3)]],
            )
            .heal_at(Round::new(9));
        assert_eq!(plan.total_splits(), 2);
        assert_eq!(plan.splits_due(Round::new(1)).count(), 2);
        assert_eq!(plan.splits_due(Round::new(2)).count(), 0);
        assert!(plan.heals_at(Round::new(9)));
        assert!(!plan.heals_at(Round::new(8)));
    }

    #[test]
    fn partition_prevents_cross_group_gossip_until_healed() {
        let mut sim: Simulation<Gossip> =
            Simulation::new(SimConfig::default().with_seed(1).with_max_delay(0));
        for v in [1u64, 2, 3, 100] {
            sim.add_process(Gossip { value: v });
        }
        let group_a = vec![ProcessId::new(0), ProcessId::new(1)];
        let group_b = vec![ProcessId::new(2), ProcessId::new(3)];
        let plan = PartitionPlan::new()
            .split_at(Round::ZERO, vec![group_a, group_b])
            .heal_at(Round::new(10));
        sim.run_rounds_with(8, |s| {
            let now = s.now();
            plan.apply(s, now);
        });
        // While partitioned, the large value stays on its side of the cut.
        assert_eq!(sim.process(ProcessId::new(0)).unwrap().value, 2);
        assert_eq!(sim.process(ProcessId::new(3)).unwrap().value, 100);
        sim.run_rounds_with(10, |s| {
            let now = s.now();
            plan.apply(s, now);
        });
        // After the heal, everyone learns the maximum.
        for (_, p) in sim.processes() {
            assert_eq!(p.value, 100);
        }
    }

    /// One-directional cut: the cut-off side keeps *sending* successfully;
    /// only the cut direction loses information flow, and the heal restores
    /// it.
    #[test]
    fn asymmetric_cut_blocks_one_direction_and_heals() {
        let mut sim: Simulation<Gossip> =
            Simulation::new(SimConfig::default().with_seed(3).with_max_delay(0));
        for v in [1u64, 2, 3, 100] {
            sim.add_process(Gossip { value: v });
        }
        let lower = vec![ProcessId::new(0), ProcessId::new(1)];
        let upper = vec![ProcessId::new(2), ProcessId::new(3)];
        let plan = AsymmetricCutPlan::new()
            .cut_at(Round::ZERO, upper.clone(), lower.clone())
            .heal_at(Round::new(10));
        sim.run_rounds_with(8, |s| {
            let now = s.now();
            plan.apply(s, now);
        });
        // upper → lower is cut: the maximum (100) stays on the upper side…
        assert_eq!(sim.process(ProcessId::new(0)).unwrap().value, 2);
        assert_eq!(sim.process(ProcessId::new(1)).unwrap().value, 2);
        // …while lower → upper still delivers (upper heard lower's 2).
        assert_eq!(sim.process(ProcessId::new(3)).unwrap().value, 100);
        assert!(sim
            .network()
            .is_blocked(ProcessId::new(2), ProcessId::new(0)));
        assert!(!sim
            .network()
            .is_blocked(ProcessId::new(0), ProcessId::new(2)));
        sim.run_rounds_with(10, |s| {
            let now = s.now();
            plan.apply(s, now);
        });
        // After the heal, the maximum reaches everyone.
        for (_, p) in sim.processes() {
            assert_eq!(p.value, 100);
        }
        assert_eq!(sim.network().blocked_link_count(), 0);
    }

    /// An asymmetric heal lifts only the plan's own directed links, not a
    /// symmetric partition's.
    #[test]
    fn asymmetric_heal_does_not_lift_symmetric_splits() {
        let mut sim: Simulation<Gossip> =
            Simulation::new(SimConfig::default().with_seed(4).with_max_delay(0));
        for v in [1u64, 2, 3] {
            sim.add_process(Gossip { value: v });
        }
        let a = ProcessId::new(0);
        let b = ProcessId::new(1);
        let c = ProcessId::new(2);
        sim.network_mut().split_into(&[vec![a], vec![b]]);
        let plan = AsymmetricCutPlan::new()
            .cut_at(Round::ZERO, vec![c], vec![a])
            .heal_at(Round::new(1));
        plan.apply(&mut sim, Round::ZERO);
        assert!(sim.network().is_blocked(c, a));
        plan.apply(&mut sim, Round::new(1));
        assert!(!sim.network().is_blocked(c, a));
        // The symmetric split survives the asymmetric heal.
        assert!(sim.network().is_blocked(a, b));
        assert!(sim.network().is_blocked(b, a));
    }

    #[test]
    fn heal_and_split_at_same_round_leave_new_split() {
        let mut sim: Simulation<Gossip> =
            Simulation::new(SimConfig::default().with_seed(2).with_max_delay(0));
        for v in [1u64, 2, 3] {
            sim.add_process(Gossip { value: v });
        }
        let plan = PartitionPlan::new()
            .split_at(
                Round::ZERO,
                vec![vec![ProcessId::new(0)], vec![ProcessId::new(1)]],
            )
            .heal_at(Round::new(3))
            .split_at(
                Round::new(3),
                vec![vec![ProcessId::new(1)], vec![ProcessId::new(2)]],
            );
        sim.run_rounds_with(4, |s| {
            let now = s.now();
            plan.apply(s, now);
        });
        let net = sim.network();
        assert!(!net.is_blocked(ProcessId::new(0), ProcessId::new(1)));
        assert!(net.is_blocked(ProcessId::new(1), ProcessId::new(2)));
    }
}

//! Execution metrics collected by the simulator.

use crate::channel::SendOutcome;
use crate::histogram::Histogram;

/// Counters describing one simulation execution.
///
/// The benchmark harness reads these to report convergence cost (rounds,
/// messages) for every experiment in `EXPERIMENTS.md`. The scheduler-cost
/// counters (`wakeups`, `channel_scans`, `channel_visits`, the delivery
/// batch histogram) hook the delivery path, so the round-scan baseline and
/// the event-driven run queue can be compared packet for packet.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    rounds: u64,
    timer_steps: u64,
    messages_sent: u64,
    messages_delivered: u64,
    messages_lost: u64,
    messages_duplicated: u64,
    messages_evicted: u64,
    wakeups: u64,
    delivery_batches: u64,
    channel_scans: u64,
    channel_visits: u64,
    batch_sizes: Histogram,
}

impl Metrics {
    /// Creates a zeroed metrics record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the completion of one scheduler round.
    pub fn record_round(&mut self) {
        self.rounds += 1;
    }

    /// Records one timer step taken by a process.
    pub fn record_timer_step(&mut self) {
        self.timer_steps += 1;
    }

    /// Records the outcome of one send operation.
    pub fn record_send(&mut self, outcome: SendOutcome) {
        self.messages_sent += 1;
        match outcome {
            SendOutcome::Enqueued => {}
            SendOutcome::Lost => self.messages_lost += 1,
            SendOutcome::Duplicated => self.messages_duplicated += 1,
            SendOutcome::EvictedOld => self.messages_evicted += 1,
        }
    }

    /// Records the delivery of one packet.
    pub fn record_delivery(&mut self) {
        self.messages_delivered += 1;
    }

    /// Records one process wake-up of the event-driven scheduler.
    pub fn record_wakeup(&mut self) {
        self.wakeups += 1;
    }

    /// Records the size of one per-destination delivery batch. Empty batches
    /// are not counted.
    pub fn record_delivery_batch(&mut self, size: usize) {
        if size > 0 {
            self.delivery_batches += 1;
            self.batch_sizes.record(size as u64);
        }
    }

    /// Records a whole-network channel scan of `channels` channels (the
    /// round-scan delivery path).
    pub fn record_channel_scan(&mut self, channels: usize) {
        self.channel_scans += channels as u64;
    }

    /// Records `channels` targeted channel visits (the indexed delivery
    /// path).
    pub fn record_channel_visits(&mut self, channels: usize) {
        self.channel_visits += channels as u64;
    }

    /// Number of completed rounds.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Number of timer steps taken by all processes.
    pub fn timer_steps(&self) -> u64 {
        self.timer_steps
    }

    /// Number of send operations attempted.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Number of packets delivered to a process.
    pub fn messages_delivered(&self) -> u64 {
        self.messages_delivered
    }

    /// Number of packets dropped by lossy links.
    pub fn messages_lost(&self) -> u64 {
        self.messages_lost
    }

    /// Number of packets duplicated by links.
    pub fn messages_duplicated(&self) -> u64 {
        self.messages_duplicated
    }

    /// Number of packets evicted because a channel was full.
    pub fn messages_evicted(&self) -> u64 {
        self.messages_evicted
    }

    /// Number of process wake-ups performed by the event-driven scheduler.
    pub fn wakeups(&self) -> u64 {
        self.wakeups
    }

    /// Number of non-empty per-destination delivery batches.
    pub fn delivery_batches(&self) -> u64 {
        self.delivery_batches
    }

    /// Total channels examined by whole-network scans (round-scan delivery).
    pub fn channel_scans(&self) -> u64 {
        self.channel_scans
    }

    /// Total channels examined through the inbound index (event-driven
    /// delivery).
    pub fn channel_visits(&self) -> u64 {
        self.channel_visits
    }

    /// Distribution of per-destination delivery batch sizes.
    pub fn delivery_batch_sizes(&self) -> &Histogram {
        &self.batch_sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.record_round();
        m.record_round();
        m.record_timer_step();
        m.record_send(SendOutcome::Enqueued);
        m.record_send(SendOutcome::Lost);
        m.record_send(SendOutcome::Duplicated);
        m.record_send(SendOutcome::EvictedOld);
        m.record_delivery();
        assert_eq!(m.rounds(), 2);
        assert_eq!(m.timer_steps(), 1);
        assert_eq!(m.messages_sent(), 4);
        assert_eq!(m.messages_lost(), 1);
        assert_eq!(m.messages_duplicated(), 1);
        assert_eq!(m.messages_evicted(), 1);
        assert_eq!(m.messages_delivered(), 1);
    }

    #[test]
    fn default_is_zeroed() {
        let m = Metrics::default();
        assert_eq!(m.rounds(), 0);
        assert_eq!(m.messages_sent(), 0);
        assert_eq!(m.messages_delivered(), 0);
    }
}

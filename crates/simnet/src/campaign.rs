//! The chaos-campaign driver: scenarios × seeds × scheduler modes.
//!
//! A [`Campaign`] sweeps a list of [`Scenario`]s over a list of seeds, runs
//! every cell in every requested [`SchedulerMode`], verifies that the modes
//! produced the **same execution** (rounds, message counts, state digest —
//! the PR-1 determinism guarantee extended to the fault layer), and records
//! one [`RunRecord`] per (scenario, seed) cell into a [`CampaignReport`].
//!
//! The report renders to deterministic JSON ([`CampaignReport::to_json`]):
//! by design it contains **no mode-dependent and no wall-clock fields**, so
//! the same campaign + seeds produce byte-identical reports across repeated
//! runs and across scheduler modes. Wall-clock timings are available as an
//! explicitly non-deterministic opt-in ([`Campaign::with_timings`]), for
//! benchmarking use only.
//!
//! # Parallel execution
//!
//! Cells are independent — every random draw inside a cell derives from its
//! own (scenario, seed) pair — so the driver runs them on the
//! [`crate::exec`] work-stealing pool ([`Campaign::with_jobs`]; the default
//! is the machine's available parallelism, `jobs = 1` keeps the serial
//! loop). Results are reassembled in enumeration order (scenario-major,
//! seed-minor), so the report is **byte-identical at any jobs count**; CI
//! and the property tests assert exactly that.
//!
//! # Wall-time semantics under parallelism
//!
//! [`RunRecord::wall_ms`] is strictly *per-cell*: it is measured inside the
//! worker that ran the cell, around that cell's mode runs only. With
//! `jobs > 1` cells overlap, so campaign-level wall time is **not** the sum
//! of the cells' `wall_ms`; the driver measures its own elapsed time into
//! the opt-in [`CampaignReport::wall_ms_total`] instead. Speedup of the
//! parallel driver is `Σ wall_ms / wall_ms_total`-shaped, never a
//! comparison of `wall_ms` fields across jobs counts.
//!
//! ```
//! # use simnet::scenario::ScenarioTarget;
//! # use simnet::{Context, Process, ProcessId, SimRng, Simulation};
//! # #[derive(Debug)]
//! # struct Flood { value: u64 }
//! # impl Process for Flood {
//! #     type Msg = u64;
//! #     fn on_timer(&mut self, ctx: &mut Context<'_, u64>) {
//! #         for p in ctx.peers() { ctx.send(p, self.value); }
//! #     }
//! #     fn on_message(&mut self, _f: ProcessId, m: u64, _c: &mut Context<'_, u64>) {
//! #         self.value = self.value.max(m);
//! #     }
//! # }
//! # impl ScenarioTarget for Flood {
//! #     const NAME: &'static str = "flood";
//! #     fn spawn_initial(id: ProcessId, _n: usize) -> Self {
//! #         Flood { value: id.as_u32() as u64 }
//! #     }
//! #     fn spawn_joiner(_id: ProcessId, _n: usize) -> Self { Flood { value: 0 } }
//! #     fn corrupt(&mut self, rng: &mut SimRng) { self.value = rng.range_inclusive(50, 99); }
//! #     fn converged(sim: &Simulation<Self>) -> bool {
//! #         let mut v = sim.active_processes().map(|(_, p)| p.value);
//! #         let first = v.next();
//! #         v.all(|x| Some(x) == first)
//! #     }
//! #     fn invariant_violations(_sim: &Simulation<Self>) -> Vec<String> { Vec::new() }
//! #     fn state_line(i: ProcessId, p: &Self) -> String { format!("{i} {}", p.value) }
//! # }
//! use simnet::scenario::catalog;
//! use simnet::Campaign;
//!
//! // Sweep the whole catalog over two seeds; every cell runs in both
//! // scheduler modes and the executions must agree.
//! let report = Campaign::new("docs")
//!     .with_seeds([1, 2])
//!     .run::<Flood>(&catalog(4));
//! assert!(report.passed());
//! assert_eq!(report.runs.len(), catalog(4).len() * 2);
//! // Rendering is byte-deterministic — diff-friendly across PRs.
//! assert_eq!(report.render(), report.render());
//! ```

use std::collections::BTreeMap;
use std::time::Instant;

use crate::config::SchedulerMode;
use crate::report::{obj_from_map, Json};
use crate::scenario::{run_scenario, Scenario, ScenarioTarget};

/// Sweep configuration: which seeds and scheduler modes every scenario runs
/// under.
#[derive(Debug, Clone)]
pub struct Campaign {
    name: String,
    seeds: Vec<u64>,
    modes: Vec<SchedulerMode>,
    timings: bool,
    jobs: Option<usize>,
    cell_budget_ms: Option<f64>,
}

impl Campaign {
    /// Creates a campaign named `name` with seed 1, both scheduler modes
    /// and the default worker count ([`crate::exec::available_jobs`]).
    pub fn new(name: impl Into<String>) -> Self {
        Campaign {
            name: name.into(),
            seeds: vec![1],
            modes: vec![SchedulerMode::EventDriven, SchedulerMode::RoundScan],
            timings: false,
            jobs: None,
            cell_budget_ms: None,
        }
    }

    /// Sets the seeds to sweep (builder style).
    pub fn with_seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Sets the scheduler modes to run each cell under (builder style).
    pub fn with_modes(mut self, modes: impl IntoIterator<Item = SchedulerMode>) -> Self {
        self.modes = modes.into_iter().collect();
        self
    }

    /// Enables wall-clock timings in the report (builder style). Timed
    /// reports are **not** byte-deterministic; CI's determinism checks run
    /// without timings. Timings also switch on the driver-measured
    /// [`CampaignReport::wall_ms_total`].
    pub fn with_timings(mut self, timings: bool) -> Self {
        self.timings = timings;
        self
    }

    /// Sets the worker-thread budget for the cell matrix (builder style).
    /// `1` preserves the serial code path exactly; `0` restores the default
    /// (the machine's available parallelism). Any jobs count produces a
    /// byte-identical report — cells are reassembled in enumeration order
    /// and every cell derives its randomness from its own seed.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = (jobs > 0).then_some(jobs);
        self
    }

    /// Arms a per-cell wall budget in milliseconds (builder style; `0.0`
    /// disarms). A cell whose summed mode wall time exceeds the budget is
    /// reported as a distinct outcome — [`RunRecord::budget_overrun`] —
    /// and fails [`RunRecord::passed`], so a campaign tier can gate on
    /// "every cell converged *within its time box*" without turning a
    /// hang into a CI timeout with no report. The verdict compares wall
    /// clock against the budget, so (unlike everything else in an untimed
    /// report) it is machine-dependent; pick budgets with generous
    /// headroom and treat an overrun as a perf regression signal, not a
    /// protocol bug.
    pub fn with_cell_budget_ms(mut self, budget_ms: f64) -> Self {
        self.cell_budget_ms = (budget_ms > 0.0).then_some(budget_ms);
        self
    }

    /// The campaign name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The armed per-cell wall budget, if any.
    pub fn cell_budget_ms(&self) -> Option<f64> {
        self.cell_budget_ms
    }

    /// The seeds swept.
    pub fn seeds(&self) -> &[u64] {
        &self.seeds
    }

    /// The effective worker-thread count this campaign will use.
    pub fn jobs(&self) -> usize {
        self.jobs.unwrap_or_else(crate::exec::available_jobs)
    }

    /// Whether wall-clock timings were requested.
    pub fn timings(&self) -> bool {
        self.timings
    }

    /// The campaign's cells over `scenarios` as enumerated, self-contained
    /// closures — scenario-major, seed-minor, each capturing a [`Scenario`]
    /// clone and building its whole simulation inside whichever worker
    /// runs it. This is the unit [`Campaign::run_into`] feeds to
    /// [`crate::exec::run_ordered`]; drivers that interleave several
    /// target types into one pool dispatch (`simctl run --node all`)
    /// concatenate the per-type job lists and run them in one call, which
    /// parallelizes across the node axis too.
    pub fn cell_jobs<T: ScenarioTarget>(
        &self,
        scenarios: &[Scenario],
    ) -> Vec<crate::exec::Job<'static, RunRecord>> {
        // `Scenario` is `Send` (its plans carry the `FaultPlan: Send`
        // bound) and nothing is shared across cells, so each closure is a
        // free-standing unit of work.
        let me = std::sync::Arc::new(self.clone());
        scenarios
            .iter()
            .flat_map(|scenario| self.seeds.iter().map(move |&seed| (scenario, seed)))
            .map(|(scenario, seed)| {
                let me = std::sync::Arc::clone(&me);
                let scenario = scenario.clone();
                Box::new(move || me.run_cell::<T>(&scenario, seed))
                    as crate::exec::Job<'static, RunRecord>
            })
            .collect()
    }

    /// Runs every scenario × seed cell against target `T` and appends the
    /// records to `report`, in deterministic enumeration order
    /// (scenario-major, seed-minor) regardless of the jobs count.
    pub fn run_into<T: ScenarioTarget>(&self, scenarios: &[Scenario], report: &mut CampaignReport) {
        let started = Instant::now();
        let jobs = self.jobs();
        if jobs <= 1 {
            // The serial driver: unchanged, and the reference the parallel
            // path must match byte for byte.
            for scenario in scenarios {
                for &seed in &self.seeds {
                    report.runs.push(self.run_cell::<T>(scenario, seed));
                }
            }
        } else {
            // `run_ordered` reassembles the records in enumeration order —
            // shard partitioning and completion order never leak into
            // `report.runs`.
            let cells = self.cell_jobs::<T>(scenarios);
            report.runs.extend(crate::exec::run_ordered(cells, jobs));
        }
        if self.timings {
            *report.wall_ms_total.get_or_insert(0.0) += started.elapsed().as_secs_f64() * 1e3;
        }
    }

    /// Runs every scenario × seed cell against target `T`, returning a
    /// fresh report.
    pub fn run<T: ScenarioTarget>(&self, scenarios: &[Scenario]) -> CampaignReport {
        let mut report = CampaignReport::new(&self.name, self.seeds.clone());
        self.run_into::<T>(scenarios, &mut report);
        report
    }

    /// One (scenario, seed) cell: the run is repeated in every requested
    /// mode and the executions must agree.
    fn run_cell<T: ScenarioTarget>(&self, scenario: &Scenario, seed: u64) -> RunRecord {
        assert!(!self.modes.is_empty(), "campaign has no scheduler modes");
        let mut reference: Option<ModeOutcome> = None;
        let mut modes_agree = true;
        let mut wall_ms = 0.0f64;

        for &mode in &self.modes {
            let started = Instant::now();
            let mut sim = scenario.build_sim::<T>(seed, mode);
            let run = run_scenario(scenario, &mut sim);
            wall_ms += started.elapsed().as_secs_f64() * 1e3;
            let outcome = ModeOutcome {
                run,
                messages_sent: sim.metrics().messages_sent(),
                messages_delivered: sim.metrics().messages_delivered(),
                messages_lost: sim.metrics().messages_lost(),
                messages_duplicated: sim.metrics().messages_duplicated(),
                timer_steps: sim.metrics().timer_steps(),
            };
            match &reference {
                None => reference = Some(outcome),
                Some(first) => {
                    if *first != outcome {
                        modes_agree = false;
                    }
                }
            }
        }

        let outcome = reference.expect("at least one mode ran");
        let mut violations = outcome.run.invariant_violations.clone();
        if !modes_agree {
            violations.push("scheduler-mode divergence: executions differ".to_string());
        }
        RunRecord {
            node: T::NAME.to_string(),
            scenario: scenario.name().to_string(),
            seed,
            n: scenario.initial_size(),
            rounds_run: outcome.run.rounds_run,
            converged: outcome.run.converged,
            rounds_to_convergence: outcome.run.rounds_to_convergence,
            counters: outcome.run.counters,
            messages_sent: outcome.messages_sent,
            messages_delivered: outcome.messages_delivered,
            messages_lost: outcome.messages_lost,
            messages_duplicated: outcome.messages_duplicated,
            timer_steps: outcome.timer_steps,
            state_digest: outcome.run.state_digest,
            modes_agree,
            invariant_violations: violations,
            wall_ms: self.timings.then_some(wall_ms),
            budget_overrun: self.cell_budget_ms.map(|budget| wall_ms > budget),
        }
    }
}

/// Everything one mode's execution produced that must match across modes.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ModeOutcome {
    run: crate::scenario::ScenarioRun,
    messages_sent: u64,
    messages_delivered: u64,
    messages_lost: u64,
    messages_duplicated: u64,
    timer_steps: u64,
}

/// The outcome of one (scenario, seed) cell. Every field is deterministic
/// given the scenario and seed, except `wall_ms` (present only when
/// timings were requested).
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// The node type swept (`ScenarioTarget::NAME`).
    pub node: String,
    /// The scenario name.
    pub scenario: String,
    /// The seed.
    pub seed: u64,
    /// Initial population size.
    pub n: usize,
    /// Rounds executed.
    pub rounds_run: u64,
    /// Whether the convergence predicate held at the end.
    pub converged: bool,
    /// First post-fault round at which the target reported convergence.
    pub rounds_to_convergence: Option<u64>,
    /// Fault counters keyed by the plans' registered counter keys (see
    /// [`crate::plan::FaultPlan::counter_keys`]): `crashes`, `joins`,
    /// `corruptions`, `injections`, … — extensible per fault class instead
    /// of fixed fields.
    pub counters: BTreeMap<String, u64>,
    /// Send operations attempted.
    pub messages_sent: u64,
    /// Packets delivered.
    pub messages_delivered: u64,
    /// Packets dropped by lossy links (or blocked by partitions).
    pub messages_lost: u64,
    /// Packets duplicated by links.
    pub messages_duplicated: u64,
    /// Timer steps taken by all processes.
    pub timer_steps: u64,
    /// Canonical digest of the final protocol state.
    pub state_digest: u64,
    /// Whether every scheduler mode produced the same execution.
    pub modes_agree: bool,
    /// Safety-invariant violations (including mode divergence, if any).
    pub invariant_violations: Vec<String>,
    /// Wall-clock time summed over the modes run, measured **inside the
    /// worker that ran this cell** — strictly per-cell. Under a parallel
    /// driver cells overlap, so campaign wall time is *not* the sum of
    /// these; see [`CampaignReport::wall_ms_total`]. Non-deterministic;
    /// `None` unless timings were requested.
    pub wall_ms: Option<f64>,
    /// Whether the cell blew its wall budget ([`Campaign::with_cell_budget_ms`]):
    /// `None` when no budget was armed, otherwise the verdict. Wall-clock
    /// dependent, hence machine-dependent — `simctl diff` ignores it like
    /// `wall_ms`.
    pub budget_overrun: Option<bool>,
}

impl RunRecord {
    /// Whether this run passed: converged, schedulers agreed, no
    /// violations, and — when a wall budget was armed — within budget.
    pub fn passed(&self) -> bool {
        self.converged
            && self.modes_agree
            && self.invariant_violations.is_empty()
            && self.budget_overrun != Some(true)
    }

    /// The value of one fault counter (0 when the key is absent).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// The record as a JSON object.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj()
            .field("node", self.node.as_str())
            .field("scenario", self.scenario.as_str())
            .field("seed", self.seed)
            .field("n", self.n)
            .field("rounds_run", self.rounds_run)
            .field("converged", self.converged)
            .field(
                "rounds_to_convergence",
                match self.rounds_to_convergence {
                    Some(r) => Json::UInt(r),
                    None => Json::Null,
                },
            )
            .field("counters", obj_from_map(&self.counters))
            .field("messages_sent", self.messages_sent)
            .field("messages_delivered", self.messages_delivered)
            .field("messages_lost", self.messages_lost)
            .field("messages_duplicated", self.messages_duplicated)
            .field("timer_steps", self.timer_steps)
            .field("state_digest", format!("{:016x}", self.state_digest))
            .field("modes_agree", self.modes_agree)
            .field(
                "invariant_violations",
                Json::Arr(
                    self.invariant_violations
                        .iter()
                        .map(|v| Json::Str(v.clone()))
                        .collect(),
                ),
            );
        if let Some(wall) = self.wall_ms {
            obj = obj.field("wall_ms", wall);
        }
        if let Some(overrun) = self.budget_overrun {
            obj = obj.field("budget_overrun", overrun);
        }
        obj
    }
}

/// A machine-readable summary of a whole campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// The campaign name.
    pub name: String,
    /// The seeds swept.
    pub seeds: Vec<u64>,
    /// One record per (node, scenario, seed) cell, in deterministic
    /// enumeration order — never completion order, at any jobs count.
    pub runs: Vec<RunRecord>,
    /// Driver-measured wall time of the whole campaign in milliseconds,
    /// accumulated over every [`Campaign::run_into`] that fed this report.
    /// This is the only meaningful campaign-level wall figure under a
    /// parallel driver (per-cell [`RunRecord::wall_ms`] overlaps).
    /// Non-deterministic; `None` unless timings were requested.
    pub wall_ms_total: Option<f64>,
}

impl CampaignReport {
    /// Creates an empty report.
    pub fn new(name: impl Into<String>, seeds: Vec<u64>) -> Self {
        CampaignReport {
            name: name.into(),
            seeds,
            runs: Vec::new(),
            wall_ms_total: None,
        }
    }

    /// Whether every run passed.
    pub fn passed(&self) -> bool {
        self.runs.iter().all(RunRecord::passed)
    }

    /// The report as a JSON document. Deterministic: no timestamps, no
    /// mode- or machine-dependent fields (unless timings were requested).
    pub fn to_json(&self) -> Json {
        let converged = self.runs.iter().filter(|r| r.converged).count();
        let agreed = self.runs.iter().filter(|r| r.modes_agree).count();
        let violations: usize = self.runs.iter().map(|r| r.invariant_violations.len()).sum();
        let mut doc = Json::obj()
            .field("campaign", self.name.as_str())
            .field("engine", "simnet-chaos/1")
            .field(
                "seeds",
                Json::Arr(self.seeds.iter().map(|s| Json::UInt(*s)).collect()),
            );
        if let Some(wall) = self.wall_ms_total {
            doc = doc.field("wall_ms_total", wall);
        }
        doc.field(
            "runs",
            Json::Arr(self.runs.iter().map(RunRecord::to_json).collect()),
        )
        .field(
            "summary",
            Json::obj()
                .field("runs", self.runs.len())
                .field("converged", converged)
                .field("modes_agree", agreed)
                .field("invariant_violations", violations)
                .field("passed", self.passed()),
        )
    }

    /// The rendered JSON report.
    pub fn render(&self) -> String {
        self.to_json().render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::catalog;
    use crate::testutil::MaxNode;

    #[test]
    fn cell_budget_marks_overruns_as_distinct_outcomes() {
        let scenarios = vec![catalog(4).into_iter().next().unwrap()];
        // A generous budget passes and reports the verdict.
        let ok = Campaign::new("budget")
            .with_seeds([1])
            .with_cell_budget_ms(1e12)
            .run::<MaxNode>(&scenarios);
        assert!(ok.passed());
        assert_eq!(ok.runs[0].budget_overrun, Some(false));
        assert!(ok.render().contains("budget_overrun"));
        // An impossible budget fails the cell — but as a *distinct*
        // outcome: the protocol run itself is untouched and convergent.
        let over = Campaign::new("budget")
            .with_seeds([1])
            .with_cell_budget_ms(f64::MIN_POSITIVE)
            .run::<MaxNode>(&scenarios);
        assert!(!over.passed());
        let run = &over.runs[0];
        assert!(run.converged && run.modes_agree && run.invariant_violations.is_empty());
        assert_eq!(run.budget_overrun, Some(true));
        // No budget armed: the field stays out of the report entirely, so
        // untimed reports remain byte-deterministic.
        let plain = Campaign::new("budget")
            .with_seeds([1])
            .run::<MaxNode>(&scenarios);
        assert_eq!(plain.runs[0].budget_overrun, None);
        assert!(!plain.render().contains("budget_overrun"));
        // `0.0` disarms (the CLI's "flag absent" spelling).
        let disarmed = Campaign::new("budget")
            .with_seeds([1])
            .with_cell_budget_ms(0.0)
            .run::<MaxNode>(&scenarios);
        assert_eq!(disarmed.runs[0].budget_overrun, None);
    }

    #[test]
    fn campaign_report_is_byte_identical_across_runs_and_modes() {
        let scenarios = catalog(5);
        let both = Campaign::new("determinism")
            .with_seeds([1, 2])
            .run::<MaxNode>(&scenarios)
            .render();
        let again = Campaign::new("determinism")
            .with_seeds([1, 2])
            .run::<MaxNode>(&scenarios)
            .render();
        assert_eq!(both, again, "repeated campaign runs diverged");

        let event_only = Campaign::new("determinism")
            .with_seeds([1, 2])
            .with_modes([SchedulerMode::EventDriven])
            .run::<MaxNode>(&scenarios)
            .render();
        let scan_only = Campaign::new("determinism")
            .with_seeds([1, 2])
            .with_modes([SchedulerMode::RoundScan])
            .run::<MaxNode>(&scenarios)
            .render();
        assert_eq!(
            event_only, scan_only,
            "reports diverged across scheduler modes"
        );
        assert_eq!(
            both, event_only,
            "both-mode report differs from single-mode"
        );
    }

    #[test]
    fn campaign_runs_every_cell_and_passes() {
        let scenarios = catalog(4);
        let report = Campaign::new("smoke")
            .with_seeds([7])
            .run::<MaxNode>(&scenarios);
        assert_eq!(report.runs.len(), scenarios.len());
        assert!(report.passed(), "{}", report.render());
        for run in &report.runs {
            assert_eq!(run.node, "max");
            assert!(run.modes_agree);
            assert!(run.messages_sent > 0);
        }
    }

    #[test]
    fn report_json_shape_is_stable() {
        let report = Campaign::new("shape")
            .with_seeds([3])
            .run::<MaxNode>(&catalog(3)[..1]);
        let doc = report.to_json();
        assert_eq!(doc.get("campaign").and_then(Json::as_str), Some("shape"));
        assert_eq!(
            doc.get("engine").and_then(Json::as_str),
            Some("simnet-chaos/1")
        );
        let runs = doc.get("runs").and_then(Json::as_arr).unwrap();
        assert_eq!(runs.len(), 1);
        let run = &runs[0];
        for key in [
            "node",
            "scenario",
            "seed",
            "n",
            "rounds_run",
            "converged",
            "rounds_to_convergence",
            "counters",
            "messages_sent",
            "messages_delivered",
            "messages_lost",
            "messages_duplicated",
            "timer_steps",
            "state_digest",
            "modes_agree",
            "invariant_violations",
        ] {
            assert!(run.get(key).is_some(), "missing field {key}");
        }
        assert!(run.get("wall_ms").is_none(), "untimed report has wall_ms");
        let summary = doc.get("summary").unwrap();
        assert_eq!(summary.get("passed").and_then(Json::as_bool), Some(true));
        // The parsed report round-trips.
        let parsed = Json::parse(&report.render()).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn timings_are_opt_in_and_non_default() {
        let report = Campaign::new("timed")
            .with_seeds([1])
            .with_timings(true)
            .run::<MaxNode>(&catalog(3)[..1]);
        assert!(report.runs[0].wall_ms.is_some());
        let doc = report.to_json();
        let run = &doc.get("runs").and_then(Json::as_arr).unwrap()[0];
        assert!(run.get("wall_ms").is_some());
    }

    /// The tentpole acceptance property at the toy-target scale: any jobs
    /// count produces the byte-identical report, and the runs arrive in
    /// enumeration order (scenario-major, seed-minor) — shard partitioning
    /// never leaks into `CampaignReport::runs`.
    #[test]
    fn parallel_reports_are_byte_identical_to_serial_at_any_jobs_count() {
        let scenarios = catalog(5);
        let seeds = [1u64, 2, 3];
        let serial = Campaign::new("jobs")
            .with_seeds(seeds)
            .with_jobs(1)
            .run::<MaxNode>(&scenarios);
        let serial_rendered = serial.render();
        let expected_order: Vec<(String, u64)> = scenarios
            .iter()
            .flat_map(|s| seeds.iter().map(|&seed| (s.name().to_string(), seed)))
            .collect();
        let actual_order: Vec<(String, u64)> = serial
            .runs
            .iter()
            .map(|r| (r.scenario.clone(), r.seed))
            .collect();
        assert_eq!(actual_order, expected_order, "serial enumeration order");
        for jobs in [2usize, 4, 8] {
            let parallel = Campaign::new("jobs")
                .with_seeds(seeds)
                .with_jobs(jobs)
                .run::<MaxNode>(&scenarios);
            assert_eq!(
                parallel.render(),
                serial_rendered,
                "report diverged at jobs={jobs}"
            );
        }
    }

    #[test]
    fn with_jobs_zero_restores_the_default_and_jobs_is_at_least_one() {
        let auto = Campaign::new("auto");
        assert!(auto.jobs() >= 1);
        assert_eq!(Campaign::new("one").with_jobs(1).jobs(), 1);
        assert_eq!(Campaign::new("four").with_jobs(4).jobs(), 4);
        assert_eq!(
            Campaign::new("reset").with_jobs(4).with_jobs(0).jobs(),
            auto.jobs()
        );
    }

    /// `wall_ms_total` is driver-measured, opt-in, and accumulates across
    /// `run_into` calls; untimed reports must not carry it (determinism).
    #[test]
    fn wall_ms_total_is_driver_measured_and_opt_in() {
        let scenarios = catalog(3);
        let untimed = Campaign::new("untimed")
            .with_jobs(2)
            .run::<MaxNode>(&scenarios[..2]);
        assert!(untimed.wall_ms_total.is_none());
        assert!(untimed.to_json().get("wall_ms_total").is_none());

        let campaign = Campaign::new("timed").with_timings(true).with_jobs(2);
        let mut report = CampaignReport::new("timed", campaign.seeds().to_vec());
        campaign.run_into::<MaxNode>(&scenarios[..1], &mut report);
        let first = report.wall_ms_total.expect("timed driver total");
        campaign.run_into::<MaxNode>(&scenarios[1..2], &mut report);
        let second = report.wall_ms_total.expect("timed driver total");
        assert!(second >= first, "wall_ms_total must accumulate");
        assert!(report.to_json().get("wall_ms_total").is_some());
        // Per-cell wall_ms stays present and per-cell under parallelism.
        assert!(report.runs.iter().all(|r| r.wall_ms.is_some()));
    }
}

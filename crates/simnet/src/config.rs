//! Simulation configuration.

use crate::channel::ChannelPolicy;

/// How the scheduler finds the work of each round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerMode {
    /// Event-driven run queue (the default): a process is woken only when it
    /// has deliverable packets or a due timer, and packet delivery reads a
    /// per-destination index instead of scanning every channel.
    #[default]
    EventDriven,
    /// The legacy whole-system scan: every round visits every process and
    /// examines every channel in the network to find deliverable packets.
    /// Kept as a baseline for the scheduler benchmarks; behaviourally
    /// identical to [`SchedulerMode::EventDriven`] for the same seed.
    RoundScan,
}

/// Configuration of a [`crate::Simulation`].
///
/// The defaults model a well-behaved but asynchronous network: bounded
/// channel capacity, small random delivery delay, no loss, no duplication.
/// Benchmarks and tests tighten or loosen the parameters to explore the
/// regimes the paper discusses (lossy links, high churn, transient faults).
///
/// `SimConfig` is a non-consuming builder:
///
/// ```
/// use simnet::SimConfig;
/// let cfg = SimConfig::default()
///     .with_seed(17)
///     .with_loss_probability(0.05)
///     .with_channel_capacity(8);
/// assert_eq!(cfg.channel_policy().capacity, 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    seed: u64,
    channel_policy: ChannelPolicy,
    /// Upper bound on the number of messages delivered to one process in one
    /// round. Bounding this models asynchrony (a process may lag behind its
    /// incoming traffic); `usize::MAX` effectively removes the bound.
    max_deliveries_per_round: usize,
    scheduler: SchedulerMode,
    /// Rounds between two timer steps of the same process. The paper's
    /// asynchronous timers have an unknown rate; `1` (the default) fires the
    /// `do forever` loop every round, larger values model slow processes and
    /// let the event-driven scheduler skip idle ones entirely.
    timer_period: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            channel_policy: ChannelPolicy::default(),
            max_deliveries_per_round: usize::MAX,
            scheduler: SchedulerMode::default(),
            timer_period: 1,
        }
    }
}

impl SimConfig {
    /// Creates the default configuration (equivalent to [`Default::default`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the seed of the deterministic random number generator.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-packet loss probability of every channel.
    pub fn with_loss_probability(mut self, p: f64) -> Self {
        self.channel_policy.loss_probability = p;
        self
    }

    /// Sets the per-packet duplication probability of every channel.
    pub fn with_duplication_probability(mut self, p: f64) -> Self {
        self.channel_policy.duplication_probability = p;
        self
    }

    /// Sets the bounded capacity `cap` of every channel (in packets).
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`; the paper's channels always hold at least one
    /// packet.
    pub fn with_channel_capacity(mut self, cap: usize) -> Self {
        assert!(cap > 0, "channel capacity must be at least 1");
        self.channel_policy.capacity = cap;
        self
    }

    /// Sets the maximum random delivery delay, in rounds, of every packet.
    pub fn with_max_delay(mut self, rounds: u64) -> Self {
        self.channel_policy.max_delay_rounds = rounds;
        self
    }

    /// Enables or disables packet reordering inside channels.
    pub fn with_reordering(mut self, reorder: bool) -> Self {
        self.channel_policy.reorder = reorder;
        self
    }

    /// Bounds how many packets one process may receive per round.
    pub fn with_max_deliveries_per_round(mut self, n: usize) -> Self {
        self.max_deliveries_per_round = n;
        self
    }

    /// Selects how the scheduler finds each round's work.
    pub fn with_scheduler(mut self, mode: SchedulerMode) -> Self {
        self.scheduler = mode;
        self
    }

    /// Sets the number of rounds between two timer steps of one process.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0`.
    pub fn with_timer_period(mut self, rounds: u64) -> Self {
        assert!(rounds > 0, "timer period must be at least 1 round");
        self.timer_period = rounds;
        self
    }

    /// The random seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The channel behaviour shared by all links.
    pub fn channel_policy(&self) -> &ChannelPolicy {
        &self.channel_policy
    }

    /// Maximum number of deliveries per process per round.
    pub fn max_deliveries_per_round(&self) -> usize {
        self.max_deliveries_per_round
    }

    /// The scheduler mode.
    pub fn scheduler(&self) -> SchedulerMode {
        self.scheduler
    }

    /// Rounds between two timer steps of one process.
    pub fn timer_period(&self) -> u64 {
        self.timer_period
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_every_field() {
        let cfg = SimConfig::new()
            .with_seed(9)
            .with_loss_probability(0.2)
            .with_duplication_probability(0.1)
            .with_channel_capacity(4)
            .with_max_delay(3)
            .with_reordering(true)
            .with_max_deliveries_per_round(2);
        assert_eq!(cfg.seed(), 9);
        assert_eq!(cfg.channel_policy().loss_probability, 0.2);
        assert_eq!(cfg.channel_policy().duplication_probability, 0.1);
        assert_eq!(cfg.channel_policy().capacity, 4);
        assert_eq!(cfg.channel_policy().max_delay_rounds, 3);
        assert!(cfg.channel_policy().reorder);
        assert_eq!(cfg.max_deliveries_per_round(), 2);
    }

    #[test]
    fn default_is_reliable_and_unbounded_delivery() {
        let cfg = SimConfig::default();
        assert_eq!(cfg.channel_policy().loss_probability, 0.0);
        assert_eq!(cfg.channel_policy().duplication_probability, 0.0);
        assert_eq!(cfg.max_deliveries_per_round(), usize::MAX);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = SimConfig::default().with_channel_capacity(0);
    }
}

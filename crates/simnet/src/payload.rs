//! Shared in-flight payloads.
//!
//! Every packet travelling through a [`crate::Channel`] carries a
//! [`Payload`]: either a plain owned message or a handle into a shared
//! allocation (`Arc`). The two-variant shape is deliberate — most traffic is
//! point-to-point (heartbeats, per-peer echoes) and must stay allocation-free,
//! so owning the message inline is the default and sharing is opt-in at the
//! places that genuinely fan one value out to many packets:
//!
//! * a broadcast pushed through [`crate::stack::Outbox::push_to_all`] wraps
//!   the message once and enqueues one handle per destination;
//! * channel duplication ([`crate::Channel::send_timed`]) promotes the packet
//!   to shared and enqueues a second handle instead of a deep clone.
//!
//! Ownership rules on the delivery path:
//!
//! * the channel owns the payload while the packet is in flight;
//! * delivery ([`crate::Channel::drain_ready_with`]) passes the message to
//!   the sink by value — an owned payload moves, the *last* handle to a
//!   shared payload moves out of the allocation, and an earlier handle
//!   clones (so a broadcast to `n` peers costs one allocation plus `n − 1`
//!   delivery clones instead of `2n` construction-plus-send clones, and
//!   lost or evicted packets never materialise a copy at all);
//! * adversarial mutation goes through [`Payload::make_mut`], which is
//!   copy-on-write: corrupting one handle of a shared payload un-shares it
//!   first, so corruption never aliases into other channels' packets.
//!
//! Sharing is invisible to observers: equality, hashing and `Debug` all look
//! through the handle at the message value, and the simulation's RNG is never
//! consulted, so executions are byte-identical whether or not any payload is
//! shared.

use std::fmt;
use std::sync::Arc;

/// A message in flight: owned, or one handle to a shared allocation.
pub enum Payload<M> {
    /// The packet owns its message (the point-to-point default).
    Owned(M),
    /// One handle to a message shared with other packets.
    Shared(Arc<M>),
}

impl<M> Payload<M> {
    /// Wraps an owned message.
    pub fn owned(msg: M) -> Self {
        Payload::Owned(msg)
    }

    /// Wraps one message for `n` packets: returns a factory that hands out
    /// `n` payloads of the same value, sharing a single allocation when
    /// `n > 1` and owning the message inline when `n == 1`.
    pub fn fan_out(msg: M, n: usize) -> FanOut<M> {
        FanOut {
            inner: if n > 1 {
                FanOutRepr::Shared(Arc::new(msg))
            } else {
                FanOutRepr::Once(Some(msg))
            },
        }
    }

    /// A shared view of the message.
    pub fn get(&self) -> &M {
        match self {
            Payload::Owned(m) => m,
            Payload::Shared(a) => a,
        }
    }

    /// Returns `true` when this payload shares its allocation with at least
    /// one other live handle.
    pub fn is_shared(&self) -> bool {
        match self {
            Payload::Owned(_) => false,
            Payload::Shared(a) => Arc::strong_count(a) > 1,
        }
    }

    /// Splits into two handles over one shared allocation. An owned payload
    /// is promoted to shared first — this is the only point at which sharing
    /// allocates, and the channel duplication path is its only hot caller.
    pub fn split(self) -> (Self, Self) {
        let arc = match self {
            Payload::Owned(m) => Arc::new(m),
            Payload::Shared(a) => a,
        };
        (Payload::Shared(Arc::clone(&arc)), Payload::Shared(arc))
    }
}

impl<M: Clone> Payload<M> {
    /// Consumes the payload, yielding the message by value: an owned message
    /// moves, the last handle to a shared message moves out of the
    /// allocation, and an earlier handle clones.
    pub fn into_msg(self) -> M {
        match self {
            Payload::Owned(m) => m,
            Payload::Shared(a) => Arc::try_unwrap(a).unwrap_or_else(|a| (*a).clone()),
        }
    }

    /// Mutable access with copy-on-write: mutating a shared payload first
    /// un-shares it (cloning the message into a private allocation), so the
    /// mutation is invisible to every other handle.
    pub fn make_mut(&mut self) -> &mut M {
        match self {
            Payload::Owned(m) => m,
            Payload::Shared(a) => Arc::make_mut(a),
        }
    }
}

impl<M: Clone> Clone for Payload<M> {
    fn clone(&self) -> Self {
        match self {
            // An owned payload clones deeply: `clone` is for duplicating
            // whole channels/networks (campaign forks), not for fanning a
            // message out — that is `split`/`fan_out`, which bump refcounts.
            Payload::Owned(m) => Payload::Owned(m.clone()),
            Payload::Shared(a) => Payload::Shared(Arc::clone(a)),
        }
    }
}

/// Payloads compare (and hash, and print) by message value: sharing is a
/// storage optimisation, never an observable property.
impl<M: PartialEq> PartialEq for Payload<M> {
    fn eq(&self, other: &Self) -> bool {
        self.get() == other.get()
    }
}

impl<M: Eq> Eq for Payload<M> {}

impl<M: fmt::Debug> fmt::Debug for Payload<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.get().fmt(f)
    }
}

/// Hands out `n` payloads of one message, allocating at most once.
/// Created by [`Payload::fan_out`].
pub struct FanOut<M> {
    inner: FanOutRepr<M>,
}

enum FanOutRepr<M> {
    Once(Option<M>),
    Shared(Arc<M>),
}

impl<M> FanOut<M> {
    /// The next handle. Panics if called more often than the `n` the fan-out
    /// was created for (only possible for `n == 1`, where there is nothing
    /// left to hand out).
    pub fn next(&mut self) -> Payload<M> {
        match &mut self.inner {
            FanOutRepr::Once(slot) => {
                Payload::Owned(slot.take().expect("fan_out(_, 1) yields one payload"))
            }
            FanOutRepr::Shared(a) => Payload::Shared(Arc::clone(a)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_roundtrip_moves_without_cloning() {
        let p = Payload::owned(vec![1u8, 2, 3]);
        assert!(!p.is_shared());
        assert_eq!(p.get(), &vec![1, 2, 3]);
        assert_eq!(p.into_msg(), vec![1, 2, 3]);
    }

    #[test]
    fn split_shares_one_allocation() {
        let (a, b) = Payload::owned(String::from("x")).split();
        assert!(a.is_shared());
        assert!(b.is_shared());
        assert_eq!(a, b);
        // Consuming one handle un-shares the other.
        assert_eq!(a.into_msg(), "x");
        assert!(!b.is_shared());
        // The last handle moves the value out instead of cloning.
        assert_eq!(b.into_msg(), "x");
    }

    #[test]
    fn make_mut_is_copy_on_write() {
        let (mut a, b) = Payload::owned(10u32).split();
        *a.make_mut() += 1;
        assert_eq!(*a.get(), 11);
        assert_eq!(*b.get(), 10, "mutation must not alias into other handles");
        // After the write the handle is private.
        assert!(!a.is_shared());
    }

    #[test]
    fn equality_looks_through_sharing() {
        let owned = Payload::owned(7u32);
        let (shared, _keep) = Payload::owned(7u32).split();
        assert_eq!(owned, shared);
        assert_eq!(format!("{owned:?}"), format!("{shared:?}"));
    }

    #[test]
    fn fan_out_allocates_only_when_fanning() {
        let mut one = Payload::fan_out(5u32, 1);
        assert!(!one.next().is_shared());

        let mut many = Payload::fan_out(5u32, 3);
        let first = many.next();
        let _second = many.next();
        let _third = many.next();
        assert!(first.is_shared());
    }
}
